//! Model-tuned collectives end to end: optimize shapes from the capability
//! model, run them as *real host-thread collectives*, and compare against
//! the OpenMP-like and MPI-like baselines on this machine.
//!
//! On a manycore box the model-tuned shapes win clearly; on small/
//! oversubscribed hosts the ordering may compress (the KNL-scale claims are
//! regenerated on the simulator by `knl-bench`'s fig6–fig8 binaries).
//!
//! ```sh
//! cargo run --release --example model_tuned_collectives
//! ```

use knl::collectives::plan::RankPlan;
use knl::collectives::{
    CentralReduce, CentralizedBarrier, DisseminationBarrier, FlatBroadcast, MpiBroadcast,
    MpiReduce, Team, TreeBroadcast, TreeReduce,
};
use knl::model::tree_opt::binomial_tree;
use knl::model::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
use std::sync::Arc;

fn main() {
    let n = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 8);
    let iters = 2_000;
    println!("running {iters} iterations of each collective on {n} host threads\n");

    let model = CapabilityModel::paper_reference();
    let team = Team::new(n);

    // ---- barrier ----
    let plan = optimize_barrier(&model, n);
    println!(
        "barrier: model-tuned radix m={} ({} rounds)",
        plan.m, plan.r
    );
    let tuned = Arc::new(DisseminationBarrier::new(n, plan.m));
    let b = Arc::clone(&tuned);
    let d_tuned = team.time(iters, move |rank, _| b.wait(rank));
    let central = Arc::new(CentralizedBarrier::new(n));
    let c = Arc::clone(&central);
    let d_central = team.time(iters, move |rank, _| c.wait(rank));
    report(
        "barrier",
        iters,
        &[
            ("dissemination (tuned)", d_tuned),
            ("centralized (OpenMP-like)", d_central),
        ],
    );

    // ---- broadcast ----
    let tree = optimize_tree(&model, n, TreeKind::Broadcast).tree;
    println!("broadcast: tuned tree shape {}", tree.compact());
    let tb = Arc::new(TreeBroadcast::new(RankPlan::direct(&tree)));
    let t = Arc::clone(&tb);
    let d_tree = team.time(iters, move |rank, it| {
        let v = [it as u64; 7];
        let got = t.run(rank, (rank == 0).then_some(v));
        assert_eq!(got, v);
    });
    let fb = Arc::new(FlatBroadcast::new(n));
    let f = Arc::clone(&fb);
    let d_flat = team.time(iters, move |rank, it| {
        let v = [it as u64; 7];
        f.run(rank, (rank == 0).then_some(v));
    });
    let mb = Arc::new(MpiBroadcast::new(RankPlan::direct(&binomial_tree(n))));
    let m = Arc::clone(&mb);
    let d_mpi = team.time(iters, move |rank, it| {
        let v = [it as u64; 7];
        m.run(rank, (rank == 0).then_some(v));
    });
    report(
        "broadcast",
        iters,
        &[
            ("tuned tree", d_tree),
            ("flat (OpenMP-like)", d_flat),
            ("binomial+staging (MPI-like)", d_mpi),
        ],
    );

    // ---- reduce ----
    let tree = optimize_tree(&model, n, TreeKind::Reduce).tree;
    let tr = Arc::new(TreeReduce::new(RankPlan::direct(&tree)));
    let t = Arc::clone(&tr);
    let d_tree = team.time(iters, move |rank, it| {
        let r = t.run(rank, rank as u64 + it as u64);
        if rank == 0 {
            r.expect("root gets the sum");
        }
    });
    let cr = Arc::new(CentralReduce::new(n));
    let c = Arc::clone(&cr);
    let d_central = team.time(iters, move |rank, it| {
        c.run(rank, rank as u64 + it as u64);
    });
    let mr = Arc::new(MpiReduce::new(RankPlan::direct(&binomial_tree(n))));
    let m = Arc::clone(&mr);
    let d_mpi = team.time(iters, move |rank, it| {
        m.run(rank, rank as u64 + it as u64);
    });
    report(
        "reduce",
        iters,
        &[
            ("tuned tree", d_tree),
            ("central atomic (OpenMP-like)", d_central),
            ("binomial+staging (MPI-like)", d_mpi),
        ],
    );
}

fn report(what: &str, iters: usize, results: &[(&str, std::time::Duration)]) {
    println!("--- {what} ---");
    for (name, d) in results {
        println!(
            "  {name:<30} {:>9.0} ns/op",
            d.as_nanos() as f64 / iters as f64
        );
    }
    println!();
}
