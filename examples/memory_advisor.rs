//! The "which memory should my data live in?" use case (§VII): feed the
//! capability model an application profile and get a placement
//! recommendation with a predicted speedup.
//!
//! ```sh
//! cargo run --release --example memory_advisor
//! ```

use knl::model::advisor::{advise, PhaseProfile, Placement};
use knl::model::CapabilityModel;
use knl::sim::StreamKind;

fn main() {
    let model = CapabilityModel::paper_reference();

    let apps: Vec<(&str, Vec<PhaseProfile>)> = vec![
        (
            "dense stencil (streaming triad, 64 threads)",
            vec![PhaseProfile {
                kind: StreamKind::Triad,
                threads: 64,
                weight: 1.0,
                latency_bound: false,
            }],
        ),
        (
            "graph traversal (dependent loads, 32 threads)",
            vec![PhaseProfile {
                kind: StreamKind::Read,
                threads: 32,
                weight: 1.0,
                latency_bound: true,
            }],
        ),
        (
            "bitonic merge sort (threads halve away; merges interleave two \
             input streams, so the tail phases are latency-bound)",
            vec![
                PhaseProfile {
                    kind: StreamKind::Copy,
                    threads: 64,
                    weight: 0.2,
                    latency_bound: false,
                },
                PhaseProfile {
                    kind: StreamKind::Copy,
                    threads: 8,
                    weight: 0.2,
                    latency_bound: true,
                },
                PhaseProfile {
                    kind: StreamKind::Copy,
                    threads: 1,
                    weight: 0.6,
                    latency_bound: true,
                },
            ],
        ),
        (
            "single-threaded ETL (copy, 1 thread)",
            vec![PhaseProfile {
                kind: StreamKind::Copy,
                threads: 1,
                weight: 1.0,
                latency_bound: false,
            }],
        ),
    ];

    for (name, phases) in apps {
        let a = advise(&model, &phases);
        let verdict = match a.placement {
            Placement::Mcdram => "allocate in MCDRAM",
            Placement::Dram => "leave in DRAM",
            Placement::Indifferent => "either memory (no meaningful difference)",
        };
        println!("{name}");
        println!("  predicted MCDRAM speedup: {:.2}x -> {verdict}", a.speedup);
        println!("  because: {}\n", a.reason);
    }
}
