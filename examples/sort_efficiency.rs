//! The paper's §V-B case study end to end: sort integers with the 16-wide
//! bitonic merge sort (real host threads), predict the cost with the
//! Eq. 3–5 memory model, and assess efficiency with the 10% rule.
//!
//! ```sh
//! cargo run --release --example sort_efficiency
//! ```

use knl::model::efficiency::{efficiency_sweep, EFFICIENCY_THRESHOLD};
use knl::model::overhead::OverheadModel;
use knl::model::sortmodel::{CostBasis, SortModel};
use knl::model::CapabilityModel;
use knl::sort::parallel_merge_sort;
use knl_arch::SplitMixRng;
use std::time::Instant;

fn main() {
    let model = CapabilityModel::paper_reference();
    let sort_model = SortModel::new(&model, "DRAM");

    // Sort real data on this host at a few sizes/thread counts.
    let host_threads = std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2);
    println!("host parallelism: {host_threads}\n");
    let mut rng = SplitMixRng::seed_from_u64(1);
    for (label, n_elems) in [("1 KB", 256usize), ("4 MB", 1 << 20), ("64 MB", 16 << 20)] {
        let data: Vec<u32> = (0..n_elems).map(|_| rng.next_u32()).collect();
        print!("{label:>6}: ");
        for threads in [1usize, 2, 4] {
            let mut v = data.clone();
            let t0 = Instant::now();
            parallel_merge_sort(&mut v, threads);
            let dt = t0.elapsed();
            assert!(v.windows(2).all(|w| w[0] <= w[1]), "sorted");
            print!("{threads} thr: {:>8.2} ms   ", dt.as_secs_f64() * 1e3);
        }
        println!();
    }

    // The KNL-model predictions (Eqs. 3–5): latency vs bandwidth basis.
    println!("\nKNL model predictions for sorting on the paper's machine (DRAM):");
    println!(
        "{:>8} {:>12} {:>14} {:>14}",
        "bytes", "threads", "mem model lat", "mem model BW"
    );
    for bytes in [1u64 << 10, 4 << 20, 1 << 30] {
        for threads in [1usize, 16, 64] {
            let lat = sort_model.sort_seconds(bytes, threads, CostBasis::Latency);
            let bw = sort_model.sort_seconds(bytes, threads, CostBasis::Bandwidth);
            println!("{bytes:>8} {threads:>12} {lat:>13.4}s {bw:>13.4}s");
        }
    }

    // Efficiency assessment with a synthetic overhead model (α = 2 µs,
    // β = 0.8 µs/thread — the shape measured in fig10_sort).
    let overhead = OverheadModel {
        fit: knl::stats::LinearFit {
            alpha: 2e-6,
            beta: 0.8e-6,
            r2: 1.0,
            n: 8,
        },
    };
    println!("\nefficiency (10% rule) for 4 MB on the KNL model:");
    let mem = |t: usize| sort_model.sort_seconds(4 << 20, t, CostBasis::Bandwidth);
    let (points, last) = efficiency_sweep(mem, &overhead, &[1, 2, 4, 8, 16, 32, 64]);
    for p in &points {
        println!(
            "  {:>3} threads: mem {:>9.1} µs, overhead {:>7.1} µs ({:>5.1}%) -> {}",
            p.threads,
            p.memory_s * 1e6,
            p.overhead_s * 1e6,
            p.ratio() * 100.0,
            if p.is_efficient() {
                "memory-bound"
            } else {
                "overhead-bound"
            }
        );
    }
    match last {
        Some(t) => println!(
            "=> efficient (overhead ≤ {:.0}%) up to {t} threads",
            EFFICIENCY_THRESHOLD * 100.0
        ),
        None => println!("=> never memory-bound at this size"),
    }

    // The headline: does MCDRAM help this sort?
    let mc = SortModel::new(&model, "MCDRAM");
    let d = sort_model.sort_seconds(1 << 30, 64, CostBasis::Bandwidth);
    let c = mc.sort_seconds(1 << 30, 64, CostBasis::Bandwidth);
    println!(
        "\n1 GB sort on 64 threads — DRAM {d:.3}s vs MCDRAM {c:.3}s: predicted speedup {:.2}x \
         (the paper: MCDRAM does NOT help this algorithm)",
        d / c
    );
}
