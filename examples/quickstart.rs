//! Quickstart: build a simulated KNL, run a slice of the capability suite,
//! fit the model, and model-tune a broadcast tree and a barrier.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use knl::arch::{ClusterMode, MachineConfig, MemoryMode};
use knl::benchsuite::{run_cache_suite, SuiteParams};
use knl::model::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
use knl::sim::Machine;

fn main() {
    // 1. Pick one of the fifteen machine configurations.
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    println!(
        "machine: {} ({} cores, {} tiles)",
        cfg.label(),
        cfg.num_cores(),
        cfg.active_tiles
    );

    // 2. Run the cache-to-cache capability benchmarks on the simulator.
    let mut machine = Machine::new(cfg);
    let mut params = SuiteParams::quick();
    params.iters = 7;
    println!("running capability benchmarks (quick sweep)...");
    let cache = run_cache_suite(&mut machine, &params);

    println!(
        "  local L1 latency : {:>6.1} ns",
        cache.local_ns.as_ref().unwrap().median_ns()
    );
    for (st, l) in &cache.tile_ns {
        println!("  tile {st} latency   : {:>6.1} ns", l.median_ns());
    }
    for (st, l) in &cache.remote_ns {
        println!("  remote {st} latency : {:>6.1} ns", l.median_ns());
    }

    // 3. Fit the capability model. (A full fit would also run the memory
    //    suite; the paper-reference model fills in memory numbers here so
    //    the quickstart stays fast.)
    let mut model = CapabilityModel::paper_reference();
    model.rr_ns = cache
        .remote_ns
        .iter()
        .map(|(_, l)| l.median_ns())
        .sum::<f64>()
        / cache.remote_ns.len() as f64;
    println!("\nfitted R_R (remote line read): {:.1} ns", model.rr_ns);
    println!(
        "contention law: T_C(N) = {:.0} + {:.1}·N ns",
        model.contention.alpha, model.contention.beta
    );

    // 4. Model-tune algorithms.
    let tree = optimize_tree(&model, 32, TreeKind::Broadcast);
    println!(
        "\nmodel-tuned broadcast tree over 32 tiles ({:.0} ns):",
        tree.cost_ns
    );
    println!("{}", tree.tree.render());

    let barrier = optimize_barrier(&model, 64);
    println!(
        "model-tuned dissemination barrier for 64 threads: {} rounds, {} partners/round, {:.0} ns",
        barrier.r, barrier.m, barrier.cost_ns
    );
}
