//! Facade crate re-exporting the full KNL capability-model stack.
//!
//! See the README for a tour. The sub-crates are:
//! - [`arch`]: machine description (modes, topology, address maps, timing)
//! - [`stats`]: medians, CIs, OLS fits
//! - [`sim`]: the discrete-event KNL memory-system simulator
//! - [`benchsuite`]: the capability benchmark suite (paper §III–V)
//! - [`model`]: capability models + model-tuned algorithm optimizers (paper core)
//! - [`collectives`]: host + simulated collective implementations and baselines
//! - [`sort`]: the bitonic merge sort case-study application

pub use knl_arch as arch;
pub use knl_benchsuite as benchsuite;
pub use knl_collectives as collectives;
pub use knl_core as model;
pub use knl_sim as sim;
pub use knl_sort as sort;
pub use knl_stats as stats;
