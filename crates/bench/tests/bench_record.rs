//! Perf-guard tests for the recorded bench trajectory (DESIGN.md §6).
//!
//! The deterministic part runs in every profile: the checked-in
//! `BENCH_6.json` must be canonical bytes (bit-exact round trip through
//! `knl_stats::json`) and must describe exactly the cases the live suite
//! defines, so the trajectory can never drift out of sync with the code.
//!
//! The timing part is release-only and warn-only by default: medians on a
//! shared single-CPU runner are too noisy to gate merges on, so a
//! violation prints a warning unless `KNL_BENCH_STRICT=1` is set (the CI
//! bench-record job sets it on the dedicated runner).

use knl_bench::benchcases::{simulator_throughput_suite, SUITE};
use knl_bench::microbench::parse_trajectory;
use knl_stats::json::Json;

/// Path of the checked-in trajectory for this PR, relative to the crate.
const TRAJECTORY: &str = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_6.json");

fn checked_in() -> (String, Json) {
    let text = std::fs::read_to_string(TRAJECTORY)
        .unwrap_or_else(|e| panic!("cannot read {TRAJECTORY}: {e}"));
    let doc = Json::parse(&text).expect("BENCH_6.json must be valid JSON");
    (text, doc)
}

#[test]
fn checked_in_trajectory_roundtrips_bit_exactly() {
    let (text, doc) = checked_in();
    // knl-bench-record writes `render()` plus a trailing newline; parsing
    // and re-rendering must reproduce the file byte for byte, which is
    // what makes re-recording an unchanged run a no-op diff.
    assert_eq!(format!("{}\n", doc.render()), text);
}

#[test]
fn checked_in_trajectory_matches_live_suite() {
    let (_, doc) = checked_in();
    assert_eq!(
        doc.get("format").and_then(Json::as_str),
        Some("knl-bench-trajectory-v1")
    );
    assert_eq!(doc.get("pr").and_then(Json::as_u64), Some(6));
    assert_eq!(doc.get("suite").and_then(Json::as_str), Some(SUITE));

    let recorded = parse_trajectory(&doc).expect("trajectory must parse");
    let suite = simulator_throughput_suite();
    let recorded_keys: Vec<String> = recorded.iter().map(|r| r.key()).collect();
    let live_keys: Vec<String> = suite
        .iter()
        .map(|c| format!("{}/{}", c.group, c.name))
        .collect();
    assert_eq!(
        recorded_keys, live_keys,
        "BENCH_6.json is out of sync with benchcases::simulator_throughput_suite \
         — re-run knl-bench-record"
    );
    for (r, c) in recorded.iter().zip(&suite) {
        assert_eq!(r.bytes, c.bytes, "{}: bytes-per-iter drifted", r.key());
        assert!(r.ns_per_iter > 0.0, "{}: non-positive time", r.key());
    }
}

/// The empty observer hub must stay close to the recorded baseline. The
/// tolerance is wide (4x) because this guards against structural
/// regressions (an always-taken dispatch loop creeping back into the hot
/// path), not scheduler jitter. Warn-only unless KNL_BENCH_STRICT=1.
#[cfg(not(debug_assertions))]
#[test]
fn empty_hub_stays_near_recorded_baseline() {
    use knl_bench::microbench::measure;

    let (_, doc) = checked_in();
    let recorded = parse_trajectory(&doc).expect("trajectory must parse");
    let baseline = recorded
        .iter()
        .find(|r| r.name == "remote_transfer_all_observers_off")
        .expect("baseline case present")
        .ns_per_iter;

    let mut case = simulator_throughput_suite()
        .into_iter()
        .find(|c| c.name == "remote_transfer_all_observers_off")
        .expect("live case present");
    let measured = measure(&mut case.run);

    let limit = baseline * 4.0;
    if measured > limit {
        let msg = format!(
            "empty-hub dispatch regressed: {measured:.1} ns/iter vs recorded \
             {baseline:.1} ns/iter (limit {limit:.1})"
        );
        if std::env::var("KNL_BENCH_STRICT").as_deref() == Ok("1") {
            panic!("{msg}");
        }
        println!("warning: {msg} — not failing without KNL_BENCH_STRICT=1");
    }
}
