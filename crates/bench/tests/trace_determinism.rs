//! End-to-end determinism of the merged trace files: the sweep drivers
//! must produce byte-identical traces for any `--jobs` value, and running
//! with `--trace-level off` must be bit-identical to a machine that never
//! had observers attached.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl_bench::runconf::{Effort, RunConf};
use knl_bench::sweep::{machine, TraceSink};
use knl_benchsuite::pointer_chase::transfer_latency;
use knl_benchsuite::SweepExecutor;
use knl_sim::{CheckLevel, Machine, MesifState, TraceLevel};
use std::path::{Path, PathBuf};

fn conf(jobs: usize, trace: TraceLevel, path: &Path) -> RunConf {
    RunConf {
        effort: Effort::Quick,
        jobs,
        check: CheckLevel::Off,
        trace,
        trace_path: Some(path.to_string_lossy().into_owned()),
        analyze: knl_sim::AnalyzeLevel::Off,
    }
}

/// The same shape the figure binaries use: independent machines per sweep
/// point, traces submitted under the job index, merged at the end.
fn run_sweep(cfg: &MachineConfig, conf: &RunConf) -> (Vec<u64>, Option<String>) {
    let partners: Vec<u16> = vec![1, 2, 5, 9];
    let origin = CoreId(0);
    let sink = TraceSink::new(conf, "determinism");
    let results = SweepExecutor::new(conf.jobs).run("det", &partners, |i, &p| {
        let mut m = machine(conf, cfg.clone());
        let owner = CoreId(p);
        let helper = (0..m.config().num_cores() as u16)
            .map(CoreId)
            .find(|c| c.tile() != owner.tile() && c.tile() != origin.tile())
            .expect("helper tile");
        let s = transfer_latency(&mut m, owner, origin, helper, MesifState::Modified, 3);
        m.finish_check();
        sink.submit(i, &mut m);
        s.median().to_bits()
    });
    let text = sink
        .write()
        .expect("write trace")
        .map(|p| std::fs::read_to_string(p).expect("read trace back"));
    (results, text)
}

fn tmp(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("knl-trace-determinism");
    std::fs::create_dir_all(&dir).expect("temp dir");
    dir.join(name)
}

#[test]
fn merged_trace_is_byte_identical_across_jobs() {
    let configs = [
        MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat),
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache),
    ];
    for (ci, cfg) in configs.iter().enumerate() {
        for level in [TraceLevel::Summary, TraceLevel::Full] {
            let p1 = tmp(&format!("c{ci}-{}-j1.trace", level.name()));
            let p2 = tmp(&format!("c{ci}-{}-j2.trace", level.name()));
            let (r1, t1) = run_sweep(cfg, &conf(1, level, &p1));
            let (r2, t2) = run_sweep(cfg, &conf(2, level, &p2));
            assert_eq!(r1, r2, "cfg {ci} {}: results diverge", level.name());
            let t1 = t1.expect("jobs=1 trace written");
            let t2 = t2.expect("jobs=2 trace written");
            assert!(!t1.is_empty());
            assert_eq!(t1, t2, "cfg {ci} {}: trace bytes diverge", level.name());
            let _ = std::fs::remove_file(&p1);
            let _ = std::fs::remove_file(&p2);
        }
    }
}

#[test]
fn trace_off_is_bit_identical_to_untraced_machine() {
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let path = tmp("off.trace");
    let (traced_off, text) = run_sweep(&cfg, &conf(2, TraceLevel::Off, &path));
    assert_eq!(text, None, "off level must write no trace file");
    assert!(!path.exists());

    // Reference run on machines that never had observers attached.
    let origin = CoreId(0);
    let reference: Vec<u64> = [1u16, 2, 5, 9]
        .iter()
        .map(|&p| {
            let mut m = Machine::new(cfg.clone());
            let owner = CoreId(p);
            let helper = (0..m.config().num_cores() as u16)
                .map(CoreId)
                .find(|c| c.tile() != owner.tile() && c.tile() != origin.tile())
                .expect("helper tile");
            transfer_latency(&mut m, owner, origin, helper, MesifState::Modified, 3)
                .median()
                .to_bits()
        })
        .collect();
    assert_eq!(traced_off, reference);
}
