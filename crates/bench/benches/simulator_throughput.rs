//! How fast is the simulator itself? Accesses and streamed lines per
//! second of host time (guards against regressions that would make the
//! paper-scale sweeps impractical).
//!
//! The cases live in `knl_bench::benchcases` so this console view and the
//! `knl-bench-record` trajectory writer measure identical workloads.

use knl_bench::benchcases::simulator_throughput_suite;
use knl_bench::microbench::case;

fn main() {
    for mut c in simulator_throughput_suite() {
        case(c.group, c.name, c.bytes, &mut c.run);
    }
}
