//! How fast is the simulator itself? Accesses and streamed lines per
//! second of host time (guards against regressions that would make the
//! paper-scale sweeps impractical).

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, Schedule};
use knl_bench::microbench::case;
use knl_sim::{
    AccessKind, AnalyzeLevel, CheckLevel, Machine, ObserverConfig, Op, Program, Runner, StreamKind,
    TraceLevel,
};

fn machine() -> Machine {
    Machine::new(MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Flat,
    ))
}

fn machine_with(oc: ObserverConfig) -> Machine {
    Machine::with_observer_config(
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat),
        oc,
    )
}

fn main() {
    {
        let mut m = machine();
        let mut now = m.access(CoreId(0), 4096, AccessKind::Read, 0).complete;
        case("sim_access", "l1_hit", None, || {
            now = m.access(CoreId(0), 4096, AccessKind::Read, now).complete;
            now
        });
    }

    {
        let mut m = machine();
        let mut addr = 1u64 << 22;
        let mut now = 0;
        case("sim_access", "memory_miss", None, || {
            addr += 4096;
            if addr > (1 << 29) {
                addr = 1 << 22;
                m.reset_caches();
            }
            now = m.access(CoreId(0), addr, AccessKind::Read, now).complete;
            now
        });
    }

    {
        let mut m = machine();
        let mut now = 0;
        let mut flip = false;
        case("sim_access", "remote_transfer", None, || {
            // Ping-pong one line between two tiles: every access is a
            // remote ownership transfer.
            let core = if flip { CoreId(0) } else { CoreId(30) };
            flip = !flip;
            now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
            now
        });
    }

    // `--check off` must be free (the acceptance bar for leaving the hook
    // compiled into the hot paths), and the checked levels' cost should
    // stay visible here so it never silently creeps into `off`.
    for (name, level) in [
        ("remote_transfer_check_off", CheckLevel::Off),
        ("remote_transfer_check_inv", CheckLevel::Invariants),
        ("remote_transfer_check_full", CheckLevel::FullOracle),
    ] {
        let mut m = machine_with(ObserverConfig::default().check(level));
        let mut now = 0;
        let mut flip = false;
        case("sim_access", name, None, || {
            let core = if flip { CoreId(0) } else { CoreId(30) };
            flip = !flip;
            now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
            now
        });
    }

    // Same acceptance bar for the tracer: `--trace-level off` must be
    // free, and the summary/full costs stay measured so they never bleed
    // into the off path.
    for (name, trace) in [
        ("remote_transfer_trace_off", TraceLevel::Off),
        ("remote_transfer_trace_summary", TraceLevel::Summary),
        ("remote_transfer_trace_full", TraceLevel::Full),
    ] {
        let mut m = machine_with(ObserverConfig::default().trace(trace));
        let mut now = 0;
        let mut flip = false;
        case("sim_access", name, None, || {
            let core = if flip { CoreId(0) } else { CoreId(30) };
            flip = !flip;
            now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
            now
        });
    }

    // And for the static analyzer: `--analyze off` skips the pre-pass
    // entirely, so the off case must track the raw runner; the on case
    // measures the happens-before construction for a small flag-handoff
    // workload (the pre-pass runs once per `Runner::run`).
    for (name, level) in [
        ("remote_transfer_analyze_off", AnalyzeLevel::Off),
        ("remote_transfer_analyze_on", AnalyzeLevel::Error),
    ] {
        let mut m = machine_with(ObserverConfig::default().analyze(level));
        case("sim_access", name, None, || {
            let flag = 3u64 << 28;
            let mut po = Program::on_core(CoreId(30));
            let mut pr = Program::on_core(CoreId(0));
            for it in 0..16usize {
                let gen = it as u64 + 1;
                let addr = (1u64 << 21) + (it as u64) * 64;
                po.push(Op::Write(addr)).push(Op::SetFlag {
                    addr: flag,
                    val: gen,
                });
                pr.push(Op::WaitFlag {
                    addr: flag,
                    val: gen,
                })
                .push(Op::Read(addr));
            }
            let end = Runner::new(&mut m, vec![po, pr]).run().end_time;
            m.reset_caches();
            end
        });
    }

    // The refactor's guard pair: an empty hub (`off`) must track the raw
    // `remote_transfer` case bit-for-bit in cost, while the fully loaded
    // hub (`on` = full oracle + full trace + analyze gate) measures the
    // dispatch overhead of every observer at once.
    for (name, oc) in [
        (
            "remote_transfer_all_observers_off",
            ObserverConfig::default(),
        ),
        (
            "remote_transfer_all_observers_on",
            ObserverConfig::default()
                .check(CheckLevel::FullOracle)
                .trace(TraceLevel::Full)
                .analyze(AnalyzeLevel::Error),
        ),
    ] {
        let mut m = machine_with(oc);
        let mut now = 0;
        let mut flip = false;
        case("sim_access", name, None, || {
            let core = if flip { CoreId(0) } else { CoreId(30) };
            flip = !flip;
            now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
            now
        });
    }

    {
        let lines = 64 * 1024u64;
        case(
            "sim_stream",
            "8_threads_triad",
            Some(lines * 8 * 64),
            || {
                let mut m = machine();
                let progs: Vec<Program> = (0..8usize)
                    .map(|i| {
                        let mut p = Program::new(Schedule::FillTiles.place(i, 64));
                        p.push(Op::Stream {
                            kind: StreamKind::Triad,
                            a: (i as u64) << 24,
                            b: (i as u64) << 24 | 1 << 23,
                            c: (i as u64) << 24 | 1 << 22,
                            lines,
                            vectorized: true,
                        });
                        p
                    })
                    .collect();
                Runner::new(&mut m, progs).run().end_time
            },
        );
    }
}
