//! How fast is the simulator itself? Accesses and streamed lines per
//! second of host time (guards against regressions that would make the
//! paper-scale sweeps impractical).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, Schedule};
use knl_sim::{AccessKind, Machine, Op, Program, Runner, StreamKind};

fn machine() -> Machine {
    Machine::new(MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat))
}

fn bench_single_access(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_access");
    g.throughput(Throughput::Elements(1));

    g.bench_function("l1_hit", |b| {
        let mut m = machine();
        let out = m.access(CoreId(0), 4096, AccessKind::Read, 0);
        let mut now = out.complete;
        b.iter(|| {
            now = m.access(CoreId(0), 4096, AccessKind::Read, now).complete;
            now
        })
    });

    g.bench_function("memory_miss", |b| {
        let mut m = machine();
        let mut addr = 1u64 << 22;
        let mut now = 0;
        b.iter(|| {
            addr += 4096;
            if addr > (1 << 29) {
                addr = 1 << 22;
                m.reset_caches();
            }
            now = m.access(CoreId(0), addr, AccessKind::Read, now).complete;
            now
        })
    });

    g.bench_function("remote_transfer", |b| {
        let mut m = machine();
        let mut now = 0;
        let mut flip = false;
        b.iter(|| {
            // Ping-pong one line between two tiles: every access is a
            // remote ownership transfer.
            let core = if flip { CoreId(0) } else { CoreId(30) };
            flip = !flip;
            now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
            now
        })
    });
    g.finish();
}

fn bench_streaming(c: &mut Criterion) {
    let mut g = c.benchmark_group("sim_stream");
    g.sample_size(10);
    let lines = 64 * 1024u64;
    g.throughput(Throughput::Elements(lines * 8));
    g.bench_function("8_threads_triad", |b| {
        b.iter(|| {
            let mut m = machine();
            let progs: Vec<Program> = (0..8usize)
                .map(|i| {
                    let mut p = Program::new(Schedule::FillTiles.place(i, 64));
                    p.push(Op::Stream {
                        kind: StreamKind::Triad,
                        a: (i as u64) << 24,
                        b: (i as u64) << 24 | 1 << 23,
                        c: (i as u64) << 24 | 1 << 22,
                        lines,
                        vectorized: true,
                    });
                    p
                })
                .collect();
            Runner::new(&mut m, progs).run().end_time
        })
    });
    g.finish();
}

criterion_group!(benches, bench_single_access, bench_streaming);
criterion_main!(benches);
