//! Microbenchmarks of the sort kernels: the 16-element sorting network,
//! the 16+16 bitonic merger, and the vectorized run merge.

use knl_arch::SplitMixRng;
use knl_bench::microbench::case;
use knl_sort::{bitonic_merge16, merge_runs, sort16};

fn main() {
    let mut rng = SplitMixRng::seed_from_u64(1);

    let input: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
    case("network", "sort16", Some(16 * 4), || {
        let mut v = std::hint::black_box(input);
        sort16(&mut v);
        v
    });

    let mut lo: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
    let mut hi: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
    lo.sort_unstable();
    hi.sort_unstable();
    case("network", "bitonic_merge16", Some(32 * 4), || {
        let mut a = std::hint::black_box(lo);
        let mut b_ = std::hint::black_box(hi);
        bitonic_merge16(&mut a, &mut b_);
        (a, b_)
    });

    let mut rng = SplitMixRng::seed_from_u64(2);
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        let mut a: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let mut b_: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        a.sort_unstable();
        b_.sort_unstable();
        let mut out = vec![0u32; 2 * n];
        case(
            "merge_runs",
            &n.to_string(),
            Some((2 * n * 4) as u64),
            || {
                merge_runs(
                    std::hint::black_box(&a),
                    std::hint::black_box(&b_),
                    &mut out,
                );
                out[0]
            },
        );
    }
}
