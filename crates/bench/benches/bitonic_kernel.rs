//! Microbenchmarks of the sort kernels: the 16-element sorting network,
//! the 16+16 bitonic merger, and the vectorized run merge.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knl_sort::{bitonic_merge16, merge_runs, sort16};
use rand::{Rng, SeedableRng};

fn bench_networks(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);
    let mut g = c.benchmark_group("network");
    g.throughput(Throughput::Elements(16));
    g.bench_function("sort16", |b| {
        let input: [u32; 16] = std::array::from_fn(|_| rng.gen());
        b.iter(|| {
            let mut v = std::hint::black_box(input);
            sort16(&mut v);
            v
        })
    });
    g.throughput(Throughput::Elements(32));
    g.bench_function("bitonic_merge16", |b| {
        let mut lo: [u32; 16] = std::array::from_fn(|_| rng.gen());
        let mut hi: [u32; 16] = std::array::from_fn(|_| rng.gen());
        lo.sort_unstable();
        hi.sort_unstable();
        b.iter(|| {
            let mut a = std::hint::black_box(lo);
            let mut b_ = std::hint::black_box(hi);
            bitonic_merge16(&mut a, &mut b_);
            (a, b_)
        })
    });
    g.finish();
}

fn bench_merge_runs(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(2);
    let mut g = c.benchmark_group("merge_runs");
    for n in [1usize << 10, 1 << 14, 1 << 18] {
        let mut a: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        let mut b_: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        a.sort_unstable();
        b_.sort_unstable();
        g.throughput(Throughput::Bytes((2 * n * 4) as u64));
        g.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            let mut out = vec![0u32; 2 * n];
            bench.iter(|| {
                merge_runs(std::hint::black_box(&a), std::hint::black_box(&b_), &mut out);
                out[0]
            })
        });
    }
    g.finish();
}

criterion_group!(benches, bench_networks, bench_merge_runs);
criterion_main!(benches);
