//! Host-thread collective benchmarks: model-tuned structures vs the
//! OpenMP-like and MPI-like baselines on this machine's threads.
//!
//! Note: on oversubscribed hosts (fewer cores than ranks) absolute numbers
//! reflect scheduler behaviour; the KNL-scale comparison lives in the
//! fig6–fig8 binaries on the simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use knl_collectives::plan::RankPlan;
use knl_collectives::{
    CentralReduce, CentralizedBarrier, DisseminationBarrier, FlatBroadcast, Team, TreeBroadcast,
    TreeReduce,
};
use knl_core::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
use std::sync::Arc;

const ITERS: usize = 200;

fn ranks() -> usize {
    std::thread::available_parallelism().map(|p| p.get()).unwrap_or(2).clamp(2, 4)
}

fn bench_barriers(c: &mut Criterion) {
    let n = ranks();
    let model = CapabilityModel::paper_reference();
    let team = Team::new(n);
    let mut g = c.benchmark_group(format!("barrier_{n}ranks"));
    g.sample_size(10);

    let plan = optimize_barrier(&model, n);
    let tuned = Arc::new(DisseminationBarrier::new(n, plan.m));
    g.bench_function("dissemination_tuned", |b| {
        b.iter_custom(|iters| {
            let bar = Arc::clone(&tuned);
            team.time(iters as usize * ITERS, move |rank, _| bar.wait(rank)) / ITERS as u32
        })
    });

    let central = Arc::new(CentralizedBarrier::new(n));
    g.bench_function("centralized_openmp_like", |b| {
        b.iter_custom(|iters| {
            let bar = Arc::clone(&central);
            team.time(iters as usize * ITERS, move |rank, _| bar.wait(rank)) / ITERS as u32
        })
    });
    g.finish();
}

fn bench_broadcast(c: &mut Criterion) {
    let n = ranks();
    let model = CapabilityModel::paper_reference();
    let team = Team::new(n);
    let mut g = c.benchmark_group(format!("broadcast_{n}ranks"));
    g.sample_size(10);

    let tree = Arc::new(TreeBroadcast::new(RankPlan::direct(
        &optimize_tree(&model, n, TreeKind::Broadcast).tree,
    )));
    g.bench_function("tree_tuned", |b| {
        b.iter_custom(|iters| {
            let t = Arc::clone(&tree);
            team.time(iters as usize * ITERS, move |rank, it| {
                t.run(rank, (rank == 0).then_some([it as u64; 7]));
            }) / ITERS as u32
        })
    });

    let flat = Arc::new(FlatBroadcast::new(n));
    g.bench_function("flat_openmp_like", |b| {
        b.iter_custom(|iters| {
            let f = Arc::clone(&flat);
            team.time(iters as usize * ITERS, move |rank, it| {
                f.run(rank, (rank == 0).then_some([it as u64; 7]));
            }) / ITERS as u32
        })
    });
    g.finish();
}

fn bench_reduce(c: &mut Criterion) {
    let n = ranks();
    let model = CapabilityModel::paper_reference();
    let team = Team::new(n);
    let mut g = c.benchmark_group(format!("reduce_{n}ranks"));
    g.sample_size(10);

    let tree = Arc::new(TreeReduce::new(RankPlan::direct(
        &optimize_tree(&model, n, TreeKind::Reduce).tree,
    )));
    g.bench_function("tree_tuned", |b| {
        b.iter_custom(|iters| {
            let t = Arc::clone(&tree);
            team.time(iters as usize * ITERS, move |rank, it| {
                t.run(rank, rank as u64 + it as u64);
            }) / ITERS as u32
        })
    });

    let central = Arc::new(CentralReduce::new(n));
    g.bench_function("central_openmp_like", |b| {
        b.iter_custom(|iters| {
            let r = Arc::clone(&central);
            team.time(iters as usize * ITERS, move |rank, it| {
                r.run(rank, rank as u64 + it as u64);
            }) / ITERS as u32
        })
    });
    g.finish();
}

criterion_group!(benches, bench_barriers, bench_broadcast, bench_reduce);
criterion_main!(benches);
