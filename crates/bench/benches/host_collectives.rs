//! Host-thread collective benchmarks: model-tuned structures vs the
//! OpenMP-like and MPI-like baselines on this machine's threads.
//!
//! Note: on oversubscribed hosts (fewer cores than ranks) absolute numbers
//! reflect scheduler behaviour; the KNL-scale comparison lives in the
//! fig6–fig8 binaries on the simulator.

use knl_bench::microbench::report;
use knl_collectives::plan::RankPlan;
use knl_collectives::{
    CentralReduce, CentralizedBarrier, DisseminationBarrier, FlatBroadcast, Team, TreeBroadcast,
    TreeReduce,
};
use knl_core::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
use std::sync::Arc;

const ITERS: usize = 200;
const SAMPLES: usize = 9;

fn ranks() -> usize {
    std::thread::available_parallelism()
        .map(|p| p.get())
        .unwrap_or(2)
        .clamp(2, 4)
}

/// Median ns per collective operation over `SAMPLES` timed team runs.
fn time_collective(team: &Team, f: impl Fn(usize, usize) + Send + Sync + Clone + 'static) -> f64 {
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| team.time(ITERS, f.clone()).as_nanos() as f64 / ITERS as f64)
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

fn bench_barriers(n: usize, model: &CapabilityModel, team: &Team) {
    let group = format!("barrier_{n}ranks");
    let plan = optimize_barrier(model, n);

    let tuned = Arc::new(DisseminationBarrier::new(n, plan.m));
    let bar = Arc::clone(&tuned);
    report(
        &group,
        "dissemination_tuned",
        time_collective(team, move |rank, _| bar.wait(rank)),
        None,
    );

    let central = Arc::new(CentralizedBarrier::new(n));
    let bar = Arc::clone(&central);
    report(
        &group,
        "centralized_openmp_like",
        time_collective(team, move |rank, _| bar.wait(rank)),
        None,
    );
}

fn bench_broadcast(n: usize, model: &CapabilityModel, team: &Team) {
    let group = format!("broadcast_{n}ranks");

    let tree = Arc::new(TreeBroadcast::new(RankPlan::direct(
        &optimize_tree(model, n, TreeKind::Broadcast).tree,
    )));
    let t = Arc::clone(&tree);
    let ns = time_collective(team, move |rank, it| {
        t.run(rank, (rank == 0).then_some([it as u64; 7]));
    });
    report(&group, "tree_tuned", ns, None);

    let flat = Arc::new(FlatBroadcast::new(n));
    let f = Arc::clone(&flat);
    let ns = time_collective(team, move |rank, it| {
        f.run(rank, (rank == 0).then_some([it as u64; 7]));
    });
    report(&group, "flat_openmp_like", ns, None);
}

fn bench_reduce(n: usize, model: &CapabilityModel, team: &Team) {
    let group = format!("reduce_{n}ranks");

    let tree = Arc::new(TreeReduce::new(RankPlan::direct(
        &optimize_tree(model, n, TreeKind::Reduce).tree,
    )));
    let t = Arc::clone(&tree);
    let ns = time_collective(team, move |rank, it| {
        t.run(rank, rank as u64 + it as u64);
    });
    report(&group, "tree_tuned", ns, None);

    let central = Arc::new(CentralReduce::new(n));
    let r = Arc::clone(&central);
    let ns = time_collective(team, move |rank, it| {
        r.run(rank, rank as u64 + it as u64);
    });
    report(&group, "central_openmp_like", ns, None);
}

fn main() {
    let n = ranks();
    let model = CapabilityModel::paper_reference();
    let team = Team::new(n);
    bench_barriers(n, &model, &team);
    bench_broadcast(n, &model, &team);
    bench_reduce(n, &model, &team);
}
