//! Host-thread sort benchmarks: the paper's bitonic merge sort vs the
//! standard library sort, across input sizes and thread counts.

use knl_arch::SplitMixRng;
use knl_bench::microbench::case;
use knl_sort::{parallel::sort_run, parallel_merge_sort};

fn main() {
    let mut rng = SplitMixRng::seed_from_u64(3);
    for n in [1usize << 16, 1 << 20] {
        let data: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
        let bytes = Some((n * 4) as u64);
        for threads in [1usize, 2, 4] {
            case(
                "parallel_merge_sort",
                &format!("{threads}thr/{n}"),
                bytes,
                || {
                    let mut v = data.clone();
                    parallel_merge_sort(&mut v, threads);
                    v
                },
            );
        }
        case(
            "parallel_merge_sort",
            &format!("std_sort_unstable/{n}"),
            bytes,
            || {
                let mut v = data.clone();
                v.sort_unstable();
                v
            },
        );
    }

    let mut rng = SplitMixRng::seed_from_u64(4);
    let n = 1usize << 16;
    let data: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
    case(
        "sort_run",
        "bitonic_mergesort_64k",
        Some((n * 4) as u64),
        || {
            let mut v = data.clone();
            sort_run(&mut v);
            v
        },
    );
}
