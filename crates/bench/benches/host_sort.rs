//! Host-thread sort benchmarks: the paper's bitonic merge sort vs the
//! standard library sort, across input sizes and thread counts.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use knl_sort::{parallel_merge_sort, parallel::sort_run};
use rand::{Rng, SeedableRng};

fn bench_parallel_sort(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let mut g = c.benchmark_group("parallel_merge_sort");
    g.sample_size(10);
    for n in [1usize << 16, 1 << 20] {
        let data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
        g.throughput(Throughput::Bytes((n * 4) as u64));
        for threads in [1usize, 2, 4] {
            g.bench_with_input(
                BenchmarkId::new(format!("{threads}thr"), n),
                &data,
                |b, data| {
                    b.iter_batched(
                        || data.clone(),
                        |mut v| {
                            parallel_merge_sort(&mut v, threads);
                            v
                        },
                        criterion::BatchSize::LargeInput,
                    )
                },
            );
        }
        g.bench_with_input(BenchmarkId::new("std_sort_unstable", n), &data, |b, data| {
            b.iter_batched(
                || data.clone(),
                |mut v| {
                    v.sort_unstable();
                    v
                },
                criterion::BatchSize::LargeInput,
            )
        });
    }
    g.finish();
}

fn bench_sequential_run(c: &mut Criterion) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(4);
    let mut g = c.benchmark_group("sort_run");
    g.sample_size(20);
    let n = 1usize << 16;
    let data: Vec<u32> = (0..n).map(|_| rng.gen()).collect();
    g.throughput(Throughput::Bytes((n * 4) as u64));
    g.bench_function("bitonic_mergesort_64k", |b| {
        b.iter_batched(
            || data.clone(),
            |mut v| {
                sort_run(&mut v);
                v
            },
            criterion::BatchSize::LargeInput,
        )
    });
    g.finish();
}

criterion_group!(benches, bench_parallel_sort, bench_sequential_run);
criterion_main!(benches);
