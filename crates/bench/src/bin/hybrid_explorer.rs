//! Extension beyond the paper's evaluation: the **hybrid** memory mode
//! (§II-C describes it; the evaluation never benchmarks it). The MCDRAM is
//! part direct-mapped memory-side cache (4 or 8 GB) and part flat NUMA
//! node. This binary measures both halves of both splits and answers the
//! practical question the mode poses: *how much flat MCDRAM does an
//! application need before hybrid beats pure cache or pure flat?*

use knl_arch::{ClusterMode, CoreId, HybridSplit, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::RunConf;
use knl_bench::sweep::{executor, machine, print_counters, TraceSink};
use knl_benchsuite::membw::{bandwidth_sample, Target};
use knl_benchsuite::memlat;
use knl_sim::StreamKind;

fn main() {
    let conf = RunConf::from_args();
    let mut params = conf.effort.suite_params();
    params.mem_threads = vec![32];
    params.iters = params.iters.min(9);
    params.mem_lines_per_thread = params.mem_lines_per_thread.min(1024);

    let modes: Vec<(String, MemoryMode)> = vec![
        ("flat".into(), MemoryMode::Flat),
        ("hybrid25".into(), MemoryMode::Hybrid(HybridSplit::Quarter)),
        ("hybrid50".into(), MemoryMode::Hybrid(HybridSplit::Half)),
        ("cache".into(), MemoryMode::Cache),
    ];

    let mut table = Table::new(
        "Hybrid-mode exploration (Quadrant, 32 threads) — latency [ns] / read BW [GB/s]",
        &[
            "memory mode",
            "flat-MCDRAM lat",
            "DDR-path lat",
            "flat-MCDRAM read",
            "DDR-path read",
            "cache GB",
            "flat GB",
        ],
    );

    eprintln!(
        "exploring {} memory modes ({} jobs) ...",
        modes.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "hybrid_explorer");
    let rows = executor(&conf).run("hybrid", &modes, |i, (label, mm)| {
        let label = label.clone();
        let mm = *mm;
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, mm);
        let mut m = machine(&conf, cfg.clone());

        // Latency of the flat MCDRAM portion (if any).
        let mc_lat = if mm.has_flat_mcdram() {
            let s = memlat::memory_latency(&mut m, CoreId(0), NumaKind::Mcdram, 8 << 10, 60);
            m.reset_caches();
            f1(s.median())
        } else {
            "-".into()
        };
        // Latency of a DDR-backed access (through the memory-side cache
        // when one exists).
        let ddr_lat = {
            let base = m.arena().alloc(NumaKind::Ddr, (8u64 << 10) * 64);
            if mm.has_mcdram_cache() {
                let _ = memlat::chase_latency(&mut m, CoreId(0), base, 8 << 10, 120);
                m.reset_tile_caches();
            }
            let s = memlat::chase_latency(&mut m, CoreId(0), base, 8 << 10, 120);
            m.reset_caches();
            f1(s.median())
        };

        // Bandwidths.
        let mc_bw = if mm.has_flat_mcdram() {
            let s = bandwidth_sample(
                &mut m,
                StreamKind::Read,
                Target::Mcdram,
                32,
                Schedule::FillTiles,
                &params,
            );
            m.reset_devices();
            m.reset_caches();
            f1(s.median())
        } else {
            "-".into()
        };
        let ddr_bw = {
            let target = if mm.has_mcdram_cache() {
                Target::CacheMode
            } else {
                Target::Ddr
            };
            let s = bandwidth_sample(
                &mut m,
                StreamKind::Read,
                target,
                32,
                Schedule::FillTiles,
                &params,
            );
            f1(s.median())
        };

        let cache_gb = mm.mcdram_cache_bytes(cfg.mcdram_bytes) as f64 / (1 << 30) as f64 * 64.0;
        let flat_gb = mm.mcdram_flat_bytes(cfg.mcdram_bytes) as f64 / (1 << 30) as f64 * 64.0;
        let row = vec![
            label,
            mc_lat,
            ddr_lat,
            mc_bw,
            ddr_bw,
            format!("{cache_gb:.0}"),
            format!("{flat_gb:.0}"),
        ];
        m.finish_check();
        sink.submit(i, &mut m);
        (row, m.counters())
    });
    sink.write().expect("write trace");
    for ((label, _), (row, counters)) in modes.iter().zip(rows) {
        print_counters(label, &counters);
        table.row(row);
    }
    table.print();
    println!();
    println!("Reading: hybrid keeps flat-MCDRAM bandwidth for data the programmer places");
    println!("explicitly while DDR-backed data still gets (a smaller) memory-side cache —");
    println!("the cache half behaves like cache mode with proportionally lower hit rates.");
    println!("(capacities shown at the real machine's scale: 16 GB MCDRAM)");
    let path = table.write_csv("hybrid_explorer");
    eprintln!("csv: {}", path.display());
}
