//! `knl-trace` — aggregate and report a trace file written by the figure/
//! table binaries under `--trace` / `--trace-level`.
//!
//! The default output is the text report: protocol totals, the latency
//! histogram keyed by (MESIF supplier state, hop distance) — the paper's
//! Fig. 4 decomposition — hot tiles, device queue statistics, directory
//! transitions, and hot lines. Metric lines from every `# job` section
//! merge additively, so the report is independent of how the sweep was
//! split across jobs.
//!
//! `--chrome PATH` additionally converts the raw event log (present at
//! `--trace-level full`) into Chrome `trace_event` JSON loadable in
//! `chrome://tracing` / Perfetto: serves become complete ("X") slices,
//! runner marks become begin/end ("B"/"E") slices, and device queue
//! depths become counter ("C") tracks.

use knl_sim::metrics::Metrics;
use knl_sim::trace::{EventKind, TraceEvent, NO_THREAD};
use std::fmt::Write as _;
use std::path::PathBuf;
use std::process::exit;

const USAGE: &str = "\
usage: knl-trace TRACE [options]

Aggregate a knl trace file (written by the figure/table binaries under
--trace / --trace-level) and print a text report.

options:
  --top N        rows in the hot-tile / hot-line sections (default 16)
  --csv PATH     also write the (source, hops) latency histogram as CSV
  --chrome PATH  also write Chrome trace_event JSON from the raw event
                 log (requires a --trace-level full trace)
  -h, --help     this text
";

struct Args {
    trace: PathBuf,
    top: usize,
    csv: Option<PathBuf>,
    chrome: Option<PathBuf>,
}

fn parse_args() -> Args {
    let mut trace = None;
    let mut top = 16usize;
    let mut csv = None;
    let mut chrome = None;
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--top" => {
                top = value("--top").parse().unwrap_or_else(|_| {
                    eprintln!("--top needs a number\n\n{USAGE}");
                    exit(2);
                })
            }
            "--csv" => csv = Some(PathBuf::from(value("--csv"))),
            "--chrome" => chrome = Some(PathBuf::from(value("--chrome"))),
            _ if a.starts_with('-') => {
                eprintln!("unknown option {a}\n\n{USAGE}");
                exit(2);
            }
            _ if trace.is_none() => trace = Some(PathBuf::from(a)),
            _ => {
                eprintln!("more than one TRACE argument\n\n{USAGE}");
                exit(2);
            }
        }
    }
    let Some(trace) = trace else {
        eprintln!("{USAGE}");
        exit(2);
    };
    Args {
        trace,
        top,
        csv,
        chrome,
    }
}

fn main() {
    let args = parse_args();
    let text = std::fs::read_to_string(&args.trace).unwrap_or_else(|e| {
        eprintln!("cannot read {}: {e}", args.trace.display());
        exit(1);
    });

    let mut metrics = Metrics::default();
    let mut events: Vec<(u32, TraceEvent)> = Vec::new();
    let mut job = 0u32;
    let mut dropped = 0u64;
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# job ") {
            job = rest.trim().parse().unwrap_or(job);
            continue;
        }
        if let Some(rest) = line.strip_prefix("# events_dropped=") {
            dropped += rest.trim().parse::<u64>().unwrap_or(0);
            continue;
        }
        if line.starts_with('#') || line.is_empty() {
            continue;
        }
        if metrics.parse_line(line) {
            continue;
        }
        if let Some(ev) = TraceEvent::parse(line) {
            if args.chrome.is_some() {
                events.push((job, ev));
            }
        } else {
            eprintln!("warning: unparsed line: {line}");
        }
    }

    // Ignore stdout pipe errors so `knl-trace … | head` exits cleanly.
    {
        use std::io::Write as _;
        let mut stdout = std::io::stdout().lock();
        let _ = stdout.write_all(metrics.report(args.top).as_bytes());
        if dropped > 0 {
            let _ = writeln!(
                stdout,
                "\n(raw event log truncated: {dropped} events dropped past the cap)"
            );
        }
    }

    if let Some(path) = &args.csv {
        std::fs::write(path, metrics.latency_csv()).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        });
        eprintln!("csv: {}", path.display());
    }

    if let Some(path) = &args.chrome {
        if events.is_empty() {
            eprintln!(
                "warning: no raw events in {} — Chrome export needs a --trace-level full trace",
                args.trace.display()
            );
        }
        let json = chrome_json(&events);
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("cannot write {}: {e}", path.display());
            exit(1);
        });
        eprintln!("chrome: {} ({} events)", path.display(), events.len());
    }
}

/// Microseconds with ps precision, the unit `chrome://tracing` expects.
fn us(ps: u64) -> f64 {
    ps as f64 / 1e6
}

/// Thread track id: the runner thread when known, else a per-tile track
/// in a disjoint id range (machine-internal activity).
fn tid(ev: &TraceEvent) -> u64 {
    if ev.thread == NO_THREAD {
        100_000 + ev.tile as u64
    } else {
        ev.thread as u64
    }
}

/// Convert the raw event log into Chrome `trace_event` JSON (array form
/// inside an object, as Perfetto and `chrome://tracing` both accept).
fn chrome_json(events: &[(u32, TraceEvent)]) -> String {
    let mut out = String::from("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[");
    let mut first = true;
    let push = |s: String, out: &mut String, first: &mut bool| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(&s);
    };
    for (job, ev) in events {
        let pid = *job as u64;
        match ev.kind {
            EventKind::Serve {
                op,
                src,
                hops,
                latency_ps,
            } => {
                let start = ev.time.saturating_sub(latency_ps);
                push(
                    format!(
                        "{{\"name\":\"{op} {}\",\"cat\":\"serve\",\"ph\":\"X\",\
                         \"ts\":{:.6},\"dur\":{:.6},\"pid\":{pid},\"tid\":{},\
                         \"args\":{{\"line\":\"{:#x}\",\"hops\":{hops}}}}}",
                        knl_sim::metrics::src_name(src),
                        us(start),
                        us(latency_ps),
                        tid(ev),
                        ev.line << 6
                    ),
                    &mut out,
                    &mut first,
                );
            }
            EventKind::Mark { id, start } => {
                push(
                    format!(
                        "{{\"name\":\"mark{id}\",\"cat\":\"mark\",\"ph\":\"{}\",\
                         \"ts\":{:.6},\"pid\":{pid},\"tid\":{}}}",
                        if start { 'B' } else { 'E' },
                        us(ev.time),
                        tid(ev)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            EventKind::DevEnter { dev, depth, .. } => {
                push(
                    format!(
                        "{{\"name\":\"{} queue\",\"cat\":\"dev\",\"ph\":\"C\",\
                         \"ts\":{:.6},\"pid\":{pid},\"tid\":0,\
                         \"args\":{{\"depth\":{depth}}}}}",
                        knl_sim::metrics::dev_name(dev),
                        us(ev.time)
                    ),
                    &mut out,
                    &mut first,
                );
            }
            _ => {}
        }
    }
    let _ = write!(out, "]}}");
    out
}
