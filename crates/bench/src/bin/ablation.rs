//! Ablations of the design choices DESIGN.md calls out: each knob is
//! switched off/varied and the affected capability re-measured, showing
//! which mechanism *produces* which phenomenon (rather than the phenomenon
//! being baked in).
//!
//! Every ablation row builds its own `Machine` from a varied config, so the
//! rows are independent jobs and run under `--jobs` workers; rows are merged
//! back in parameter order, keeping the output bit-identical to `--jobs 1`.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, Schedule};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::RunConf;
use knl_bench::sweep::{executor, machine, TraceSink};
use knl_benchsuite::congestion::{congestion, congestion_with_pairs};
use knl_benchsuite::contention::contention;
use knl_benchsuite::membw::{bandwidth_sample, Target};
use knl_benchsuite::{SuiteParams, SweepExecutor};
use knl_core::tree_opt::{optimize_tree, tree_cost, TreeKind};
use knl_core::CapabilityModel;
use knl_sim::{Machine, StreamKind};
use knl_stats::fit_linear;

fn main() {
    let conf = RunConf::from_args();
    let exec = executor(&conf);
    // One merged trace across the ablation sweeps; each sweep claims a
    // disjoint job-index range so sections stay in a canonical order.
    let sink = TraceSink::new(&conf, "ablation");
    let mut base = 0;
    base += ablate_directory_serialization(&conf, &exec, &sink, base);
    base += ablate_ddr_write_mixing(&conf, &exec, &sink, base);
    base += ablate_mlp_caps(&conf, &exec, &sink, base);
    ablate_tree_staggering();
    ablate_mesh_occupancy(&conf, &exec, &sink, base);
    sink.write().expect("write trace");
}

/// Ablation 1: the per-line serialization at the home CHA is what produces
/// the paper's contention law T_C(N) = α + β·N. Turning it off flattens β.
fn ablate_directory_serialization(
    conf: &RunConf,
    exec: &SweepExecutor,
    sink: &TraceSink,
    base: usize,
) -> usize {
    let mut table = Table::new(
        "Ablation — CHA per-line serialization produces the contention law",
        &["cha_line_serialize", "α [ns]", "β [ns/thread]", "r²"],
    );
    let variants = [34_000u64, 17_000, 0];
    let rows = exec.run("ablation_directory", &variants, |i, &serialize_ps| {
        let mut cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        cfg.timing.cha_line_serialize_ps = serialize_ps;
        let mut m = machine(conf, cfg);
        m.set_jitter(0);
        let pts = contention(&mut m, &[1, 4, 8, 16, 24, 31], Schedule::Scatter, 5);
        let xs: Vec<f64> = pts.iter().map(|(n, _)| *n as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, s)| s.median()).collect();
        let fit = fit_linear(&xs, &ys);
        m.finish_check();
        sink.submit(base + i, &mut m);
        vec![
            format!("{} ns", serialize_ps / 1000),
            f1(fit.alpha),
            f1(fit.beta),
            format!("{:.3}", fit.r2),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_directory");
    println!();
    variants.len()
}

/// Ablation 2: DDR's mixed-write discount is what lets copy/triad approach
/// the read peak despite the 36 GB/s write-only ceiling.
fn ablate_ddr_write_mixing(
    conf: &RunConf,
    exec: &SweepExecutor,
    sink: &TraceSink,
    base: usize,
) -> usize {
    let mut table = Table::new(
        "Ablation — DDR mixed-write service vs streaming kernels [GB/s]",
        &["write_mixed", "copy", "triad", "write"],
    );
    let mut params = SuiteParams::quick();
    params.iters = 5;
    params.mem_lines_per_thread = 1024;
    let variants = [4_990u64, 10_600];
    let rows = exec.run("ablation_write_mixing", &variants, |i, &mixed_ps| {
        let mut cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        cfg.timing.ddr_write_mixed_ps_per_line = mixed_ps;
        let mut m = machine(conf, cfg);
        m.set_jitter(0);
        let cell = |kind: StreamKind, m: &mut Machine| {
            m.reset_devices();
            m.reset_caches();
            bandwidth_sample(m, kind, Target::Ddr, 32, Schedule::FillTiles, &params).median()
        };
        let copy = cell(StreamKind::Copy, &mut m);
        let triad = cell(StreamKind::Triad, &mut m);
        let write = cell(StreamKind::Write, &mut m);
        m.finish_check();
        sink.submit(base + i, &mut m);
        vec![
            format!("{:.1} ns/line", mixed_ps as f64 / 1000.0),
            f1(copy),
            f1(triad),
            f1(write),
        ]
    });
    for row in rows {
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_write_mixing");
    println!("(write-only stays at its ceiling; copy/triad collapse without the discount)\n");
    variants.len()
}

/// Ablation 3: bounded MLP is what shapes single-thread bandwidth; the
/// aggregate peak is unaffected (device-bound).
fn ablate_mlp_caps(conf: &RunConf, exec: &SweepExecutor, sink: &TraceSink, base: usize) -> usize {
    let mut table = Table::new(
        "Ablation — core MLP cap vs DDR read bandwidth [GB/s]",
        &["ov_mem_vec", "1 thread", "32 threads"],
    );
    let mut params = SuiteParams::quick();
    params.iters = 5;
    params.mem_lines_per_thread = 1024;
    let variants = [4u32, 17, 34];
    let rows = exec.run("ablation_mlp", &variants, |i, &ov| {
        let mut cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        cfg.timing.ov_mem_vec = ov;
        let mut m = machine(conf, cfg);
        m.set_jitter(0);
        let one = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Ddr,
            1,
            Schedule::FillTiles,
            &params,
        )
        .median();
        m.reset_devices();
        m.reset_caches();
        let many = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Ddr,
            32,
            Schedule::FillTiles,
            &params,
        )
        .median();
        m.finish_check();
        sink.submit(base + i, &mut m);
        vec![ov.to_string(), f1(one), f1(many)]
    });
    for row in rows {
        table.row(row);
    }
    table.print();
    table.write_csv("ablation_mlp");
    println!("(single-thread scales with MLP; saturated aggregate does not)\n");
    variants.len()
}

/// Ablation 4: the staggered child starts (contention order) are what make
/// the optimal trees skewed; with uniform starts the optimizer degenerates
/// toward balanced shapes and loses its edge under the true (staggered)
/// cost.
fn ablate_tree_staggering() {
    let model = CapabilityModel::paper_reference();
    let mut flat = model.clone();
    // Uniform starts: kill the per-child contention ordering (β = 0 keeps
    // only the flat α for every child).
    flat.contention.beta = 0.0;
    let mut table = Table::new(
        "Ablation — staggered starts vs uniform starts (Eq. 1 cost, ns)",
        &[
            "n",
            "tuned (staggered)",
            "tuned w/o stagger, re-costed",
            "penalty",
        ],
    );
    for n in [8usize, 16, 32] {
        let staggered = optimize_tree(&model, n, TreeKind::Broadcast);
        let uniform_shape = optimize_tree(&flat, n, TreeKind::Broadcast);
        // Evaluate the uniform-optimized shape under the TRUE cost model.
        let recost = tree_cost(&model, &uniform_shape.tree, TreeKind::Broadcast);
        table.row(vec![
            n.to_string(),
            f1(staggered.cost_ns),
            f1(recost),
            format!("{:.1}%", (recost / staggered.cost_ns - 1.0) * 100.0),
        ]);
    }
    table.print();
    table.write_csv("ablation_stagger");
}

/// Ablation 5: mesh link occupancy and the congestion benchmark. Two
/// findings, mirroring the paper:
/// 1. With the paper's placement-blind benchmark, latency stays flat under
///    link-occupancy modeling — the "no congestion" result is emergent, and
///    stays flat even with slow rings because pairs spread across rings
///    (the paper: "we cannot produce layouts that stress specific rows or
///    columns").
/// 2. The *simulator* knows tile coordinates: placing every pair along one
///    grid column shares a single ring, and with slowed rings congestion
///    finally appears — what the paper's benchmark could never provoke.
fn ablate_mesh_occupancy(conf: &RunConf, exec: &SweepExecutor, sink: &TraceSink, base: usize) {
    let mut table = Table::new(
        "Ablation — mesh link occupancy vs P2P congestion (per-pair ns)",
        &["fabric", "placement", "1 pair", "8 pairs", "ratio"],
    );
    let variants = [
        ("analytic (default)", 0u64),
        ("occupancy, KNL rings (0.5 ns)", 500),
        ("occupancy, 100x slower rings", 50_000),
    ];
    let rows = exec.run("ablation_mesh", &variants, |i, &(label, service)| {
        let mut cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        cfg.timing.mesh_ring_service_ps = service;
        let mut m = machine(conf, cfg);
        m.set_jitter(0);

        // Paper placement: blind spread.
        let pts = congestion(&mut m, &[1, 8], 5);
        let blind = vec![
            label.to_string(),
            "blind (paper)".to_string(),
            f1(pts[0].1),
            f1(pts[1].1),
            format!("{:.2}x", pts[1].1 / pts[0].1),
        ];

        // Adversarial placement: every pair along one grid column.
        let col_pairs = same_column_pairs(&m, 8);
        let one = congestion_with_pairs(&mut m, &col_pairs[..1], 5);
        let eight = congestion_with_pairs(&mut m, &col_pairs, 5);
        let column = vec![
            label.to_string(),
            "same-column".to_string(),
            f1(one),
            f1(eight),
            format!("{:.2}x", eight / one),
        ];
        m.finish_check();
        sink.submit(base + i, &mut m);
        [blind, column]
    });
    for [blind, column] in rows {
        table.row(blind);
        table.row(column);
    }
    table.print();
    table.write_csv("ablation_mesh");
}

/// Pairs whose both endpoints sit in one grid column (stressing a single
/// vertical ring). Endpoints pair the top half of the column against the
/// bottom half; cores of the same tile are split across pairs.
fn same_column_pairs(m: &Machine, want: usize) -> Vec<(CoreId, CoreId)> {
    let topo = m.topology();
    // Find the column with the most active tiles.
    let col = (0..knl_arch::topology::GRID_COLS)
        .max_by_key(|&x| {
            (0..topo.num_tiles() as u16)
                .filter(|&t| topo.tile_position(knl_arch::TileId(t)).0 == x)
                .count()
        })
        .unwrap();
    let mut tiles: Vec<u16> = (0..topo.num_tiles() as u16)
        .filter(|&t| topo.tile_position(knl_arch::TileId(t)).0 == col)
        .collect();
    tiles.sort_by_key(|&t| topo.tile_position(knl_arch::TileId(t)).1);
    let mut pairs = Vec::new();
    let half = tiles.len() / 2;
    for i in 0..half {
        let a = tiles[i];
        let b = tiles[tiles.len() - 1 - i];
        // Two pairs per tile pair (one per core).
        pairs.push((CoreId(a * 2), CoreId(b * 2)));
        pairs.push((CoreId(a * 2 + 1), CoreId(b * 2 + 1)));
        if pairs.len() >= want {
            break;
        }
    }
    pairs.truncate(want);
    pairs
}
