//! Regenerates **Fig. 4**: latency of cache-line transfers between core 0
//! and every other core in SNC4-flat mode, for M, E, and I states.
//!
//! Each partner core is measured on its own freshly constructed `Machine`
//! (the address regions and `prep_lines` make the per-partner measurements
//! independent), so partners are parallel jobs under `--jobs`; the merged
//! map is bit-identical to a `--jobs 1` run.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::{Effort, RunConf};
use knl_bench::sweep::{executor, machine, TraceSink};
use knl_benchsuite::pointer_chase::{invalid_latency_salted, transfer_latency};
use knl_sim::MesifState;

fn main() {
    let conf = RunConf::from_args();
    let iters = if conf.effort == Effort::Paper { 21 } else { 5 };
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let origin = CoreId(0);
    let states = [
        MesifState::Modified,
        MesifState::Exclusive,
        MesifState::Invalid,
    ];
    let num_cores = cfg.num_cores() as u16;

    let partners: Vec<u16> = (1..num_cores).collect();
    eprintln!(
        "measuring {} partners x {} states x {iters} iterations ({} jobs) ...",
        partners.len(),
        states.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "fig4_latency_map");
    let per_partner = executor(&conf).run("fig4", &partners, |i, &partner| {
        let mut m = machine(&conf, cfg.clone());
        let owner = CoreId(partner);
        // Helper: any tile different from both owner and origin.
        let helper = (0..num_cores)
            .map(CoreId)
            .find(|c| c.tile() != owner.tile() && c.tile() != origin.tile())
            .expect("machine has ≥3 tiles");
        let row = states
            .map(|st| {
                let sample = if st == MesifState::Invalid {
                    invalid_latency_salted(&mut m, origin, iters, partner as u64)
                } else {
                    transfer_latency(&mut m, owner, origin, helper, st, iters)
                };
                (st.letter(), sample.median())
            })
            .to_vec();
        m.finish_check();
        sink.submit(i, &mut m);
        row
    });
    sink.write().expect("write trace");
    let map: Vec<(u16, char, f64)> = partners
        .iter()
        .zip(per_partner)
        .flat_map(|(&p, row)| row.into_iter().map(move |(st, l)| (p, st, l)))
        .collect();

    let mut table = Table::new(
        "Fig. 4 — latency core 0 -> core c, SNC4-flat [ns]",
        &["core", "tile", "quadrant", "M", "E", "I"],
    );
    let topo = cfg.topology();
    for c in 1..num_cores {
        let get = |st: char| {
            map.iter()
                .find(|(p, s, _)| *p == c && *s == st)
                .map(|(_, _, l)| *l)
                .unwrap_or(f64::NAN)
        };
        let core = CoreId(c);
        table.row(vec![
            c.to_string(),
            core.tile().to_string(),
            topo.tile_quadrant(core.tile()).to_string(),
            f1(get('M')),
            f1(get('E')),
            f1(get('I')),
        ]);
    }
    table.print();
    let path = table.write_csv("fig4_latency_map");
    eprintln!("csv: {}", path.display());

    // Shape summary: same-tile fast, remote flat-ish, I = memory.
    let tile_m = map.iter().find(|(p, s, _)| *p == 1 && *s == 'M').unwrap().2;
    let remote_m: Vec<f64> = map
        .iter()
        .filter(|(p, s, _)| *p > 1 && *s == 'M')
        .map(|(_, _, l)| *l)
        .collect();
    let rm_min = remote_m.iter().copied().fold(f64::INFINITY, f64::min);
    let rm_max = remote_m.iter().copied().fold(0.0, f64::max);
    println!();
    println!(
        "tile M: {tile_m:.1} ns; remote M range: {rm_min:.1}-{rm_max:.1} ns (paper: 34 vs 107-122)"
    );
}
