//! Regenerates **Fig. 4**: latency of cache-line transfers between core 0
//! and every other core in SNC4-flat mode, for M, E, and I states.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::{effort_from_args, Effort};
use knl_benchsuite::pointer_chase::latency_map;
use knl_sim::{Machine, MesifState};

fn main() {
    let effort = effort_from_args();
    let iters = if effort == Effort::Paper { 21 } else { 5 };
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let mut m = Machine::new(cfg);
    eprintln!("measuring 63 partners x 3 states x {iters} iterations ...");
    let map = latency_map(
        &mut m,
        CoreId(0),
        &[MesifState::Modified, MesifState::Exclusive, MesifState::Invalid],
        iters,
    );

    let mut table = Table::new(
        "Fig. 4 — latency core 0 -> core c, SNC4-flat [ns]",
        &["core", "tile", "quadrant", "M", "E", "I"],
    );
    let topo = m.topology();
    let num_cores = m.config().num_cores() as u16;
    for c in 1..num_cores {
        let get = |st: char| {
            map.iter().find(|(p, s, _)| *p == c && *s == st).map(|(_, _, l)| *l).unwrap_or(f64::NAN)
        };
        let core = CoreId(c);
        table.row(vec![
            c.to_string(),
            core.tile().to_string(),
            topo.tile_quadrant(core.tile()).to_string(),
            f1(get('M')),
            f1(get('E')),
            f1(get('I')),
        ]);
    }
    table.print();
    let path = table.write_csv("fig4_latency_map");
    eprintln!("csv: {}", path.display());

    // Shape summary: same-tile fast, remote flat-ish, I = memory.
    let tile_m = map.iter().find(|(p, s, _)| *p == 1 && *s == 'M').unwrap().2;
    let remote_m: Vec<f64> =
        map.iter().filter(|(p, s, _)| *p > 1 && *s == 'M').map(|(_, _, l)| *l).collect();
    let rm_min = remote_m.iter().copied().fold(f64::INFINITY, f64::min);
    let rm_max = remote_m.iter().copied().fold(0.0, f64::max);
    println!();
    println!("tile M: {tile_m:.1} ns; remote M range: {rm_min:.1}-{rm_max:.1} ns (paper: 34 vs 107-122)");
}
