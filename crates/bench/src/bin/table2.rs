//! Regenerates **Table II**: memory latency and bandwidth per cluster mode,
//! flat and cache memory modes (medians; "peak" = best iteration anywhere
//! in the sweep, the STREAM column analogue).

use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::RunConf;
use knl_bench::sweep::{executor, machine, print_counters, TraceSink};
use knl_benchsuite::{run_memory_suite, MemResults};
use knl_sim::StreamKind;

fn main() {
    let conf = RunConf::from_args();
    let params = conf.effort.suite_params();

    const MEM_MODES: [MemoryMode; 2] = [MemoryMode::Flat, MemoryMode::Cache];
    let points: Vec<(MemoryMode, ClusterMode)> = MEM_MODES
        .into_iter()
        .flat_map(|mm| ClusterMode::ALL.into_iter().map(move |cm| (mm, cm)))
        .collect();
    eprintln!(
        "running memory suite for {} configurations ({} jobs) ...",
        points.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "table2");
    let results = executor(&conf).run("table2", &points, |i, &(mm, cm)| {
        let cfg = MachineConfig::knl7210(cm, mm);
        let mut m = machine(&conf, cfg);
        let res = run_memory_suite(&mut m, &params);
        m.finish_check();
        sink.submit(i, &mut m);
        (res, m.counters())
    });
    sink.write().expect("write trace");
    let mut results = results.into_iter();

    for mm in MEM_MODES {
        let mut columns: Vec<MemResults> = Vec::new();
        for cm in ClusterMode::ALL {
            let (res, counters) = results.next().expect("one result per configuration");
            print_counters(&format!("{}-{}", cm.name(), mm.name()), &counters);
            columns.push(res);
        }

        let mut table = Table::new(
            &format!("Table II ({} mode) — memory capabilities", mm.name()),
            &["metric", "SNC4", "SNC2", "QUAD", "HEM", "A2A"],
        );
        let metric = |name: &str, f: &dyn Fn(&MemResults) -> f64| -> Vec<String> {
            let mut row = vec![name.to_string()];
            row.extend(columns.iter().map(|c| f1(f(c))));
            row
        };

        let targets: &[&str] = match mm {
            MemoryMode::Flat => &["DRAM", "MCDRAM"],
            _ => &["cache"],
        };
        for t in targets {
            table.row(metric(&format!("Latency {t} [ns]"), &|c| {
                c.latency(t).unwrap_or(f64::NAN)
            }));
        }
        for kind in StreamKind::ALL {
            for t in targets {
                table.row(metric(
                    &format!("BW {} {t} median [GB/s]", kind.name()),
                    &|c| c.table_cell(kind, t).unwrap_or(f64::NAN),
                ));
                table.row(metric(
                    &format!("BW {} {t} peak [GB/s]", kind.name()),
                    &|c| c.peak_cell(kind, t).unwrap_or(f64::NAN),
                ));
            }
        }
        table.print();
        let path = table.write_csv(&format!("table2_{}", mm.name()));
        eprintln!("csv: {}", path.display());
        println!();
    }
}
