//! Regenerates **Table II**: memory latency and bandwidth per cluster mode,
//! flat and cache memory modes (medians; "peak" = best iteration anywhere
//! in the sweep, the STREAM column analogue).

use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::effort_from_args;
use knl_benchsuite::{run_memory_suite, MemResults};
use knl_sim::{Machine, StreamKind};

fn main() {
    let effort = effort_from_args();
    let params = effort.suite_params();

    for mm in [MemoryMode::Flat, MemoryMode::Cache] {
        let mut columns: Vec<MemResults> = Vec::new();
        for cm in ClusterMode::ALL {
            eprintln!("running memory suite for {}-{} ...", cm.name(), mm.name());
            let cfg = MachineConfig::knl7210(cm, mm);
            let mut m = Machine::new(cfg);
            columns.push(run_memory_suite(&mut m, &params));
        }

        let mut table = Table::new(
            &format!("Table II ({} mode) — memory capabilities", mm.name()),
            &["metric", "SNC4", "SNC2", "QUAD", "HEM", "A2A"],
        );
        let metric = |name: &str, f: &dyn Fn(&MemResults) -> f64| -> Vec<String> {
            let mut row = vec![name.to_string()];
            row.extend(columns.iter().map(|c| f1(f(c))));
            row
        };

        let targets: &[&str] = match mm {
            MemoryMode::Flat => &["DRAM", "MCDRAM"],
            _ => &["cache"],
        };
        for t in targets {
            table.row(metric(&format!("Latency {t} [ns]"), &|c| {
                c.latency(t).unwrap_or(f64::NAN)
            }));
        }
        for kind in StreamKind::ALL {
            for t in targets {
                table.row(metric(&format!("BW {} {t} median [GB/s]", kind.name()), &|c| {
                    c.table_cell(kind, t).unwrap_or(f64::NAN)
                }));
                table.row(metric(&format!("BW {} {t} peak [GB/s]", kind.name()), &|c| {
                    c.peak_cell(kind, t).unwrap_or(f64::NAN)
                }));
            }
        }
        table.print();
        let path = table.write_csv(&format!("table2_{}", mm.name()));
        eprintln!("csv: {}", path.display());
        println!();
    }
}
