//! Regenerates **Fig. 5**: bandwidth of cache-to-cache copies in
//! SNC4-cache mode vs message size (64 B – 256 KB), for M and E states and
//! three partner locations (same tile / same quadrant / remote quadrant).
//!
//! Each (location, state) series runs on its own fresh `Machine`
//! (`copy_bandwidth` resets caches and salts addresses per iteration), so
//! the series are parallel jobs under `--jobs` with the output merged in
//! canonical order — bit-identical to `--jobs 1`.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl_bench::output::{f2, Table};
use knl_bench::runconf::{Effort, RunConf};
use knl_bench::sweep::{executor, machine, TraceSink};
use knl_benchsuite::cachebw::{copy_bandwidth, fig5_partners};
use knl_sim::MesifState;

fn main() {
    let conf = RunConf::from_args();
    let (iters, sizes): (usize, Vec<u64>) = match conf.effort {
        Effort::Paper => (11, (6..=18).map(|p| 1u64 << p).collect()),
        Effort::Quick => (5, vec![64, 1 << 10, 16 << 10, 256 << 10]),
    };
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
    let reader = CoreId(0);
    let partners = fig5_partners(&machine(&conf, cfg.clone()), reader);

    let series: Vec<(String, CoreId, MesifState)> = partners
        .iter()
        .flat_map(|(loc, owner)| {
            [MesifState::Modified, MesifState::Exclusive]
                .into_iter()
                .map(move |st| (loc.to_string(), *owner, st))
        })
        .collect();
    eprintln!(
        "fig5: {} series x {} sizes ({} jobs) ...",
        series.len(),
        sizes.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "fig5_cachebw");
    let measured = executor(&conf).run("fig5", &series, |i, (_, owner, st)| {
        let mut m = machine(&conf, cfg.clone());
        // Helper on a tile distinct from both reader and owner.
        let helper = (0..m.config().num_cores() as u16)
            .map(CoreId)
            .find(|c| c.tile() != reader.tile() && c.tile() != owner.tile())
            .expect("helper tile");
        let row = sizes
            .iter()
            .map(|&bytes| {
                copy_bandwidth(&mut m, *owner, reader, helper, *st, bytes, iters).median()
            })
            .collect::<Vec<f64>>();
        m.finish_check();
        sink.submit(i, &mut m);
        row
    });
    sink.write().expect("write trace");

    let mut table = Table::new(
        "Fig. 5 — copy bandwidth, SNC4-cache [GB/s]",
        &["bytes", "location", "state", "GB/s"],
    );
    for ((loc, _, st), gbps) in series.iter().zip(measured) {
        for (&bytes, g) in sizes.iter().zip(gbps) {
            table.row(vec![
                bytes.to_string(),
                loc.clone(),
                st.letter().to_string(),
                f2(g),
            ]);
        }
    }
    table.print();
    let path = table.write_csv("fig5_cachebw");
    eprintln!("csv: {}", path.display());
}
