//! Regenerates **Fig. 5**: bandwidth of cache-to-cache copies in
//! SNC4-cache mode vs message size (64 B – 256 KB), for M and E states and
//! three partner locations (same tile / same quadrant / remote quadrant).

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};
use knl_bench::output::{f2, Table};
use knl_bench::runconf::{effort_from_args, Effort};
use knl_benchsuite::cachebw::{copy_bandwidth, fig5_partners};
use knl_sim::{Machine, MesifState};

fn main() {
    let effort = effort_from_args();
    let (iters, sizes): (usize, Vec<u64>) = match effort {
        Effort::Paper => (11, (6..=18).map(|p| 1u64 << p).collect()),
        Effort::Quick => (5, vec![64, 1 << 10, 16 << 10, 256 << 10]),
    };
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
    let mut m = Machine::new(cfg);
    let reader = CoreId(0);
    let partners = fig5_partners(&m, reader);

    let mut table = Table::new(
        "Fig. 5 — copy bandwidth, SNC4-cache [GB/s]",
        &["bytes", "location", "state", "GB/s"],
    );
    for (loc, owner) in &partners {
        // Helper on a tile distinct from both reader and owner.
        let helper = (0..m.config().num_cores() as u16)
            .map(CoreId)
            .find(|c| c.tile() != reader.tile() && c.tile() != owner.tile())
            .expect("helper tile");
        for st in [MesifState::Modified, MesifState::Exclusive] {
            for &bytes in &sizes {
                let s = copy_bandwidth(&mut m, *owner, reader, helper, st, bytes, iters);
                table.row(vec![
                    bytes.to_string(),
                    loc.to_string(),
                    st.letter().to_string(),
                    f2(s.median()),
                ]);
                eprint!(".");
            }
        }
    }
    eprintln!();
    table.print();
    let path = table.write_csv("fig5_cachebw");
    eprintln!("csv: {}", path.display());
}
