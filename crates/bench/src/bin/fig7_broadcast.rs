//! Regenerates **Fig. 7**: broadcast performance in SNC4-flat (MCDRAM) —
//! model-tuned tree vs OpenMP-like flat and MPI-like binomial broadcasts,
//! with the min–max model band, for both schedules.

use knl_bench::collective_fig::{run_binary, CollectiveKind};

fn main() {
    run_binary("fig7_broadcast", CollectiveKind::Broadcast);
}
