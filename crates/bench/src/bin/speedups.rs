//! Regenerates the §IV-B.3 headline speedups: "Our model-tuned algorithms
//! provide speedups of up to 7x (barrier) and 5x (reduce) over OpenMP, and
//! up to 24x (barrier), 13x (broadcast) and 14x (reduce) over Intel's MPI".

use knl_arch::Schedule;
use knl_bench::collective_fig::{run_figure, CollectiveKind, SeriesPoint};
use knl_bench::modelfit::{fit_model, snc4_flat};
use knl_bench::output::Table;
use knl_bench::runconf::RunConf;

fn main() {
    let conf = RunConf::from_args();
    let effort = conf.effort;
    let cfg = snc4_flat();
    eprintln!("fitting capability model on {} ...", cfg.label());
    let model = fit_model(&cfg, &effort.suite_params(), true);
    let threads = effort.collective_threads();
    let iters = effort.collective_iters();

    let mut table = Table::new(
        "Max speedups of model-tuned collectives (paper: barrier 7x/24x, bcast -/13x, reduce 5x/14x)",
        &["collective", "vs OpenMP-like", "at threads", "vs MPI-like", "at threads"],
    );
    for kind in [
        CollectiveKind::Barrier,
        CollectiveKind::Broadcast,
        CollectiveKind::Reduce,
    ] {
        eprintln!("running {} ...", kind.name());
        let pts = run_figure(
            &cfg,
            &model,
            kind,
            &threads,
            &[Schedule::FillTiles, Schedule::Scatter],
            iters,
            &conf,
        );
        let best_omp = pts
            .iter()
            .max_by(|a, b| a.openmp_speedup().total_cmp(&b.openmp_speedup()))
            .expect("points");
        let best_mpi = pts
            .iter()
            .max_by(|a, b| a.mpi_speedup().total_cmp(&b.mpi_speedup()))
            .expect("points");
        table.row(vec![
            kind.name().to_string(),
            format!("{:.1}x", best_omp.openmp_speedup()),
            best_omp.threads.to_string(),
            format!("{:.1}x", best_mpi.mpi_speedup()),
            best_mpi.threads.to_string(),
        ]);
        let _: &SeriesPoint = best_omp;
    }
    table.print();
    let path = table.write_csv("speedups");
    eprintln!("csv: {}", path.display());

    // §IV-B.3's "not fundamental" aside: an XPMEM-style single-copy MPI
    // closes part of the gap; the model-tuned tree still wins.
    whatif_single_copy_mpi(&conf, &model, iters);
}

fn whatif_single_copy_mpi(conf: &RunConf, model: &knl_core::CapabilityModel, iters: usize) {
    use knl_arch::NumaKind;
    use knl_bench::sweep::machine;
    use knl_collectives::plan::RankPlan;
    use knl_collectives::simspec;
    use knl_core::tree_opt::binomial_tree;
    use knl_core::{optimize_tree, TreeKind};
    use knl_stats::median;

    let cfg = snc4_flat();
    let n = 64;
    let mut m = machine(conf, cfg);
    let mut arena = m.arena();
    let lay = simspec::SimLayout::alloc(&mut arena, NumaKind::Mcdram, n);
    let bplan = RankPlan::direct(&binomial_tree(n));
    let double = median(&simspec::run_collective(
        &mut m,
        simspec::mpi_broadcast_programs(&bplan, &lay, Schedule::Scatter, 64, iters),
        iters,
    ));
    m.reset_caches();
    let single = median(&simspec::run_collective(
        &mut m,
        simspec::mpi_broadcast_single_copy_programs(&bplan, &lay, Schedule::Scatter, 64, iters),
        iters,
    ));
    m.reset_caches();
    let tuned_plan = RankPlan::direct(&optimize_tree(model, n, TreeKind::Broadcast).tree);
    let tuned = median(&simspec::run_collective(
        &mut m,
        simspec::tree_broadcast_programs(&tuned_plan, &lay, Schedule::Scatter, 64, iters),
        iters,
    ));
    m.finish_check();
    println!();
    println!("what-if (§IV-B.3): broadcast at 64 threads —");
    println!("  MPI-like, double copy      : {double:.0} ns");
    println!(
        "  MPI-like, single copy      : {single:.0} ns ({:.2}x — at one-line payloads the \
         per-message matching overhead, not the copy, dominates)",
        double / single
    );
    println!(
        "  model-tuned tree           : {tuned:.0} ns ({:.1}x ahead of even single-copy MPI: \
         the win comes from the algorithm shape and the lean flag protocol, supporting the \
         paper's point that address-space mapping alone would not close the gap)",
        single / tuned
    );
}
