//! Regenerates **Fig. 6**: barrier performance in SNC4-flat (MCDRAM) —
//! model-tuned dissemination barrier vs OpenMP-like centralized and
//! MPI-like tree barriers, with the min–max model band, for the filling-
//! tiles and scatter schedules.

use knl_bench::collective_fig::{run_binary, CollectiveKind};

fn main() {
    run_binary("fig6_barrier", CollectiveKind::Barrier);
}
