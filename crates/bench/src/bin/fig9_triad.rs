//! Regenerates **Fig. 9**: memory bandwidth of the triad kernel in
//! SNC4-flat mode vs thread count, for MCDRAM and DRAM, under the
//! filling-cores (compact, 4 HT/core) and filling-tiles schedules.

use knl_arch::{ClusterMode, MachineConfig, MemoryMode, Schedule};
use knl_bench::output::{f1, Table};
use knl_bench::runconf::{Effort, RunConf};
use knl_bench::sweep::{executor, machine, print_counters, TraceSink};
use knl_benchsuite::membw::{bandwidth_sample, Target};
use knl_sim::StreamKind;

fn main() {
    let conf = RunConf::from_args();
    let effort = conf.effort;
    let mut params = effort.suite_params();
    if effort == Effort::Quick {
        params.mem_lines_per_thread = 1024;
        params.iters = 5;
    }
    // The paper's x-axis: 1/1, 4/1, 8/2 ... 256/64 for filling cores and
    // 1/1, 4/4 ... 256/64 for filling tiles.
    let threads: Vec<usize> = match effort {
        Effort::Paper => vec![1, 4, 8, 16, 32, 64, 128, 256],
        Effort::Quick => vec![1, 8, 32, 64],
    };
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);

    let points: Vec<(Schedule, usize)> = [Schedule::FillCores, Schedule::FillTiles]
        .into_iter()
        .flat_map(|sched| {
            threads
                .iter()
                .filter(|&&t| t <= cfg.num_hw_threads())
                .map(move |&t| (sched, t))
        })
        .collect();
    eprintln!(
        "fig9: {} sweep points ({} jobs) ...",
        points.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "fig9_triad");
    let results = executor(&conf).run("fig9", &points, |i, &(sched, t)| {
        let mut m = machine(&conf, cfg.clone());
        let mc = bandwidth_sample(&mut m, StreamKind::Triad, Target::Mcdram, t, sched, &params);
        m.reset_devices();
        m.reset_caches();
        let dd = bandwidth_sample(&mut m, StreamKind::Triad, Target::Ddr, t, sched, &params);
        m.finish_check();
        sink.submit(i, &mut m);
        (mc.median(), dd.median(), m.counters())
    });
    sink.write().expect("write trace");

    let mut table = Table::new(
        "Fig. 9 — triad bandwidth, SNC4-flat [GB/s]",
        &["schedule", "threads", "cores", "MCDRAM", "DRAM"],
    );
    for (&(sched, t), (mc, dd, counters)) in points.iter().zip(results) {
        let cores = sched.cores_used(t, cfg.num_cores());
        print_counters(&format!("{}-{t}", sched.name()), &counters);
        table.row(vec![
            sched.name().to_string(),
            t.to_string(),
            cores.to_string(),
            f1(mc),
            f1(dd),
        ]);
    }
    table.print();
    let path = table.write_csv("fig9_triad");
    eprintln!("csv: {}", path.display());
}
