//! Regenerates **Fig. 10**: merge-sort performance vs thread count for
//! 1 KB / 4 MB / "1 GB" inputs in SNC4-flat, compared against the four
//! model lines (memory model with latency / bandwidth cost, full model =
//! memory + overhead), with the 10% efficiency marker, and the MCDRAM vs
//! DRAM comparison the paper's headline insight rests on.
//!
//! Capacity note: the simulated machine scales capacities by 1/64 (1 GiB
//! DDR, 256 MiB MCDRAM), so the paper's 1 GB panel is regenerated at
//! 128 MiB ("1GB/8" label) unless --paper is given (256 MiB); shapes are
//! size-relative so the crossovers are preserved.

use knl_arch::{ClusterMode, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl_bench::modelfit::fit_model;
use knl_bench::output::{secs, Table};
use knl_bench::runconf::{Effort, RunConf};
use knl_bench::sweep::{executor, machine, TraceSink};
use knl_core::efficiency::{efficiency_sweep, EFFICIENCY_THRESHOLD};
use knl_core::overhead::OverheadModel;
use knl_core::sortmodel::{CostBasis, SortModel};
use knl_sort::simsort::{run_simsort, SimSortSpec};

fn main() {
    let conf = RunConf::from_args();
    let effort = conf.effort;
    let exec = executor(&conf);
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    eprintln!("fitting capability model on {} ...", cfg.label());
    let model = fit_model(&cfg, &effort.suite_params(), true);

    let threads: Vec<usize> = match effort {
        Effort::Paper => vec![1, 2, 4, 8, 16, 32, 64, 128, 256],
        Effort::Quick => vec![1, 4, 16, 64],
    };
    let sizes: Vec<(&str, u64)> = match effort {
        Effort::Paper => vec![("1KB", 1 << 10), ("4MB", 4 << 20), ("1GB/4", 256 << 20)],
        Effort::Quick => vec![("1KB", 1 << 10), ("4MB", 4 << 20), ("64MB", 64 << 20)],
    };

    // One merged trace across the sort sweeps; each sweep claims a disjoint
    // job-index range so sections stay in canonical order.
    let sink = TraceSink::new(&conf, "fig10_sort");
    // Measure (simulate) the 1 KB sorts to fit the overhead model, exactly
    // as §V-B.2 prescribes.
    let measure = |job: usize, bytes: u64, threads: usize, mem: NumaKind| -> f64 {
        let mut m = machine(&conf, cfg.clone());
        let spec = SimSortSpec {
            bytes,
            threads,
            schedule: Schedule::FillTiles,
            memory: mem,
        };
        let secs = run_simsort(&mut m, &spec);
        m.finish_check();
        sink.submit(job, &mut m);
        secs
    };
    let mut next_job = 0usize;

    let dram_model = SortModel::new(&model, "DRAM");
    // Fit on one measurement per distinct worker count (beyond 64 the sort
    // uses 64 workers; duplicating those points would flatten the slope).
    let fit_threads: Vec<usize> = threads.iter().copied().filter(|&t| t <= 64).collect();
    let fit_base = next_job;
    next_job += fit_threads.len();
    let fit_secs = exec.run("fig10_fit", &fit_threads, |i, &t| {
        measure(fit_base + i, 1 << 10, t, NumaKind::Ddr)
    });
    let small: Vec<(usize, f64)> = fit_threads.iter().copied().zip(fit_secs).collect();
    let overhead = OverheadModel::fit(&small, |t| {
        dram_model.sort_seconds(1 << 10, t.next_power_of_two(), CostBasis::Bandwidth)
    });
    eprintln!(
        "overhead model: {:.2} µs + {:.3} µs/thread (r² {:.3})",
        overhead.fit.alpha * 1e6,
        overhead.fit.beta * 1e6,
        overhead.fit.r2
    );

    for (label, bytes) in &sizes {
        let mut table = Table::new(
            &format!("Fig. 10 — sorting {label} of integers, SNC4-flat"),
            &[
                "threads",
                "measured DRAM",
                "measured MCDRAM",
                "mem model (lat)",
                "mem model (BW)",
                "full model (BW)",
                "overhead/mem",
                "efficient?",
            ],
        );
        let usable: Vec<usize> = threads.iter().copied().filter(|&t| t <= 64).collect();
        let mem_model = |t: usize| dram_model.sort_seconds(*bytes, t, CostBasis::Bandwidth);
        let (effs, last_eff) = efficiency_sweep(mem_model, &overhead, &usable);
        let base = next_job;
        next_job += usable.len();
        let measured = exec.run(&format!("fig10_{label}"), &usable, |i, &t| {
            let meas_d = measure(base + i, *bytes, t, NumaKind::Ddr);
            let meas_m = if (*bytes as u128) < (200u128 << 20) {
                measure(base + i, *bytes, t, NumaKind::Mcdram)
            } else {
                f64::NAN // exceeds scaled MCDRAM capacity
            };
            (meas_d, meas_m)
        });
        for (i, (&t, (meas_d, meas_m))) in usable.iter().zip(measured).enumerate() {
            let lat = dram_model.sort_seconds(*bytes, t, CostBasis::Latency);
            let bw = mem_model(t);
            let full = overhead.full(bw, t);
            table.row(vec![
                t.to_string(),
                secs(meas_d),
                if meas_m.is_nan() {
                    "-".into()
                } else {
                    secs(meas_m)
                },
                secs(lat),
                secs(bw),
                secs(full),
                format!("{:.0}%", effs[i].ratio() * 100.0),
                if effs[i].is_efficient() {
                    "yes".into()
                } else {
                    "NO".into()
                },
            ]);
        }
        table.print();
        match last_eff {
            Some(t) => println!(
                "memory-bound (overhead ≤ {:.0}%) up to {t} threads",
                EFFICIENCY_THRESHOLD * 100.0
            ),
            None => println!("never memory-bound at this size"),
        }
        let path = table.write_csv(&format!("fig10_sort_{label}").replace('/', "_"));
        eprintln!("csv: {}", path.display());
        println!();
    }

    // Headline check: MCDRAM vs DRAM at the largest size that fits both.
    let bytes = 64u64 << 20;
    let d = measure(next_job, bytes, 32, NumaKind::Ddr);
    let c = measure(next_job + 1, bytes, 32, NumaKind::Mcdram);
    sink.write().expect("write trace");
    println!(
        "MCDRAM speedup for the sort (64 MiB, 32 threads): {:.2}x — the paper predicts ≈1 \
         (no benefit despite 4-5x bandwidth)",
        d / c
    );
}
