//! Regenerates **Fig. 8**: reduce performance in SNC4-flat (MCDRAM) —
//! model-tuned tree vs OpenMP-like centralized and MPI-like binomial
//! reduces, with the min–max model band, for both schedules.

use knl_bench::collective_fig::{run_binary, CollectiveKind};

fn main() {
    run_binary("fig8_reduce", CollectiveKind::Reduce);
}
