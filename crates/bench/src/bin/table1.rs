//! Regenerates **Table I**: cache-to-cache benchmark results across the
//! five cluster modes (flat memory mode, as the latency rows do not depend
//! on the memory mode per the paper).

use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
use knl_bench::output::{f1, f2, Table};
use knl_bench::runconf::RunConf;
use knl_bench::sweep::{executor, machine, print_counters, TraceSink};
use knl_benchsuite::run_cache_suite;
use knl_stats::fit_linear;

fn main() {
    let conf = RunConf::from_args();
    let params = conf.effort.suite_params();

    let mut table = Table::new(
        "Table I — cache-to-cache capabilities (medians; paper values in EXPERIMENTS.md)",
        &["metric", "SNC4", "SNC2", "QUAD", "HEM", "A2A"],
    );

    eprintln!(
        "running cache suite for {} cluster modes ({} jobs) ...",
        ClusterMode::ALL.len(),
        conf.jobs
    );
    let sink = TraceSink::new(&conf, "table1");
    let results = executor(&conf).run("table1", &ClusterMode::ALL, |i, &cm| {
        let cfg = MachineConfig::knl7210(cm, MemoryMode::Flat);
        let mut m = machine(&conf, cfg);
        let res = run_cache_suite(&mut m, &params);
        m.finish_check();
        sink.submit(i, &mut m);
        (res, m.counters())
    });
    sink.write().expect("write trace");
    let mut columns = Vec::new();
    for (cm, (res, counters)) in ClusterMode::ALL.into_iter().zip(results) {
        print_counters(cm.name(), &counters);
        columns.push(res);
    }

    let metric = |name: &str, f: &dyn Fn(&knl_benchsuite::CacheResults) -> String| -> Vec<String> {
        let mut row = vec![name.to_string()];
        row.extend(columns.iter().map(f));
        row
    };

    table.row(metric("Latency local L1 [ns]", &|c| {
        f1(c.local_ns
            .as_ref()
            .map(|l| l.median_ns())
            .unwrap_or(f64::NAN))
    }));
    for st in ['M', 'E', 'S', 'F'] {
        table.row(metric(&format!("Latency tile {st} [ns]"), &|c| {
            f1(c.tile_ns
                .iter()
                .find(|(s, _)| *s == st)
                .map(|(_, l)| l.median_ns())
                .unwrap_or(f64::NAN))
        }));
    }
    for st in ['M', 'E', 'S', 'F'] {
        table.row(metric(&format!("Latency remote {st} [ns]"), &|c| {
            f1(c.remote_ns
                .iter()
                .find(|(s, _)| *s == st)
                .map(|(_, l)| l.median_ns())
                .unwrap_or(f64::NAN))
        }));
    }
    table.row(metric("BW read [GB/s]", &|c| f1(c.read_bw_gbps)));
    for (loc, st) in [
        ("tile", 'M'),
        ("tile", 'E'),
        ("remote", 'M'),
        ("remote", 'E'),
    ] {
        table.row(metric(&format!("BW copy {loc} {st} [GB/s]"), &|c| {
            f1(c.copy_bw_gbps
                .iter()
                .find(|(l, s, _)| l == loc && *s == st)
                .map(|(_, _, g)| *g)
                .unwrap_or(f64::NAN))
        }));
    }
    table.row(metric("Contention α [ns]", &|c| {
        let xs: Vec<f64> = c.contention.iter().map(|(n, _)| *n as f64).collect();
        let ys: Vec<f64> = c.contention.iter().map(|(_, s)| s.median()).collect();
        f1(fit_linear(&xs, &ys).alpha)
    }));
    table.row(metric("Contention β [ns/thread]", &|c| {
        let xs: Vec<f64> = c.contention.iter().map(|(n, _)| *n as f64).collect();
        let ys: Vec<f64> = c.contention.iter().map(|(_, s)| s.median()).collect();
        f1(fit_linear(&xs, &ys).beta)
    }));
    table.row(metric("Congestion (max/min pairs ratio)", &|c| {
        let lo = c
            .congestion
            .iter()
            .map(|(_, l)| *l)
            .fold(f64::INFINITY, f64::min);
        let hi = c.congestion.iter().map(|(_, l)| *l).fold(0.0, f64::max);
        format!("{} (none)", f2(hi / lo))
    }));

    table.print();
    let path = table.write_csv("table1");
    eprintln!("csv: {}", path.display());
}
