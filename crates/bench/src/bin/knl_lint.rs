//! `knl-lint`: a dependency-free, line-oriented linter enforcing this
//! repository's determinism and observability invariants over its own
//! `.rs` sources — the rules that otherwise live only in review comments:
//!
//! * `machine-new` — figure/table binaries (`src/bin`) must build machines
//!   through the observer-honouring `sweep::machine` helper, never raw
//!   `Machine::new` (a raw machine silently ignores `--check`, `--trace`
//!   and `--analyze`).
//! * `hash-collection` — all of `crates/sim` plus result/serialization
//!   paths elsewhere must not use `HashMap`/`HashSet`: their iteration
//!   order is nondeterministic, which breaks the bit-identical-output
//!   contract. Use `BTreeMap`, the hot-path `fxmap::LineMap` (which
//!   exposes no order-dependent iteration), or `svmap::SortedVecMap`;
//!   sites where order provably never escapes carry a
//!   `// knl-lint: allow(hash-collection)` justification. `fxmap.rs`
//!   itself is exempt (it documents and model-tests against the std map
//!   it replaces). This rule originally covered only
//!   metrics/trace/serial/output paths — the gap that let `mcache.rs`
//!   ship a SipHash map on the per-access hot path.
//! * `wallclock` — `crates/sim` must not read host time
//!   (`std::time::Instant`/`SystemTime`): simulated time is integer
//!   picoseconds, and wall-clock reads make runs irreproducible.
//! * `float-ps` — picosecond quantities (`*_ps` bindings and fields) must
//!   not be typed `f64`: float accumulation drifts across op orderings;
//!   convert to float only at the reporting edge.
//! * `observer-config` — outside `crates/sim`, machines must be given
//!   their observer set through `Machine::with_observer_config` (one
//!   `ObserverConfig`), never the retired `with_check`/`with_observers`
//!   constructors or per-observer `set_*_level` setters; those split the
//!   observer wiring across call sites, which is how observers silently
//!   fail to attach.
//! * `observer-construct` — `Tracer`/`CoherenceChecker` values are built
//!   by the `ObserverHub` (from an `ObserverConfig`), not constructed
//!   directly; direct construction bypasses the hub's single event spine
//!   and its registration-order guarantees. Their home modules
//!   (`engine/observe.rs`, `trace.rs`, `invariants.rs`) are exempt.
//!
//! A violation line can be suppressed with a trailing
//! `// knl-lint: allow(<rule>)` comment. Exits non-zero when any
//! unsuppressed violation is found.
//!
//! Usage: `knl-lint [WORKSPACE_ROOT]` (default: the workspace containing
//! this binary's crate).

use std::path::{Path, PathBuf};

/// One lint rule: a name, a path filter, and a line predicate.
struct LintRule {
    name: &'static str,
    message: &'static str,
    /// Does the rule apply to this (workspace-relative, `/`-separated)
    /// path at all?
    applies: fn(&str) -> bool,
    /// Does this source line violate the rule?
    matches: fn(&str) -> bool,
}

/// A reported violation.
#[derive(Debug, PartialEq, Eq)]
struct Violation {
    path: String,
    line: usize,
    rule: &'static str,
    message: &'static str,
}

// The patterns are assembled with `concat!` so this file never matches
// its own rules.
const MACHINE_NEW: &str = concat!("Machine::", "new(");
const HASH_MAP: &str = concat!("Hash", "Map");
const HASH_SET: &str = concat!("Hash", "Set");
const INSTANT: &str = concat!("time::", "Instant");
const SYSTEM_TIME: &str = concat!("time::", "SystemTime");
const FLOAT_PS: &str = concat!("_ps: ", "f64");
const WITH_CHECK: &str = concat!("Machine::", "with_check(");
const WITH_OBSERVERS: &str = concat!("Machine::", "with_observers(");
const SET_CHECK: &str = concat!(".set_", "check_level(");
const SET_TRACE: &str = concat!(".set_", "trace_level(");
const SET_ANALYZE: &str = concat!(".set_", "analyze_level(");
const TRACER_NEW: &str = concat!("Tracer::", "new(");
const CHECKER_NEW: &str = concat!("CoherenceChecker::", "new(");

fn rules() -> Vec<LintRule> {
    vec![
        LintRule {
            name: "machine-new",
            message: "binaries must build machines via sweep::machine so \
                      --check/--trace/--analyze are honoured",
            applies: |p| p.contains("/src/bin/") && !p.contains("/bin/knl_lint"),
            matches: |l| l.contains(MACHINE_NEW),
        },
        LintRule {
            name: "hash-collection",
            message: "use ordered collections (BTreeMap/BTreeSet), LineMap, or \
                      SortedVecMap for deterministic output; allow-comment \
                      sites where order provably never escapes",
            applies: |p| {
                (p.contains("crates/sim/") && !p.ends_with("/fxmap.rs"))
                    || p.ends_with("/metrics.rs")
                    || p.ends_with("/trace.rs")
                    || p.ends_with("/serial.rs")
                    || p.ends_with("/output.rs")
            },
            matches: |l| l.contains(HASH_MAP) || l.contains(HASH_SET),
        },
        LintRule {
            name: "wallclock",
            message: "crates/sim must not read host time; simulated time is \
                      integer picoseconds",
            applies: |p| p.contains("crates/sim/"),
            matches: |l| l.contains(INSTANT) || l.contains(SYSTEM_TIME),
        },
        LintRule {
            name: "float-ps",
            message: "picosecond quantities must be integer (SimTime/u64); \
                      convert to float only when reporting",
            applies: |_| true,
            matches: |l| l.contains(FLOAT_PS),
        },
        LintRule {
            name: "observer-config",
            message: "attach observers with Machine::with_observer_config \
                      (one ObserverConfig), not retired constructors or \
                      per-observer setters",
            applies: |p| !p.contains("crates/sim/"),
            matches: |l| {
                l.contains(WITH_CHECK)
                    || l.contains(WITH_OBSERVERS)
                    || l.contains(SET_CHECK)
                    || l.contains(SET_TRACE)
                    || l.contains(SET_ANALYZE)
            },
        },
        LintRule {
            name: "observer-construct",
            message: "Tracer/CoherenceChecker are built by the ObserverHub \
                      from an ObserverConfig; do not construct them directly",
            applies: |p| {
                !p.ends_with("/engine/observe.rs")
                    && !p.ends_with("/trace.rs")
                    && !p.ends_with("/invariants.rs")
            },
            matches: |l| l.contains(TRACER_NEW) || l.contains(CHECKER_NEW),
        },
    ]
}

/// Is `line` explicitly exempted from `rule`?
fn suppressed(line: &str, rule: &str) -> bool {
    line.split("// knl-lint: allow(")
        .skip(1)
        .any(|rest| rest.split(')').next() == Some(rule))
}

/// Lint one file's text; `rel` is its workspace-relative path.
fn lint_text(rel: &str, text: &str, rules: &[LintRule]) -> Vec<Violation> {
    let mut out = Vec::new();
    for rule in rules.iter().filter(|r| (r.applies)(rel)) {
        for (i, line) in text.lines().enumerate() {
            if (rule.matches)(line) && !suppressed(line, rule.name) {
                out.push(Violation {
                    path: rel.to_string(),
                    line: i + 1,
                    rule: rule.name,
                    message: rule.message,
                });
            }
        }
    }
    out
}

/// Collect every `.rs` file under `root`, skipping build and VCS output.
fn rust_sources(root: &Path) -> Vec<PathBuf> {
    let mut files = Vec::new();
    let mut stack = vec![root.to_path_buf()];
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" && name != "results" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                files.push(path);
            }
        }
    }
    files.sort();
    files
}

fn main() {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| {
            Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .canonicalize()
                .expect("workspace root")
        });
    let rules = rules();
    let mut violations = Vec::new();
    let files = rust_sources(&root);
    for file in &files {
        let rel = file
            .strip_prefix(&root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        // Anchor path filters at the workspace root.
        let rel = format!("/{rel}");
        let Ok(text) = std::fs::read_to_string(file) else {
            continue;
        };
        violations.extend(lint_text(&rel, &text, &rules));
    }
    for v in &violations {
        println!(
            "{}:{}: [{}] {}",
            v.path.trim_start_matches('/'),
            v.line,
            v.rule,
            v.message
        );
    }
    if violations.is_empty() {
        eprintln!("knl-lint: {} files clean", files.len());
    } else {
        eprintln!("knl-lint: {} violation(s)", violations.len());
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn find(rel: &str, text: &str) -> Vec<&'static str> {
        lint_text(rel, text, &rules())
            .into_iter()
            .map(|v| v.rule)
            .collect()
    }

    #[test]
    fn raw_machine_new_flagged_in_bins_only() {
        let bad = format!("    let m = {}cfg);\n", MACHINE_NEW);
        assert_eq!(find("/crates/bench/src/bin/fig9.rs", &bad), ["machine-new"]);
        // Library and test code may construct machines directly.
        assert!(find("/crates/sim/src/machine.rs", &bad).is_empty());
        assert!(find("/tests/golden_snapshots.rs", &bad).is_empty());
    }

    #[test]
    fn hash_collections_flagged_in_serialization_paths() {
        let bad = format!("use std::collections::{};\n", HASH_MAP);
        assert_eq!(
            find("/crates/sim/src/metrics.rs", &bad),
            ["hash-collection"]
        );
        assert_eq!(
            find("/crates/bench/src/output.rs", &bad),
            ["hash-collection"]
        );
        // Fine outside crates/sim and the serialization paths.
        assert!(find("/crates/bench/src/microbench.rs", &bad).is_empty());
        assert!(find("/tests/golden_snapshots.rs", &bad).is_empty());
    }

    #[test]
    fn hash_collections_flagged_across_all_of_sim() {
        // The rule that closed the mcache.rs gap: a bare std hash map
        // anywhere in crates/sim is a violation…
        let bad = format!("use std::collections::{};\n", HASH_MAP);
        for path in [
            "/crates/sim/src/mcache.rs",
            "/crates/sim/src/machine.rs",
            "/crates/sim/src/runner.rs",
            "/crates/sim/src/engine/serve.rs",
        ] {
            assert_eq!(find(path, &bad), ["hash-collection"], "{path}");
        }
        let bad_set = format!("let s: {}<u8> = Default::default();\n", HASH_SET);
        assert_eq!(
            find("/crates/sim/src/alloc.rs", &bad_set),
            ["hash-collection"]
        );
        // …unless justified with an allow comment where order never
        // escapes (the runner's internal maps)…
        let allowed = format!(
            "    flags: {}<u64, u64>, // knl-lint: allow(hash-collection)\n",
            HASH_MAP
        );
        assert!(find("/crates/sim/src/runner.rs", &allowed).is_empty());
        // …and fxmap.rs itself is exempt: it is the sanctioned
        // replacement and model-tests against the std map.
        assert!(find("/crates/sim/src/fxmap.rs", &bad).is_empty());
    }

    #[test]
    fn wallclock_flagged_in_sim_only() {
        let bad = format!("    let t0 = std::{}::now();\n", INSTANT);
        assert_eq!(find("/crates/sim/src/machine.rs", &bad), ["wallclock"]);
        assert!(find("/crates/bench/src/microbench.rs", &bad).is_empty());
    }

    #[test]
    fn float_ps_flagged_everywhere() {
        let bad = format!("    let total{} = 0.0;\n", FLOAT_PS);
        assert_eq!(find("/crates/arch/src/timing.rs", &bad), ["float-ps"]);
    }

    #[test]
    fn retired_observer_apis_flagged_outside_sim() {
        for bad in [
            format!("    let m = {}cfg, level);\n", WITH_CHECK),
            format!("    let m = {}cfg, check, trace);\n", WITH_OBSERVERS),
            format!("    m{}level);\n", SET_CHECK),
            format!("    m{}level);\n", SET_TRACE),
            format!("    m{}level);\n", SET_ANALYZE),
        ] {
            assert_eq!(
                find("/tests/coherence_fuzz.rs", &bad),
                ["observer-config"],
                "{bad}"
            );
            assert_eq!(
                find("/crates/bench/benches/simulator_throughput.rs", &bad),
                ["observer-config"],
                "{bad}"
            );
            // crates/sim owns the machine; its internals are exempt.
            assert!(find("/crates/sim/src/machine.rs", &bad).is_empty(), "{bad}");
        }
    }

    #[test]
    fn direct_observer_construction_flagged_outside_hub() {
        let tracer = format!("    let t = {}TraceLevel::Full);\n", TRACER_NEW);
        let checker = format!("    let c = {}level, counters);\n", CHECKER_NEW);
        assert_eq!(
            find("/tests/observer_hub.rs", &tracer),
            ["observer-construct"]
        );
        assert_eq!(
            find("/crates/sim/src/runner.rs", &checker),
            ["observer-construct"]
        );
        // The observers' home modules and the hub itself construct them.
        assert!(find("/crates/sim/src/engine/observe.rs", &tracer).is_empty());
        assert!(find("/crates/sim/src/trace.rs", &tracer).is_empty());
        assert!(find("/crates/sim/src/invariants.rs", &checker).is_empty());
    }

    #[test]
    fn allow_comment_suppresses() {
        let ok = format!(
            "    let m = {}cfg); // knl-lint: allow(machine-new)\n",
            MACHINE_NEW
        );
        assert!(find("/crates/bench/src/bin/fig9.rs", &ok).is_empty());
        // Suppressing a different rule does not help.
        let wrong = format!(
            "    let m = {}cfg); // knl-lint: allow(wallclock)\n",
            MACHINE_NEW
        );
        assert_eq!(
            find("/crates/bench/src/bin/fig9.rs", &wrong),
            ["machine-new"]
        );
    }

    #[test]
    fn violation_carries_line_number() {
        let bad = format!("fn x() {{}}\n\nlet m = {}cfg);\n", MACHINE_NEW);
        let vs = lint_text("/crates/bench/src/bin/fig9.rs", &bad, &rules());
        assert_eq!(vs.len(), 1);
        assert_eq!(vs[0].line, 3);
    }

    #[test]
    fn workspace_tree_is_clean() {
        // The repo itself must lint clean — this is the same walk `main`
        // does, run as a test so `cargo test` guards the invariant.
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .join("../..")
            .canonicalize()
            .unwrap();
        let rules = rules();
        let mut violations = Vec::new();
        for file in rust_sources(&root) {
            let rel = format!(
                "/{}",
                file.strip_prefix(&root)
                    .unwrap_or(&file)
                    .to_string_lossy()
                    .replace('\\', "/")
            );
            let text = std::fs::read_to_string(&file).unwrap_or_default();
            violations.extend(lint_text(&rel, &text, &rules));
        }
        assert!(
            violations.is_empty(),
            "workspace has lint violations: {violations:?}"
        );
    }
}
