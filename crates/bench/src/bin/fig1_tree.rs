//! Regenerates **Fig. 1**: the model-tuned reduction tree for 64 cores on
//! KNL in cache mode. The tree is non-trivial — "it is unlikely that this
//! tree would have been found with traditional algorithm design
//! techniques."

use knl_arch::{ClusterMode, MachineConfig, MemoryMode, Schedule};
use knl_bench::modelfit::fit_model_observed;
use knl_bench::runconf::RunConf;
use knl_collectives::plan::tile_groups;
use knl_core::{optimize_tree, TreeKind};

fn main() {
    let conf = RunConf::from_args();
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache);
    eprintln!("fitting capability model on {} ...", cfg.label());
    let model = fit_model_observed(&cfg, &conf.effort.suite_params(), true, &conf, "fig1_tree");

    // 64 cores, one thread per core (fill-tiles): 32 tile groups of 2; the
    // inter-tile tree spans the 32 tile leaders.
    let groups = tile_groups(64, Schedule::FillTiles, cfg.num_cores());
    let plan = optimize_tree(&model, groups.len(), TreeKind::Reduce);

    println!(
        "Model-tuned reduction tree, 64 cores, {} ({} tiles):",
        cfg.label(),
        groups.len()
    );
    println!("(each shown node is a tile leader; its tile mate attaches flat)");
    println!();
    println!("{}", plan.tree.render());
    println!("modeled completion: {:.0} ns", plan.cost_ns);
    println!("shape (degree per node): {}", plan.tree.compact());
    println!("level widths: {:?}", plan.tree.level_widths());

    // Compare against classic shapes under the same model.
    use knl_core::tree_opt::{binomial_tree, flat_tree, tree_cost};
    let binom = tree_cost(&model, &binomial_tree(groups.len()), TreeKind::Reduce);
    let flat = tree_cost(&model, &flat_tree(groups.len()), TreeKind::Reduce);
    println!();
    println!(
        "modeled cost of binomial tree: {binom:.0} ns ({:.2}x tuned)",
        binom / plan.cost_ns
    );
    println!(
        "modeled cost of flat tree:     {flat:.0} ns ({:.2}x tuned)",
        flat / plan.cost_ns
    );
}
