//! Runs every table/figure regenerator in sequence (quick sweeps unless
//! `--paper`). Equivalent to invoking each binary; useful for EXPERIMENTS.md
//! refreshes: `cargo run --release -p knl-bench --bin all_experiments`.
//!
//! Arguments (including `--jobs N` / `KNL_JOBS`) are forwarded verbatim to
//! every child binary; each child parallelizes its own sweep, and results
//! are bit-identical for any job count.

use std::process::Command;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    // Validate the shared flags up front so a typo fails once, not 13 times.
    let _ = knl_bench::runconf::RunConf::from_args();
    let bins = [
        "table1",
        "table2",
        "fig1_tree",
        "fig4_latency_map",
        "fig5_cachebw",
        "fig6_barrier",
        "fig7_broadcast",
        "fig8_reduce",
        "fig9_triad",
        "fig10_sort",
        "speedups",
        "ablation",
        "hybrid_explorer",
    ];
    let exe_dir = std::env::current_exe()
        .expect("current exe")
        .parent()
        .expect("bin dir")
        .to_path_buf();
    let mut failed = Vec::new();
    for b in bins {
        println!("\n######## {b} ########");
        let status = Command::new(exe_dir.join(b))
            .args(&args)
            .status()
            .unwrap_or_else(|e| panic!("failed to launch {b}: {e} (build with --bins first)"));
        if !status.success() {
            failed.push(b);
        }
    }
    if failed.is_empty() {
        println!("\nall experiments completed; CSVs under results/");
    } else {
        eprintln!("\nFAILED: {failed:?}");
        std::process::exit(1);
    }
}
