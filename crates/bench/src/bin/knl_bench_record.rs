//! `knl-bench-record` — run the full `simulator_throughput` suite, write
//! the results as a `BENCH_<pr>.json` trajectory, and diff against the
//! previous recorded trajectory (DESIGN.md §6).
//!
//! The trajectory file is canonical JSON from `knl_stats::json` (sorted
//! keys, shortest-round-trip floats), so re-rendering an unchanged run is
//! byte-identical and checked-in trajectories diff cleanly.
//!
//! Regressions (a case slower than baseline by more than `--threshold`)
//! are warnings by default, because ns-scale medians on a shared runner
//! are noisy; set `KNL_BENCH_STRICT=1` to make them fatal (exit 1), which
//! is what the CI bench-record job does on the dedicated runner.

use knl_bench::benchcases::{simulator_throughput_suite, SUITE};
use knl_bench::microbench::{
    diff_trajectories, measure, parse_trajectory, report, trajectory_json, BenchResult,
};
use knl_stats::json::Json;
use std::path::{Path, PathBuf};
use std::process::exit;

const USAGE: &str = "\
usage: knl-bench-record [options]

Run the simulator_throughput suite, write BENCH_<pr>.json, and diff
against the previous trajectory.

options:
  --pr N           trajectory number (default 6); names the output file
  --out PATH       output path (default BENCH_<pr>.json in the repo root)
  --baseline PATH  previous trajectory to diff against (default: the
                   highest-numbered BENCH_*.json below --pr next to the
                   output file; none found means no diff)
  --threshold F    slowdown fraction that counts as a regression
                   (default 0.25, i.e. >25% slower than baseline)
  -h, --help       this text

environment:
  KNL_BENCH_STRICT=1  exit 1 on regression instead of warning
  KNL_BENCH_BATCH=N   fixed timing batch size (CI reproducibility)
";

struct Args {
    pr: u64,
    out: Option<PathBuf>,
    baseline: Option<PathBuf>,
    threshold: f64,
}

fn parse_args() -> Args {
    let mut args = Args {
        pr: 6,
        out: None,
        baseline: None,
        threshold: 0.25,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |flag: &str| -> String {
            it.next().unwrap_or_else(|| {
                eprintln!("{flag} needs a value\n\n{USAGE}");
                exit(2);
            })
        };
        match a.as_str() {
            "-h" | "--help" => {
                print!("{USAGE}");
                exit(0);
            }
            "--pr" => {
                args.pr = value("--pr").parse().unwrap_or_else(|_| {
                    eprintln!("--pr needs an integer\n\n{USAGE}");
                    exit(2);
                });
            }
            "--out" => args.out = Some(PathBuf::from(value("--out"))),
            "--baseline" => args.baseline = Some(PathBuf::from(value("--baseline"))),
            "--threshold" => {
                args.threshold = value("--threshold").parse().unwrap_or_else(|_| {
                    eprintln!("--threshold needs a number\n\n{USAGE}");
                    exit(2);
                });
            }
            other => {
                eprintln!("unknown argument {other:?}\n\n{USAGE}");
                exit(2);
            }
        }
    }
    args
}

/// The highest-numbered `BENCH_<n>.json` with `n < pr` in `dir`.
fn find_baseline(dir: &Path, pr: u64) -> Option<PathBuf> {
    let mut best: Option<(u64, PathBuf)> = None;
    for entry in std::fs::read_dir(dir).ok()? {
        let path = entry.ok()?.path();
        let name = path.file_name()?.to_str()?;
        let n: u64 = name
            .strip_prefix("BENCH_")?
            .strip_suffix(".json")
            .and_then(|s| s.parse().ok())
            .unwrap_or(u64::MAX);
        if n < pr && best.as_ref().is_none_or(|(b, _)| n > *b) {
            best = Some((n, path.clone()));
        }
    }
    best.map(|(_, p)| p)
}

fn load_trajectory(path: &Path) -> Option<Vec<BenchResult>> {
    let text = std::fs::read_to_string(path).ok()?;
    parse_trajectory(&Json::parse(&text)?)
}

fn main() {
    let args = parse_args();
    let out = args
        .out
        .unwrap_or_else(|| PathBuf::from(format!("BENCH_{}.json", args.pr)));

    let mut results = Vec::new();
    for mut c in simulator_throughput_suite() {
        let ns = measure(&mut c.run);
        report(c.group, c.name, ns, c.bytes);
        results.push(BenchResult {
            group: c.group.to_string(),
            name: c.name.to_string(),
            ns_per_iter: ns,
            bytes: c.bytes,
        });
    }

    let doc = trajectory_json(args.pr, SUITE, &results);
    let rendered = format!("{}\n", doc.render());
    if let Err(e) = std::fs::write(&out, &rendered) {
        eprintln!("error: cannot write {}: {e}", out.display());
        exit(1);
    }
    println!("\nwrote {} ({} cases)", out.display(), results.len());

    let baseline = args.baseline.or_else(|| {
        let dir = out.parent().filter(|p| !p.as_os_str().is_empty());
        find_baseline(dir.unwrap_or(Path::new(".")), args.pr)
    });
    let Some(baseline) = baseline else {
        println!("no previous BENCH_*.json trajectory found; skipping diff");
        return;
    };
    let Some(old) = load_trajectory(&baseline) else {
        eprintln!(
            "warning: {} is not a readable trajectory; skipping diff",
            baseline.display()
        );
        return;
    };

    println!("\ndiff vs {}:", baseline.display());
    let deltas = diff_trajectories(&old, &results);
    let mut regressions = Vec::new();
    for d in &deltas {
        let pct = (d.ratio() - 1.0) * 100.0;
        let flag = if d.ratio() > 1.0 + args.threshold {
            regressions.push(d.key.clone());
            "  <-- REGRESSION"
        } else {
            ""
        };
        println!(
            "  {:45} {:12.1} -> {:12.1} ns/iter  {pct:+7.1}%{flag}",
            d.key, d.old_ns, d.new_ns
        );
    }
    for o in &old {
        if !results.iter().any(|n| n.key() == o.key()) {
            println!(
                "  {:45} removed (was {:.1} ns/iter)",
                o.key(),
                o.ns_per_iter
            );
        }
    }
    for n in &results {
        if !old.iter().any(|o| o.key() == n.key()) {
            println!("  {:45} new ({:.1} ns/iter)", n.key(), n.ns_per_iter);
        }
    }

    if regressions.is_empty() {
        println!(
            "no regressions beyond {:.0}% threshold",
            args.threshold * 100.0
        );
    } else if std::env::var("KNL_BENCH_STRICT").as_deref() == Ok("1") {
        eprintln!(
            "error: {} case(s) regressed beyond {:.0}%: {}",
            regressions.len(),
            args.threshold * 100.0,
            regressions.join(", ")
        );
        exit(1);
    } else {
        println!(
            "warning: {} case(s) beyond {:.0}% threshold (set KNL_BENCH_STRICT=1 to fail): {}",
            regressions.len(),
            args.threshold * 100.0,
            regressions.join(", ")
        );
    }
}
