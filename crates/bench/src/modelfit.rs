//! Fitting a capability model from a (possibly reduced) suite run.

use crate::runconf::RunConf;
use crate::sweep::{print_counters, TraceSink};
use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
use knl_benchsuite::{run_configs_with, run_full_suite, SuiteParams, SuiteResults};
use knl_core::CapabilityModel;
use knl_sim::ObserverConfig;
use std::path::PathBuf;

/// Run the capability suite for `cfg` and fit the model. When `cache_path`
/// is given, results are cached as JSON (rerunning a figure binary skips
/// the simulation pass).
pub fn fit_model(cfg: &MachineConfig, params: &SuiteParams, cache: bool) -> CapabilityModel {
    let results = suite_results(cfg, params, cache);
    CapabilityModel::from_suite(&results)
}

/// [`fit_model`] honouring a parsed command line: the suite run executes
/// on the `--jobs` worker pool under the `--check` / `--trace-level` /
/// `--analyze` observer set, with its trace section written through a
/// [`TraceSink`] labelled `label`. Because cached suite results skip the
/// simulation pass entirely, the JSON cache is bypassed (but still
/// refreshed) whenever any observer is on — asking for a checked or traced
/// run means asking for the simulation to actually happen.
pub fn fit_model_observed(
    cfg: &MachineConfig,
    params: &SuiteParams,
    cache: bool,
    conf: &RunConf,
    label: &str,
) -> CapabilityModel {
    let observers = conf.observer_config();
    if observers == ObserverConfig::default() {
        return fit_model(cfg, params, cache);
    }
    let sink = TraceSink::new(conf, label);
    let mut runs = run_configs_with(std::slice::from_ref(cfg), params, conf.jobs, observers);
    let (results, counters, tracer) = runs.remove(0);
    print_counters(&cfg.label(), &counters);
    sink.submit_tracer(0, tracer);
    sink.write().expect("write trace");
    if cache {
        write_cache(cfg, params, &results);
    }
    CapabilityModel::from_suite(&results)
}

/// Suite results with optional JSON caching under `results/suite-cache/`.
pub fn suite_results(cfg: &MachineConfig, params: &SuiteParams, cache: bool) -> SuiteResults {
    let path = cache_path(cfg, params);
    if cache {
        if let Ok(text) = std::fs::read_to_string(&path) {
            // Unreadable or old-format files fall through to a re-run that
            // overwrites them.
            if let Some(r) = knl_benchsuite::decode_suite(&text) {
                return r;
            }
        }
    }
    let r = run_full_suite(cfg, params);
    if cache {
        write_cache(cfg, params, &r);
    }
    r
}

fn write_cache(cfg: &MachineConfig, params: &SuiteParams, r: &SuiteResults) {
    let path = cache_path(cfg, params);
    if let Some(dir) = path.parent() {
        let _ = std::fs::create_dir_all(dir);
    }
    let _ = std::fs::write(&path, knl_benchsuite::encode_suite(r));
}

fn cache_path(cfg: &MachineConfig, params: &SuiteParams) -> PathBuf {
    crate::output::results_dir()
        .join("suite-cache")
        .join(format!("{}-i{}.json", cfg.label(), params.iters))
}

/// The standard machine of the paper's collective figures: SNC4-flat.
pub fn snc4_flat() -> MachineConfig {
    MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fit_quick_model() {
        std::env::set_var(
            "KNL_RESULTS_DIR",
            std::env::temp_dir().join("knl_modelfit_test"),
        );
        let cfg = snc4_flat();
        let mut p = SuiteParams::quick();
        p.iters = 3;
        p.mem_threads = vec![1, 8];
        p.mem_lines_per_thread = 256;
        p.memlat_lines = 8 << 10;
        let m1 = fit_model(&cfg, &p, true);
        assert!(m1.rr_ns > 50.0);
        // Second call hits the cache (must produce identical numbers).
        let m2 = fit_model(&cfg, &p, true);
        assert_eq!(m1.rr_ns, m2.rr_ns);
        assert_eq!(m1.contention.beta, m2.contention.beta);
        std::env::remove_var("KNL_RESULTS_DIR");
    }
}
