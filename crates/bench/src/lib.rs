//! Benchmark harness: regenerates every table and figure of the paper.
//!
//! One binary per artifact (see `src/bin/`); shared machinery here:
//!
//! * [`output`] — aligned console tables + CSV dumps under `results/`,
//! * [`modelfit`] — fit a [`knl_core::CapabilityModel`] by running the
//!   capability suite on the simulated machine,
//! * [`collective_fig`] — the shared driver for Figs. 6–8 (model-tuned vs
//!   OpenMP-like vs MPI-like, with the min–max model band),
//! * [`runconf`] — `--quick` / `--paper` argument handling.
//!
//! Absolute numbers come from the simulator, not the authors' testbed; the
//! *shape* (who wins, by what factor, where crossovers fall) is the
//! reproduction target (see EXPERIMENTS.md).

pub mod benchcases;
pub mod collective_fig;
pub mod microbench;
pub mod modelfit;
pub mod output;
pub mod plot;
pub mod runconf;
pub mod sweep;
