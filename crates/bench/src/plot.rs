//! Terminal plots: the figure binaries render their series as ASCII charts
//! next to the tables, so shapes are visible without leaving the terminal.

/// One named series of (x, y) points.
#[derive(Debug, Clone)]
pub struct Series {
    /// Legend label.
    pub name: String,
    /// Points, any order (sorted internally by x).
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Build a series from a label and points.
    pub fn new(name: &str, points: Vec<(f64, f64)>) -> Self {
        Series {
            name: name.to_string(),
            points,
        }
    }
}

const GLYPHS: &[char] = &['*', 'o', '+', 'x', '#', '@'];

/// Render series as a log-x/log-y scatter chart of `width`×`height` cells.
/// Distinct series use distinct glyphs; a legend follows the chart.
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 4, "chart too small");
    let all: Vec<(f64, f64)> = series
        .iter()
        .flat_map(|s| s.points.iter().copied())
        .collect();
    if all.is_empty() {
        return format!("{title}\n(no data)\n");
    }
    let xs: Vec<f64> = all.iter().map(|p| p.0.max(1e-30).log10()).collect();
    let ys: Vec<f64> = all.iter().map(|p| p.1.max(1e-30).log10()).collect();
    let (x0, x1) = bounds(&xs);
    let (y0, y1) = bounds(&ys);

    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let g = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let cx = scale(x.max(1e-30).log10(), x0, x1, width - 1);
            let cy = height - 1 - scale(y.max(1e-30).log10(), y0, y1, height - 1);
            grid[cy][cx] = g;
        }
    }

    let mut out = String::new();
    out.push_str(&format!("{title}  (log-log)\n"));
    let y_hi = sig3(10f64.powf(y1));
    let y_lo = sig3(10f64.powf(y0));
    let lab_w = y_hi.len().max(y_lo.len());
    for (r, row) in grid.iter().enumerate() {
        let label = if r == 0 {
            format!("{y_hi:>lab_w$}")
        } else if r == height - 1 {
            format!("{y_lo:>lab_w$}")
        } else {
            " ".repeat(lab_w)
        };
        out.push_str(&format!("{label} |{}|\n", row.iter().collect::<String>()));
    }
    out.push_str(&format!(
        "{} +{}+\n{} {:<w$}{:>w2$}\n",
        " ".repeat(lab_w),
        "-".repeat(width),
        " ".repeat(lab_w),
        sig3(10f64.powf(x0)),
        sig3(10f64.powf(x1)),
        w = width / 2,
        w2 = width - width / 2,
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("  {} {}\n", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

/// Three-significant-figure formatting (Rust has no `%g`).
fn sig3(v: f64) -> String {
    if v == 0.0 || !v.is_finite() {
        return format!("{v}");
    }
    let mag = v.abs().log10().floor() as i32;
    if (-2..5).contains(&mag) {
        let decimals = (2 - mag).max(0) as usize;
        format!("{v:.decimals$}")
    } else {
        format!("{v:.2e}")
    }
}

fn bounds(v: &[f64]) -> (f64, f64) {
    let lo = v.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = v.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    if (hi - lo).abs() < 1e-12 {
        (lo - 0.5, hi + 0.5)
    } else {
        (lo, hi)
    }
}

fn scale(v: f64, lo: f64, hi: f64, max_idx: usize) -> usize {
    (((v - lo) / (hi - lo)) * max_idx as f64)
        .round()
        .clamp(0.0, max_idx as f64) as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_points_and_legend() {
        let s = vec![
            Series::new("tuned", vec![(2.0, 100.0), (64.0, 1000.0)]),
            Series::new("mpi", vec![(2.0, 5000.0), (64.0, 40000.0)]),
        ];
        let p = ascii_plot("barrier", &s, 40, 10);
        assert!(p.contains("barrier"));
        assert!(p.contains("* tuned"));
        assert!(p.contains("o mpi"));
        assert!(p.matches('*').count() >= 2);
        // Higher series occupies higher rows than the lower one at same x.
        let rows: Vec<&str> = p.lines().collect();
        let first_o = rows.iter().position(|r| r.contains('o')).unwrap();
        let first_star = rows.iter().position(|r| r.contains('*')).unwrap();
        assert!(first_o < first_star, "mpi sits above tuned on the chart");
    }

    #[test]
    fn empty_series_graceful() {
        let p = ascii_plot("x", &[Series::new("e", vec![])], 20, 5);
        assert!(p.contains("no data"));
    }

    #[test]
    fn constant_series_does_not_panic() {
        let s = vec![Series::new(
            "flat",
            vec![(1.0, 7.0), (2.0, 7.0), (4.0, 7.0)],
        )];
        let p = ascii_plot("flat", &s, 30, 6);
        assert!(p.matches('*').count() >= 3);
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        ascii_plot("t", &[], 4, 2);
    }
}
