//! The `simulator_throughput` suite as data.
//!
//! The same cases back two consumers: the `benches/simulator_throughput`
//! target (human-readable console run via `cargo bench`) and the
//! `knl-bench-record` bin (machine-readable `BENCH_<pr>.json` trajectory,
//! DESIGN.md §6). Defining the suite once keeps the two views measuring
//! byte-for-byte the same workloads, so a recorded trajectory is always
//! comparable with an interactive bench run.

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, Schedule};
use knl_sim::{
    AccessKind, AnalyzeLevel, CheckLevel, Machine, ObserverConfig, Op, Program, Runner, StreamKind,
    TraceLevel,
};

/// Name of the suite in recorded trajectories.
pub const SUITE: &str = "simulator_throughput";

/// One benchmark case: identity plus a closure over its captured machine
/// state. The closure returns the simulated end time so the optimizer
/// cannot discard the work.
pub struct BenchCase {
    pub group: &'static str,
    pub name: &'static str,
    /// Bytes moved per iteration (bandwidth cases only).
    pub bytes: Option<u64>,
    pub run: Box<dyn FnMut() -> u64>,
}

fn machine() -> Machine {
    Machine::new(MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Flat,
    ))
}

fn machine_with(oc: ObserverConfig) -> Machine {
    Machine::with_observer_config(
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat),
        oc,
    )
}

/// The ping-pong write kernel every `remote_transfer*` case runs: one line
/// bounced between two tiles, so each access is a remote ownership
/// transfer. Shared so the observer-cost cases measure the identical
/// workload as the raw one.
fn ping_pong(oc: ObserverConfig) -> Box<dyn FnMut() -> u64> {
    let mut m = machine_with(oc);
    let mut now = 0;
    let mut flip = false;
    Box::new(move || {
        let core = if flip { CoreId(0) } else { CoreId(30) };
        flip = !flip;
        now = m.access(core, 1 << 21, AccessKind::Write, now).complete;
        now
    })
}

/// Build the full suite, in its fixed reporting order.
pub fn simulator_throughput_suite() -> Vec<BenchCase> {
    let mut cases = Vec::new();
    let case = |name, bytes, run| BenchCase {
        group: "sim_access",
        name,
        bytes,
        run,
    };

    cases.push(case("l1_hit", None, {
        let mut m = machine();
        let mut now = m.access(CoreId(0), 4096, AccessKind::Read, 0).complete;
        Box::new(move || {
            now = m.access(CoreId(0), 4096, AccessKind::Read, now).complete;
            now
        })
    }));

    cases.push(case("memory_miss", None, {
        let mut m = machine();
        let mut addr = 1u64 << 22;
        let mut now = 0;
        Box::new(move || {
            addr += 4096;
            if addr > (1 << 29) {
                addr = 1 << 22;
                m.reset_caches();
            }
            now = m.access(CoreId(0), addr, AccessKind::Read, now).complete;
            now
        })
    }));

    cases.push(case(
        "remote_transfer",
        None,
        ping_pong(ObserverConfig::default()),
    ));

    // `--check off` must be free (the acceptance bar for leaving the hook
    // compiled into the hot paths), and the checked levels' cost should
    // stay visible here so it never silently creeps into `off`.
    for (name, level) in [
        ("remote_transfer_check_off", CheckLevel::Off),
        ("remote_transfer_check_inv", CheckLevel::Invariants),
        ("remote_transfer_check_full", CheckLevel::FullOracle),
    ] {
        cases.push(case(
            name,
            None,
            ping_pong(ObserverConfig::default().check(level)),
        ));
    }

    // Same acceptance bar for the tracer: `--trace-level off` must be
    // free, and the summary/full costs stay measured so they never bleed
    // into the off path.
    for (name, trace) in [
        ("remote_transfer_trace_off", TraceLevel::Off),
        ("remote_transfer_trace_summary", TraceLevel::Summary),
        ("remote_transfer_trace_full", TraceLevel::Full),
    ] {
        cases.push(case(
            name,
            None,
            ping_pong(ObserverConfig::default().trace(trace)),
        ));
    }

    // And for the static analyzer: `--analyze off` skips the pre-pass
    // entirely, so the off case must track the raw runner; the on case
    // measures the happens-before construction for a small flag-handoff
    // workload (the pre-pass runs once per `Runner::run`).
    for (name, level) in [
        ("remote_transfer_analyze_off", AnalyzeLevel::Off),
        ("remote_transfer_analyze_on", AnalyzeLevel::Error),
    ] {
        cases.push(case(name, None, {
            let mut m = machine_with(ObserverConfig::default().analyze(level));
            Box::new(move || {
                let flag = 3u64 << 28;
                let mut po = Program::on_core(CoreId(30));
                let mut pr = Program::on_core(CoreId(0));
                for it in 0..16usize {
                    let gen = it as u64 + 1;
                    let addr = (1u64 << 21) + (it as u64) * 64;
                    po.push(Op::Write(addr)).push(Op::SetFlag {
                        addr: flag,
                        val: gen,
                    });
                    pr.push(Op::WaitFlag {
                        addr: flag,
                        val: gen,
                    })
                    .push(Op::Read(addr));
                }
                let end = Runner::new(&mut m, vec![po, pr]).run().end_time;
                m.reset_caches();
                end
            })
        }));
    }

    // The observer-hub guard pair: an empty hub (`off`) must track the
    // raw `remote_transfer` case bit-for-bit in cost, while the fully
    // loaded hub (`on` = full oracle + full trace + analyze gate)
    // measures the dispatch overhead of every observer at once.
    for (name, oc) in [
        (
            "remote_transfer_all_observers_off",
            ObserverConfig::default(),
        ),
        (
            "remote_transfer_all_observers_on",
            ObserverConfig::default()
                .check(CheckLevel::FullOracle)
                .trace(TraceLevel::Full)
                .analyze(AnalyzeLevel::Error),
        ),
    ] {
        cases.push(case(name, None, ping_pong(oc)));
    }

    let lines = 64 * 1024u64;
    cases.push(BenchCase {
        group: "sim_stream",
        name: "8_threads_triad",
        bytes: Some(lines * 8 * 64),
        run: Box::new(move || {
            let mut m = machine();
            let progs: Vec<Program> = (0..8usize)
                .map(|i| {
                    let mut p = Program::new(Schedule::FillTiles.place(i, 64));
                    p.push(Op::Stream {
                        kind: StreamKind::Triad,
                        a: (i as u64) << 24,
                        b: (i as u64) << 24 | 1 << 23,
                        c: (i as u64) << 24 | 1 << 22,
                        lines,
                        vectorized: true,
                    });
                    p
                })
                .collect();
            Runner::new(&mut m, progs).run().end_time
        }),
    });

    cases
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_has_unique_keys_in_fixed_order() {
        let cases = simulator_throughput_suite();
        let keys: Vec<String> = cases
            .iter()
            .map(|c| format!("{}/{}", c.group, c.name))
            .collect();
        assert_eq!(cases.len(), 14);
        assert_eq!(keys.first().map(String::as_str), Some("sim_access/l1_hit"));
        assert_eq!(
            keys.last().map(String::as_str),
            Some("sim_stream/8_threads_triad")
        );
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len(), "duplicate case key");
    }

    #[test]
    fn every_case_runs_and_produces_time() {
        for mut c in simulator_throughput_suite() {
            let end = (c.run)();
            assert!(end > 0, "{}/{} returned zero end time", c.group, c.name);
        }
    }
}
