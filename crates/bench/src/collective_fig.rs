//! Shared driver for Figs. 6–8: model-tuned collectives vs OpenMP-like and
//! MPI-like baselines on the simulated KNL, with the min–max model band.

use crate::runconf::RunConf;
use crate::sweep::{executor, machine, TraceSink};
use knl_arch::{MachineConfig, NumaKind, Schedule};
use knl_collectives::plan::{tile_groups, RankPlan};
use knl_collectives::simspec::{self, SimLayout};
use knl_core::predict::{intra_tile_stage, predict_barrier, predict_broadcast, predict_reduce};
use knl_core::tree_opt::binomial_tree;
use knl_core::{optimize_barrier, optimize_tree, CapabilityModel, MinMax, TreeKind};
use knl_sim::Machine;
use knl_stats::{boxplot, median, BoxplotSummary, Sample};

/// Which collective the figure shows.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CollectiveKind {
    Barrier,
    Broadcast,
    Reduce,
}

impl CollectiveKind {
    pub fn name(self) -> &'static str {
        match self {
            CollectiveKind::Barrier => "barrier",
            CollectiveKind::Broadcast => "broadcast",
            CollectiveKind::Reduce => "reduce",
        }
    }
}

/// One point of the figure.
#[derive(Debug, Clone)]
pub struct SeriesPoint {
    pub threads: usize,
    pub schedule: Schedule,
    /// Model-tuned implementation, per-iteration maxima (ns).
    pub tuned: BoxplotSummary,
    pub tuned_sample: Sample,
    /// OpenMP-like baseline median (ns).
    pub openmp_ns: f64,
    /// MPI-like baseline median (ns).
    pub mpi_ns: f64,
    /// Min–max model envelope (ns).
    pub model: MinMax,
}

impl SeriesPoint {
    pub fn openmp_speedup(&self) -> f64 {
        self.openmp_ns / self.tuned.median
    }

    pub fn mpi_speedup(&self) -> f64 {
        self.mpi_ns / self.tuned.median
    }
}

/// Run one collective figure on `cfg` (the paper: SNC4-flat, MCDRAM).
///
/// Every (schedule, thread-count) point builds its own `Machine` via the
/// observer-honouring `sweep::machine` helper, so the points are
/// independent jobs; `conf.jobs` workers run them in parallel with results
/// merged back into the canonical (schedule-major) order — the output is
/// bit-identical to a serial run (`--jobs 1`).
pub fn run_figure(
    cfg: &MachineConfig,
    model: &CapabilityModel,
    kind: CollectiveKind,
    threads_list: &[usize],
    schedules: &[Schedule],
    iters: usize,
    conf: &RunConf,
) -> Vec<SeriesPoint> {
    let num_cores = cfg.num_cores();
    let points: Vec<(Schedule, usize)> = schedules
        .iter()
        .flat_map(|&sched| {
            threads_list
                .iter()
                .filter(|&&n| n <= num_cores)
                .map(move |&n| (sched, n))
        })
        .collect();
    let sink = TraceSink::new(conf, &format!("{}_figure", kind.name()));
    let pts = executor(conf).run(kind.name(), &points, |i, &(sched, n)| {
        let mut m = machine(conf, cfg.clone());
        let mut arena = m.arena();
        let layout = SimLayout::alloc(&mut arena, NumaKind::Mcdram, n);

        let tuned_vals = run_tuned(&mut m, model, kind, n, sched, num_cores, &layout, iters);
        m.reset_caches();
        let openmp = run_openmp(&mut m, kind, n, sched, num_cores, &layout, iters);
        m.reset_caches();
        let mpi = run_mpi(&mut m, kind, n, sched, num_cores, &layout, iters);

        let envelope = model_envelope(model, kind, n, sched, num_cores);
        let sample = Sample::from_values(tuned_vals.clone());
        let point = SeriesPoint {
            threads: n,
            schedule: sched,
            tuned: boxplot(&tuned_vals),
            tuned_sample: sample,
            openmp_ns: median(&openmp),
            mpi_ns: median(&mpi),
            model: envelope,
        };
        m.finish_check();
        sink.submit(i, &mut m);
        point
    });
    sink.write().expect("write trace");
    pts
}

#[allow(clippy::too_many_arguments)]
fn run_tuned(
    m: &mut Machine,
    model: &CapabilityModel,
    kind: CollectiveKind,
    n: usize,
    sched: Schedule,
    num_cores: usize,
    layout: &SimLayout,
    iters: usize,
) -> Vec<f64> {
    let progs = match kind {
        CollectiveKind::Barrier => {
            let plan = optimize_barrier(model, n);
            simspec::dissemination_barrier_programs(n, plan.m, layout, sched, num_cores, iters)
        }
        CollectiveKind::Broadcast => {
            let plan = tuned_tree_plan(model, TreeKind::Broadcast, n, sched, num_cores);
            simspec::tree_broadcast_programs(&plan, layout, sched, num_cores, iters)
        }
        CollectiveKind::Reduce => {
            let plan = tuned_tree_plan(model, TreeKind::Reduce, n, sched, num_cores);
            simspec::tree_reduce_programs(&plan, layout, sched, num_cores, iters)
        }
    };
    simspec::run_collective(m, progs, iters)
}

/// Model-tuned hierarchical plan: inter-tile tree over tile-leader ranks,
/// flat fan-out within a tile.
pub fn tuned_tree_plan(
    model: &CapabilityModel,
    kind: TreeKind,
    n: usize,
    sched: Schedule,
    num_cores: usize,
) -> RankPlan {
    let groups = tile_groups(n, sched, num_cores);
    let tree = optimize_tree(model, groups.len(), kind).tree;
    RankPlan::hierarchical(&tree, n, sched, num_cores)
}

fn run_openmp(
    m: &mut Machine,
    kind: CollectiveKind,
    n: usize,
    sched: Schedule,
    num_cores: usize,
    layout: &SimLayout,
    iters: usize,
) -> Vec<f64> {
    let progs = match kind {
        CollectiveKind::Barrier => {
            simspec::central_barrier_programs(n, layout, sched, num_cores, iters)
        }
        CollectiveKind::Broadcast => {
            simspec::flat_broadcast_programs(n, layout, sched, num_cores, iters)
        }
        CollectiveKind::Reduce => {
            simspec::central_reduce_programs(n, layout, sched, num_cores, iters)
        }
    };
    simspec::run_collective(m, progs, iters)
}

fn run_mpi(
    m: &mut Machine,
    kind: CollectiveKind,
    n: usize,
    sched: Schedule,
    num_cores: usize,
    layout: &SimLayout,
    iters: usize,
) -> Vec<f64> {
    let plan = RankPlan::direct(&binomial_tree(n));
    let progs = match kind {
        CollectiveKind::Barrier => {
            simspec::mpi_barrier_programs(&plan, layout, sched, num_cores, iters)
        }
        CollectiveKind::Broadcast => {
            simspec::mpi_broadcast_programs(&plan, layout, sched, num_cores, iters)
        }
        CollectiveKind::Reduce => {
            simspec::mpi_reduce_programs(&plan, layout, sched, num_cores, iters)
        }
    };
    simspec::run_collective(m, progs, iters)
}

fn model_envelope(
    model: &CapabilityModel,
    kind: CollectiveKind,
    n: usize,
    sched: Schedule,
    num_cores: usize,
) -> MinMax {
    match kind {
        CollectiveKind::Barrier => predict_barrier(model, n),
        CollectiveKind::Broadcast | CollectiveKind::Reduce => {
            let groups = tile_groups(n, sched, num_cores);
            let base = if kind == CollectiveKind::Broadcast {
                predict_broadcast(model, groups.len())
            } else {
                predict_reduce(model, groups.len())
            };
            let widest = groups.iter().map(|g| g.len() - 1).max().unwrap_or(0);
            let intra = intra_tile_stage(model, widest);
            base.add(MinMax::point(intra))
        }
    }
}

/// Complete binary body for one collective figure: fit the model, run both
/// schedules, print the table, dump the CSV, summarize speedups.
pub fn run_binary(name: &str, kind: CollectiveKind) {
    use crate::output::{f1, Table};
    let conf = crate::runconf::RunConf::from_args();
    let effort = conf.effort;
    let cfg = crate::modelfit::snc4_flat();
    eprintln!("fitting capability model on {} ...", cfg.label());
    let model = crate::modelfit::fit_model(&cfg, &effort.suite_params(), true);
    let threads = effort.collective_threads();
    let iters = effort.collective_iters();
    eprintln!(
        "running {} figure ({} iters, {} jobs) ...",
        kind.name(),
        iters,
        conf.jobs
    );
    let pts = run_figure(
        &cfg,
        &model,
        kind,
        &threads,
        &[Schedule::FillTiles, Schedule::Scatter],
        iters,
        &conf,
    );

    let mut table = Table::new(
        &format!("{name} — {} in SNC4-flat (MCDRAM) [ns]", kind.name()),
        &[
            "schedule",
            "threads",
            "tuned q1",
            "tuned med",
            "tuned q3",
            "OpenMP-like",
            "MPI-like",
            "model best",
            "model worst",
            "x OpenMP",
            "x MPI",
        ],
    );
    for p in &pts {
        table.row(vec![
            p.schedule.name().to_string(),
            p.threads.to_string(),
            f1(p.tuned.q1),
            f1(p.tuned.median),
            f1(p.tuned.q3),
            f1(p.openmp_ns),
            f1(p.mpi_ns),
            f1(p.model.best),
            f1(p.model.worst),
            format!("{:.1}x", p.openmp_speedup()),
            format!("{:.1}x", p.mpi_speedup()),
        ]);
    }
    table.print();
    let path = table.write_csv(name);
    eprintln!("csv: {}", path.display());

    // Terminal chart of the scatter-schedule series (threads vs ns).
    let scatter: Vec<&SeriesPoint> = pts
        .iter()
        .filter(|p| p.schedule == Schedule::Scatter)
        .collect();
    if scatter.len() >= 2 {
        let series = vec![
            crate::plot::Series::new(
                "model-tuned (median)",
                scatter
                    .iter()
                    .map(|p| (p.threads as f64, p.tuned.median))
                    .collect(),
            ),
            crate::plot::Series::new(
                "OpenMP-like",
                scatter
                    .iter()
                    .map(|p| (p.threads as f64, p.openmp_ns))
                    .collect(),
            ),
            crate::plot::Series::new(
                "MPI-like",
                scatter
                    .iter()
                    .map(|p| (p.threads as f64, p.mpi_ns))
                    .collect(),
            ),
            crate::plot::Series::new(
                "model worst",
                scatter
                    .iter()
                    .map(|p| (p.threads as f64, p.model.worst))
                    .collect(),
            ),
        ];
        println!();
        print!(
            "{}",
            crate::plot::ascii_plot(
                &format!("{} latency [ns] vs threads (scatter)", kind.name()),
                &series,
                56,
                14,
            )
        );
    }

    let best_omp = pts
        .iter()
        .map(SeriesPoint::openmp_speedup)
        .fold(0.0, f64::max);
    let best_mpi = pts.iter().map(SeriesPoint::mpi_speedup).fold(0.0, f64::max);
    println!();
    println!(
        "max speedup of model-tuned {} over OpenMP-like: {best_omp:.1}x, over MPI-like: {best_mpi:.1}x",
        kind.name()
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::modelfit::snc4_flat;
    use crate::runconf::Effort;

    fn conf(jobs: usize) -> RunConf {
        RunConf {
            effort: Effort::Quick,
            jobs,
            check: knl_sim::CheckLevel::Off,
            trace: knl_sim::TraceLevel::Off,
            trace_path: None,
            analyze: knl_sim::AnalyzeLevel::Off,
        }
    }

    #[test]
    fn figure_points_ordering_holds() {
        let cfg = snc4_flat();
        let model = CapabilityModel::paper_reference();
        let pts = run_figure(
            &cfg,
            &model,
            CollectiveKind::Broadcast,
            &[8, 32],
            &[Schedule::Scatter],
            5,
            &conf(1),
        );
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(
                p.openmp_speedup() > 1.0,
                "tuned must beat OpenMP-like: {p:?}"
            );
            assert!(p.mpi_speedup() > 1.0, "tuned must beat MPI-like: {p:?}");
            assert!(p.model.best > 0.0);
        }
        assert!(
            pts[1].tuned.median > pts[0].tuned.median,
            "cost grows with threads"
        );
    }

    #[test]
    fn barrier_figure_runs_both_schedules() {
        let cfg = snc4_flat();
        let model = CapabilityModel::paper_reference();
        let pts = run_figure(
            &cfg,
            &model,
            CollectiveKind::Barrier,
            &[16],
            &[Schedule::Scatter, Schedule::FillTiles],
            5,
            &conf(2),
        );
        assert_eq!(pts.len(), 2);
        for p in &pts {
            assert!(p.mpi_ns > p.tuned.median, "MPI-like barrier must lag");
        }
    }

    #[test]
    fn tuned_plan_hierarchy_counts() {
        let model = CapabilityModel::paper_reference();
        // 64 ranks fill-tiles → 32 tile groups of 2.
        let plan = tuned_tree_plan(&model, TreeKind::Broadcast, 64, Schedule::FillTiles, 64);
        plan.assert_valid();
        assert_eq!(plan.num_ranks(), 64);
        // Every odd rank (tile mate) hangs under its even leader.
        assert_eq!(plan.parent[1], Some(0));
        assert_eq!(plan.parent[3], Some(2));
    }
}
