//! Console tables and CSV output.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// A simple aligned text table.
#[derive(Debug, Default, Clone)]
pub struct Table {
    pub title: String,
    pub header: Vec<String>,
    pub rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: &str, header: &[&str]) -> Self {
        Table {
            title: title.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width mismatch");
        self.rows.push(cells);
        self
    }

    /// Render with aligned columns.
    pub fn render(&self) -> String {
        let cols = self.header.len();
        let mut widths: Vec<usize> = self.header.iter().map(|h| h.len()).collect();
        for r in &self.rows {
            for (i, c) in r.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let line = |cells: &[String], out: &mut String| {
            for (i, c) in cells.iter().enumerate() {
                out.push_str(&format!("{:<w$}", c, w = widths[i] + 2));
                let _ = i;
            }
            out.push('\n');
        };
        line(&self.header, &mut out);
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * cols));
        out.push('\n');
        for r in &self.rows {
            line(r, &mut out);
        }
        out
    }

    /// Print to stdout.
    pub fn print(&self) {
        print!("{}", self.render());
    }

    /// Write as CSV under `results/<name>.csv` (creating the directory).
    pub fn write_csv(&self, name: &str) -> PathBuf {
        let dir = results_dir();
        fs::create_dir_all(&dir).expect("create results dir");
        let path = dir.join(format!("{name}.csv"));
        let mut f = fs::File::create(&path).expect("create csv");
        writeln!(f, "{}", self.header.join(",")).unwrap();
        for r in &self.rows {
            writeln!(f, "{}", r.join(",")).unwrap();
        }
        path
    }
}

/// `results/` at the workspace root (env override: `KNL_RESULTS_DIR`).
pub fn results_dir() -> PathBuf {
    if let Ok(d) = std::env::var("KNL_RESULTS_DIR") {
        return PathBuf::from(d);
    }
    // Walk up from the crate dir to the workspace root.
    let mut p = Path::new(env!("CARGO_MANIFEST_DIR")).to_path_buf();
    p.pop();
    p.pop();
    p.join("results")
}

/// Format a float with 1 decimal.
pub fn f1(x: f64) -> String {
    format!("{x:.1}")
}

/// Format a float with 2 decimals.
pub fn f2(x: f64) -> String {
    format!("{x:.2}")
}

/// Format seconds in engineering units.
pub fn secs(x: f64) -> String {
    if x >= 1.0 {
        format!("{x:.2} s")
    } else if x >= 1e-3 {
        format!("{:.2} ms", x * 1e3)
    } else if x >= 1e-6 {
        format!("{:.2} µs", x * 1e6)
    } else {
        format!("{:.0} ns", x * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns() {
        let mut t = Table::new("demo", &["a", "bbbb"]);
        t.row(vec!["xx".into(), "1".into()]);
        let r = t.render();
        assert!(r.contains("== demo =="));
        assert!(r.contains("a"));
        assert!(r.contains("xx"));
        assert_eq!(r.lines().count(), 4);
    }

    #[test]
    #[should_panic(expected = "row width mismatch")]
    fn bad_row_panics() {
        Table::new("t", &["a"]).row(vec!["1".into(), "2".into()]);
    }

    #[test]
    fn csv_written() {
        std::env::set_var(
            "KNL_RESULTS_DIR",
            std::env::temp_dir().join("knl_test_results"),
        );
        let mut t = Table::new("t", &["x", "y"]);
        t.row(vec!["1".into(), "2".into()]);
        let p = t.write_csv("unit_test_table");
        let s = std::fs::read_to_string(p).unwrap();
        assert_eq!(s, "x,y\n1,2\n");
        std::env::remove_var("KNL_RESULTS_DIR");
    }

    #[test]
    fn unit_formatting() {
        assert_eq!(secs(2.5), "2.50 s");
        assert_eq!(secs(0.0025), "2.50 ms");
        assert_eq!(secs(2.5e-6), "2.50 µs");
        assert_eq!(secs(250e-9), "250 ns");
        assert_eq!(f1(1.25), "1.2");
        assert_eq!(f2(1.254), "1.25");
    }
}
