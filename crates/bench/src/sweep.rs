//! Shared sweep plumbing for the figure/table binaries: an executor
//! built from the parsed command line plus the per-configuration
//! hardware-counter summary every binary prints after its sweep.

use crate::runconf::RunConf;
use knl_arch::MachineConfig;
use knl_benchsuite::SweepExecutor;
use knl_sim::{Counters, Machine};

/// Executor honouring `--jobs` / `KNL_JOBS`, with per-job progress lines.
pub fn executor(conf: &RunConf) -> SweepExecutor {
    SweepExecutor::new(conf.jobs).progress(true)
}

/// A machine honouring `--check` / `KNL_CHECK`. Jobs that build their
/// machine through this helper run under the requested coherence checking
/// level; call [`Machine::finish_check`] before dropping the machine so
/// the final counter/oracle reconciliation runs too.
pub fn machine(conf: &RunConf, cfg: MachineConfig) -> Machine {
    Machine::with_check(cfg, conf.check)
}

/// One-line hardware-counter summary for a finished configuration.
pub fn print_counters(label: &str, c: &Counters) {
    eprintln!(
        "[{label}] counters: l1={} l2={} remote={} ddr={} mcdram={} \
         mcache={}h/{}m wb={} inv={} nt={}",
        c.l1_hits,
        c.l2_hits,
        c.remote_cache_hits,
        c.ddr_accesses,
        c.mcdram_accesses,
        c.mcache_hits,
        c.mcache_misses,
        c.writebacks,
        c.invalidations,
        c.nt_stores,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runconf::Effort;

    #[test]
    fn executor_respects_jobs() {
        let conf = RunConf {
            effort: Effort::Quick,
            jobs: 3,
            check: knl_sim::CheckLevel::Off,
        };
        assert_eq!(executor(&conf).jobs(), 3);
    }

    #[test]
    fn machine_helper_carries_check_level() {
        use knl_arch::{ClusterMode, MemoryMode};
        let mut conf = RunConf {
            effort: Effort::Quick,
            jobs: 1,
            check: knl_sim::CheckLevel::Invariants,
        };
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        let m = machine(&conf, cfg.clone());
        assert_eq!(m.check_level(), knl_sim::CheckLevel::Invariants);
        conf.check = knl_sim::CheckLevel::Off;
        assert_eq!(machine(&conf, cfg).check_level(), knl_sim::CheckLevel::Off);
    }
}
