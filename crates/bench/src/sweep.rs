//! Shared sweep plumbing for the figure/table binaries: an executor
//! built from the parsed command line plus the per-configuration
//! hardware-counter summary every binary prints after its sweep.

use crate::runconf::RunConf;
use knl_benchsuite::SweepExecutor;
use knl_sim::Counters;

/// Executor honouring `--jobs` / `KNL_JOBS`, with per-job progress lines.
pub fn executor(conf: &RunConf) -> SweepExecutor {
    SweepExecutor::new(conf.jobs).progress(true)
}

/// One-line hardware-counter summary for a finished configuration.
pub fn print_counters(label: &str, c: &Counters) {
    eprintln!(
        "[{label}] counters: l1={} l2={} remote={} ddr={} mcdram={} \
         mcache={}h/{}m wb={} inv={} nt={}",
        c.l1_hits,
        c.l2_hits,
        c.remote_cache_hits,
        c.ddr_accesses,
        c.mcdram_accesses,
        c.mcache_hits,
        c.mcache_misses,
        c.writebacks,
        c.invalidations,
        c.nt_stores,
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runconf::Effort;

    #[test]
    fn executor_respects_jobs() {
        let conf = RunConf {
            effort: Effort::Quick,
            jobs: 3,
        };
        assert_eq!(executor(&conf).jobs(), 3);
    }
}
