//! Shared sweep plumbing for the figure/table binaries: an executor
//! built from the parsed command line, machines honouring the observer
//! flags (`--check`, `--trace-level`), the per-configuration
//! hardware-counter summary every binary prints after its sweep, and the
//! [`TraceSink`] that merges per-job trace sections deterministically.

use crate::output::results_dir;
use crate::runconf::RunConf;
use knl_arch::MachineConfig;
use knl_benchsuite::SweepExecutor;
use knl_sim::{Counters, Machine, TraceLevel};
use std::path::PathBuf;
use std::sync::Mutex;

/// Executor honouring `--jobs` / `KNL_JOBS`, with per-job progress lines.
pub fn executor(conf: &RunConf) -> SweepExecutor {
    SweepExecutor::new(conf.jobs).progress(true)
}

/// A machine honouring `--check` / `KNL_CHECK`, `--trace-level` /
/// `KNL_TRACE` and `--analyze` / `KNL_ANALYZE`. Jobs that build their
/// machine through this helper run under the requested observer levels;
/// call [`Machine::finish_check`] before dropping the machine so the
/// final counter/oracle reconciliation runs, and hand the machine to
/// [`TraceSink::submit`] so its trace section is collected.
pub fn machine(conf: &RunConf, cfg: MachineConfig) -> Machine {
    Machine::with_observer_config(cfg, conf.observer_config())
}

/// Collects per-job serialized trace sections and writes one merged trace
/// file. Jobs may finish in any order on the worker pool; sections are
/// sorted by job index before writing, so the merged file is byte-identical
/// for every `--jobs` value (the same contract the sweep results obey).
pub struct TraceSink {
    level: TraceLevel,
    path: Option<PathBuf>,
    parts: Mutex<Vec<(usize, String)>>,
}

impl TraceSink {
    /// Sink for one binary's sweep; `label` names the default output file
    /// (`results/<label>.trace`) when `--trace PATH` was not given.
    pub fn new(conf: &RunConf, label: &str) -> TraceSink {
        let path = match conf.trace {
            TraceLevel::Off => None,
            _ => Some(
                conf.trace_path
                    .as_ref()
                    .map(PathBuf::from)
                    .unwrap_or_else(|| results_dir().join(format!("{label}.trace"))),
            ),
        };
        TraceSink {
            level: conf.trace,
            path,
            parts: Mutex::new(Vec::new()),
        }
    }

    /// Detach `m`'s tracer and store its serialized section under `job`.
    /// No-op (and allocation-free) when tracing is off.
    pub fn submit(&self, job: usize, m: &mut Machine) {
        let tracer = m.take_tracer();
        self.submit_tracer(job, tracer);
    }

    /// Store an already-detached tracer's section under `job` (the shape
    /// the suite's `run_configs_observed` hands back).
    pub fn submit_tracer(&self, job: usize, tracer: Option<Box<knl_sim::Tracer>>) {
        if let Some(tr) = tracer {
            let mut s = String::new();
            use std::fmt::Write as _;
            let _ = writeln!(s, "# job {job}");
            tr.serialize_into(&mut s);
            self.parts
                .lock()
                .expect("trace sink poisoned")
                .push((job, s));
        }
    }

    /// Write the merged trace file; returns its path (None when tracing is
    /// off). Sections appear in canonical job order regardless of the
    /// completion order under `--jobs N`.
    pub fn write(&self) -> std::io::Result<Option<PathBuf>> {
        let Some(path) = self.path.as_ref() else {
            return Ok(None);
        };
        let mut parts = self.parts.lock().expect("trace sink poisoned");
        parts.sort_by_key(|&(job, _)| job);
        let mut out = format!("# knl-trace v1 level={}\n", self.level.name());
        for (_, s) in parts.iter() {
            out.push_str(s);
        }
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, out)?;
        eprintln!("wrote {}", path.display());
        Ok(Some(path.clone()))
    }
}

/// One-line hardware-counter summary for a finished configuration.
pub fn print_counters(label: &str, c: &Counters) {
    eprintln!("[{label}] counters: {c}");
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runconf::Effort;
    use knl_sim::CheckLevel;

    fn conf(jobs: usize, check: CheckLevel, trace: TraceLevel) -> RunConf {
        RunConf {
            effort: Effort::Quick,
            jobs,
            check,
            trace,
            trace_path: None,
            analyze: knl_sim::AnalyzeLevel::Off,
        }
    }

    #[test]
    fn executor_respects_jobs() {
        let c = conf(3, CheckLevel::Off, TraceLevel::Off);
        assert_eq!(executor(&c).jobs(), 3);
    }

    #[test]
    fn machine_helper_carries_observer_levels() {
        use knl_arch::{ClusterMode, MemoryMode};
        let mut c = conf(1, CheckLevel::Invariants, TraceLevel::Summary);
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        let m = machine(&c, cfg.clone());
        assert_eq!(m.check_level(), CheckLevel::Invariants);
        assert_eq!(m.trace_level(), TraceLevel::Summary);
        c.check = CheckLevel::Off;
        c.trace = TraceLevel::Off;
        let m = machine(&c, cfg.clone());
        assert_eq!(m.check_level(), CheckLevel::Off);
        assert_eq!(m.trace_level(), TraceLevel::Off);
        assert_eq!(m.analyze_level(), knl_sim::AnalyzeLevel::Off);
        c.analyze = knl_sim::AnalyzeLevel::Error;
        let m = machine(&c, cfg);
        assert_eq!(m.analyze_level(), knl_sim::AnalyzeLevel::Error);
    }

    #[test]
    fn sink_merges_sections_in_job_order() {
        use knl_arch::{ClusterMode, MemoryMode};
        let dir = std::env::temp_dir().join("knl-trace-sink-test");
        let path = dir.join("out.trace");
        let mut c = conf(1, CheckLevel::Off, TraceLevel::Summary);
        c.trace_path = Some(path.to_string_lossy().into_owned());
        let sink = TraceSink::new(&c, "unused");
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        // Submit out of order; the file must come out in job order.
        for job in [2usize, 0, 1] {
            let mut m = machine(&c, cfg.clone());
            m.access(
                knl_arch::CoreId(0),
                4096,
                knl_sim::AccessKind::Read,
                job as u64,
            );
            sink.submit(job, &mut m);
        }
        let written = sink.write().unwrap().unwrap();
        let text = std::fs::read_to_string(&written).unwrap();
        let jobs: Vec<&str> = text.lines().filter(|l| l.starts_with("# job ")).collect();
        assert_eq!(jobs, ["# job 0", "# job 1", "# job 2"]);
        assert!(text.starts_with("# knl-trace v1 level=summary\n"));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sink_off_writes_nothing() {
        let c = conf(1, CheckLevel::Off, TraceLevel::Off);
        let sink = TraceSink::new(&c, "off-test");
        assert_eq!(sink.write().unwrap(), None);
    }
}
