//! Command-line handling shared by the figure/table binaries.

use knl_benchsuite::SuiteParams;

/// Effort level of a regeneration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sweeps, fast (~seconds per artifact). Default.
    Quick,
    /// The paper's sweeps (minutes per artifact).
    Paper,
}

impl Effort {
    pub fn suite_params(self) -> SuiteParams {
        match self {
            Effort::Quick => SuiteParams::quick(),
            Effort::Paper => SuiteParams::paper(),
        }
    }

    /// Iterations for collective measurements.
    pub fn collective_iters(self) -> usize {
        match self {
            Effort::Quick => 9,
            Effort::Paper => 41,
        }
    }

    /// Thread counts for the collective figures (Figs. 6–8).
    pub fn collective_threads(self) -> Vec<usize> {
        match self {
            Effort::Quick => vec![4, 16, 64],
            Effort::Paper => vec![2, 4, 8, 16, 32, 64],
        }
    }
}

/// Parse `--paper` / `--quick` from argv (quick is the default).
pub fn effort_from_args() -> Effort {
    let mut effort = Effort::Quick;
    for a in std::env::args().skip(1) {
        match a.as_str() {
            "--paper" | "--full" => effort = Effort::Paper,
            "--quick" => effort = Effort::Quick,
            "--help" | "-h" => {
                eprintln!("usage: [--quick|--paper]  (quick sweeps are the default)");
                std::process::exit(0);
            }
            other => {
                eprintln!("unknown argument: {other}");
                std::process::exit(2);
            }
        }
    }
    effort
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_is_bigger() {
        assert!(Effort::Paper.collective_iters() > Effort::Quick.collective_iters());
        assert!(
            Effort::Paper.collective_threads().len() > Effort::Quick.collective_threads().len()
        );
        assert!(Effort::Paper.suite_params().iters > Effort::Quick.suite_params().iters);
    }
}
