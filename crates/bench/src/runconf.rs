//! Command-line handling shared by the figure/table binaries.

use knl_benchsuite::SuiteParams;
use knl_sim::{AnalyzeLevel, CheckLevel, ObserverConfig, TraceLevel};

/// Effort level of a regeneration run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Effort {
    /// Small sweeps, fast (~seconds per artifact). Default.
    Quick,
    /// The paper's sweeps (minutes per artifact).
    Paper,
}

impl Effort {
    pub fn suite_params(self) -> SuiteParams {
        match self {
            Effort::Quick => SuiteParams::quick(),
            Effort::Paper => SuiteParams::paper(),
        }
    }

    /// Iterations for collective measurements.
    pub fn collective_iters(self) -> usize {
        match self {
            Effort::Quick => 9,
            Effort::Paper => 41,
        }
    }

    /// Thread counts for the collective figures (Figs. 6–8).
    pub fn collective_threads(self) -> Vec<usize> {
        match self {
            Effort::Quick => vec![4, 16, 64],
            Effort::Paper => vec![2, 4, 8, 16, 32, 64],
        }
    }
}

/// Parsed command line shared by every figure/table binary.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunConf {
    /// Sweep sizes: `--quick` (default) or `--paper`.
    pub effort: Effort,
    /// Worker threads for independent sweep jobs (`--jobs N`, `KNL_JOBS`,
    /// or the machine's available parallelism). `1` forces the serial
    /// path; results are bit-identical either way.
    pub jobs: usize,
    /// Coherence checking level (`--check off|invariants|full`, or
    /// `KNL_CHECK`). A pure observer: results are bit-identical at every
    /// level; non-`off` levels panic on any protocol violation.
    pub check: CheckLevel,
    /// Structured event tracing level (`--trace-level off|summary|full`,
    /// or `KNL_TRACE`). Like `check`, a pure observer.
    pub trace: TraceLevel,
    /// Trace output path (`--trace PATH`). `--trace` without an explicit
    /// `--trace-level` implies `full`; a non-off level without a path
    /// writes `results/<label>.trace`.
    pub trace_path: Option<String>,
    /// Static workload analysis level (`--analyze off|error|warn|info`,
    /// or `KNL_ANALYZE`). A pure pre-pass over the programs each run
    /// executes: panics on `Error` findings (races, deadlocks, pairing
    /// errors), prints lower severities; never changes results.
    pub analyze: AnalyzeLevel,
}

impl RunConf {
    /// Parse argv; exits on `--help` or unknown arguments.
    pub fn from_args() -> RunConf {
        Self::parse(std::env::args().skip(1)).unwrap_or_else(|err| {
            eprintln!("{err}");
            std::process::exit(2);
        })
    }

    /// Parse an argument list (testable core of [`from_args`]).
    pub fn parse(args: impl IntoIterator<Item = String>) -> Result<RunConf, String> {
        let mut conf = RunConf {
            effort: Effort::Quick,
            jobs: knl_benchsuite::default_jobs(),
            check: default_check(),
            trace: default_trace(),
            trace_path: None,
            analyze: default_analyze(),
        };
        let mut explicit_level = false;
        let mut args = args.into_iter();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--paper" | "--full" => conf.effort = Effort::Paper,
                "--quick" => conf.effort = Effort::Quick,
                "--jobs" | "-j" => {
                    let v = args.next().ok_or("--jobs requires a value")?;
                    conf.jobs = parse_jobs(&v)?;
                }
                "--check" => {
                    let v = args.next().ok_or("--check requires a value")?;
                    conf.check = parse_check(&v)?;
                }
                "--trace" => {
                    let v = args.next().ok_or("--trace requires a path")?;
                    conf.trace_path = Some(v);
                }
                "--trace-level" => {
                    let v = args.next().ok_or("--trace-level requires a value")?;
                    conf.trace = parse_trace(&v)?;
                    explicit_level = true;
                }
                "--analyze" => {
                    let v = args.next().ok_or("--analyze requires a value")?;
                    conf.analyze = parse_analyze(&v)?;
                }
                other => {
                    if let Some(v) = other.strip_prefix("--jobs=") {
                        conf.jobs = parse_jobs(v)?;
                    } else if let Some(v) = other.strip_prefix("--check=") {
                        conf.check = parse_check(v)?;
                    } else if let Some(v) = other.strip_prefix("--trace-level=") {
                        conf.trace = parse_trace(v)?;
                        explicit_level = true;
                    } else if let Some(v) = other.strip_prefix("--trace=") {
                        conf.trace_path = Some(v.to_string());
                    } else if let Some(v) = other.strip_prefix("--analyze=") {
                        conf.analyze = parse_analyze(v)?;
                    } else if other == "--help" || other == "-h" {
                        eprintln!(
                            "usage: [--quick|--paper] [--jobs N] [--check LEVEL]\n\
                             \x20       [--trace PATH] [--trace-level LEVEL]\n\
                             \x20       [--analyze LEVEL]\n\
                             \x20 quick sweeps are the default; --jobs defaults to KNL_JOBS\n\
                             \x20 or the available parallelism (--jobs 1 runs serially;\n\
                             \x20 results are bit-identical for every N)\n\
                             \x20 --check off|invariants|full (default KNL_CHECK or off)\n\
                             \x20 runs the coherence invariant checker / memory oracle;\n\
                             \x20 it never changes results, only panics on violations\n\
                             \x20 --trace-level off|summary|full (default KNL_TRACE or off)\n\
                             \x20 records structured protocol events; a pure observer,\n\
                             \x20 never changes results. --trace PATH sets the output file\n\
                             \x20 (default results/<name>.trace) and implies --trace-level\n\
                             \x20 full; aggregate with the knl-trace tool\n\
                             \x20 --analyze off|error|warn|info (default KNL_ANALYZE or off)\n\
                             \x20 statically checks workloads for races/deadlocks before\n\
                             \x20 running; a pure pre-pass, never changes results"
                        );
                        std::process::exit(0);
                    } else {
                        return Err(format!("unknown argument: {other}"));
                    }
                }
            }
        }
        if conf.trace_path.is_some() && !explicit_level && conf.trace == TraceLevel::Off {
            conf.trace = TraceLevel::Full;
        }
        Ok(conf)
    }

    /// The observer set this command line asks for, as one
    /// [`ObserverConfig`] for [`knl_sim::Machine::with_observer_config`].
    pub fn observer_config(&self) -> ObserverConfig {
        ObserverConfig::default()
            .check(self.check)
            .trace(self.trace)
            .analyze(self.analyze)
    }
}

fn parse_jobs(v: &str) -> Result<usize, String> {
    match v.parse::<usize>() {
        Ok(n) if n >= 1 => Ok(n),
        _ => Err(format!("--jobs expects a positive integer, got {v:?}")),
    }
}

fn parse_check(v: &str) -> Result<CheckLevel, String> {
    CheckLevel::parse(v).ok_or_else(|| format!("--check expects off|invariants|full, got {v:?}"))
}

/// The `KNL_CHECK` environment default (`off` when unset or unparsable).
fn default_check() -> CheckLevel {
    std::env::var("KNL_CHECK")
        .ok()
        .and_then(|v| CheckLevel::parse(&v))
        .unwrap_or(CheckLevel::Off)
}

fn parse_trace(v: &str) -> Result<TraceLevel, String> {
    TraceLevel::parse(v).ok_or_else(|| format!("--trace-level expects off|summary|full, got {v:?}"))
}

/// The `KNL_TRACE` environment default (`off` when unset or unparsable).
fn default_trace() -> TraceLevel {
    std::env::var("KNL_TRACE")
        .ok()
        .and_then(|v| TraceLevel::parse(&v))
        .unwrap_or(TraceLevel::Off)
}

fn parse_analyze(v: &str) -> Result<AnalyzeLevel, String> {
    AnalyzeLevel::parse(v)
        .ok_or_else(|| format!("--analyze expects off|error|warn|info, got {v:?}"))
}

/// The `KNL_ANALYZE` environment default (`off` when unset or unparsable).
fn default_analyze() -> AnalyzeLevel {
    std::env::var("KNL_ANALYZE")
        .ok()
        .and_then(|v| AnalyzeLevel::parse(&v))
        .unwrap_or(AnalyzeLevel::Off)
}

/// Parse `--paper` / `--quick` from argv (quick is the default).
pub fn effort_from_args() -> Effort {
    RunConf::from_args().effort
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(args: &[&str]) -> Result<RunConf, String> {
        RunConf::parse(args.iter().map(|s| s.to_string()))
    }

    #[test]
    fn paper_is_bigger() {
        assert!(Effort::Paper.collective_iters() > Effort::Quick.collective_iters());
        assert!(
            Effort::Paper.collective_threads().len() > Effort::Quick.collective_threads().len()
        );
        assert!(Effort::Paper.suite_params().iters > Effort::Quick.suite_params().iters);
    }

    #[test]
    fn jobs_flag_forms() {
        assert_eq!(parse(&["--jobs", "4"]).unwrap().jobs, 4);
        assert_eq!(parse(&["--jobs=2"]).unwrap().jobs, 2);
        assert_eq!(parse(&["-j", "8"]).unwrap().jobs, 8);
        assert_eq!(
            parse(&["--paper", "--jobs", "3"]).unwrap(),
            RunConf {
                effort: Effort::Paper,
                jobs: 3,
                check: CheckLevel::Off,
                trace: TraceLevel::Off,
                trace_path: None,
                analyze: AnalyzeLevel::Off,
            }
        );
    }

    #[test]
    fn trace_flag_forms() {
        assert_eq!(parse(&[]).unwrap().trace, TraceLevel::Off);
        assert_eq!(
            parse(&["--trace-level", "summary"]).unwrap().trace,
            TraceLevel::Summary
        );
        assert_eq!(
            parse(&["--trace-level=full"]).unwrap().trace,
            TraceLevel::Full
        );
        let c = parse(&["--trace", "out.trace"]).unwrap();
        assert_eq!(c.trace_path.as_deref(), Some("out.trace"));
        assert_eq!(c.trace, TraceLevel::Full, "--trace implies full");
        let c = parse(&["--trace=x.trace", "--trace-level", "summary"]).unwrap();
        assert_eq!(c.trace, TraceLevel::Summary, "explicit level wins");
        assert_eq!(c.trace_path.as_deref(), Some("x.trace"));
    }

    #[test]
    fn bad_trace_rejected() {
        assert!(parse(&["--trace"]).is_err());
        assert!(parse(&["--trace-level"]).is_err());
        assert!(parse(&["--trace-level", "verbose"]).is_err());
        assert!(parse(&["--trace-level=chatty"]).is_err());
    }

    #[test]
    fn check_flag_forms() {
        assert_eq!(parse(&[]).unwrap().check, CheckLevel::Off);
        assert_eq!(
            parse(&["--check", "invariants"]).unwrap().check,
            CheckLevel::Invariants
        );
        assert_eq!(
            parse(&["--check=full"]).unwrap().check,
            CheckLevel::FullOracle
        );
        assert_eq!(parse(&["--check=off"]).unwrap().check, CheckLevel::Off);
    }

    #[test]
    fn bad_check_rejected() {
        assert!(parse(&["--check"]).is_err());
        assert!(parse(&["--check", "sometimes"]).is_err());
        assert!(parse(&["--check=maybe"]).is_err());
    }

    #[test]
    fn analyze_flag_forms() {
        assert_eq!(parse(&[]).unwrap().analyze, AnalyzeLevel::Off);
        assert_eq!(
            parse(&["--analyze", "error"]).unwrap().analyze,
            AnalyzeLevel::Error
        );
        assert_eq!(
            parse(&["--analyze=warn"]).unwrap().analyze,
            AnalyzeLevel::Warn
        );
        assert_eq!(
            parse(&["--analyze=on"]).unwrap().analyze,
            AnalyzeLevel::Warn
        );
        assert_eq!(
            parse(&["--analyze=info"]).unwrap().analyze,
            AnalyzeLevel::Info
        );
    }

    #[test]
    fn bad_analyze_rejected() {
        assert!(parse(&["--analyze"]).is_err());
        assert!(parse(&["--analyze", "loudly"]).is_err());
        assert!(parse(&["--analyze=deep"]).is_err());
    }

    #[test]
    fn bad_jobs_rejected() {
        assert!(parse(&["--jobs"]).is_err());
        assert!(parse(&["--jobs", "0"]).is_err());
        assert!(parse(&["--jobs", "many"]).is_err());
        assert!(parse(&["--bogus"]).is_err());
    }

    #[test]
    fn default_jobs_positive() {
        assert!(parse(&[]).unwrap().jobs >= 1);
    }
}
