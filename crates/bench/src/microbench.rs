//! A tiny timing harness for the `benches/` targets (which build with
//! `harness = false` and no external crates): warm up, auto-size a batch,
//! take a handful of samples, report the median.
//!
//! Results can also be captured machine-readably: [`BenchResult`] encodes
//! one case, and [`trajectory_json`]/[`parse_trajectory`] encode a whole
//! suite run as the `BENCH_<pr>.json` format `knl-bench-record` writes and
//! diffs (DESIGN.md §6). Encoding goes through [`knl_stats::json`], so key
//! order is sorted and floats are shortest-round-trip — renders are
//! bit-stable and diff-friendly.

use knl_stats::json::Json;
use std::time::{Duration, Instant};

/// Samples per case (median is reported).
const SAMPLES: usize = 7;
/// Minimum wall time of one sample batch.
const MIN_BATCH: Duration = Duration::from_millis(5);

/// Batch size forced by `KNL_BENCH_BATCH` (CI sets this so recorded
/// trajectories use the same batch shape on every run), or `None` to
/// auto-size by doubling until a batch takes [`MIN_BATCH`].
fn fixed_batch() -> Option<usize> {
    std::env::var("KNL_BENCH_BATCH")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&b| b > 0)
}

/// Measure one logical iteration of `f` and return the median ns/iter.
pub fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    // Double the batch until one batch is long enough to time reliably
    // (or use the fixed CI batch size verbatim).
    let mut batch = fixed_batch().unwrap_or(1);
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if t.elapsed() >= MIN_BATCH || batch >= 1 << 22 || fixed_batch().is_some() {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

/// Print one result line; `bytes` per iteration adds a GB/s column.
pub fn report(group: &str, name: &str, ns_per_iter: f64, bytes: Option<u64>) {
    let rate = match bytes {
        Some(b) if ns_per_iter > 0.0 => {
            format!("  {:8.2} GB/s", b as f64 / ns_per_iter)
        }
        _ => String::new(),
    };
    println!("{group}/{name}: {ns_per_iter:12.1} ns/iter{rate}");
}

/// Measure and report in one call.
pub fn case<R>(group: &str, name: &str, bytes: Option<u64>, f: impl FnMut() -> R) {
    let ns = measure(f);
    report(group, name, ns, bytes);
}

/// One measured case of a recorded suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchResult {
    pub group: String,
    pub name: String,
    /// Median wall time of one logical iteration.
    pub ns_per_iter: f64,
    /// Bytes moved per iteration, when the case is a bandwidth case.
    pub bytes: Option<u64>,
}

impl BenchResult {
    /// Stable identity used to match cases across trajectories.
    pub fn key(&self) -> String {
        format!("{}/{}", self.group, self.name)
    }

    pub fn to_json(&self) -> Json {
        Json::obj(vec![
            ("group", Json::Str(self.group.clone())),
            ("name", Json::Str(self.name.clone())),
            ("ns_per_iter", Json::Num(self.ns_per_iter)),
            (
                "bytes",
                self.bytes.map_or(Json::Null, |b| Json::Num(b as f64)),
            ),
        ])
    }

    pub fn from_json(v: &Json) -> Option<BenchResult> {
        Some(BenchResult {
            group: v.get("group")?.as_str()?.to_string(),
            name: v.get("name")?.as_str()?.to_string(),
            ns_per_iter: v.get("ns_per_iter")?.as_f64()?,
            bytes: v.get("bytes").and_then(Json::as_u64),
        })
    }
}

/// Format tag of the `BENCH_<pr>.json` trajectory files.
pub const TRAJECTORY_FORMAT: &str = "knl-bench-trajectory-v1";

/// Encode one suite run as a trajectory document. Rendering the returned
/// value is bit-stable: keys are sorted and floats round-trip exactly.
pub fn trajectory_json(pr: u64, suite: &str, results: &[BenchResult]) -> Json {
    Json::obj(vec![
        ("format", Json::Str(TRAJECTORY_FORMAT.to_string())),
        ("pr", Json::Num(pr as f64)),
        ("suite", Json::Str(suite.to_string())),
        ("results", Json::arr(results, BenchResult::to_json)),
    ])
}

/// Decode a trajectory document; `None` if the format tag or any case is
/// malformed (callers treat that as "no baseline").
pub fn parse_trajectory(doc: &Json) -> Option<Vec<BenchResult>> {
    if doc.get("format")?.as_str()? != TRAJECTORY_FORMAT {
        return None;
    }
    doc.get("results")?
        .as_arr()?
        .iter()
        .map(BenchResult::from_json)
        .collect()
}

/// One case present in both an old and a new trajectory.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchDelta {
    pub key: String,
    pub old_ns: f64,
    pub new_ns: f64,
}

impl BenchDelta {
    /// `new / old`: 1.0 is unchanged, above 1.0 is slower.
    pub fn ratio(&self) -> f64 {
        if self.old_ns > 0.0 {
            self.new_ns / self.old_ns
        } else {
            1.0
        }
    }
}

/// Pair up cases shared by two trajectories, in the old document's order.
/// Cases only one side has are skipped (the bin reports them separately).
pub fn diff_trajectories(old: &[BenchResult], new: &[BenchResult]) -> Vec<BenchDelta> {
    old.iter()
        .filter_map(|o| {
            let n = new.iter().find(|n| n.key() == o.key())?;
            Some(BenchDelta {
                key: o.key(),
                old_ns: o.ns_per_iter,
                new_ns: n.ns_per_iter,
            })
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive() {
        let ns = measure(|| (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
    }

    fn sample_results() -> Vec<BenchResult> {
        vec![
            BenchResult {
                group: "sim_access".into(),
                name: "l1_hit".into(),
                ns_per_iter: 38.7,
                bytes: None,
            },
            BenchResult {
                group: "sim_stream".into(),
                name: "8_threads_triad".into(),
                ns_per_iter: 98706672.0,
                bytes: Some(64 * 1024 * 8 * 64),
            },
        ]
    }

    #[test]
    fn trajectory_roundtrips_bit_exactly() {
        let doc = trajectory_json(6, "simulator_throughput", &sample_results());
        let rendered = doc.render();
        let reparsed = Json::parse(&rendered).unwrap();
        assert_eq!(reparsed.render(), rendered);
        assert_eq!(parse_trajectory(&reparsed).unwrap(), sample_results());
    }

    #[test]
    fn trajectory_render_is_canonical() {
        // Sorted keys and shortest-round-trip floats: the exact bytes are
        // part of the format (diffs of checked-in BENCH_*.json stay clean).
        let doc = trajectory_json(6, "s", &sample_results()[..1]);
        assert_eq!(
            doc.render(),
            r#"{"format":"knl-bench-trajectory-v1","pr":6.0,"results":[{"bytes":null,"group":"sim_access","name":"l1_hit","ns_per_iter":38.7}],"suite":"s"}"#
        );
    }

    #[test]
    fn wrong_format_tag_is_no_baseline() {
        let doc = Json::obj(vec![
            ("format", Json::Str("something-else".into())),
            ("results", Json::Arr(vec![])),
        ]);
        assert!(parse_trajectory(&doc).is_none());
    }

    #[test]
    fn diff_matches_by_key_and_ratios() {
        let old = sample_results();
        let mut new = sample_results();
        new[0].ns_per_iter = 77.4; // 2x slower
        new[1].name = "renamed".into(); // no longer matches
        let deltas = diff_trajectories(&old, &new);
        assert_eq!(deltas.len(), 1);
        assert_eq!(deltas[0].key, "sim_access/l1_hit");
        assert!((deltas[0].ratio() - 2.0).abs() < 1e-12);
    }
}
