//! A tiny timing harness for the `benches/` targets (which build with
//! `harness = false` and no external crates): warm up, auto-size a batch,
//! take a handful of samples, report the median.

use std::time::{Duration, Instant};

/// Samples per case (median is reported).
const SAMPLES: usize = 7;
/// Minimum wall time of one sample batch.
const MIN_BATCH: Duration = Duration::from_millis(5);

/// Measure one logical iteration of `f` and return the median ns/iter.
pub fn measure<R>(mut f: impl FnMut() -> R) -> f64 {
    for _ in 0..3 {
        std::hint::black_box(f());
    }
    // Double the batch until one batch is long enough to time reliably.
    let mut batch = 1usize;
    loop {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        if t.elapsed() >= MIN_BATCH || batch >= 1 << 22 {
            break;
        }
        batch *= 2;
    }
    let mut samples: Vec<f64> = (0..SAMPLES)
        .map(|_| {
            let t = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            t.elapsed().as_nanos() as f64 / batch as f64
        })
        .collect();
    samples.sort_by(|a, b| a.total_cmp(b));
    samples[SAMPLES / 2]
}

/// Print one result line; `bytes` per iteration adds a GB/s column.
pub fn report(group: &str, name: &str, ns_per_iter: f64, bytes: Option<u64>) {
    let rate = match bytes {
        Some(b) if ns_per_iter > 0.0 => {
            format!("  {:8.2} GB/s", b as f64 / ns_per_iter)
        }
        _ => String::new(),
    };
    println!("{group}/{name}: {ns_per_iter:12.1} ns/iter{rate}");
}

/// Measure and report in one call.
pub fn case<R>(group: &str, name: &str, bytes: Option<u64>, f: impl FnMut() -> R) {
    let ns = measure(f);
    report(group, name, ns, bytes);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_returns_positive() {
        let ns = measure(|| (0..100u64).sum::<u64>());
        assert!(ns > 0.0);
    }
}
