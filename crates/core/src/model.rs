//! The capability model: fitted parameters extracted from suite results.

use knl_benchsuite::SuiteResults;
use knl_sim::StreamKind;
use knl_stats::{fit_linear, LinearFit};
use std::collections::BTreeMap;

/// Bandwidth curve: achievable GB/s as a function of thread count for one
/// (kernel, target) pair, taken from the fill-tiles sweep (the schedule the
/// paper's applications use) with piecewise-linear interpolation.
#[derive(Debug, Clone, Default)]
pub struct BwCurve {
    /// (threads, GB/s median), sorted by threads.
    pub points: Vec<(usize, f64)>,
}

impl BwCurve {
    /// Achievable GB/s at `threads` threads (piecewise-linear).
    pub fn gbps(&self, threads: usize) -> f64 {
        if self.points.is_empty() {
            return f64::NAN;
        }
        let t = threads as f64;
        if t <= self.points[0].0 as f64 {
            // Below the first sample: scale linearly from zero threads
            // (bandwidth is thread-limited there).
            return self.points[0].1 * t / self.points[0].0 as f64;
        }
        for w in self.points.windows(2) {
            let (t0, b0) = (w[0].0 as f64, w[0].1);
            let (t1, b1) = (w[1].0 as f64, w[1].1);
            if t <= t1 {
                return b0 + (b1 - b0) * (t - t0) / (t1 - t0);
            }
        }
        self.points.last().unwrap().1
    }
}

/// Memory-side capabilities.
#[derive(Debug, Clone, Default)]
pub struct MemCapability {
    /// Latency (ns) per target label ("DRAM", "MCDRAM", "cache").
    pub latency_ns: BTreeMap<String, f64>,
    /// Bandwidth curves per (kernel, target label).
    pub bw: BTreeMap<(String, String), BwCurve>,
}

impl MemCapability {
    /// Bandwidth curve for one (kernel, target), if measured.
    pub fn bw_curve(&self, kind: StreamKind, target: &str) -> Option<&BwCurve> {
        self.bw.get(&(kind.name().to_string(), target.to_string()))
    }

    /// Achievable bandwidth (GB/s) for `threads` threads.
    pub fn gbps(&self, kind: StreamKind, target: &str, threads: usize) -> Option<f64> {
        self.bw_curve(kind, target).map(|c| c.gbps(threads))
    }
}

/// The fitted capability model (paper §IV-A, §V-A).
#[derive(Debug, Clone)]
pub struct CapabilityModel {
    /// Configuration label the model was fitted on (e.g. "SNC4-flat").
    pub config: String,
    /// R_L: local cache read, ns.
    pub rl_ns: f64,
    /// R_R: remote cache-to-cache read, ns (S/F state — the common case for
    /// re-read flags; per-state values live in `remote_ns`).
    pub rr_ns: f64,
    /// R_I: read one line from memory, ns (the target collectives run in —
    /// MCDRAM when available, else DRAM/cache).
    pub ri_ns: f64,
    /// Same-tile latency per state letter.
    pub tile_ns: BTreeMap<char, f64>,
    /// Remote-tile latency per state letter.
    pub remote_ns: BTreeMap<char, f64>,
    /// Contention law T_C(N) = α + β·N (ns).
    pub contention: LinearFit,
    /// Multi-line read law α + β·lines (ns).
    pub multiline: LinearFit,
    /// costL1 for the sort model (ns per line from L1).
    pub l1_ns: f64,
    /// costL2 for the sort model (ns per line from L2, S/F state).
    pub l2_ns: f64,
    /// Memory latencies and bandwidth curves.
    pub mem: MemCapability,
}

impl CapabilityModel {
    /// Fit the model from suite results.
    pub fn from_suite(r: &SuiteResults) -> Self {
        let tile_ns: BTreeMap<char, f64> = r
            .cache
            .tile_ns
            .iter()
            .map(|(c, l)| (*c, l.median_ns()))
            .collect();
        let remote_ns: BTreeMap<char, f64> = r
            .cache
            .remote_ns
            .iter()
            .map(|(c, l)| (*c, l.median_ns()))
            .collect();
        let rl_ns = r
            .cache
            .local_ns
            .as_ref()
            .map(|l| l.median_ns())
            .unwrap_or(f64::NAN);
        // R_R: shared/forward remote read (flag re-reads find the flag in
        // the writer's cache in M; model-tuning uses the measured state mix —
        // we take the average of S/F and M as the paper's single R_R).
        let rr_ns = {
            let sf = remote_ns.get(&'S').or_else(|| remote_ns.get(&'F')).copied();
            let m = remote_ns.get(&'M').copied();
            match (sf, m) {
                (Some(a), Some(b)) => (a + b) / 2.0,
                (Some(a), None) | (None, Some(a)) => a,
                (None, None) => f64::NAN,
            }
        };

        let contention = if r.cache.contention.len() >= 2 {
            let xs: Vec<f64> = r.cache.contention.iter().map(|(n, _)| *n as f64).collect();
            let ys: Vec<f64> = r.cache.contention.iter().map(|(_, s)| s.median()).collect();
            fit_linear(&xs, &ys)
        } else {
            LinearFit::constant(rr_ns)
        };

        let multiline = if r.cache.multiline_read_ns.len() >= 2 {
            let xs: Vec<f64> = r
                .cache
                .multiline_read_ns
                .iter()
                .map(|(n, _)| *n as f64)
                .collect();
            let ys: Vec<f64> = r.cache.multiline_read_ns.iter().map(|(_, l)| *l).collect();
            fit_linear(&xs, &ys)
        } else {
            LinearFit::constant(rr_ns)
        };

        let mut mem = MemCapability::default();
        for (label, stat) in &r.mem.latency_ns {
            mem.latency_ns.insert(label.clone(), stat.median_ns());
        }
        for (kind, target, pts) in &r.mem.bw_sweeps {
            // Fill-tiles points only; collapse duplicates by max median.
            let mut by_threads: BTreeMap<usize, f64> = BTreeMap::new();
            for p in pts {
                if p.schedule == knl_arch::Schedule::FillTiles {
                    let e = by_threads.entry(p.threads).or_insert(0.0);
                    *e = e.max(p.gbps_median);
                }
            }
            mem.bw.insert(
                (kind.name().to_string(), target.clone()),
                BwCurve {
                    points: by_threads.into_iter().collect(),
                },
            );
        }

        // R_I: memory the collectives' buffers live in. Prefer MCDRAM (the
        // paper's Figs. 6–8 run in MCDRAM), fall back to whatever exists.
        let ri_ns = mem
            .latency_ns
            .get("MCDRAM")
            .or_else(|| mem.latency_ns.get("cache"))
            .or_else(|| mem.latency_ns.get("DRAM"))
            .copied()
            .unwrap_or(f64::NAN);

        let l2_ns = tile_ns.get(&'S').copied().unwrap_or(14.0);

        CapabilityModel {
            config: r.label(),
            rl_ns,
            rr_ns,
            ri_ns,
            tile_ns,
            remote_ns,
            contention,
            multiline,
            l1_ns: rl_ns,
            l2_ns,
            mem,
        }
    }

    /// T_C(N): contention cost for N simultaneous accesses, ns.
    pub fn tc_ns(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        self.contention.eval(n as f64).max(0.0)
    }

    /// Memory latency (ns) for a target label.
    pub fn mem_latency_ns(&self, target: &str) -> Option<f64> {
        self.mem.latency_ns.get(target).copied()
    }

    /// A reference model with the paper's own Table I/II numbers (SNC4-flat
    /// column), for tests and for running the optimizers without a
    /// simulation pass.
    pub fn paper_reference() -> Self {
        let mut tile = BTreeMap::new();
        tile.insert('M', 34.0);
        tile.insert('E', 17.0);
        tile.insert('S', 14.0);
        tile.insert('F', 14.0);
        let mut remote = BTreeMap::new();
        remote.insert('M', 114.5);
        remote.insert('E', 106.0);
        remote.insert('S', 107.0);
        remote.insert('F', 107.0);
        let mut mem = MemCapability::default();
        mem.latency_ns.insert("DRAM".into(), 135.0);
        mem.latency_ns.insert("MCDRAM".into(), 167.5);
        let ddr_read = BwCurve {
            points: vec![
                (1, 5.0),
                (4, 20.0),
                (8, 40.0),
                (16, 71.0),
                (32, 71.0),
                (64, 71.0),
            ],
        };
        let mc_read = BwCurve {
            points: vec![
                (1, 8.0),
                (8, 60.0),
                (16, 120.0),
                (32, 200.0),
                (64, 243.0),
                (128, 243.0),
            ],
        };
        let ddr_triad = BwCurve {
            points: vec![(1, 8.0), (8, 45.0), (16, 71.0), (32, 71.0), (64, 71.0)],
        };
        let mc_triad = BwCurve {
            points: vec![
                (1, 8.0),
                (8, 64.0),
                (16, 128.0),
                (32, 240.0),
                (64, 371.0),
                (256, 371.0),
            ],
        };
        let ddr_copy = BwCurve {
            points: vec![(1, 8.0), (8, 45.0), (16, 69.0), (64, 69.0)],
        };
        let mc_copy = BwCurve {
            points: vec![
                (1, 8.0),
                (8, 60.0),
                (16, 120.0),
                (32, 240.0),
                (64, 342.0),
                (256, 342.0),
            ],
        };
        mem.bw.insert(("read".into(), "DRAM".into()), ddr_read);
        mem.bw.insert(("read".into(), "MCDRAM".into()), mc_read);
        mem.bw.insert(("triad".into(), "DRAM".into()), ddr_triad);
        mem.bw.insert(("triad".into(), "MCDRAM".into()), mc_triad);
        mem.bw.insert(("copy".into(), "DRAM".into()), ddr_copy);
        mem.bw.insert(("copy".into(), "MCDRAM".into()), mc_copy);
        CapabilityModel {
            config: "SNC4-flat (paper Table I/II)".into(),
            rl_ns: 3.8,
            rr_ns: 110.0,
            ri_ns: 167.5,
            tile_ns: tile,
            remote_ns: remote,
            contention: knl_stats::LinearFit {
                alpha: 200.0,
                beta: 34.0,
                r2: 1.0,
                n: 8,
            },
            multiline: knl_stats::LinearFit {
                alpha: 100.0,
                beta: 8.5,
                r2: 1.0,
                n: 8,
            },
            l1_ns: 3.8,
            l2_ns: 14.0,
            mem,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_reference_sane() {
        let m = CapabilityModel::paper_reference();
        assert_eq!(m.rl_ns, 3.8);
        assert!(m.rr_ns > 100.0);
        assert_eq!(m.tc_ns(10), 200.0 + 34.0 * 10.0);
        assert!(m.mem_latency_ns("MCDRAM").unwrap() > m.mem_latency_ns("DRAM").unwrap());
    }

    #[test]
    fn bw_curve_interpolates() {
        let c = BwCurve {
            points: vec![(1, 10.0), (4, 40.0), (16, 70.0)],
        };
        assert_eq!(c.gbps(1), 10.0);
        assert_eq!(c.gbps(4), 40.0);
        assert!((c.gbps(2) - 20.0).abs() < 1e-9);
        assert!((c.gbps(10) - 55.0).abs() < 1e-9);
        assert_eq!(c.gbps(100), 70.0);
        // Below first point: linear from origin.
        let c2 = BwCurve {
            points: vec![(4, 40.0), (16, 70.0)],
        };
        assert!((c2.gbps(2) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn tc_zero_threads_is_zero() {
        let m = CapabilityModel::paper_reference();
        assert_eq!(m.tc_ns(0), 0.0);
    }

    #[test]
    fn from_suite_on_simulated_machine() {
        use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
        use knl_benchsuite::{run_full_suite, SuiteParams};
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let mut p = SuiteParams::quick();
        p.iters = 5;
        p.mem_lines_per_thread = 512;
        p.memlat_lines = 16 << 10;
        let r = run_full_suite(&cfg, &p);
        let m = CapabilityModel::from_suite(&r);
        // Table I bands.
        assert!((m.rl_ns - 3.8).abs() < 1.0, "R_L {}", m.rl_ns);
        assert!((80.0..170.0).contains(&m.rr_ns), "R_R {}", m.rr_ns);
        assert!((130.0..210.0).contains(&m.ri_ns), "R_I {}", m.ri_ns);
        assert!(
            (20.0..48.0).contains(&m.contention.beta),
            "β {}",
            m.contention.beta
        );
        assert!(m.multiline.beta > 0.0);
        // Bandwidth curves present and monotone-ish.
        let ddr = m.mem.gbps(StreamKind::Read, "DRAM", 32).unwrap();
        assert!(ddr > 30.0, "DDR read @32: {ddr}");
    }
}
