//! Efficiency assessment (§V-B.3): "We mark [...] when the overhead is over
//! 10% of the memory model, meaning that we are no longer bounded by the
//! memory bandwidth achievable by this algorithm, but instead we are
//! introducing extra overhead and not using our resources efficiently."

use crate::overhead::OverheadModel;

/// The paper's efficiency threshold.
pub const EFFICIENCY_THRESHOLD: f64 = 0.10;

/// Verdict for one (size, threads) operating point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Efficiency {
    /// Thread count of the operating point.
    pub threads: usize,
    /// Memory-model prediction, seconds.
    pub memory_s: f64,
    /// Modeled overhead, seconds.
    pub overhead_s: f64,
}

impl Efficiency {
    /// overhead / memory-model ratio.
    pub fn ratio(&self) -> f64 {
        if self.memory_s <= 0.0 {
            return f64::INFINITY;
        }
        self.overhead_s / self.memory_s
    }

    /// Memory-bound (efficient) per the 10% rule.
    pub fn is_efficient(&self) -> bool {
        self.ratio() <= EFFICIENCY_THRESHOLD
    }
}

/// Evaluate the rule over a thread sweep; returns per-thread verdicts and
/// the largest thread count that is still efficient (the vertical line in
/// Fig. 10), if any.
pub fn efficiency_sweep<F: Fn(usize) -> f64>(
    memory_model: F,
    overhead: &OverheadModel,
    threads: &[usize],
) -> (Vec<Efficiency>, Option<usize>) {
    let points: Vec<Efficiency> = threads
        .iter()
        .map(|&t| Efficiency {
            threads: t,
            memory_s: memory_model(t),
            overhead_s: overhead.seconds(t),
        })
        .collect();
    let last_efficient = points
        .iter()
        .filter(|p| p.is_efficient())
        .map(|p| p.threads)
        .max();
    (points, last_efficient)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_stats::LinearFit;

    fn overhead() -> OverheadModel {
        OverheadModel {
            fit: LinearFit {
                alpha: 1e-6,
                beta: 1e-6,
                r2: 1.0,
                n: 5,
            },
        }
    }

    #[test]
    fn ratio_and_rule() {
        let e = Efficiency {
            threads: 4,
            memory_s: 100e-6,
            overhead_s: 5e-6,
        };
        assert!((e.ratio() - 0.05).abs() < 1e-12);
        assert!(e.is_efficient());
        let bad = Efficiency {
            threads: 64,
            memory_s: 10e-6,
            overhead_s: 5e-6,
        };
        assert!(!bad.is_efficient());
    }

    #[test]
    fn sweep_finds_threshold() {
        // Memory model shrinking with threads; overhead growing: efficiency
        // dies somewhere in the middle.
        let mem = |t: usize| 400e-6 / t as f64;
        let (pts, last) = efficiency_sweep(mem, &overhead(), &[1, 2, 4, 8, 16, 32, 64]);
        assert_eq!(pts.len(), 7);
        let last = last.expect("small thread counts are efficient");
        assert!((2..64).contains(&last), "threshold at {last}");
        // Verdicts flip from efficient to not.
        assert!(pts[0].is_efficient());
        assert!(!pts.last().unwrap().is_efficient());
    }

    #[test]
    fn zero_memory_model_is_inefficient() {
        let e = Efficiency {
            threads: 1,
            memory_s: 0.0,
            overhead_s: 1e-9,
        };
        assert!(!e.is_efficient());
    }
}
