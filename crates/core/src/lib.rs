//! Capability models for manycore memory systems — the paper's primary
//! contribution.
//!
//! A [`CapabilityModel`] condenses the benchmark suite's measurements into
//! the analytic parameters the paper uses:
//!
//! * `R_L` — cost of reading a line from local cache,
//! * `R_R` — cost of reading a line from a remote cache,
//! * `R_I` — cost of reading a line from memory,
//! * the contention law `T_C(N) = α + β·N`,
//! * the multi-line transfer law `α + β·N`,
//! * per-state tile/remote latencies, and memory latency/bandwidth curves.
//!
//! On top of the model sit the paper's three applications:
//!
//! * **model-tuned communication algorithms**: generic broadcast/reduce
//!   trees optimized under Eq. 1 ([`tree_opt`], producing non-trivial trees
//!   like the paper's Fig. 1) and the dissemination barrier under Eq. 2
//!   ([`barrier_opt`]), each with min–max envelopes ([`minmax`], [`predict`]);
//! * the **merge-sort memory model** of Eqs. 3–5 with the measured-overhead
//!   extension and the 10% efficiency rule ([`sortmodel`], [`overhead`],
//!   [`efficiency`]);
//! * a **memory-mode advisor** that answers "will MCDRAM help this
//!   application?" from the model alone ([`advisor`]).

pub mod advisor;
pub mod barrier_opt;
pub mod efficiency;
pub mod minmax;
pub mod model;
pub mod overhead;
pub mod predict;
pub mod sortmodel;
pub mod tree;
pub mod tree_opt;

pub use barrier_opt::{optimize_barrier, BarrierPlan};
pub use minmax::MinMax;
pub use model::CapabilityModel;
pub use sortmodel::SortModel;
pub use tree::Tree;
pub use tree_opt::{optimize_tree, TreeKind, TreePlan};
