//! Min–max envelopes (§IV-B): "Because we cannot predict which thread wins
//! and how often a cache line is moved when at least one thread polls the
//! same variable, we model the best and worst case performance for each
//! algorithm [...]. We optimize for the best case because the worst rarely
//! happens in practice."

/// A best/worst-case pair (any unit; collectives use nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MinMax {
    /// Best-case value.
    pub best: f64,
    /// Worst-case value.
    pub worst: f64,
}

impl MinMax {
    /// Degenerate envelope (best == worst).
    pub fn point(v: f64) -> Self {
        MinMax { best: v, worst: v }
    }

    /// Envelope from explicit bounds.
    ///
    /// # Panics
    /// Panics if `best > worst`.
    pub fn new(best: f64, worst: f64) -> Self {
        assert!(best <= worst, "best {best} must not exceed worst {worst}");
        MinMax { best, worst }
    }

    /// Component-wise sum (sequential composition).
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: MinMax) -> MinMax {
        MinMax {
            best: self.best + other.best,
            worst: self.worst + other.worst,
        }
    }

    /// Component-wise max (parallel composition / makespan).
    pub fn max(self, other: MinMax) -> MinMax {
        MinMax {
            best: self.best.max(other.best),
            worst: self.worst.max(other.worst),
        }
    }

    /// Multiply both bounds by `k`.
    pub fn scale(self, k: f64) -> MinMax {
        MinMax {
            best: self.best * k,
            worst: self.worst * k,
        }
    }

    /// Does `v` fall inside the envelope (with `slack` fractional margin)?
    pub fn contains(&self, v: f64, slack: f64) -> bool {
        v >= self.best * (1.0 - slack) && v <= self.worst * (1.0 + slack)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn composition() {
        let a = MinMax::new(1.0, 2.0);
        let b = MinMax::new(3.0, 5.0);
        assert_eq!(a.add(b), MinMax::new(4.0, 7.0));
        assert_eq!(a.max(b), MinMax::new(3.0, 5.0));
        assert_eq!(a.scale(2.0), MinMax::new(2.0, 4.0));
    }

    #[test]
    fn contains_with_slack() {
        let e = MinMax::new(10.0, 20.0);
        assert!(e.contains(15.0, 0.0));
        assert!(e.contains(9.5, 0.1));
        assert!(!e.contains(25.0, 0.1));
        assert!(e.contains(21.9, 0.1));
    }

    #[test]
    #[should_panic(expected = "must not exceed")]
    fn inverted_panics() {
        MinMax::new(2.0, 1.0);
    }
}
