//! Min–max predictions for the collectives (the black "model shadow" of the
//! paper's Figs. 6–8).
//!
//! Best case: flag lines are found in S/F state and contention resolves in
//! arrival order. Worst case: every poll read finds the line Modified at
//! the writer and triggers an extra ownership bounce before the value is
//! visible; we charge one additional remote transfer plus the contention
//! intercept per polled line.

use crate::barrier_opt::optimize_barrier;
use crate::minmax::MinMax;
use crate::model::CapabilityModel;
use crate::tree_opt::{optimize_tree, tree_cost, TreeKind};

/// Pessimization applied to R_R and T_C for the worst case: every poll
/// finds the flag line Modified at the writer and pays a full extra bounce
/// (the contention intercept), and serialization is half again as bad.
fn worst_model(model: &CapabilityModel) -> CapabilityModel {
    let mut w = model.clone();
    let m_state = w.remote_ns.get(&'M').copied().unwrap_or(w.rr_ns);
    w.rr_ns = m_state + w.contention.alpha.max(0.0);
    w.contention.beta *= 1.5;
    w
}

/// Predicted broadcast envelope over `tiles` participants (ns).
pub fn predict_broadcast(model: &CapabilityModel, tiles: usize) -> MinMax {
    let best_plan = optimize_tree(model, tiles, TreeKind::Broadcast);
    let worst = tree_cost(&worst_model(model), &best_plan.tree, TreeKind::Broadcast);
    MinMax::new(best_plan.cost_ns.min(worst), worst)
}

/// Predicted reduce envelope over `tiles` participants (ns).
pub fn predict_reduce(model: &CapabilityModel, tiles: usize) -> MinMax {
    let best_plan = optimize_tree(model, tiles, TreeKind::Reduce);
    let worst = tree_cost(&worst_model(model), &best_plan.tree, TreeKind::Reduce);
    MinMax::new(best_plan.cost_ns.min(worst), worst)
}

/// Predicted allreduce envelope (tuned reduce followed by tuned broadcast).
pub fn predict_allreduce(model: &CapabilityModel, tiles: usize) -> MinMax {
    predict_reduce(model, tiles).add(predict_broadcast(model, tiles))
}

/// Predicted dissemination-barrier envelope over `threads` (ns).
pub fn predict_barrier(model: &CapabilityModel, threads: usize) -> MinMax {
    let best = optimize_barrier(model, threads);
    let w = worst_model(model);
    let worst = best.r as f64 * (w.ri_ns + best.m as f64 * w.rr_ns);
    MinMax::new(best.cost_ns.min(worst), worst.max(best.cost_ns))
}

/// Intra-tile flat stage cost for `k` extra threads in the same tile
/// (used when more threads than tiles participate: the paper's hierarchical
/// plan does a flat tree within the tile, polling local lines).
pub fn intra_tile_stage(model: &CapabilityModel, k: usize) -> f64 {
    if k == 0 {
        return 0.0;
    }
    let tile_sf = model.tile_ns.get(&'S').copied().unwrap_or(model.l2_ns);
    // Publish + k polls on the tile's L2 + gather of k acks.
    model.rl_ns + model.tc_ns(k).min(k as f64 * tile_sf) + k as f64 * tile_sf
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapabilityModel {
        CapabilityModel::paper_reference()
    }

    #[test]
    fn envelopes_are_ordered() {
        let m = model();
        for n in [2usize, 8, 32] {
            for f in [predict_broadcast, predict_reduce, predict_barrier] {
                let e = f(&m, n);
                assert!(e.best <= e.worst, "n={n}: {e:?}");
                assert!(e.best > 0.0);
            }
        }
    }

    #[test]
    fn allreduce_is_sum_of_phases() {
        let m = model();
        let a = predict_allreduce(&m, 16);
        let r = predict_reduce(&m, 16);
        let b = predict_broadcast(&m, 16);
        assert!((a.best - (r.best + b.best)).abs() < 1e-9);
        assert!((a.worst - (r.worst + b.worst)).abs() < 1e-9);
    }

    #[test]
    fn broadcast_grows_with_n() {
        let m = model();
        let a = predict_broadcast(&m, 4);
        let b = predict_broadcast(&m, 32);
        assert!(b.best > a.best);
    }

    #[test]
    fn barrier_at_64_threads_in_microsecond_range() {
        // Sanity: the paper's Fig. 6 shows model-tuned barriers at 64
        // threads around a few microseconds.
        let e = predict_barrier(&model(), 64);
        assert!(
            e.best > 300.0 && e.best < 10_000.0,
            "barrier best {} ns out of plausibility band",
            e.best
        );
    }

    #[test]
    fn intra_tile_stage_cheaper_than_remote_round() {
        let m = model();
        assert!(intra_tile_stage(&m, 1) < m.rr_ns);
        assert_eq!(intra_tile_stage(&m, 0), 0.0);
    }
}
