//! Model-tuned dissemination barrier (Eq. 2 of the paper):
//!
//! ```text
//! minimize  T_diss(r, m) = r · (R_I + m·R_R)
//! subject to r = ⌈log_{m+1}(n)⌉,  (m+1)^r ≥ n
//! ```
//!
//! Each of the `r` rounds has every thread communicate with `m` partners;
//! `R_R` is the remote-tile cost because "in each round there is at least
//! one thread communicating with a remote tile". The paper also notes that
//! a hierarchical (intra-tile + inter-tile) dissemination does *not* pay
//! off: it would add an intra-tile gather and broadcast stage.

use crate::model::CapabilityModel;

/// Chosen barrier parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BarrierPlan {
    /// Threads the barrier synchronizes.
    pub n: usize,
    /// Rounds.
    pub r: usize,
    /// Partners contacted per round (radix − 1).
    pub m: usize,
    /// Modeled best-case cost, ns.
    pub cost_ns: f64,
}

/// Rounds needed for radix `m+1` over `n` threads.
pub fn rounds(n: usize, m: usize) -> usize {
    if n <= 1 {
        return 0;
    }
    let mut r = 0usize;
    let mut reach = 1u128;
    while reach < n as u128 {
        reach *= (m + 1) as u128;
        r += 1;
    }
    r
}

/// Optimize Eq. 2 over `m`.
pub fn optimize_barrier(model: &CapabilityModel, n: usize) -> BarrierPlan {
    assert!(n >= 1);
    if n == 1 {
        return BarrierPlan {
            n,
            r: 0,
            m: 0,
            cost_ns: 0.0,
        };
    }
    let mut best = BarrierPlan {
        n,
        r: rounds(n, 1),
        m: 1,
        cost_ns: f64::INFINITY,
    };
    for m in 1..n {
        let r = rounds(n, m);
        let cost = r as f64 * (model.ri_ns + m as f64 * model.rr_ns);
        if cost < best.cost_ns {
            best = BarrierPlan {
                n,
                r,
                m,
                cost_ns: cost,
            };
        }
        if r == 1 {
            break; // larger m only costs more at a single round
        }
    }
    best
}

/// Cost of a given (r, m) under the model (for baselines/what-if).
pub fn barrier_cost(model: &CapabilityModel, n: usize, m: usize) -> f64 {
    rounds(n, m) as f64 * (model.ri_ns + m as f64 * model.rr_ns)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CapabilityModel;

    #[test]
    fn rounds_formula() {
        assert_eq!(rounds(1, 1), 0);
        assert_eq!(rounds(2, 1), 1);
        assert_eq!(rounds(64, 1), 6); // log2
        assert_eq!(rounds(64, 3), 3); // log4
        assert_eq!(rounds(65, 3), 4);
        assert_eq!(rounds(64, 63), 1);
    }

    #[test]
    fn coverage_constraint_holds() {
        let m = CapabilityModel::paper_reference();
        for n in [2usize, 5, 17, 64, 256] {
            let p = optimize_barrier(&m, n);
            assert!((p.m + 1).pow(p.r as u32) >= n, "{p:?}");
            // One fewer round must not cover n.
            if p.r > 1 {
                assert!((p.m + 1).pow(p.r as u32 - 1) < n, "{p:?}");
            }
        }
    }

    #[test]
    fn optimum_beats_radix2_and_flat() {
        let model = CapabilityModel::paper_reference();
        for n in [16usize, 64, 256] {
            let p = optimize_barrier(&model, n);
            let radix2 = barrier_cost(&model, n, 1);
            let flat = barrier_cost(&model, n, n - 1);
            assert!(p.cost_ns <= radix2 + 1e-9, "n={n}");
            assert!(p.cost_ns <= flat + 1e-9, "n={n}");
        }
    }

    #[test]
    fn tuned_radix_is_interior_for_64() {
        // With R_I ≈ 168 and R_R ≈ 110, radix 2 pays 6 rounds and flat pays
        // 63·R_R; the optimum sits in between.
        let model = CapabilityModel::paper_reference();
        let p = optimize_barrier(&model, 64);
        assert!(p.m >= 2 && p.m <= 16, "{p:?}");
        assert!(p.r >= 2 && p.r <= 4, "{p:?}");
    }

    #[test]
    fn singleton_barrier_free() {
        let model = CapabilityModel::paper_reference();
        let p = optimize_barrier(&model, 1);
        assert_eq!(p.cost_ns, 0.0);
        assert_eq!(p.r, 0);
    }
}
