//! The overhead model (§V-B.2): "we developed an overhead model by applying
//! linear regression to the cost of sorting 1 KB messages with multiple
//! number of threads, after subtracting the cost predicted by the memory
//! model. Then, we use this overhead for all the message sizes, combined
//! with the memory model."

use knl_stats::{fit_linear, LinearFit};

/// Linear overhead in seconds as a function of thread count.
#[derive(Debug, Clone, Copy)]
pub struct OverheadModel {
    /// Fitted `seconds = α + β·threads` line.
    pub fit: LinearFit,
}

impl OverheadModel {
    /// Fit from measured 1 KB sorts: `measured` is (threads, seconds);
    /// `memory_model(threads)` returns the memory model's prediction in
    /// seconds for the same 1 KB input.
    pub fn fit<F: Fn(usize) -> f64>(measured: &[(usize, f64)], memory_model: F) -> Self {
        assert!(measured.len() >= 2, "need at least two thread counts");
        let xs: Vec<f64> = measured.iter().map(|(t, _)| *t as f64).collect();
        let ys: Vec<f64> = measured
            .iter()
            .map(|(t, s)| (s - memory_model(*t)).max(0.0))
            .collect();
        OverheadModel {
            fit: fit_linear(&xs, &ys),
        }
    }

    /// Overhead (seconds) at `threads`.
    pub fn seconds(&self, threads: usize) -> f64 {
        self.fit.eval(threads as f64).max(0.0)
    }

    /// Full model = memory model + overhead.
    pub fn full(&self, memory_model_seconds: f64, threads: usize) -> f64 {
        memory_model_seconds + self.seconds(threads)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recovers_linear_overhead() {
        // Synthetic: measured = model + (2µs + 1µs·threads).
        let model = |_t: usize| 10e-6;
        let measured: Vec<(usize, f64)> = [1usize, 2, 4, 8, 16]
            .iter()
            .map(|&t| (t, 10e-6 + 2e-6 + 1e-6 * t as f64))
            .collect();
        let o = OverheadModel::fit(&measured, model);
        assert!((o.fit.alpha - 2e-6).abs() < 1e-8, "α {}", o.fit.alpha);
        assert!((o.fit.beta - 1e-6).abs() < 1e-9, "β {}", o.fit.beta);
        assert!((o.full(10e-6, 8) - (12e-6 + 8e-6)).abs() < 1e-8);
    }

    #[test]
    fn negative_residuals_clamped() {
        let model = |_t: usize| 100e-6; // model above measurement
        let measured = vec![(1usize, 50e-6), (2, 60e-6)];
        let o = OverheadModel::fit(&measured, model);
        assert!(o.seconds(1) >= 0.0);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_point_rejected() {
        OverheadModel::fit(&[(1, 1.0)], |_| 0.0);
    }
}
