//! Memory-mode advisor: "when using a flat mode, we need performance models
//! in order to decide which data has to be allocated in which memory"
//! (§VII). Given an application's access profile, the advisor predicts the
//! MCDRAM-over-DRAM speedup from the capability model and recommends a
//! placement.

use crate::model::CapabilityModel;
use knl_sim::StreamKind;

/// A coarse application phase profile.
#[derive(Debug, Clone)]
pub struct PhaseProfile {
    /// Closest streaming kernel to the phase's access mix.
    pub kind: StreamKind,
    /// Threads concurrently accessing memory in this phase.
    pub threads: usize,
    /// Fraction of total runtime spent in this phase (weights the mean).
    pub weight: f64,
    /// Whether the phase is latency-bound (dependent accesses) rather than
    /// bandwidth-bound.
    pub latency_bound: bool,
}

/// Recommendation outcome.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Placement {
    /// Allocate the hot data in MCDRAM.
    Mcdram,
    /// Leave it in DRAM (MCDRAM buys nothing or hurts).
    Dram,
    /// Within noise either way.
    Indifferent,
}

/// Advice with the predicted speedup.
#[derive(Debug, Clone)]
pub struct Advice {
    /// Recommended placement.
    pub placement: Placement,
    /// Predicted DRAM-time / MCDRAM-time (>1 favours MCDRAM).
    pub speedup: f64,
    /// Human-readable justification.
    pub reason: String,
}

/// Weighted speedup estimate over the application's phases.
///
/// Weights are *time shares on DRAM*; the overall speedup is therefore the
/// harmonic composition `Σw / Σ(w/s)` (a phase that takes 60% of the time
/// and speeds up 1× pins the total near 1× no matter how fast the rest
/// gets — Amdahl over memory phases).
pub fn advise(model: &CapabilityModel, phases: &[PhaseProfile]) -> Advice {
    assert!(!phases.is_empty(), "need at least one phase");
    let mut wsum = 0.0;
    let mut inv = 0.0;
    let mut latency_weight = 0.0;
    for p in phases {
        let s = phase_speedup(model, p);
        wsum += p.weight;
        inv += p.weight / s.max(1e-9);
        if p.latency_bound {
            latency_weight += p.weight;
        }
    }
    let den = wsum;
    let speedup = wsum / inv;
    let placement = if speedup > 1.15 {
        Placement::Mcdram
    } else if speedup < 0.95 {
        Placement::Dram
    } else {
        Placement::Indifferent
    };
    let reason = if latency_weight / den > 0.5 && speedup <= 1.0 {
        "dominantly latency-bound: MCDRAM's higher access latency erases its bandwidth advantage"
            .to_string()
    } else if speedup > 1.15 {
        format!("bandwidth-bound at high thread counts: predicted {speedup:.2}× from the capability curves")
    } else {
        format!(
            "thread-level parallelism too low to exploit MCDRAM bandwidth (predicted {speedup:.2}×)"
        )
    };
    Advice {
        placement,
        speedup,
        reason,
    }
}

fn phase_speedup(model: &CapabilityModel, p: &PhaseProfile) -> f64 {
    if p.latency_bound {
        // Latency-bound phases: time scales with access latency, and MCDRAM's
        // is *higher*, so speedup = lat_DRAM / lat_MCDRAM < 1.
        let d = model.mem_latency_ns("DRAM").unwrap_or(f64::NAN);
        let m = model.mem_latency_ns("MCDRAM").unwrap_or(d);
        return d / m;
    }
    let d = model.mem.gbps(p.kind, "DRAM", p.threads);
    let m = model.mem.gbps(p.kind, "MCDRAM", p.threads);
    match (d, m) {
        (Some(d), Some(m)) if d > 0.0 => m / d,
        _ => 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapabilityModel {
        CapabilityModel::paper_reference()
    }

    #[test]
    fn streaming_many_threads_wants_mcdram() {
        let a = advise(
            &model(),
            &[PhaseProfile {
                kind: StreamKind::Triad,
                threads: 64,
                weight: 1.0,
                latency_bound: false,
            }],
        );
        assert_eq!(a.placement, Placement::Mcdram);
        assert!(a.speedup > 3.0, "triad @64: {}", a.speedup);
    }

    #[test]
    fn single_thread_indifferent() {
        let a = advise(
            &model(),
            &[PhaseProfile {
                kind: StreamKind::Copy,
                threads: 1,
                weight: 1.0,
                latency_bound: false,
            }],
        );
        assert!(
            a.placement != Placement::Mcdram,
            "one thread gets ~8 GB/s from either memory: {a:?}"
        );
    }

    #[test]
    fn latency_bound_prefers_dram() {
        let a = advise(
            &model(),
            &[PhaseProfile {
                kind: StreamKind::Read,
                threads: 8,
                weight: 1.0,
                latency_bound: true,
            }],
        );
        assert!(a.speedup <= 1.0, "latency-bound speedup {}", a.speedup);
        assert_ne!(a.placement, Placement::Mcdram);
    }

    #[test]
    fn mixed_phases_weighted() {
        let a = advise(
            &model(),
            &[
                PhaseProfile {
                    kind: StreamKind::Triad,
                    threads: 64,
                    weight: 0.1,
                    latency_bound: false,
                },
                PhaseProfile {
                    kind: StreamKind::Read,
                    threads: 2,
                    weight: 0.9,
                    latency_bound: true,
                },
            ],
        );
        assert!(a.speedup < 1.5, "mostly latency-bound: {}", a.speedup);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_profile_rejected() {
        advise(&model(), &[]);
    }
}
