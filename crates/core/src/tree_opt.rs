//! Model-tuned broadcast/reduce trees (Eq. 1 of the paper).
//!
//! The paper's cost model for an inter-tile broadcast tree:
//!
//! ```text
//! minimize  T_bc(tree) = T_lev(k0) + max_i T_bc(subtree_i)
//! T_lev(k0) = R_I + R_L + T_C(k0) + R_I + k0·R_R
//! ```
//!
//! Following the methodology the paper builds on (Ramos & Hoefler, HPDC'13),
//! children do not all start at the same instant: the i-th child's read of
//! the parent's line completes after contention over i requests,
//! `s_i = R_I + R_L + T_C(i)`, and may start its own subtree then. This
//! staggering is what makes the optimal trees *non-trivial* (Fig. 1):
//! early children receive larger subtrees than late ones.
//!
//! The optimizer is an exact DP over subtree sizes with a makespan
//! water-filling inner step: for a candidate deadline `T`, child `i` can
//! host at most the largest `m` with `s_i + best(m) ≤ T`; the smallest
//! feasible `T` is found by binary search over the candidate cost set.

use crate::model::CapabilityModel;
use crate::tree::Tree;

/// Broadcast or reduce flavour of Eq. 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TreeKind {
    /// Data flows root → leaves.
    Broadcast,
    /// Reduce adds per-child buffering + the reduction operation itself.
    Reduce,
}

/// Result of tree optimization.
#[derive(Debug, Clone)]
pub struct TreePlan {
    /// Operation the tree was optimized for.
    pub kind: TreeKind,
    /// Participants (root included).
    pub n: usize,
    /// The optimized shape.
    pub tree: Tree,
    /// Modeled best-case completion time, ns.
    pub cost_ns: f64,
}

/// Cost of applying the reduction operator to one cache line of operands
/// (vectorized integer/float add: ~2 cycles at 1.3 GHz).
const REDOP_NS: f64 = 1.6;

/// Optimize a tree over `n` participants (root included) for the given
/// model. `n` counts inter-tile participants (one per tile); intra-tile
/// fan-out is flat and handled by the collectives layer.
pub fn optimize_tree(model: &CapabilityModel, n: usize, kind: TreeKind) -> TreePlan {
    assert!(n >= 1, "need at least the root");
    let mut best_cost = vec![0.0f64; n + 1];
    let mut best_split: Vec<Vec<usize>> = vec![Vec::new(); n + 1];
    // best_cost[1] = 0 (a lone node already has/holds the data).
    for m in 2..=n {
        let (cost, sizes) = best_level(model, m, &best_cost, kind);
        best_cost[m] = cost;
        best_split[m] = sizes;
    }
    let tree = build_tree(n, &best_split);
    debug_assert_eq!(tree.size(), n);
    TreePlan {
        kind,
        n,
        tree,
        cost_ns: best_cost[n],
    }
}

/// Completion time of child `i` (1-based) reading the parent's data under
/// contention from `i` earlier-or-equal requests.
fn child_start(model: &CapabilityModel, i: usize) -> f64 {
    model.ri_ns + model.rl_ns + model.tc_ns(i)
}

/// Level cost excluding subtrees: parent publishes (R_I + R_L), children
/// read under contention (T_C(k)), children ack and the parent collects
/// (R_I + k·R_R); reduce pays the operator per child.
fn level_cost(model: &CapabilityModel, k: usize, kind: TreeKind) -> f64 {
    let redop = match kind {
        TreeKind::Broadcast => 0.0,
        TreeKind::Reduce => REDOP_NS * k as f64,
    };
    model.ri_ns + model.rl_ns + model.tc_ns(k) + model.ri_ns + k as f64 * model.rr_ns + redop
}

/// Best (cost, child subtree sizes) for a tree of `m` nodes given optimal
/// costs of all smaller trees.
fn best_level(
    model: &CapabilityModel,
    m: usize,
    best_cost: &[f64],
    kind: TreeKind,
) -> (f64, Vec<usize>) {
    let to_place = m - 1;
    let mut best = (f64::INFINITY, Vec::new());
    for k in 1..=to_place {
        // Binary search the smallest feasible deadline.
        let mut lo = level_cost(model, k, kind);
        let mut hi = lo + child_start(model, k) + best_cost[to_place] + 1.0;
        // Feasibility under deadline t: sum of max sizes ≥ to_place.
        let feasible = |t: f64| -> bool {
            let mut total = 0usize;
            for i in 1..=k {
                let s = child_start(model, i);
                // Largest m' with best_cost[m'] ≤ t - s.
                let budget = t - s;
                if budget < 0.0 {
                    return false; // children are ordered; later ones worse
                }
                let cap = largest_within(best_cost, to_place, budget);
                if cap == 0 {
                    return false; // every child must host ≥ 1 node
                }
                total += cap;
                if total >= to_place {
                    return true;
                }
            }
            total >= to_place
        };
        if !feasible(hi) {
            continue;
        }
        for _ in 0..48 {
            let mid = 0.5 * (lo + hi);
            if feasible(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        let t = hi;
        // Reconstruct sizes: earlier children take the largest feasible
        // subtree; trim the surplus from the later children.
        let mut sizes = Vec::with_capacity(k);
        let mut remaining = to_place;
        for i in 1..=k {
            let s = child_start(model, i);
            let cap = largest_within(best_cost, remaining, (t - s).max(0.0)).max(1);
            let take = cap.min(remaining.saturating_sub(k - i)); // leave ≥1 per later child
            sizes.push(take.max(1));
            remaining -= take.max(1);
        }
        debug_assert_eq!(remaining, 0, "k={k} m={m}");
        // True makespan for these sizes.
        let mut cost = level_cost(model, k, kind);
        for (i, &sz) in sizes.iter().enumerate() {
            cost = cost.max(child_start(model, i + 1) + best_cost[sz]);
        }
        if cost < best.0 {
            best = (cost, sizes);
        }
    }
    best
}

/// Largest m ≤ cap with best_cost[m] ≤ budget (best_cost is nondecreasing).
fn largest_within(best_cost: &[f64], cap: usize, budget: f64) -> usize {
    let mut lo = 0usize;
    let mut hi = cap;
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        if best_cost[mid] <= budget {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    lo
}

fn build_tree(n: usize, split: &[Vec<usize>]) -> Tree {
    if n <= 1 {
        return Tree::leaf();
    }
    let children = split[n].iter().map(|&sz| build_tree(sz, split)).collect();
    Tree::new(children)
}

/// Evaluate Eq. 1 for an *arbitrary* tree (used to compare model-tuned
/// shapes against fixed baselines such as binomial trees).
pub fn tree_cost(model: &CapabilityModel, tree: &Tree, kind: TreeKind) -> f64 {
    if tree.children.is_empty() {
        return 0.0;
    }
    let k = tree.children.len();
    let mut cost = level_cost(model, k, kind);
    for (i, c) in tree.children.iter().enumerate() {
        cost = cost.max(child_start(model, i + 1) + tree_cost(model, c, kind));
    }
    cost
}

/// A binomial tree of `n` nodes (the classic MPI shape, used as baseline).
pub fn binomial_tree(n: usize) -> Tree {
    assert!(n >= 1);
    // Recursive doubling: a binomial tree of 2^k nodes has children of
    // sizes 2^(k-1), ..., 2, 1. For non-powers of two, split greedily.
    if n == 1 {
        return Tree::leaf();
    }
    let mut children = Vec::new();
    let mut remaining = n - 1;
    while remaining > 0 {
        let mut sz = 1;
        while sz * 2 <= remaining {
            sz *= 2;
        }
        children.push(binomial_tree(sz));
        remaining -= sz;
    }
    // Children are built largest-first, matching the earliest start slot.
    Tree::new(children)
}

/// A flat tree (root with n−1 leaves; the "centralized" baseline).
pub fn flat_tree(n: usize) -> Tree {
    assert!(n >= 1);
    Tree::new((1..n).map(|_| Tree::leaf()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> CapabilityModel {
        CapabilityModel::paper_reference()
    }

    #[test]
    fn sizes_are_exact() {
        let m = model();
        for n in [1usize, 2, 3, 5, 8, 17, 32, 36, 64] {
            let plan = optimize_tree(&m, n, TreeKind::Broadcast);
            assert_eq!(plan.tree.size(), n, "n={n}");
        }
    }

    #[test]
    fn cost_monotone_in_n() {
        let m = model();
        let mut prev = 0.0;
        for n in 2..=40 {
            let plan = optimize_tree(&m, n, TreeKind::Broadcast);
            assert!(
                plan.cost_ns >= prev - 1e-6,
                "cost must not decrease: n={n} {} < {prev}",
                plan.cost_ns
            );
            prev = plan.cost_ns;
        }
    }

    #[test]
    fn beats_or_matches_fixed_shapes() {
        let m = model();
        for n in [8usize, 16, 32, 36] {
            let tuned = optimize_tree(&m, n, TreeKind::Broadcast).cost_ns;
            let binom = tree_cost(&m, &binomial_tree(n), TreeKind::Broadcast);
            let flat = tree_cost(&m, &flat_tree(n), TreeKind::Broadcast);
            assert!(
                tuned <= binom + 1e-6,
                "n={n}: tuned {tuned} vs binomial {binom}"
            );
            assert!(tuned <= flat + 1e-6, "n={n}: tuned {tuned} vs flat {flat}");
        }
    }

    #[test]
    fn nontrivial_shape_at_32() {
        // The tuned tree is neither flat nor binary/binomial (Fig. 1 shows
        // an irregular multi-level shape).
        let plan = optimize_tree(&model(), 32, TreeKind::Broadcast);
        let deg = plan.tree.degree();
        assert!(deg > 1 && deg < 31, "degree {deg}");
        assert!(plan.tree.height() >= 2, "height {}", plan.tree.height());
        // Earlier children host subtrees at least as large as later ones.
        let sizes: Vec<usize> = plan.tree.children.iter().map(Tree::size).collect();
        let mut sorted = sizes.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(
            sizes, sorted,
            "earlier children must get larger subtrees: {sizes:?}"
        );
    }

    #[test]
    fn reduce_costs_more_than_broadcast() {
        let m = model();
        let b = optimize_tree(&m, 32, TreeKind::Broadcast).cost_ns;
        let r = optimize_tree(&m, 32, TreeKind::Reduce).cost_ns;
        assert!(r >= b, "reduce {r} ≥ broadcast {b}");
    }

    #[test]
    fn binomial_tree_shape() {
        let t = binomial_tree(8);
        assert_eq!(t.size(), 8);
        let sizes: Vec<usize> = t.children.iter().map(Tree::size).collect();
        assert_eq!(sizes, vec![4, 2, 1]);
        assert_eq!(binomial_tree(1).size(), 1);
        assert_eq!(binomial_tree(6).size(), 6);
    }

    #[test]
    fn flat_tree_shape() {
        let t = flat_tree(5);
        assert_eq!(t.size(), 5);
        assert_eq!(t.degree(), 4);
        assert_eq!(t.height(), 1);
    }

    #[test]
    fn tree_cost_of_leaf_is_zero() {
        assert_eq!(tree_cost(&model(), &Tree::leaf(), TreeKind::Broadcast), 0.0);
    }

    #[test]
    fn singleton_plan() {
        let p = optimize_tree(&model(), 1, TreeKind::Reduce);
        assert_eq!(p.cost_ns, 0.0);
        assert_eq!(p.tree.size(), 1);
    }
}
