//! The merge-sort memory-access model (Eqs. 3–5 of §V-B).
//!
//! Every merge producing an output list of `n` lines performs `n` line
//! reads and `n` line writes. The cost of a merge depends on where its
//! working set lives:
//!
//! ```text
//! C_L1(n)  = [log2(n) − 1]·2n·costL1 + 2n·costmem            (fits in L1)
//! C_L2(n)  = (n/n_L1)·C_L1(n_L1) + [log2(n) − log2(n_L1)]·2n·costL2
//! C_mem(n) = (n/n_L2)·C_L2(n_L2) + [log2(n) − log2(n_L2)]·2n·costmem
//! ```
//!
//! `n_L1`/`n_L2` are the largest output lists fitting in L1/L2 — shrunk by
//! ping-pong double-buffering and by how many threads share the core/tile.
//! `costmem` is either the memory *latency* per line (worst case: random
//! list interleaving defeats streaming) or the inverse of the *achievable
//! bandwidth* at the current thread count (best case) — the paper's two
//! model variants shown in Fig. 10. On top of the per-merge cost, the
//! parallel model adds the inter-stage flag synchronization (`R_L + R_R`)
//! and the bitonic-network compute cost per line.

use crate::model::CapabilityModel;
use knl_sim::StreamKind;

/// Which Eq. 3–5 `costmem` variant to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CostBasis {
    /// Worst case: per-line memory latency.
    Latency,
    /// Best case: inverse achievable bandwidth at the active thread count.
    Bandwidth,
}

/// The sort cost model bound to a capability model and a memory target.
#[derive(Debug, Clone)]
pub struct SortModel<'a> {
    /// Capability model supplying latencies and bandwidth curves.
    pub model: &'a CapabilityModel,
    /// "DRAM", "MCDRAM", or "cache".
    pub target: String,
    /// Bitonic-network compute cost per line processed (16 lanes of u32;
    /// ~8 AVX-512 min/max+shuffle stages ≈ 6 ns at 1.3 GHz).
    pub compute_ns_per_line: f64,
    /// Threads sharing one core (shrinks the effective L1).
    pub threads_per_core: usize,
    /// Threads sharing one tile (shrinks the effective L2).
    pub threads_per_tile: usize,
}

const L1_BYTES: f64 = 32.0 * 1024.0;
const L2_BYTES: f64 = 1024.0 * 1024.0;

impl<'a> SortModel<'a> {
    /// Model for sorting out of `target` memory with default parameters.
    pub fn new(model: &'a CapabilityModel, target: &str) -> Self {
        SortModel {
            model,
            target: target.to_string(),
            compute_ns_per_line: 6.0,
            threads_per_core: 1,
            threads_per_tile: 2,
        }
    }

    /// Largest output list (lines) fitting in L1: ping-pong halves the
    /// usable space; input + output coexist (another factor 2).
    pub fn n_l1(&self) -> f64 {
        (L1_BYTES / (64.0 * 4.0 * self.threads_per_core as f64)).max(2.0)
    }

    /// Largest output list (lines) fitting the tile's shared L2.
    pub fn n_l2(&self) -> f64 {
        (L2_BYTES / (64.0 * 4.0 * self.threads_per_tile as f64)).max(self.n_l1())
    }

    /// Per-line memory cost (ns) at `threads` active threads.
    pub fn costmem_ns(&self, threads: usize, basis: CostBasis) -> f64 {
        match basis {
            CostBasis::Latency => self
                .model
                .mem_latency_ns(&self.target)
                .expect("target latency missing from model"),
            CostBasis::Bandwidth => {
                // The merge does one read + one write per line; the copy
                // kernel is the matching capability. Eqs. 3–5 charge
                // `2n·costmem` (n reads + n writes), so costmem is the cost
                // of ONE 64 B access at the achievable copy rate (which
                // already accounts for both directions in its GB/s).
                let agg = self
                    .model
                    .mem
                    .gbps(StreamKind::Copy, &self.target, threads.max(1))
                    .expect("copy bandwidth curve missing");
                let per_thread = agg / threads.max(1) as f64;
                64.0 / per_thread // ns per access: 64 B / (GB/s) = ns
            }
        }
    }

    /// Eq. 3: merge producing `n` lines entirely in L1 (first touch from
    /// memory).
    pub fn c_l1(&self, n: f64, threads: usize, basis: CostBasis) -> f64 {
        if n < 2.0 {
            return 0.0;
        }
        let passes = (n.log2() - 1.0).max(0.0);
        passes * 2.0 * n * (self.model.l1_ns + self.compute_ns_per_line)
            + 2.0 * n * self.costmem_ns(threads, basis)
    }

    /// Eq. 4: output fits L2 but not L1.
    pub fn c_l2(&self, n: f64, threads: usize, basis: CostBasis) -> f64 {
        let nl1 = self.n_l1();
        if n <= nl1 {
            return self.c_l1(n, threads, basis);
        }
        (n / nl1) * self.c_l1(nl1, threads, basis)
            + (n.log2() - nl1.log2()).max(0.0)
                * 2.0
                * n
                * (self.model.l2_ns + self.compute_ns_per_line)
    }

    /// Eq. 5: output exceeds L2.
    pub fn c_mem(&self, n: f64, threads: usize, basis: CostBasis) -> f64 {
        let nl2 = self.n_l2();
        if n <= nl2 {
            return self.c_l2(n, threads, basis);
        }
        (n / nl2) * self.c_l2(nl2, threads, basis)
            + (n.log2() - nl2.log2()).max(0.0)
                * 2.0
                * n
                * (self.costmem_ns(threads, basis) + self.compute_ns_per_line)
    }

    /// Full parallel sort model: `bytes` of u32 keys over `p` threads.
    /// Returns seconds.
    ///
    /// Phase A: every thread merge-sorts its `N/p`-line chunk in parallel.
    /// Phase B: `log2(p)` merge stages; at stage `j` only `p/2^j` threads
    /// work, each producing a `N·2^j/p`-line run, synchronized by flag
    /// lines (`R_L + R_R` each).
    pub fn sort_seconds(&self, bytes: u64, p: usize, basis: CostBasis) -> f64 {
        assert!(
            p >= 1 && p.is_power_of_two(),
            "model assumes power-of-two threads"
        );
        let total_lines = (bytes as f64 / 64.0).max(1.0);
        // More threads than lines adds no parallelism (each chunk must hold
        // at least one line); clamp to keep the model monotone in size.
        let mut p = p;
        while p > 1 && (total_lines as usize) < p {
            p /= 2;
        }
        let chunk = (total_lines / p as f64).max(1.0);
        // Phase A: all p threads sort their chunks concurrently (the
        // recursive Eq. 5 covers every pass of the chunk sort).
        let mut ns = self.c_mem(chunk, p, basis);
        // Phase B: one single merge pass per stage, thread count halving.
        let stages = (p as f64).log2() as usize;
        for j in 1..=stages {
            let active = (p >> j).max(1);
            let out_lines = chunk * (1u64 << j) as f64;
            ns += self.single_merge_ns(out_lines, active, basis);
            ns += self.model.rl_ns + self.model.rr_ns; // flag hand-off
        }
        ns * 1e-9
    }

    /// Cost of ONE merge pass producing `n` lines (no recursion), with the
    /// per-line cost chosen by where `n` sits in the hierarchy.
    pub fn single_merge_ns(&self, n: f64, threads: usize, basis: CostBasis) -> f64 {
        let per_line = if n <= self.n_l1() {
            self.model.l1_ns
        } else if n <= self.n_l2() {
            self.model.l2_ns
        } else {
            self.costmem_ns(threads, basis)
        };
        2.0 * n * (per_line + self.compute_ns_per_line)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::CapabilityModel;

    fn model() -> CapabilityModel {
        CapabilityModel::paper_reference()
    }

    #[test]
    fn hierarchy_thresholds() {
        let m = model();
        let s = SortModel::new(&m, "DRAM");
        assert!(s.n_l1() >= 2.0);
        assert!(s.n_l2() > s.n_l1());
    }

    #[test]
    fn latency_basis_costs_more_than_bandwidth_at_scale() {
        let m = model();
        let s = SortModel::new(&m, "DRAM");
        let lat = s.costmem_ns(64, CostBasis::Latency);
        let bw = s.costmem_ns(64, CostBasis::Bandwidth);
        assert!(lat > bw, "latency {lat} vs bandwidth {bw} at 64 threads");
    }

    #[test]
    fn cost_grows_with_input() {
        let m = model();
        let s = SortModel::new(&m, "DRAM");
        let small = s.sort_seconds(1 << 10, 2, CostBasis::Bandwidth);
        let big = s.sort_seconds(1 << 22, 2, CostBasis::Bandwidth);
        assert!(big > small * 100.0, "4 MB {big} vs 1 KB {small}");
    }

    #[test]
    fn more_threads_help_large_inputs() {
        let m = model();
        let s = SortModel::new(&m, "DRAM");
        let t1 = s.sort_seconds(64 << 20, 1, CostBasis::Bandwidth);
        let t16 = s.sort_seconds(64 << 20, 16, CostBasis::Bandwidth);
        assert!(t16 < t1, "16 threads {t16} vs 1 thread {t1}");
    }

    #[test]
    fn mcdram_does_not_beat_dram_headline() {
        // The paper's headline: the sort does not benefit from MCDRAM —
        // thread counts halve up the merge tree, and a single thread gets
        // ~8 GB/s from either memory.
        let m = model();
        let dram = SortModel::new(&m, "DRAM");
        let mc = SortModel::new(&m, "MCDRAM");
        let bytes = 256u64 << 20;
        let d = dram.sort_seconds(bytes, 64, CostBasis::Bandwidth);
        let c = mc.sort_seconds(bytes, 64, CostBasis::Bandwidth);
        let speedup = d / c;
        assert!(
            (0.8..1.35).contains(&speedup),
            "MCDRAM speedup for merge sort should be ≈1, got {speedup}"
        );
    }

    #[test]
    fn eq3_zero_for_tiny_lists() {
        let m = model();
        let s = SortModel::new(&m, "DRAM");
        assert_eq!(s.c_l1(1.0, 1, CostBasis::Latency), 0.0);
    }

    #[test]
    #[should_panic(expected = "power-of-two")]
    fn non_pow2_threads_rejected() {
        let m = model();
        SortModel::new(&m, "DRAM").sort_seconds(1024, 3, CostBasis::Latency);
    }
}
