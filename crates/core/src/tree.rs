//! Generic trees for broadcast/reduce plans, with the ASCII rendering used
//! to display Fig. 1.

/// A rooted tree. Node identity is positional; the planner later maps
/// positions onto tiles/threads.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tree {
    /// Subtrees, in notification order (earliest child first).
    pub children: Vec<Tree>,
}

impl Tree {
    /// A single node with no children.
    pub fn leaf() -> Self {
        Tree {
            children: Vec::new(),
        }
    }

    /// A node with the given subtrees.
    pub fn new(children: Vec<Tree>) -> Self {
        Tree { children }
    }

    /// Total number of nodes (root included).
    pub fn size(&self) -> usize {
        1 + self.children.iter().map(Tree::size).sum::<usize>()
    }

    /// Height in edges (leaf = 0).
    pub fn height(&self) -> usize {
        self.children
            .iter()
            .map(|c| 1 + c.height())
            .max()
            .unwrap_or(0)
    }

    /// Root degree.
    pub fn degree(&self) -> usize {
        self.children.len()
    }

    /// Degrees per level, root first (a coarse shape signature).
    pub fn level_widths(&self) -> Vec<usize> {
        let mut widths = Vec::new();
        let mut level: Vec<&Tree> = vec![self];
        while !level.is_empty() {
            widths.push(level.len());
            level = level.iter().flat_map(|t| t.children.iter()).collect();
        }
        widths
    }

    /// Assign node ids in BFS order (root = 0) and return, per node, its
    /// parent id (`None` for the root) — the form collectives consume.
    pub fn bfs_parents(&self) -> Vec<Option<usize>> {
        let mut parents = vec![None];
        let mut queue: std::collections::VecDeque<(&Tree, usize)> =
            std::collections::VecDeque::new();
        queue.push_back((self, 0));
        let mut next_id = 1;
        while let Some((node, id)) = queue.pop_front() {
            for c in &node.children {
                parents.push(Some(id));
                queue.push_back((c, next_id));
                next_id += 1;
            }
        }
        parents
    }

    /// Children lists indexed by BFS id (inverse of [`Tree::bfs_parents`]).
    pub fn bfs_children(&self) -> Vec<Vec<usize>> {
        let parents = self.bfs_parents();
        let mut ch = vec![Vec::new(); parents.len()];
        for (i, p) in parents.iter().enumerate() {
            if let Some(p) = p {
                ch[*p].push(i);
            }
        }
        ch
    }

    /// Compact one-line form, e.g. `(3: (2) (0) (0))` — degree per node.
    pub fn compact(&self) -> String {
        if self.children.is_empty() {
            return "(0)".to_string();
        }
        let kids: Vec<String> = self.children.iter().map(Tree::compact).collect();
        format!("({}: {})", self.children.len(), kids.join(" "))
    }

    /// Multi-line ASCII rendering (root at the top), as in Fig. 1. Node
    /// labels are DFS preorder ids with each node's subtree size.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!("0 (subtree {})\n", self.size()));
        let n = self.children.len();
        let mut next_id = 1;
        for (i, c) in self.children.iter().enumerate() {
            c.render_rec(&mut out, "", i == n - 1, &mut next_id);
        }
        out
    }

    fn render_rec(&self, out: &mut String, prefix: &str, last: bool, next_id: &mut usize) {
        out.push_str(prefix);
        out.push_str(if last { "└─ " } else { "├─ " });
        out.push_str(&format!("{} (subtree {})\n", next_id, self.size()));
        *next_id += 1;
        let child_prefix = format!("{}{}", prefix, if last { "   " } else { "│  " });
        let n = self.children.len();
        for (i, c) in self.children.iter().enumerate() {
            c.render_rec(out, &child_prefix, i == n - 1, next_id);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Tree {
        // root with children [leaf, (leaf leaf)]
        Tree::new(vec![
            Tree::leaf(),
            Tree::new(vec![Tree::leaf(), Tree::leaf()]),
        ])
    }

    #[test]
    fn size_height_degree() {
        let t = sample();
        assert_eq!(t.size(), 5);
        assert_eq!(t.height(), 2);
        assert_eq!(t.degree(), 2);
        assert_eq!(Tree::leaf().size(), 1);
        assert_eq!(Tree::leaf().height(), 0);
    }

    #[test]
    fn level_widths() {
        assert_eq!(sample().level_widths(), vec![1, 2, 2]);
    }

    #[test]
    fn bfs_parents_roundtrip() {
        let t = sample();
        let p = t.bfs_parents();
        assert_eq!(p, vec![None, Some(0), Some(0), Some(2), Some(2)]);
        let ch = t.bfs_children();
        assert_eq!(ch[0], vec![1, 2]);
        assert_eq!(ch[2], vec![3, 4]);
        assert!(ch[1].is_empty());
    }

    #[test]
    fn compact_form() {
        assert_eq!(sample().compact(), "(2: (0) (2: (0) (0)))");
    }

    #[test]
    fn render_contains_all_nodes() {
        let r = sample().render();
        assert!(r.contains("subtree 5"));
        assert_eq!(r.lines().count(), 5);
        // Every node id appears exactly once.
        for id in 0..5 {
            assert_eq!(r.matches(&format!("{id} (subtree")).count(), 1, "{r}");
        }
    }
}
