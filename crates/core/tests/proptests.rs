//! Property tests on the model layer: optimizers must emit valid plans
//! with sane costs for any plausible capability model.

use knl_core::barrier_opt::{barrier_cost, optimize_barrier, rounds};
use knl_core::sortmodel::{CostBasis, SortModel};
use knl_core::tree_opt::{binomial_tree, flat_tree, optimize_tree, tree_cost, TreeKind};
use knl_core::{CapabilityModel, MinMax};
use proptest::prelude::*;

/// A random-but-plausible capability model (latencies in the manycore
/// regime, positive contention law).
fn arb_model() -> impl Strategy<Value = CapabilityModel> {
    (
        2.0f64..8.0,    // R_L
        60.0f64..200.0, // R_R
        90.0f64..260.0, // R_I
        50.0f64..400.0, // contention α
        5.0f64..80.0,   // contention β
    )
        .prop_map(|(rl, rr, ri, alpha, beta)| {
            let mut m = CapabilityModel::paper_reference();
            m.rl_ns = rl;
            m.rr_ns = rr;
            m.ri_ns = ri;
            m.contention = knl_stats::LinearFit { alpha, beta, r2: 1.0, n: 8 };
            m
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The tuned tree always spans exactly n nodes and never loses to the
    /// classic fixed shapes under its own cost model.
    #[test]
    fn tree_optimizer_valid_and_dominant(model in arb_model(), n in 1usize..48) {
        for kind in [TreeKind::Broadcast, TreeKind::Reduce] {
            let plan = optimize_tree(&model, n, kind);
            prop_assert_eq!(plan.tree.size(), n);
            prop_assert!(plan.cost_ns >= 0.0);
            if n >= 2 {
                let binom = tree_cost(&model, &binomial_tree(n), kind);
                let flat = tree_cost(&model, &flat_tree(n), kind);
                prop_assert!(plan.cost_ns <= binom + 1e-6, "binomial better: {} vs {}", plan.cost_ns, binom);
                prop_assert!(plan.cost_ns <= flat + 1e-6, "flat better: {} vs {}", plan.cost_ns, flat);
            }
        }
    }

    /// Tree cost is monotone in n for a fixed model.
    #[test]
    fn tree_cost_monotone(model in arb_model()) {
        let mut prev = -1.0f64;
        for n in 1..=24usize {
            let c = optimize_tree(&model, n, TreeKind::Broadcast).cost_ns;
            prop_assert!(c >= prev - 1e-6, "n={n}: {c} < {prev}");
            prev = c;
        }
    }

    /// The barrier optimizer respects the coverage constraint and
    /// dominates every fixed radix.
    #[test]
    fn barrier_optimizer_dominant(model in arb_model(), n in 2usize..300) {
        let plan = optimize_barrier(&model, n);
        prop_assert!((plan.m + 1).pow(plan.r as u32) >= n);
        for m_fixed in [1usize, 2, 3, 7, 15, n - 1] {
            let c = barrier_cost(&model, n, m_fixed);
            prop_assert!(plan.cost_ns <= c + 1e-6, "radix m={m_fixed} better: {} vs {c}", plan.cost_ns);
        }
    }

    /// rounds() is the minimal r with (m+1)^r >= n.
    #[test]
    fn rounds_minimal(n in 1usize..10_000, m in 1usize..64) {
        let r = rounds(n, m);
        prop_assert!((m as u128 + 1).pow(r as u32) >= n as u128);
        if r > 0 {
            prop_assert!((m as u128 + 1).pow(r as u32 - 1) < n as u128);
        }
    }

    /// MinMax composition preserves the envelope ordering.
    #[test]
    fn minmax_composition(a in 0.0f64..1e6, b in 0.0f64..1e6, c in 0.0f64..1e6, d in 0.0f64..1e6) {
        let x = MinMax::new(a.min(b), a.max(b));
        let y = MinMax::new(c.min(d), c.max(d));
        let sum = x.add(y);
        prop_assert!(sum.best <= sum.worst);
        let mx = x.max(y);
        prop_assert!(mx.best <= mx.worst);
        prop_assert!(mx.worst >= x.worst && mx.worst >= y.worst);
    }

    /// Sort model: cost grows with input size and never goes negative;
    /// the latency basis dominates the bandwidth basis at scale.
    #[test]
    fn sortmodel_sane(threads_pow in 0u32..7, size_pow in 10u32..28) {
        let model = CapabilityModel::paper_reference();
        let sm = SortModel::new(&model, "DRAM");
        let threads = 1usize << threads_pow;
        let bytes = 1u64 << size_pow;
        let bw = sm.sort_seconds(bytes, threads, CostBasis::Bandwidth);
        let lat = sm.sort_seconds(bytes, threads, CostBasis::Latency);
        prop_assert!(bw >= 0.0 && lat >= 0.0);
        prop_assert!(lat >= bw * 0.9, "latency basis must not undercut bandwidth: {lat} vs {bw}");
        let bigger = sm.sort_seconds(bytes * 4, threads, CostBasis::Bandwidth);
        prop_assert!(bigger > bw, "4x input must cost more: {bigger} vs {bw}");
    }
}
