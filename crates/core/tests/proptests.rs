//! Property tests on the model layer: optimizers must emit valid plans
//! with sane costs for any plausible capability model.
//!
//! Randomized but deterministic: cases are drawn from [`SplitMixRng`] with
//! fixed seeds (the workspace builds offline with no external crates, so
//! these are hand-rolled property loops rather than `proptest` macros).

use knl_arch::SplitMixRng;
use knl_core::barrier_opt::{barrier_cost, optimize_barrier, rounds};
use knl_core::sortmodel::{CostBasis, SortModel};
use knl_core::tree_opt::{binomial_tree, flat_tree, optimize_tree, tree_cost, TreeKind};
use knl_core::{CapabilityModel, MinMax};

const CASES: u64 = 64;

fn range_f64(rng: &mut SplitMixRng, lo: f64, hi: f64) -> f64 {
    lo + (hi - lo) * rng.next_f64()
}

/// A random-but-plausible capability model (latencies in the manycore
/// regime, positive contention law).
fn arb_model(rng: &mut SplitMixRng) -> CapabilityModel {
    let mut m = CapabilityModel::paper_reference();
    m.rl_ns = range_f64(rng, 2.0, 8.0);
    m.rr_ns = range_f64(rng, 60.0, 200.0);
    m.ri_ns = range_f64(rng, 90.0, 260.0);
    m.contention = knl_stats::LinearFit {
        alpha: range_f64(rng, 50.0, 400.0),
        beta: range_f64(rng, 5.0, 80.0),
        r2: 1.0,
        n: 8,
    };
    m
}

/// The tuned tree always spans exactly n nodes and never loses to the
/// classic fixed shapes under its own cost model.
#[test]
fn tree_optimizer_valid_and_dominant() {
    let mut rng = SplitMixRng::seed_from_u64(0xC001);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let n = rng.range_usize(1, 48);
        for kind in [TreeKind::Broadcast, TreeKind::Reduce] {
            let plan = optimize_tree(&model, n, kind);
            assert_eq!(plan.tree.size(), n);
            assert!(plan.cost_ns >= 0.0);
            if n >= 2 {
                let binom = tree_cost(&model, &binomial_tree(n), kind);
                let flat = tree_cost(&model, &flat_tree(n), kind);
                assert!(
                    plan.cost_ns <= binom + 1e-6,
                    "binomial better: {} vs {binom}",
                    plan.cost_ns
                );
                assert!(
                    plan.cost_ns <= flat + 1e-6,
                    "flat better: {} vs {flat}",
                    plan.cost_ns
                );
            }
        }
    }
}

/// Tree cost is monotone in n for a fixed model.
#[test]
fn tree_cost_monotone() {
    let mut rng = SplitMixRng::seed_from_u64(0xC002);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let mut prev = -1.0f64;
        for n in 1..=24usize {
            let c = optimize_tree(&model, n, TreeKind::Broadcast).cost_ns;
            assert!(c >= prev - 1e-6, "n={n}: {c} < {prev}");
            prev = c;
        }
    }
}

/// The barrier optimizer respects the coverage constraint and
/// dominates every fixed radix.
#[test]
fn barrier_optimizer_dominant() {
    let mut rng = SplitMixRng::seed_from_u64(0xC003);
    for _ in 0..CASES {
        let model = arb_model(&mut rng);
        let n = rng.range_usize(2, 300);
        let plan = optimize_barrier(&model, n);
        assert!((plan.m + 1).pow(plan.r as u32) >= n);
        for m_fixed in [1usize, 2, 3, 7, 15, n - 1] {
            let c = barrier_cost(&model, n, m_fixed);
            assert!(
                plan.cost_ns <= c + 1e-6,
                "radix m={m_fixed} better: {} vs {c}",
                plan.cost_ns
            );
        }
    }
}

/// rounds() is the minimal r with (m+1)^r >= n.
#[test]
fn rounds_minimal() {
    let mut rng = SplitMixRng::seed_from_u64(0xC004);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 10_000);
        let m = rng.range_usize(1, 64);
        let r = rounds(n, m);
        assert!((m as u128 + 1).pow(r as u32) >= n as u128);
        if r > 0 {
            assert!((m as u128 + 1).pow(r as u32 - 1) < n as u128);
        }
    }
}

/// MinMax composition preserves the envelope ordering.
#[test]
fn minmax_composition() {
    let mut rng = SplitMixRng::seed_from_u64(0xC005);
    for _ in 0..CASES {
        let a = range_f64(&mut rng, 0.0, 1e6);
        let b = range_f64(&mut rng, 0.0, 1e6);
        let c = range_f64(&mut rng, 0.0, 1e6);
        let d = range_f64(&mut rng, 0.0, 1e6);
        let x = MinMax::new(a.min(b), a.max(b));
        let y = MinMax::new(c.min(d), c.max(d));
        let sum = x.add(y);
        assert!(sum.best <= sum.worst);
        let mx = x.max(y);
        assert!(mx.best <= mx.worst);
        assert!(mx.worst >= x.worst && mx.worst >= y.worst);
    }
}

/// Sort model: cost grows with input size and never goes negative;
/// the latency basis dominates the bandwidth basis at scale.
#[test]
fn sortmodel_sane() {
    let mut rng = SplitMixRng::seed_from_u64(0xC006);
    for _ in 0..CASES {
        let threads_pow = rng.range_u32(0, 7);
        let size_pow = rng.range_u32(10, 28);
        let model = CapabilityModel::paper_reference();
        let sm = SortModel::new(&model, "DRAM");
        let threads = 1usize << threads_pow;
        let bytes = 1u64 << size_pow;
        let bw = sm.sort_seconds(bytes, threads, CostBasis::Bandwidth);
        let lat = sm.sort_seconds(bytes, threads, CostBasis::Latency);
        assert!(bw >= 0.0 && lat >= 0.0);
        assert!(
            lat >= bw * 0.9,
            "latency basis must not undercut bandwidth: {lat} vs {bw}"
        );
        let bigger = sm.sort_seconds(bytes * 4, threads, CostBasis::Bandwidth);
        assert!(bigger > bw, "4x input must cost more: {bigger} vs {bw}");
    }
}
