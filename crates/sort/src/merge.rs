//! Merging two sorted runs through the 16-wide bitonic kernel.
//!
//! The classic SIMD merge loop (Chhugani et al., cited by the paper as
//! \[14\]): keep one 16-vector of pending smallest elements; repeatedly pull
//! the next 16 from whichever run's head is smaller, merge with the
//! pending vector, emit the low half, keep the high half pending. Tails
//! shorter than a vector fall back to scalar merging.

use crate::bitonic::bitonic_merge16;

/// Merge sorted `a` and `b` into `out`.
///
/// # Panics
/// Panics unless `out.len() == a.len() + b.len()`.
pub fn merge_runs(a: &[u32], b: &[u32], out: &mut [u32]) {
    assert_eq!(out.len(), a.len() + b.len(), "output size mismatch");
    debug_assert!(a.windows(2).all(|w| w[0] <= w[1]), "a must be sorted");
    debug_assert!(b.windows(2).all(|w| w[0] <= w[1]), "b must be sorted");

    // Scalar path for short runs.
    if a.len() < 16 || b.len() < 16 {
        scalar_merge(a, b, out);
        return;
    }

    let mut ai;
    let mut bi;
    let mut oi = 0usize;
    // Seed the pending vector from whichever head is smaller.
    let mut cur: [u32; 16];
    if a[0] <= b[0] {
        cur = a[..16].try_into().unwrap();
        ai = 16;
        bi = 0;
    } else {
        cur = b[..16].try_into().unwrap();
        ai = 0;
        bi = 16;
    }

    // Main vector loop: runs while both runs still offer a full vector.
    // Always pull from the run with the smaller head; the emitted low half
    // is then ≤ every element still unloaded.
    while ai + 16 <= a.len() && bi + 16 <= b.len() {
        let mut next: [u32; 16] = if a[ai] <= b[bi] {
            let n = a[ai..ai + 16].try_into().unwrap();
            ai += 16;
            n
        } else {
            let n = b[bi..bi + 16].try_into().unwrap();
            bi += 16;
            n
        };
        bitonic_merge16(&mut cur, &mut next);
        out[oi..oi + 16].copy_from_slice(&cur);
        oi += 16;
        cur = next;
    }

    // Tails: `cur` (16 sorted) + a[ai..] + b[bi..], all sorted runs.
    let mut tail = Vec::with_capacity(16 + (a.len() - ai) + (b.len() - bi));
    tail.resize(a.len() - ai + b.len() - bi, 0);
    scalar_merge(&a[ai..], &b[bi..], &mut tail);
    scalar_merge_into(&cur, &tail, &mut out[oi..]);
}

fn scalar_merge(a: &[u32], b: &[u32], out: &mut [u32]) {
    scalar_merge_into(a, b, out);
}

fn scalar_merge_into(a: &[u32], b: &[u32], out: &mut [u32]) {
    assert_eq!(out.len(), a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    for o in out.iter_mut() {
        if i < a.len() && (j >= b.len() || a[i] <= b[j]) {
            *o = a[i];
            i += 1;
        } else {
            *o = b[j];
            j += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::SplitMixRng;

    fn check(a: Vec<u32>, b: Vec<u32>) {
        let mut a = a;
        let mut b = b;
        a.sort_unstable();
        b.sort_unstable();
        let mut expect: Vec<u32> = a.iter().chain(b.iter()).copied().collect();
        expect.sort_unstable();
        let mut out = vec![0u32; a.len() + b.len()];
        merge_runs(&a, &b, &mut out);
        assert_eq!(out, expect);
    }

    #[test]
    fn merge_empty_and_small() {
        check(vec![], vec![]);
        check(vec![1], vec![]);
        check(vec![], vec![2, 3]);
        check(vec![5, 1], vec![4, 2, 8]);
    }

    #[test]
    fn merge_vector_sized() {
        check(
            (0..64).map(|i| i * 2).collect(),
            (0..64).map(|i| i * 2 + 1).collect(),
        );
        check((0..64).collect(), (64..128).collect());
        check((64..128).collect(), (0..64).collect());
    }

    #[test]
    fn merge_unbalanced() {
        check((0..1000).collect(), vec![500]);
        check(vec![0], (1..1000).collect());
        check((0..17).collect(), (0..333).collect());
    }

    #[test]
    fn merge_with_duplicates() {
        check(vec![7; 100], vec![7; 50]);
        check(vec![1, 1, 2, 2], vec![1, 2, 2, 3]);
    }

    fn random_vec(rng: &mut SplitMixRng, lo: usize, hi: usize) -> Vec<u32> {
        let n = rng.range_usize(lo, hi);
        (0..n).map(|_| rng.next_u32()).collect()
    }

    #[test]
    fn merge_random() {
        let mut rng = SplitMixRng::seed_from_u64(0xD002);
        for _ in 0..256 {
            let a = random_vec(&mut rng, 0, 400);
            let b = random_vec(&mut rng, 0, 400);
            check(a, b);
        }
    }

    #[test]
    fn merge_random_vector_heavy() {
        let mut rng = SplitMixRng::seed_from_u64(0xD003);
        for _ in 0..256 {
            let a = random_vec(&mut rng, 100, 300);
            let b = random_vec(&mut rng, 100, 300);
            check(a, b);
        }
    }
}
