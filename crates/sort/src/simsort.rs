//! Simulated memory traffic of the parallel merge sort (regenerates the
//! "Measured" series of Fig. 10 on the KNL simulator).
//!
//! The sort's traffic per merge pass producing `L` lines is `L` line reads
//! plus `L` line writes plus the bitonic-network compute. Passes whose
//! working set fits on-die caches cost L2-rate traffic; memory-bound passes
//! go through the coherent cached path ([`knl_sim::Op::CopyBuf`]) when small
//! and stream ([`knl_sim::Op::Stream`]) when large. Inter-stage
//! synchronization uses coherent flag lines exactly like the real
//! implementation's hand-offs.

use knl_arch::{NumaKind, Schedule};
use knl_sim::{Machine, Op, Program, Runner, StreamKind};

/// Bitonic-network compute per produced line (16 lanes), ps.
const COMPUTE_PS_PER_LINE: u64 = 6_000;
/// Merge passes whose *run width* fits within this many lines are cache-
/// resident (the tile L2 holds input+output ping-pong halves); they cost
/// L2-rate traffic instead of memory streams — exactly the structure
/// Eqs. 3–5 model ("when all elements fit in L1, we only fetch data from
/// memory in the first stage").
const CACHED_WIDTH_LINES: u64 = 2 << 10; // 128 KB
/// Chunks small enough to simulate through the real coherent cached path.
const COHERENT_PATH_LINES: u64 = 4 << 10; // 256 KB
/// Per-line cost of a cache-resident merge pass (L2 S/F read + buffered
/// write at the tile port rate), excluding the network compute.
const CACHED_PASS_PS_PER_LINE: u64 = 14_000;

/// Configuration of one simulated sort run.
#[derive(Debug, Clone)]
pub struct SimSortSpec {
    /// Bytes of u32 keys to sort.
    pub bytes: u64,
    /// Worker threads (power of two).
    pub threads: usize,
    /// Thread placement.
    pub schedule: Schedule,
    /// Where the ping-pong buffers live.
    pub memory: NumaKind,
}

/// The programs [`run_simsort`] executes (exposed so the static analyzer
/// can pre-validate the workload). The machine is only consulted for its
/// configuration; allocation uses a fresh [`knl_sim::Arena`], so building
/// twice yields the same addresses and running them is identical to
/// calling `run_simsort`.
pub fn simsort_programs(m: &Machine, spec: &SimSortSpec) -> Vec<Program> {
    assert!(
        spec.threads.is_power_of_two(),
        "threads must be a power of two"
    );
    let num_cores = m.config().num_cores();
    let total_lines = (spec.bytes / 64).max(1);
    let p = spec.threads;
    let chunk_lines = (total_lines / p as u64).max(1);

    let mut arena = m.arena();
    // Ping-pong buffers + a flag line per thread.
    let buf_a = arena.alloc(spec.memory, total_lines * 64);
    let buf_b = arena.alloc(spec.memory, total_lines * 64);
    let flags: Vec<u64> = (0..p).map(|_| arena.alloc(spec.memory, 4096)).collect();

    // Passes inside a thread's chunk: elements per chunk / 16 per block.
    let elems_per_chunk = chunk_lines * 16;
    let chunk_passes = (elems_per_chunk as f64 / 16.0).log2().ceil().max(0.0) as u32;
    let stages = (p as f64).log2() as u32;

    let programs: Vec<Program> = (0..p)
        .map(|rank| {
            let mut prog = Program::new(spec.schedule.place(rank, num_cores));
            prog.push(Op::MarkStart(0));
            let my_off = rank as u64 * chunk_lines * 64;
            // Phase A: chunk sort = `chunk_passes` read+write passes. Pass
            // `p` merges runs of width 16·2^p elements = 2^p/4 lines; the
            // first pass touches memory (first fetch), later passes stay
            // cache-resident until the run width outgrows the tile L2.
            for pass in 0..chunk_passes {
                let width_lines = (1u64 << pass).div_ceil(4).min(chunk_lines);
                let (src, dst) = if pass.is_multiple_of(2) {
                    (buf_a, buf_b)
                } else {
                    (buf_b, buf_a)
                };
                push_phase_a_pass(
                    &mut prog,
                    src + my_off,
                    dst + my_off,
                    chunk_lines,
                    width_lines,
                    pass == 0,
                );
            }
            // Phase B: active while rank % 2^j == 0.
            let mut done_stage = 0u32;
            for j in 1..=stages {
                if rank % (1usize << j) != 0 {
                    break;
                }
                let partner = rank + (1usize << (j - 1));
                // Wait for the partner's sub-run (it signals when inactive).
                prog.push(Op::WaitFlag {
                    addr: flags[partner],
                    val: 1,
                });
                let out_lines = chunk_lines << j;
                let pass_idx = chunk_passes + j;
                let (src, dst) = if pass_idx.is_multiple_of(2) {
                    (buf_a, buf_b)
                } else {
                    (buf_b, buf_a)
                };
                push_memory_pass(&mut prog, src + my_off, dst + my_off, out_lines);
                done_stage = j;
            }
            let _ = done_stage;
            // Signal completion of all my active work.
            prog.push(Op::SetFlag {
                addr: flags[rank],
                val: 1,
            });
            prog.push(Op::MarkEnd(0));
            prog
        })
        .collect();
    programs
}

/// Simulate one full sort; returns seconds of simulated time.
pub fn run_simsort(m: &mut Machine, spec: &SimSortSpec) -> f64 {
    let programs = simsort_programs(m, spec);
    let result = Runner::new(m, programs).run();
    result.duration_ps(0, 0).expect("root interval") as f64 * 1e-12
}

/// One phase-A merge pass over a thread's whole chunk: memory traffic only
/// when the run width exceeds the cache-resident threshold (or on the
/// first-touch pass).
fn push_phase_a_pass(
    prog: &mut Program,
    src: u64,
    dst: u64,
    chunk_lines: u64,
    width_lines: u64,
    first_touch: bool,
) {
    if first_touch || width_lines > CACHED_WIDTH_LINES {
        push_memory_pass(prog, src, dst, chunk_lines);
    } else {
        // Cache-resident pass: L2-rate traffic + network compute.
        prog.push(Op::Compute(
            chunk_lines * (CACHED_PASS_PS_PER_LINE + COMPUTE_PS_PER_LINE),
        ));
    }
}

/// One merge pass that genuinely moves `lines` through memory: read + write
/// (+ network compute). Small spans use the real coherent path so L1/L2
/// behaviour is simulated, large spans stream.
fn push_memory_pass(prog: &mut Program, src: u64, dst: u64, lines: u64) {
    if lines <= COHERENT_PATH_LINES {
        prog.push(Op::CopyBuf {
            src,
            dst,
            bytes: lines * 64,
            vectorized: true,
        });
    } else {
        prog.push(Op::Stream {
            kind: StreamKind::Copy,
            a: dst,
            b: src,
            c: 0,
            lines,
            vectorized: true,
        });
    }
    prog.push(Op::Compute(lines * COMPUTE_PS_PER_LINE));
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat));
        m.set_jitter(0);
        m
    }

    fn spec(bytes: u64, threads: usize, memory: NumaKind) -> SimSortSpec {
        SimSortSpec {
            bytes,
            threads,
            schedule: Schedule::FillTiles,
            memory,
        }
    }

    #[test]
    fn bigger_inputs_cost_more() {
        let mut m = machine();
        let t1 = run_simsort(&mut m, &spec(1 << 16, 4, NumaKind::Ddr));
        m.reset_caches();
        m.reset_devices();
        let t2 = run_simsort(&mut m, &spec(1 << 20, 4, NumaKind::Ddr));
        assert!(t2 > 4.0 * t1, "64 KB {t1} vs 1 MB {t2}");
    }

    #[test]
    fn threads_help_at_scale() {
        let mut m = machine();
        let t1 = run_simsort(&mut m, &spec(16 << 20, 1, NumaKind::Ddr));
        m.reset_caches();
        m.reset_devices();
        let t8 = run_simsort(&mut m, &spec(16 << 20, 8, NumaKind::Ddr));
        assert!(t8 < t1, "8 threads {t8} vs 1 thread {t1}");
    }

    #[test]
    fn mcdram_gains_are_marginal() {
        // The paper's headline result: MCDRAM ≈ DRAM for this sort.
        let mut m = machine();
        let d = run_simsort(&mut m, &spec(32 << 20, 16, NumaKind::Ddr));
        m.reset_caches();
        m.reset_devices();
        let c = run_simsort(&mut m, &spec(32 << 20, 16, NumaKind::Mcdram));
        let speedup = d / c;
        assert!(
            (0.75..1.6).contains(&speedup),
            "MCDRAM speedup should be marginal, got {speedup} (DRAM {d}s, MCDRAM {c}s)"
        );
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_threads_rejected() {
        let mut m = machine();
        run_simsort(&mut m, &spec(1 << 16, 3, NumaKind::Ddr));
    }
}
