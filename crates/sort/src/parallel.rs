//! Parallel merge sort with thread halving and ping-pong buffers (§V-B).
//!
//! Phase A sorts `p` chunks in parallel (each thread bottom-up merge-sorts
//! its chunk through the bitonic kernel, 16-element network at the base).
//! Phase B runs `log2(p)` merge stages: at stage `j` only every `2^j`-th
//! thread is active — exactly the halving the paper's model captures ("the
//! number of threads is halved until only one thread is working"). Buffers
//! ping-pong between stages to bound memory at 2×.

use crate::bitonic::sort16;
use crate::merge::merge_runs;

/// Sort `data` ascending using up to `threads` host threads.
///
/// `threads` is clamped to a power of two and to the number of 16-element
/// blocks, so tiny inputs degrade gracefully to sequential sorting.
pub fn parallel_merge_sort(data: &mut [u32], threads: usize) {
    let n = data.len();
    if n <= 16 {
        sort_small(data);
        return;
    }
    let p = effective_threads(n, threads);
    let chunk = n.div_ceil(p);

    let mut src = data.to_vec();
    let mut dst = vec![0u32; n];

    // Phase A: sort chunks in parallel (in place within `src`).
    std::thread::scope(|s| {
        for piece in src.chunks_mut(chunk) {
            s.spawn(move || sort_run(piece));
        }
    });

    // Phase B: pairwise merges, span doubling, threads halving.
    let mut span = chunk;
    while span < n {
        let double = span * 2;
        std::thread::scope(|s| {
            for (src_seg, dst_seg) in src.chunks(double).zip(dst.chunks_mut(double)) {
                s.spawn(move || {
                    if src_seg.len() > span {
                        let (lo, hi) = src_seg.split_at(span);
                        merge_runs(lo, hi, dst_seg);
                    } else {
                        dst_seg.copy_from_slice(src_seg);
                    }
                });
            }
        });
        std::mem::swap(&mut src, &mut dst);
        span = double;
    }
    data.copy_from_slice(&src);
}

/// Number of workers actually used: power of two, at most `threads`, and
/// leaving every chunk at least 16 elements.
pub fn effective_threads(n: usize, threads: usize) -> usize {
    let mut p = threads.max(1).next_power_of_two();
    if p > threads {
        p /= 2;
    }
    while p > 1 && n / p < 16 {
        p /= 2;
    }
    p.max(1)
}

/// Sequential bottom-up merge sort of one run (16-element network base,
/// bitonic-kernel merges above, ping-pong with a scratch buffer).
pub fn sort_run(v: &mut [u32]) {
    let n = v.len();
    if n <= 16 {
        sort_small(v);
        return;
    }
    // Base: sort every 16-block with the network (tail scalar).
    let mut iter = v.chunks_exact_mut(16);
    for block in &mut iter {
        let arr: &mut [u32; 16] = block.try_into().unwrap();
        sort16(arr);
    }
    sort_small(iter.into_remainder());

    let mut scratch = vec![0u32; n];
    let mut src_is_v = true;
    let mut width = 16usize;
    while width < n {
        {
            let (src, dst): (&[u32], &mut [u32]) = if src_is_v {
                (&*v, &mut scratch[..])
            } else {
                (&scratch[..], &mut *v)
            };
            let mut start = 0;
            while start < n {
                let end = (start + 2 * width).min(n);
                let mid = (start + width).min(end);
                let (lo, hi) = (&src[start..mid], &src[mid..end]);
                merge_runs(lo, hi, &mut dst[start..end]);
                start = end;
            }
        }
        src_is_v = !src_is_v;
        width *= 2;
    }
    if !src_is_v {
        v.copy_from_slice(&scratch);
    }
}

/// Insertion sort for sub-vector tails.
fn sort_small(v: &mut [u32]) {
    for i in 1..v.len() {
        let x = v[i];
        let mut j = i;
        while j > 0 && v[j - 1] > x {
            v[j] = v[j - 1];
            j -= 1;
        }
        v[j] = x;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::SplitMixRng;

    fn check(mut v: Vec<u32>, threads: usize) {
        let mut expect = v.clone();
        expect.sort_unstable();
        parallel_merge_sort(&mut v, threads);
        assert_eq!(v, expect);
    }

    #[test]
    fn small_inputs() {
        check(vec![], 4);
        check(vec![3], 4);
        check(vec![2, 1], 4);
        check((0..16).rev().collect(), 4);
        check((0..17).rev().collect(), 4);
    }

    #[test]
    fn random_large_various_threads() {
        let mut rng = SplitMixRng::seed_from_u64(42);
        let v: Vec<u32> = (0..100_000).map(|_| rng.next_u32()).collect();
        for threads in [1, 2, 4, 8] {
            check(v.clone(), threads);
        }
    }

    #[test]
    fn non_power_of_two_lengths() {
        let mut rng = SplitMixRng::seed_from_u64(7);
        for n in [17usize, 100, 1000, 12345, 65537] {
            let v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
            check(v, 4);
        }
    }

    #[test]
    fn already_sorted_and_reversed() {
        check((0..10_000).collect(), 4);
        check((0..10_000).rev().collect(), 4);
        check(vec![5; 10_000], 4);
    }

    #[test]
    fn effective_threads_clamps() {
        assert_eq!(effective_threads(1_000_000, 6), 4);
        assert_eq!(effective_threads(1_000_000, 8), 8);
        assert_eq!(effective_threads(64, 64), 4); // 64/8 = 8 < 16
        assert_eq!(effective_threads(10, 64), 1);
    }

    #[test]
    fn sort_run_matches_std() {
        let mut rng = SplitMixRng::seed_from_u64(9);
        for n in [16usize, 31, 32, 100, 4096, 5000] {
            let mut v: Vec<u32> = (0..n).map(|_| rng.range_u32(0, 1000)).collect();
            let mut expect = v.clone();
            expect.sort_unstable();
            sort_run(&mut v);
            assert_eq!(v, expect, "n={n}");
        }
    }

    #[test]
    fn sorts_random() {
        let mut rng = SplitMixRng::seed_from_u64(0xD001);
        for _ in 0..64 {
            let n = rng.range_usize(0, 5000);
            let v: Vec<u32> = (0..n).map(|_| rng.next_u32()).collect();
            let threads = rng.range_usize(1, 9);
            check(v, threads);
        }
    }
}
