//! The paper's case-study application (§V-B): a parallel integer merge
//! sort whose merge kernel is a 16-wide bitonic network ("width 16 for
//! integers, to take advantage of vector instructions; hence we always
//! fetch full lines"), with ping-pong buffers and thread halving up the
//! merge tree.
//!
//! * [`bitonic`] — the compare–exchange networks (16-element sorter and
//!   16+16 merger), written over fixed-size arrays the compiler can
//!   vectorize.
//! * [`merge`] — merging two sorted runs through the bitonic kernel.
//! * [`parallel`] — the full parallel sort on host threads.
//! * [`simsort`] — the same algorithm's memory traffic as simulator
//!   programs, used to regenerate Fig. 10 with KNL timing.

pub mod bitonic;
pub mod merge;
pub mod parallel;
pub mod simsort;

pub use bitonic::{bitonic_merge16, sort16};
pub use merge::merge_runs;
pub use parallel::parallel_merge_sort;
