//! Bitonic compare–exchange networks over 16 lanes of `u32`.
//!
//! Written over fixed-size arrays with branch-free min/max so the compiler
//! auto-vectorizes (on KNL these are single AVX-512 `vpminud`/`vpmaxud`
//! instructions per stage). Width 16 = one cache line of `u32`s, the
//! paper's choice.

/// Compare–exchange lanes `i` and `i+dist` within a bitonic sequence.
#[inline]
fn clean_stage(v: &mut [u32; 16], dist: usize) {
    let mut i = 0;
    while i < 16 {
        if i & dist == 0 {
            let a = v[i];
            let b = v[i + dist];
            v[i] = a.min(b);
            v[i + dist] = a.max(b);
            i += 1;
        } else {
            i += dist;
        }
    }
}

/// Sort a bitonic 16-sequence ascending (4 butterfly stages).
#[inline]
pub fn bitonic_clean16(v: &mut [u32; 16]) {
    clean_stage(v, 8);
    clean_stage(v, 4);
    clean_stage(v, 2);
    clean_stage(v, 1);
}

/// Merge two ascending 16-sequences: on return `lo` holds the 16 smallest
/// of the 32 inputs (ascending) and `hi` the 16 largest (ascending).
#[inline]
pub fn bitonic_merge16(lo: &mut [u32; 16], hi: &mut [u32; 16]) {
    // Reversing one input makes lo ++ hi bitonic; one min/max stage splits
    // low/high halves, each itself bitonic; clean both.
    hi.reverse();
    for i in 0..16 {
        let a = lo[i];
        let b = hi[i];
        lo[i] = a.min(b);
        hi[i] = a.max(b);
    }
    bitonic_clean16(lo);
    bitonic_clean16(hi);
}

/// Sort 16 arbitrary values ascending with a full bitonic sorting network
/// (builds bitonic runs of 2, 4, 8, then merges; data-independent control
/// flow).
pub fn sort16(v: &mut [u32; 16]) {
    // Batcher bitonic sort: stages k = 2,4,8,16; within each, descending
    // sub-stages j = k/2 .. 1. Direction alternates per k-block.
    let mut k = 2;
    while k <= 16 {
        let mut j = k / 2;
        while j >= 1 {
            for i in 0..16 {
                let l = i ^ j;
                if l > i {
                    let ascending = i & k == 0;
                    if (v[i] > v[l]) == ascending {
                        v.swap(i, l);
                    }
                }
            }
            j /= 2;
        }
        k *= 2;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::SplitMixRng;

    #[test]
    fn sort16_sorts_known() {
        let mut v: [u32; 16] = [5, 3, 9, 1, 14, 7, 0, 12, 11, 2, 8, 15, 6, 4, 13, 10];
        sort16(&mut v);
        assert_eq!(v, std::array::from_fn(|i| i as u32));
    }

    #[test]
    fn merge16_basic() {
        let mut lo: [u32; 16] = std::array::from_fn(|i| (i * 2) as u32); // evens
        let mut hi: [u32; 16] = std::array::from_fn(|i| (i * 2 + 1) as u32); // odds
        bitonic_merge16(&mut lo, &mut hi);
        assert_eq!(lo, std::array::from_fn(|i| i as u32));
        assert_eq!(hi, std::array::from_fn(|i| (16 + i) as u32));
    }

    #[test]
    fn merge16_disjoint_ranges() {
        let mut lo: [u32; 16] = std::array::from_fn(|i| 100 + i as u32);
        let mut hi: [u32; 16] = std::array::from_fn(|i| i as u32);
        bitonic_merge16(&mut lo, &mut hi);
        assert_eq!(lo, std::array::from_fn(|i| i as u32));
        assert_eq!(hi, std::array::from_fn(|i| 100 + i as u32));
    }

    #[test]
    fn sort16_random() {
        let mut rng = SplitMixRng::seed_from_u64(0xD004);
        for _ in 0..256 {
            let mut v: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
            let mut expect = v;
            expect.sort_unstable();
            sort16(&mut v);
            assert_eq!(v, expect);
        }
    }

    #[test]
    fn merge16_random() {
        let mut rng = SplitMixRng::seed_from_u64(0xD005);
        for _ in 0..256 {
            let mut lo: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
            let mut hi: [u32; 16] = std::array::from_fn(|_| rng.next_u32());
            lo.sort_unstable();
            hi.sort_unstable();
            let mut expect: Vec<u32> = lo.iter().chain(hi.iter()).copied().collect();
            expect.sort_unstable();
            bitonic_merge16(&mut lo, &mut hi);
            let got: Vec<u32> = lo.iter().chain(hi.iter()).copied().collect();
            assert_eq!(got, expect);
        }
    }

    // The 0–1 principle: a comparison network sorts all inputs iff it
    // sorts all 0/1 inputs. 2^16 patterns is cheap enough to check
    // exhaustively.
    #[test]
    fn sort16_zero_one_principle() {
        for bits in 0u32..65536 {
            let mut v: [u32; 16] = std::array::from_fn(|i| (bits >> i) & 1);
            let ones = v.iter().sum::<u32>() as usize;
            sort16(&mut v);
            for (i, &x) in v.iter().enumerate() {
                assert_eq!(x, u32::from(i >= 16 - ones));
            }
        }
    }
}
