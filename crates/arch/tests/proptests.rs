//! Property tests on the architecture layer: address maps, schedules, and
//! topology invariants across random configurations.

use knl_arch::{
    ClusterMode, HybridSplit, MachineConfig, MemoryMode, NumaKind, Schedule, TileId, Topology,
};
use proptest::prelude::*;

fn arb_cluster() -> impl Strategy<Value = ClusterMode> {
    prop_oneof![
        Just(ClusterMode::A2A),
        Just(ClusterMode::Quadrant),
        Just(ClusterMode::Hemisphere),
        Just(ClusterMode::Snc4),
        Just(ClusterMode::Snc2),
    ]
}

fn arb_memory() -> impl Strategy<Value = MemoryMode> {
    prop_oneof![
        Just(MemoryMode::Flat),
        Just(MemoryMode::Cache),
        Just(MemoryMode::Hybrid(HybridSplit::Quarter)),
        Just(MemoryMode::Hybrid(HybridSplit::Half)),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every address in range resolves deterministically to a device and a
    /// home directory within the active tiles, in every mode combination.
    #[test]
    fn address_map_total_and_deterministic(
        cm in arb_cluster(),
        mm in arb_memory(),
        offsets in proptest::collection::vec(0.0f64..1.0, 16),
    ) {
        let cfg = MachineConfig::knl7210(cm, mm);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let span = map.addressable_bytes();
        for off in offsets {
            let addr = ((span as f64 * off) as u64).min(span - 64) & !63;
            let t1 = map.mem_target(addr);
            let t2 = map.mem_target(addr);
            prop_assert_eq!(t1, t2);
            let h1 = map.home_directory(addr);
            let h2 = map.home_directory(addr);
            prop_assert_eq!(h1, h2);
            prop_assert!((h1.0 as usize) < cfg.active_tiles);
        }
    }

    /// SNC cluster-locality: lines in a cluster's range are homed in that
    /// cluster's tiles.
    #[test]
    fn snc4_homes_stay_in_cluster(cluster in 0u8..4, frac in 0.0f64..1.0) {
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let r = map.region(NumaKind::Mcdram, cluster).unwrap();
        let addr = (r.start + ((r.end - r.start - 64) as f64 * frac) as u64) & !63;
        let home = map.home_directory(addr);
        prop_assert_eq!(
            topo.tile_cluster(home, ClusterMode::Snc4),
            cluster,
            "MCDRAM line homed outside its cluster"
        );
    }

    /// Schedules are injective over hardware threads for any thread count
    /// that fits the machine.
    #[test]
    fn schedules_injective(n in 1usize..=256) {
        for sched in Schedule::ALL {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                prop_assert!(seen.insert(sched.place(i, 64)), "{sched} reuses a hw thread");
            }
        }
    }

    /// Any active-tile count up to 38 yields a consistent topology:
    /// quadrants partition the tiles and hop distances are a metric.
    #[test]
    fn topology_consistent(tiles in 4usize..=38, seed in 0u64..500) {
        let topo = Topology::new(tiles, seed);
        prop_assert_eq!(topo.num_tiles(), tiles);
        let mut per_quadrant = [0usize; 4];
        for t in 0..tiles as u16 {
            per_quadrant[topo.tile_quadrant(TileId(t)).0 as usize] += 1;
        }
        prop_assert_eq!(per_quadrant.iter().sum::<usize>(), tiles);
        // Metric properties on a random triple.
        let a = TileId((seed % tiles as u64) as u16);
        let b = TileId(((seed / 7) % tiles as u64) as u16);
        let c = TileId(((seed / 49) % tiles as u64) as u16);
        prop_assert_eq!(topo.tile_hops(a, b), topo.tile_hops(b, a));
        prop_assert!(topo.tile_hops(a, c) <= topo.tile_hops(a, b) + topo.tile_hops(b, c));
    }

    /// DDR channel interleave is near-uniform in the transparent modes.
    #[test]
    fn ddr_interleave_uniform(cm in prop_oneof![Just(ClusterMode::A2A), Just(ClusterMode::Quadrant)]) {
        let cfg = MachineConfig::knl7210(cm, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let mut counts = [0usize; 6];
        let n = 24_000u64;
        for i in 0..n {
            if let knl_arch::MemTarget::Ddr { imc, chan } = map.mem_target(i * 64) {
                counts[imc as usize * 3 + chan as usize] += 1;
            }
        }
        for (ch, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            prop_assert!((frac - 1.0 / 6.0).abs() < 0.03, "channel {ch}: {frac}");
        }
    }
}
