//! Property tests on the architecture layer: address maps, schedules, and
//! topology invariants across random configurations.
//!
//! Randomized but deterministic: cases are drawn from [`SplitMixRng`] with
//! fixed seeds (the workspace builds offline with no external crates, so
//! these are hand-rolled property loops rather than `proptest` macros).

use knl_arch::{
    ClusterMode, HybridSplit, MachineConfig, MemoryMode, NumaKind, Schedule, SplitMixRng, TileId,
    Topology,
};

const CASES: u64 = 64;

fn arb_cluster(rng: &mut SplitMixRng) -> ClusterMode {
    ClusterMode::ALL[rng.range_usize(0, ClusterMode::ALL.len())]
}

fn arb_memory(rng: &mut SplitMixRng) -> MemoryMode {
    [
        MemoryMode::Flat,
        MemoryMode::Cache,
        MemoryMode::Hybrid(HybridSplit::Quarter),
        MemoryMode::Hybrid(HybridSplit::Half),
    ][rng.range_usize(0, 4)]
}

/// Every address in range resolves deterministically to a device and a
/// home directory within the active tiles, in every mode combination.
#[test]
fn address_map_total_and_deterministic() {
    let mut rng = SplitMixRng::seed_from_u64(0xA001);
    for _ in 0..CASES {
        let cm = arb_cluster(&mut rng);
        let mm = arb_memory(&mut rng);
        let cfg = MachineConfig::knl7210(cm, mm);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let span = map.addressable_bytes();
        for _ in 0..16 {
            let off = rng.next_f64();
            let addr = ((span as f64 * off) as u64).min(span - 64) & !63;
            let t1 = map.mem_target(addr);
            let t2 = map.mem_target(addr);
            assert_eq!(t1, t2, "{cm:?}/{mm:?} addr {addr:#x}");
            let h1 = map.home_directory(addr);
            let h2 = map.home_directory(addr);
            assert_eq!(h1, h2);
            assert!((h1.0 as usize) < cfg.active_tiles);
        }
    }
}

/// SNC cluster-locality: lines in a cluster's range are homed in that
/// cluster's tiles.
#[test]
fn snc4_homes_stay_in_cluster() {
    let mut rng = SplitMixRng::seed_from_u64(0xA002);
    let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
    let topo = cfg.topology();
    let map = cfg.address_map(&topo);
    for _ in 0..CASES {
        let cluster = rng.range_u32(0, 4) as u8;
        let frac = rng.next_f64();
        let r = map.region(NumaKind::Mcdram, cluster).unwrap();
        let addr = (r.start + ((r.end - r.start - 64) as f64 * frac) as u64) & !63;
        let home = map.home_directory(addr);
        assert_eq!(
            topo.tile_cluster(home, ClusterMode::Snc4),
            cluster,
            "MCDRAM line {addr:#x} homed outside its cluster"
        );
    }
}

/// Schedules are injective over hardware threads for any thread count
/// that fits the machine.
#[test]
fn schedules_injective() {
    let mut rng = SplitMixRng::seed_from_u64(0xA003);
    for _ in 0..CASES {
        let n = rng.range_usize(1, 257);
        for sched in Schedule::ALL {
            let mut seen = std::collections::HashSet::new();
            for i in 0..n {
                assert!(
                    seen.insert(sched.place(i, 64)),
                    "{sched} reuses a hw thread (n={n})"
                );
            }
        }
    }
}

/// Any active-tile count up to 38 yields a consistent topology:
/// quadrants partition the tiles and hop distances are a metric.
#[test]
fn topology_consistent() {
    let mut rng = SplitMixRng::seed_from_u64(0xA004);
    for _ in 0..CASES {
        let tiles = rng.range_usize(4, 39);
        let seed = rng.range_u64(0, 500);
        let topo = Topology::new(tiles, seed);
        assert_eq!(topo.num_tiles(), tiles);
        let mut per_quadrant = [0usize; 4];
        for t in 0..tiles as u16 {
            per_quadrant[topo.tile_quadrant(TileId(t)).0 as usize] += 1;
        }
        assert_eq!(per_quadrant.iter().sum::<usize>(), tiles);
        // Metric properties on a random triple.
        let a = TileId((seed % tiles as u64) as u16);
        let b = TileId(((seed / 7) % tiles as u64) as u16);
        let c = TileId(((seed / 49) % tiles as u64) as u16);
        assert_eq!(topo.tile_hops(a, b), topo.tile_hops(b, a));
        assert!(topo.tile_hops(a, c) <= topo.tile_hops(a, b) + topo.tile_hops(b, c));
    }
}

/// DDR channel interleave is near-uniform in the transparent modes.
#[test]
fn ddr_interleave_uniform() {
    for cm in [ClusterMode::A2A, ClusterMode::Quadrant] {
        let cfg = MachineConfig::knl7210(cm, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let mut counts = [0usize; 6];
        let n = 24_000u64;
        for i in 0..n {
            if let knl_arch::MemTarget::Ddr { imc, chan } = map.mem_target(i * 64) {
                counts[imc as usize * 3 + chan as usize] += 1;
            }
        }
        for (ch, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!(
                (frac - 1.0 / 6.0).abs() < 0.03,
                "{cm:?} channel {ch}: {frac}"
            );
        }
    }
}

/// Address decode round-trip: every random line address resolves to a
/// NUMA node whose range contains it, the backing device agrees with the
/// node's kind, and the flat device index stays in bounds.
#[test]
fn address_decode_roundtrips_to_containing_node() {
    use knl_arch::address::NUM_MEM_DEVICES;
    use knl_arch::MemTarget;
    let mut rng = SplitMixRng::seed_from_u64(0xA005);
    for _ in 0..CASES {
        let cm = arb_cluster(&mut rng);
        let mm = arb_memory(&mut rng);
        let cfg = MachineConfig::knl7210(cm, mm);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let span = map.addressable_bytes();
        for _ in 0..16 {
            let addr = rng.range_u64(0, span - 64) & !63;
            let node = map
                .node_of(addr)
                .unwrap_or_else(|| panic!("{cm:?}/{mm:?}: {addr:#x} in no node"));
            assert!(node.range.contains(&addr), "{cm:?}/{mm:?}: range mismatch");
            let target = map.mem_target(addr);
            assert!(target.device_index() < NUM_MEM_DEVICES);
            match target {
                MemTarget::Ddr { .. } => assert_eq!(node.kind, NumaKind::Ddr),
                MemTarget::Mcdram { .. } => assert_eq!(node.kind, NumaKind::Mcdram),
            }
        }
    }
}

/// Interleaving is line-granular: every byte of one 64-B line maps to the
/// same device and home directory, so a line never straddles devices.
#[test]
fn interleaving_is_line_granular() {
    let mut rng = SplitMixRng::seed_from_u64(0xA006);
    for _ in 0..CASES {
        let cm = arb_cluster(&mut rng);
        let mm = arb_memory(&mut rng);
        let cfg = MachineConfig::knl7210(cm, mm);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let span = map.addressable_bytes();
        let line = rng.range_u64(0, span / 64) * 64;
        let t0 = map.mem_target(line);
        let h0 = map.home_directory(line);
        for off in [1u64, 17, 31, 63] {
            assert_eq!(
                map.mem_target(line + off),
                t0,
                "{cm:?}/{mm:?} {line:#x}+{off}"
            );
            assert_eq!(map.home_directory(line + off), h0);
        }
    }
}
