//! Deterministic pseudo-random number generation built on the repo's
//! [`splitmix64`](crate::topology::splitmix64) mixing function.
//!
//! The workspace builds with no external crates, so tests, benches and the
//! sweep executor use this generator instead of `rand`. It is a plain
//! splitmix64 counter stream: fast, `Send`, trivially seedable, and —
//! crucially for the parallel sweep's determinism contract — a pure
//! function of the seed, independent of thread scheduling.

use crate::topology::splitmix64;

/// A splitmix64-stream pseudo-random generator.
#[derive(Debug, Clone)]
pub struct SplitMixRng {
    state: u64,
}

impl SplitMixRng {
    /// Seed the generator. Equal seeds yield equal streams.
    pub fn seed_from_u64(seed: u64) -> Self {
        SplitMixRng { state: seed }
    }

    /// Derive an independent per-job generator from a base seed and a job
    /// index (the sweep executor's per-job seeding rule).
    pub fn for_job(base_seed: u64, job_index: u64) -> Self {
        SplitMixRng {
            state: splitmix64(base_seed ^ job_index.rotate_left(32)),
        }
    }

    /// Next 64 uniformly distributed bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next 32 uniformly distributed bits.
    pub fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Uniform `u64` in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_u64() % (hi - lo)
    }

    /// Uniform `u32` in `[lo, hi)`.
    pub fn range_u32(&mut self, lo: u32, hi: u32) -> u32 {
        self.range_u64(lo as u64, hi as u64) as u32
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range_usize(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, v: &mut [T]) {
        for i in (1..v.len()).rev() {
            let j = self.range_usize(0, i + 1);
            v.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = SplitMixRng::seed_from_u64(42);
        let mut b = SplitMixRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SplitMixRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn range_respects_bounds() {
        let mut r = SplitMixRng::seed_from_u64(7);
        for _ in 0..1000 {
            let x = r.range_u64(10, 20);
            assert!((10..20).contains(&x));
            let f = r.next_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn range_roughly_uniform() {
        let mut r = SplitMixRng::seed_from_u64(1);
        let mut counts = [0usize; 8];
        let n = 80_000;
        for _ in 0..n {
            counts[r.range_usize(0, 8)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.01, "bucket {i}: {frac}");
        }
    }

    #[test]
    fn job_streams_are_independent() {
        let a: Vec<u64> = {
            let mut r = SplitMixRng::for_job(0xBE7C, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = SplitMixRng::for_job(0xBE7C, 1);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_ne!(a, b);
        // And reproducible.
        let a2: Vec<u64> = {
            let mut r = SplitMixRng::for_job(0xBE7C, 0);
            (0..8).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, a2);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = SplitMixRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v, sorted,
            "shuffle left the slice sorted (astronomically unlikely)"
        );
    }
}
