//! The KNL mesh-of-rings topology (§II-B, Fig. 2b of the paper).
//!
//! The die is a 6-column grid of ring stops. Row 0 holds four MCDRAM EDCs and
//! the PCIe/IIO stop; row 8 holds the other four EDCs and the Misc stop. Rows
//! 1–7 hold the 38 tile slots: row 1 has four tiles (columns 1–4), row 4 has
//! four tiles flanked by the two DDR memory controllers (IMCs), and the other
//! five rows have six tiles each (4 + 6 + 6 + 4 + 6 + 6 + 6 = 38).
//!
//! Some tiles are yield-disabled ("at least two of them are disabled in all
//! models currently shipping"); a KNL 7210 exposes 32 active tiles (64 cores),
//! so 6 of the 38 slots are disabled. Which physical slots are disabled is
//! not discoverable from software — the paper could not map tiles to mesh
//! coordinates. We therefore pick the disabled slots pseudo-randomly from a
//! seed: the *benchmark* layer never reads coordinates (mirroring the paper's
//! constraint), only the simulated hardware does, for routing.
//!
//! Routing is Y-first-then-X. Each row and column is a pair of half rings
//! traversed in both directions ("when a message goes off the ring, it gets
//! injected back in the opposite direction"), so the effective hop distance
//! between two stops is `|Δy| + |Δx|`.

use crate::cluster::ClusterMode;
use crate::ids::{CoreId, QuadrantId, TileId};

/// Number of grid columns.
pub const GRID_COLS: i32 = 6;
/// Number of grid rows (row 0 and row 8 are EDC/IO rows).
pub const GRID_ROWS: i32 = 9;
/// Total tile slots on the die.
pub const TILE_SLOTS: usize = 38;
/// Number of MCDRAM embedded DRAM controllers.
pub const NUM_EDCS: usize = 8;
/// Number of DDR integrated memory controllers.
pub const NUM_IMCS: usize = 2;
/// DDR channels per IMC.
pub const DDR_CHANNELS_PER_IMC: usize = 3;

/// What sits at a mesh stop.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopKind {
    /// An active tile (two cores + 1 MB shared L2 + CHA).
    Tile(TileId),
    /// A yield-disabled tile slot (still a ring stop, but inert).
    DisabledTile,
    /// An MCDRAM embedded DRAM controller (0..8).
    Edc(u8),
    /// A DDR memory controller (0 = left/west, 1 = right/east).
    Imc(u8),
    /// The PCIe / IIO stop.
    Iio,
    /// The miscellaneous stop on the bottom row.
    Misc,
}

/// One stop of the mesh, at grid position `(x, y)`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Stop {
    /// What sits at the stop.
    pub kind: StopKind,
    /// Grid column.
    pub x: i32,
    /// Grid row.
    pub y: i32,
}

/// The instantiated die topology for a given number of active tiles.
#[derive(Debug, Clone)]
pub struct Topology {
    stops: Vec<Stop>,
    /// Grid position of each active tile, indexed by `TileId`.
    tile_pos: Vec<(i32, i32)>,
    /// Grid position of each EDC, indexed by EDC id.
    edc_pos: Vec<(i32, i32)>,
    /// Grid position of each IMC, indexed by IMC id.
    imc_pos: Vec<(i32, i32)>,
    active_tiles: usize,
}

impl Topology {
    /// Build a topology with `active_tiles` tiles enabled out of the 38
    /// slots. Disabled slots are chosen pseudo-randomly from `disable_seed`
    /// (deterministic); active tiles are numbered densely in row-major grid
    /// order.
    ///
    /// # Panics
    /// Panics if `active_tiles > TILE_SLOTS`.
    pub fn new(active_tiles: usize, disable_seed: u64) -> Self {
        assert!(active_tiles <= TILE_SLOTS, "at most {TILE_SLOTS} tiles");
        let slots = tile_slot_positions();
        let disabled = pick_disabled(TILE_SLOTS - active_tiles, disable_seed);

        let mut stops = Vec::new();
        let mut tile_pos = Vec::with_capacity(active_tiles);
        let mut next_tile = 0u16;
        for (slot_idx, &(x, y)) in slots.iter().enumerate() {
            if disabled.contains(&slot_idx) {
                stops.push(Stop {
                    kind: StopKind::DisabledTile,
                    x,
                    y,
                });
            } else {
                stops.push(Stop {
                    kind: StopKind::Tile(TileId(next_tile)),
                    x,
                    y,
                });
                tile_pos.push((x, y));
                next_tile += 1;
            }
        }

        // EDCs: four on the top row (columns 0,1,4,5), four on the bottom.
        let mut edc_pos = Vec::with_capacity(NUM_EDCS);
        for (i, &x) in [0, 1, 4, 5].iter().enumerate() {
            stops.push(Stop {
                kind: StopKind::Edc(i as u8),
                x,
                y: 0,
            });
            edc_pos.push((x, 0));
        }
        for (i, &x) in [0, 1, 4, 5].iter().enumerate() {
            let id = (i + 4) as u8;
            stops.push(Stop {
                kind: StopKind::Edc(id),
                x,
                y: GRID_ROWS - 1,
            });
            edc_pos.push((x, GRID_ROWS - 1));
        }
        // IMCs flank row 4 at the outer columns.
        let imc_pos = vec![(0, 4), (GRID_COLS - 1, 4)];
        stops.push(Stop {
            kind: StopKind::Imc(0),
            x: 0,
            y: 4,
        });
        stops.push(Stop {
            kind: StopKind::Imc(1),
            x: GRID_COLS - 1,
            y: 4,
        });
        // IIO top-middle, Misc bottom-middle.
        stops.push(Stop {
            kind: StopKind::Iio,
            x: 2,
            y: 0,
        });
        stops.push(Stop {
            kind: StopKind::Misc,
            x: 2,
            y: GRID_ROWS - 1,
        });

        Topology {
            stops,
            tile_pos,
            edc_pos,
            imc_pos,
            active_tiles,
        }
    }

    /// Number of active tiles.
    pub fn num_tiles(&self) -> usize {
        self.active_tiles
    }

    /// Number of active cores (two per tile).
    pub fn num_cores(&self) -> usize {
        self.active_tiles * 2
    }

    /// All mesh stops, including disabled slots and IO stops.
    pub fn stops(&self) -> &[Stop] {
        &self.stops
    }

    /// Grid position of an active tile.
    pub fn tile_position(&self, t: TileId) -> (i32, i32) {
        self.tile_pos[t.0 as usize]
    }

    /// Grid position of an EDC.
    pub fn edc_position(&self, edc: u8) -> (i32, i32) {
        self.edc_pos[edc as usize]
    }

    /// Grid position of an IMC.
    pub fn imc_position(&self, imc: u8) -> (i32, i32) {
        self.imc_pos[imc as usize]
    }

    /// Mesh hop distance between two grid positions (Y-then-X over
    /// bidirectional half rings ⇒ Manhattan distance).
    pub fn hops(&self, a: (i32, i32), b: (i32, i32)) -> u32 {
        ((a.0 - b.0).abs() + (a.1 - b.1).abs()) as u32
    }

    /// Hop distance between two active tiles.
    pub fn tile_hops(&self, a: TileId, b: TileId) -> u32 {
        self.hops(self.tile_position(a), self.tile_position(b))
    }

    /// Which geometric quadrant a grid position belongs to. Quadrants are
    /// the four die quarters: (west/east) × (north/south).
    pub fn quadrant_of_pos(&self, pos: (i32, i32)) -> QuadrantId {
        let east = (pos.0 >= GRID_COLS / 2) as u8;
        let south = (pos.1 >= (GRID_ROWS + 1) / 2) as u8;
        QuadrantId(east | (south << 1))
    }

    /// Quadrant of an active tile.
    pub fn tile_quadrant(&self, t: TileId) -> QuadrantId {
        self.quadrant_of_pos(self.tile_position(t))
    }

    /// Hemisphere (0 = west, 1 = east) of an active tile. Hemispheres follow
    /// the DDR controllers, which sit on the west and east edges.
    pub fn tile_hemisphere(&self, t: TileId) -> u8 {
        (self.tile_position(t).0 >= GRID_COLS / 2) as u8
    }

    /// Cluster index of a tile under a cluster mode (always 0 for A2A).
    pub fn tile_cluster(&self, t: TileId, mode: ClusterMode) -> u8 {
        match mode.num_clusters() {
            1 => 0,
            2 => self.tile_hemisphere(t),
            4 => self.tile_quadrant(t).0,
            n => unreachable!("unsupported cluster count {n}"),
        }
    }

    /// Cluster index of a core.
    pub fn core_cluster(&self, c: CoreId, mode: ClusterMode) -> u8 {
        self.tile_cluster(c.tile(), mode)
    }

    /// Active tiles belonging to a given cluster under `mode`.
    pub fn tiles_in_cluster(&self, mode: ClusterMode, cluster: u8) -> Vec<TileId> {
        (0..self.active_tiles as u16)
            .map(TileId)
            .filter(|&t| self.tile_cluster(t, mode) == cluster)
            .collect()
    }

    /// The EDCs residing in a given quadrant (two per quadrant).
    pub fn edcs_in_quadrant(&self, q: QuadrantId) -> Vec<u8> {
        (0..NUM_EDCS as u8)
            .filter(|&e| self.quadrant_of_pos(self.edc_position(e)) == q)
            .collect()
    }

    /// The IMC closest to a quadrant (IMC 0 for west quadrants, 1 for east).
    pub fn imc_for_quadrant(&self, q: QuadrantId) -> u8 {
        q.0 & 1
    }
}

/// Grid positions of the 38 tile slots, row-major.
fn tile_slot_positions() -> Vec<(i32, i32)> {
    let mut v = Vec::with_capacity(TILE_SLOTS);
    for y in 1..GRID_ROWS - 1 {
        let cols: &[i32] = match y {
            // Row 1 has four tiles (flanked by ring turn-arounds in silicon).
            1 => &[1, 2, 3, 4],
            // Row 4 has the two IMCs at the outer columns.
            4 => &[1, 2, 3, 4],
            _ => &[0, 1, 2, 3, 4, 5],
        };
        for &x in cols {
            v.push((x, y));
        }
    }
    debug_assert_eq!(v.len(), TILE_SLOTS);
    v
}

/// Choose `n` distinct slot indices to disable, pseudo-randomly but
/// deterministically from `seed` (splitmix64-driven Fisher–Yates prefix).
fn pick_disabled(n: usize, seed: u64) -> Vec<usize> {
    let mut idx: Vec<usize> = (0..TILE_SLOTS).collect();
    let mut s = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    for i in 0..n.min(TILE_SLOTS) {
        s = splitmix64(s);
        let j = i + (s as usize) % (TILE_SLOTS - i);
        idx.swap(i, j);
    }
    let mut out: Vec<usize> = idx[..n].to_vec();
    out.sort_unstable();
    out
}

/// The splitmix64 mixing function (public: also used by the address hashes).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(32, 7)
    }

    #[test]
    fn slot_count_is_38() {
        assert_eq!(tile_slot_positions().len(), 38);
    }

    #[test]
    fn active_tile_count() {
        let t = topo();
        assert_eq!(t.num_tiles(), 32);
        assert_eq!(t.num_cores(), 64);
        let disabled = t
            .stops()
            .iter()
            .filter(|s| matches!(s.kind, StopKind::DisabledTile))
            .count();
        assert_eq!(disabled, 6);
    }

    #[test]
    fn all_stops_present() {
        let t = topo();
        let edcs = t
            .stops()
            .iter()
            .filter(|s| matches!(s.kind, StopKind::Edc(_)))
            .count();
        let imcs = t
            .stops()
            .iter()
            .filter(|s| matches!(s.kind, StopKind::Imc(_)))
            .count();
        assert_eq!(edcs, 8);
        assert_eq!(imcs, 2);
        assert!(t.stops().iter().any(|s| matches!(s.kind, StopKind::Iio)));
        assert!(t.stops().iter().any(|s| matches!(s.kind, StopKind::Misc)));
    }

    #[test]
    fn hops_symmetric_and_triangle() {
        let t = topo();
        for a in 0..t.num_tiles() as u16 {
            for b in 0..t.num_tiles() as u16 {
                let ab = t.tile_hops(TileId(a), TileId(b));
                let ba = t.tile_hops(TileId(b), TileId(a));
                assert_eq!(ab, ba);
                if a == b {
                    assert_eq!(ab, 0);
                }
            }
        }
        // Triangle inequality on a few triples.
        let (a, b, c) = (TileId(0), TileId(10), TileId(25));
        assert!(t.tile_hops(a, c) <= t.tile_hops(a, b) + t.tile_hops(b, c));
    }

    #[test]
    fn quadrants_cover_all_tiles() {
        let t = topo();
        let mut counts = [0usize; 4];
        for i in 0..t.num_tiles() as u16 {
            counts[t.tile_quadrant(TileId(i)).0 as usize] += 1;
        }
        assert_eq!(counts.iter().sum::<usize>(), 32);
        // No quadrant should be empty or hold more than half the die.
        for (q, &c) in counts.iter().enumerate() {
            assert!((4..=16).contains(&c), "quadrant {q} has {c} tiles");
        }
    }

    #[test]
    fn hemispheres_partition() {
        let t = topo();
        let west = t.tiles_in_cluster(ClusterMode::Hemisphere, 0).len();
        let east = t.tiles_in_cluster(ClusterMode::Hemisphere, 1).len();
        assert_eq!(west + east, 32);
        assert!(west >= 10 && east >= 10);
    }

    #[test]
    fn a2a_single_cluster() {
        let t = topo();
        assert_eq!(t.tiles_in_cluster(ClusterMode::A2A, 0).len(), 32);
    }

    #[test]
    fn each_quadrant_has_two_edcs() {
        let t = topo();
        for q in 0..4 {
            assert_eq!(t.edcs_in_quadrant(QuadrantId(q)).len(), 2, "quadrant {q}");
        }
    }

    #[test]
    fn imc_for_quadrant_follows_east_west() {
        let t = topo();
        assert_eq!(t.imc_for_quadrant(QuadrantId(0)), 0); // NW -> west IMC
        assert_eq!(t.imc_for_quadrant(QuadrantId(1)), 1); // NE -> east IMC
        assert_eq!(t.imc_for_quadrant(QuadrantId(2)), 0); // SW
        assert_eq!(t.imc_for_quadrant(QuadrantId(3)), 1); // SE
    }

    #[test]
    fn disable_deterministic_per_seed() {
        let a = Topology::new(32, 42);
        let b = Topology::new(32, 42);
        let c = Topology::new(32, 43);
        assert_eq!(a.tile_pos, b.tile_pos);
        assert_ne!(a.tile_pos, c.tile_pos);
    }

    #[test]
    fn full_die_has_no_disabled() {
        let t = Topology::new(38, 0);
        assert_eq!(t.num_tiles(), 38);
        assert!(!t
            .stops()
            .iter()
            .any(|s| matches!(s.kind, StopKind::DisabledTile)));
    }

    #[test]
    #[should_panic(expected = "at most")]
    fn too_many_tiles_panics() {
        Topology::new(39, 0);
    }

    #[test]
    fn core_cluster_matches_tile() {
        let t = topo();
        for c in 0..t.num_cores() as u16 {
            let core = CoreId(c);
            assert_eq!(
                t.core_cluster(core, ClusterMode::Quadrant),
                t.tile_cluster(core.tile(), ClusterMode::Quadrant)
            );
        }
    }
}
