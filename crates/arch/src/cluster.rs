//! The five cluster modes of KNL (§II-D of the paper).
//!
//! All cluster modes keep the full chip cache-coherent; they differ only in
//! how cache-line addresses are assigned to the distributed tag directories
//! (one Cache/Home Agent per tile) and, for SNC modes, in whether the
//! resulting affinity is exposed to the OS as NUMA domains.

/// Cluster (NUMA-exposure) mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ClusterMode {
    /// All-to-all: line addresses uniformly hashed across *all* directories.
    A2A,
    /// Quadrant: lines homed in the quadrant of the memory they map to;
    /// software-transparent.
    Quadrant,
    /// Hemisphere: like quadrant but with two halves.
    Hemisphere,
    /// Sub-NUMA Clustering with 4 clusters: quadrant affinity exposed to the
    /// OS as four NUMA domains.
    Snc4,
    /// Sub-NUMA Clustering with 2 clusters.
    Snc2,
}

impl ClusterMode {
    /// All five modes, in the column order of the paper's Tables I and II
    /// (SNC4, SNC2, Quadrant, Hemisphere, A2A).
    pub const ALL: [ClusterMode; 5] = [
        ClusterMode::Snc4,
        ClusterMode::Snc2,
        ClusterMode::Quadrant,
        ClusterMode::Hemisphere,
        ClusterMode::A2A,
    ];

    /// Number of affinity clusters the directory hash respects
    /// (1 for A2A — no affinity).
    pub fn num_clusters(self) -> usize {
        match self {
            ClusterMode::A2A => 1,
            ClusterMode::Hemisphere | ClusterMode::Snc2 => 2,
            ClusterMode::Quadrant | ClusterMode::Snc4 => 4,
        }
    }

    /// Whether the affinity is exposed to software as NUMA domains
    /// ("Software NUMA" columns of Tables I/II).
    pub fn software_numa(self) -> bool {
        matches!(self, ClusterMode::Snc4 | ClusterMode::Snc2)
    }

    /// Short name as used in the paper's tables.
    pub fn name(self) -> &'static str {
        match self {
            ClusterMode::A2A => "A2A",
            ClusterMode::Quadrant => "QUAD",
            ClusterMode::Hemisphere => "HEM",
            ClusterMode::Snc4 => "SNC4",
            ClusterMode::Snc2 => "SNC2",
        }
    }

    /// Inverse of [`name`](Self::name), for decoding cached results.
    pub fn from_name(name: &str) -> Option<ClusterMode> {
        Self::ALL.into_iter().find(|m| m.name() == name)
    }

    /// The paper notes SNC2 "is still experimental" and shows higher
    /// variance; the simulator widens its timing jitter accordingly.
    pub fn experimental(self) -> bool {
        matches!(self, ClusterMode::Snc2)
    }
}

impl std::fmt::Display for ClusterMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cluster_counts() {
        assert_eq!(ClusterMode::A2A.num_clusters(), 1);
        assert_eq!(ClusterMode::Hemisphere.num_clusters(), 2);
        assert_eq!(ClusterMode::Snc2.num_clusters(), 2);
        assert_eq!(ClusterMode::Quadrant.num_clusters(), 4);
        assert_eq!(ClusterMode::Snc4.num_clusters(), 4);
    }

    #[test]
    fn software_numa_only_snc() {
        for m in ClusterMode::ALL {
            assert_eq!(
                m.software_numa(),
                matches!(m, ClusterMode::Snc4 | ClusterMode::Snc2)
            );
        }
    }

    #[test]
    fn all_has_five_distinct() {
        let mut names: Vec<&str> = ClusterMode::ALL.iter().map(|m| m.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 5);
    }

    #[test]
    fn snc2_is_experimental() {
        assert!(ClusterMode::Snc2.experimental());
        assert!(!ClusterMode::Snc4.experimental());
    }
}
