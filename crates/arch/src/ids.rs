//! Strongly-typed identifiers for hardware entities.
//!
//! A KNL tile holds two cores; each core has four hardware threads
//! (HyperThreads). Identifiers are dense indices over the *active* entities
//! (yield-disabled tiles are excluded from the `TileId` space).

/// Index of an active tile (0-based, dense over the active tiles only).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TileId(pub u16);

/// Index of a core. Core `c` lives on tile `c / 2`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u16);

/// Index of a hardware thread. HW thread `h` lives on core `h / 4` when all
/// four HyperThreads are exposed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct HwThreadId(pub u16);

/// One of the (up to) four quadrants a tile belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct QuadrantId(pub u8);

/// Number of cores per tile on KNL.
pub const CORES_PER_TILE: u16 = 2;
/// Number of hardware threads per core on KNL.
pub const THREADS_PER_CORE: u16 = 4;

impl CoreId {
    /// The tile this core belongs to.
    pub fn tile(self) -> TileId {
        TileId(self.0 / CORES_PER_TILE)
    }

    /// Local index of the core within its tile (0 or 1).
    pub fn slot_in_tile(self) -> u16 {
        self.0 % CORES_PER_TILE
    }
}

impl TileId {
    /// The two cores on this tile.
    pub fn cores(self) -> [CoreId; 2] {
        [
            CoreId(self.0 * CORES_PER_TILE),
            CoreId(self.0 * CORES_PER_TILE + 1),
        ]
    }
}

impl HwThreadId {
    /// The core this hardware thread belongs to.
    pub fn core(self) -> CoreId {
        CoreId(self.0 / THREADS_PER_CORE)
    }

    /// Local index within the core (0..4).
    pub fn slot_in_core(self) -> u16 {
        self.0 % THREADS_PER_CORE
    }
}

impl std::fmt::Display for TileId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "C{}", self.0)
    }
}

impl std::fmt::Display for QuadrantId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "Q{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_tile_mapping() {
        assert_eq!(CoreId(0).tile(), TileId(0));
        assert_eq!(CoreId(1).tile(), TileId(0));
        assert_eq!(CoreId(2).tile(), TileId(1));
        assert_eq!(CoreId(63).tile(), TileId(31));
        assert_eq!(CoreId(5).slot_in_tile(), 1);
    }

    #[test]
    fn tile_cores_roundtrip() {
        for t in 0..32u16 {
            let tile = TileId(t);
            for c in tile.cores() {
                assert_eq!(c.tile(), tile);
            }
        }
    }

    #[test]
    fn hwthread_core_mapping() {
        assert_eq!(HwThreadId(0).core(), CoreId(0));
        assert_eq!(HwThreadId(3).core(), CoreId(0));
        assert_eq!(HwThreadId(4).core(), CoreId(1));
        assert_eq!(HwThreadId(7).slot_in_core(), 3);
    }

    #[test]
    fn display_forms() {
        assert_eq!(TileId(3).to_string(), "T3");
        assert_eq!(CoreId(7).to_string(), "C7");
        assert_eq!(QuadrantId(1).to_string(), "Q1");
    }
}
