//! A complete machine configuration: one of the paper's fifteen
//! (cluster × memory) combinations plus capacities and timing.

use crate::address::AddressMap;
use crate::cluster::ClusterMode;
use crate::memmode::MemoryMode;
use crate::timing::TimingParams;
use crate::topology::Topology;

const MB: u64 = 1 << 20;
const GB: u64 = 1 << 30;

/// Machine configuration.
///
/// By default capacities are *scaled down* (1 GiB DDR, 256 MiB MCDRAM) so the
/// simulator's tag structures stay small; latencies and bandwidths are
/// unscaled, and every capacity-sensitive experiment scales its working sets
/// by the same factor (documented in DESIGN.md / EXPERIMENTS.md). Use
/// [`MachineConfig::with_real_capacities`] for the full 96 GB + 16 GB machine.
#[derive(Debug, Clone, PartialEq)]
pub struct MachineConfig {
    /// Directory-affinity (NUMA exposure) mode.
    pub cluster: ClusterMode,
    /// MCDRAM mode.
    pub memory: MemoryMode,
    /// Active tiles (KNL 7210: 32 tiles = 64 cores).
    pub active_tiles: usize,
    /// Seed choosing which of the 38 slots are yield-disabled.
    pub disable_seed: u64,
    /// DDR4 capacity (scaled by default; see struct docs).
    pub ddr_bytes: u64,
    /// MCDRAM capacity (scaled by default).
    pub mcdram_bytes: u64,
    /// Primitive timing parameters.
    pub timing: TimingParams,
}

impl MachineConfig {
    /// The KNL 7210 of the paper (64 cores @ 1.3 GHz) in the given modes,
    /// with scaled capacities.
    pub fn knl7210(cluster: ClusterMode, memory: MemoryMode) -> Self {
        MachineConfig {
            cluster,
            memory,
            active_tiles: 32,
            disable_seed: 0x7210,
            ddr_bytes: GB,
            mcdram_bytes: 256 * MB,
            timing: TimingParams::knl7210(),
        }
    }

    /// Same machine with the real 96 GB DDR + 16 GB MCDRAM capacities.
    pub fn with_real_capacities(mut self) -> Self {
        self.ddr_bytes = 96 * GB;
        self.mcdram_bytes = 16 * GB;
        self
    }

    /// Override capacities (bytes are rounded down to line multiples by the
    /// address map).
    pub fn with_capacities(mut self, ddr_bytes: u64, mcdram_bytes: u64) -> Self {
        self.ddr_bytes = ddr_bytes;
        self.mcdram_bytes = mcdram_bytes;
        self
    }

    /// All fifteen configurations of the paper (5 cluster × 3 memory modes).
    pub fn all_fifteen() -> Vec<MachineConfig> {
        let mut v = Vec::with_capacity(15);
        for cm in ClusterMode::ALL {
            for mm in MemoryMode::CANONICAL {
                v.push(MachineConfig::knl7210(cm, mm));
            }
        }
        v
    }

    /// Instantiate the die topology.
    pub fn topology(&self) -> Topology {
        Topology::new(self.active_tiles, self.disable_seed)
    }

    /// Build the address map for this configuration.
    pub fn address_map(&self, topo: &Topology) -> AddressMap {
        AddressMap::new(
            topo,
            self.cluster,
            self.memory,
            self.ddr_bytes,
            self.mcdram_bytes,
        )
    }

    /// Number of active cores.
    pub fn num_cores(&self) -> usize {
        self.active_tiles * 2
    }

    /// Number of hardware threads (4 per core).
    pub fn num_hw_threads(&self) -> usize {
        self.num_cores() * 4
    }

    /// Human-readable configuration label, e.g. `SNC4-flat`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.cluster.name(), self.memory.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifteen_configs() {
        let all = MachineConfig::all_fifteen();
        assert_eq!(all.len(), 15);
        let labels: std::collections::HashSet<String> = all.iter().map(|c| c.label()).collect();
        assert_eq!(labels.len(), 15, "labels must be distinct");
    }

    #[test]
    fn knl7210_has_64_cores() {
        let c = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        assert_eq!(c.num_cores(), 64);
        assert_eq!(c.num_hw_threads(), 256);
        assert_eq!(c.label(), "SNC4-flat");
    }

    #[test]
    fn real_capacities() {
        let c =
            MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache).with_real_capacities();
        assert_eq!(c.ddr_bytes, 96 * GB);
        assert_eq!(c.mcdram_bytes, 16 * GB);
    }

    #[test]
    fn topology_and_map_construct() {
        let c = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let topo = c.topology();
        assert_eq!(topo.num_tiles(), 32);
        let map = c.address_map(&topo);
        assert!(map.addressable_bytes() > GB);
    }
}
