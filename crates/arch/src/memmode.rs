//! The three memory modes of the on-package MCDRAM (§II-C of the paper).

/// Cache/flat split of the hybrid mode. KNL offers 4 GB or 8 GB of the 16 GB
/// MCDRAM as cache (i.e. 1/4 or 1/2 of capacity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HybridSplit {
    /// 4 GB cache + 12 GB flat (25% cache).
    Quarter,
    /// 8 GB cache + 8 GB flat (50% cache).
    Half,
}

impl HybridSplit {
    /// Fraction of MCDRAM capacity operating as cache.
    pub fn cache_fraction(self) -> f64 {
        match self {
            HybridSplit::Quarter => 0.25,
            HybridSplit::Half => 0.5,
        }
    }
}

/// Memory mode of the MCDRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryMode {
    /// Flat: DDR and MCDRAM form one address space; MCDRAM appears as a
    /// separate NUMA node above the DDR range.
    Flat,
    /// Cache: MCDRAM is a direct-mapped, memory-side cache in front of DDR.
    Cache,
    /// Hybrid: part cache, part flat.
    Hybrid(HybridSplit),
}

impl MemoryMode {
    /// The three canonical modes (hybrid represented by its Half split), in
    /// the order used when enumerating the 15 configurations.
    pub const CANONICAL: [MemoryMode; 3] = [
        MemoryMode::Flat,
        MemoryMode::Cache,
        MemoryMode::Hybrid(HybridSplit::Half),
    ];

    /// Bytes of MCDRAM operating as memory-side cache, given total capacity.
    pub fn mcdram_cache_bytes(self, mcdram_total: u64) -> u64 {
        match self {
            MemoryMode::Flat => 0,
            MemoryMode::Cache => mcdram_total,
            MemoryMode::Hybrid(split) => {
                (mcdram_total as f64 * split.cache_fraction()).round() as u64
            }
        }
    }

    /// Bytes of MCDRAM addressable as flat memory.
    pub fn mcdram_flat_bytes(self, mcdram_total: u64) -> u64 {
        mcdram_total - self.mcdram_cache_bytes(mcdram_total)
    }

    /// Whether any MCDRAM is directly addressable.
    pub fn has_flat_mcdram(self) -> bool {
        !matches!(self, MemoryMode::Cache)
    }

    /// Whether any MCDRAM acts as memory-side cache.
    pub fn has_mcdram_cache(self) -> bool {
        !matches!(self, MemoryMode::Flat)
    }

    /// Inverse of [`name`](Self::name), for decoding cached results.
    pub fn from_name(name: &str) -> Option<MemoryMode> {
        match name {
            "flat" => Some(MemoryMode::Flat),
            "cache" => Some(MemoryMode::Cache),
            "hybrid25" => Some(MemoryMode::Hybrid(HybridSplit::Quarter)),
            "hybrid50" => Some(MemoryMode::Hybrid(HybridSplit::Half)),
            _ => None,
        }
    }

    /// Short name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            MemoryMode::Flat => "flat",
            MemoryMode::Cache => "cache",
            MemoryMode::Hybrid(HybridSplit::Quarter) => "hybrid25",
            MemoryMode::Hybrid(HybridSplit::Half) => "hybrid50",
        }
    }
}

impl std::fmt::Display for MemoryMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const GB16: u64 = 16 << 30;

    #[test]
    fn flat_has_no_cache() {
        assert_eq!(MemoryMode::Flat.mcdram_cache_bytes(GB16), 0);
        assert_eq!(MemoryMode::Flat.mcdram_flat_bytes(GB16), GB16);
        assert!(MemoryMode::Flat.has_flat_mcdram());
        assert!(!MemoryMode::Flat.has_mcdram_cache());
    }

    #[test]
    fn cache_is_all_cache() {
        assert_eq!(MemoryMode::Cache.mcdram_cache_bytes(GB16), GB16);
        assert_eq!(MemoryMode::Cache.mcdram_flat_bytes(GB16), 0);
        assert!(!MemoryMode::Cache.has_flat_mcdram());
    }

    #[test]
    fn hybrid_splits() {
        let h4 = MemoryMode::Hybrid(HybridSplit::Quarter);
        let h8 = MemoryMode::Hybrid(HybridSplit::Half);
        assert_eq!(h4.mcdram_cache_bytes(GB16), 4 << 30);
        assert_eq!(h4.mcdram_flat_bytes(GB16), 12 << 30);
        assert_eq!(h8.mcdram_cache_bytes(GB16), 8 << 30);
        assert_eq!(h8.mcdram_flat_bytes(GB16), 8 << 30);
        assert!(h8.has_flat_mcdram() && h8.has_mcdram_cache());
    }

    #[test]
    fn names_unique() {
        assert_eq!(MemoryMode::Flat.name(), "flat");
        assert_eq!(MemoryMode::Hybrid(HybridSplit::Quarter).name(), "hybrid25");
    }
}
