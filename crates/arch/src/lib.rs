//! Architecture description of the Intel Xeon Phi Knights Landing (KNL)
//! memory system, as characterized in Ramos & Hoefler, *Capability Models for
//! Manycore Memory Systems: A Case-Study with Xeon Phi KNL* (IPDPS 2017).
//!
//! This crate is pure description — no simulation. It captures:
//!
//! * the five **cluster modes** (All-to-all, Quadrant, Hemisphere, SNC-4,
//!   SNC-2) that govern how cache-line addresses are assigned to the
//!   distributed tag directories (§II-D of the paper),
//! * the three **memory modes** (Flat, Cache, Hybrid) of the 16 GB on-package
//!   MCDRAM (§II-C),
//! * the **mesh topology**: 38 tile slots in the 2D "mesh of rings", EDC and
//!   IMC stops, yield-disabled tiles, quadrant/hemisphere membership (§II-B),
//! * **address maps**: line-interleaving over memory channels and the
//!   address → home-directory hash for every cluster mode,
//! * **thread-pinning schedules** (scatter / fill-tiles / fill-cores) used
//!   throughout the paper's evaluation, and
//! * primitive **timing parameters** with a `knl7210()` calibration chosen so
//!   that the benchmark suite, *run on the simulator*, reproduces the paper's
//!   Tables I and II.

pub mod address;
pub mod cluster;
pub mod config;
pub mod ids;
pub mod memmode;
pub mod rng;
pub mod schedule;
pub mod timing;
pub mod topology;

pub use address::{AddressMap, MemTarget, NumaKind, NumaNode};
pub use cluster::ClusterMode;
pub use config::MachineConfig;
pub use ids::{CoreId, HwThreadId, QuadrantId, TileId};
pub use memmode::{HybridSplit, MemoryMode};
pub use rng::SplitMixRng;
pub use schedule::Schedule;
pub use timing::TimingParams;
pub use topology::{Stop, StopKind, Topology};

/// Bytes per cache line on KNL.
pub const LINE_BYTES: u64 = 64;
/// log2 of [`LINE_BYTES`].
pub const LINE_SHIFT: u32 = 6;

/// Round an address down to its cache-line base.
pub fn line_base(addr: u64) -> u64 {
    addr & !(LINE_BYTES - 1)
}

/// Number of cache lines covering `bytes` starting at a line boundary.
pub fn lines_for(bytes: u64) -> u64 {
    bytes.div_ceil(LINE_BYTES)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_base_masks_low_bits() {
        assert_eq!(line_base(0), 0);
        assert_eq!(line_base(63), 0);
        assert_eq!(line_base(64), 64);
        assert_eq!(line_base(130), 128);
    }

    #[test]
    fn lines_for_rounds_up() {
        assert_eq!(lines_for(0), 0);
        assert_eq!(lines_for(1), 1);
        assert_eq!(lines_for(64), 1);
        assert_eq!(lines_for(65), 2);
    }
}
