//! Thread-pinning schedules used throughout the paper's evaluation.
//!
//! * **Scatter**: "first one thread per tile, and then per core" (§IV-B.3) —
//!   round-robin over tiles, then over the second core of each tile, then
//!   over HyperThreads.
//! * **FillTiles**: "one thread per core" filling tile after tile (§IV-B.3,
//!   Fig. 9b); beyond one thread per core it wraps onto HyperThreads.
//! * **FillCores** (compact): "filling cores with up to four threads"
//!   (§V-A, Fig. 9a) — all four HyperThreads of core 0, then core 1, ...

use crate::ids::{CoreId, HwThreadId, THREADS_PER_CORE};

/// A thread→hardware-thread placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Schedule {
    /// One thread per tile first, then second cores, then HyperThreads.
    Scatter,
    /// One thread per core in core order, wrapping onto HyperThreads.
    FillTiles,
    /// All four HyperThreads of a core before moving to the next (compact).
    FillCores,
}

impl Schedule {
    /// All three schedules the paper sweeps.
    pub const ALL: [Schedule; 3] = [Schedule::Scatter, Schedule::FillTiles, Schedule::FillCores];

    /// Short name used in tables and CSVs.
    pub fn name(self) -> &'static str {
        match self {
            Schedule::Scatter => "scatter",
            Schedule::FillTiles => "fill-tiles",
            Schedule::FillCores => "fill-cores",
        }
    }

    /// Inverse of [`name`](Self::name), for decoding cached results.
    pub fn from_name(name: &str) -> Option<Schedule> {
        Self::ALL.into_iter().find(|s| s.name() == name)
    }

    /// Hardware thread for logical thread `i` on a machine with `num_cores`
    /// active cores (two per tile, four HyperThreads per core).
    ///
    /// # Panics
    /// Panics if `i >= num_cores * 4` (no hardware thread left).
    pub fn place(self, i: usize, num_cores: usize) -> HwThreadId {
        let capacity = num_cores * THREADS_PER_CORE as usize;
        assert!(
            i < capacity,
            "thread {i} exceeds {capacity} hardware threads"
        );
        let num_tiles = num_cores / 2;
        match self {
            Schedule::Scatter => {
                // Phase 0: core 0 of each tile; phase 1: core 1 of each tile;
                // phases 2..8: HyperThread slots in the same tile sweep.
                let phase = i / num_tiles;
                let tile = i % num_tiles;
                let core_slot = phase % 2;
                let ht_slot = phase / 2;
                let core = tile * 2 + core_slot;
                HwThreadId((core * THREADS_PER_CORE as usize + ht_slot) as u16)
            }
            Schedule::FillTiles => {
                // One thread per core in core order, then wrap onto the next
                // HyperThread slot.
                let ht_slot = i / num_cores;
                let core = i % num_cores;
                HwThreadId((core * THREADS_PER_CORE as usize + ht_slot) as u16)
            }
            Schedule::FillCores => {
                HwThreadId(i as u16) // dense: 4 HT of core 0, then core 1, ...
            }
        }
    }

    /// Convenience: the core for logical thread `i`.
    pub fn core(self, i: usize, num_cores: usize) -> CoreId {
        self.place(i, num_cores).core()
    }

    /// Number of distinct cores used by the first `n` threads.
    pub fn cores_used(self, n: usize, num_cores: usize) -> usize {
        let mut set = std::collections::HashSet::new();
        for i in 0..n {
            set.insert(self.core(i, num_cores));
        }
        set.len()
    }
}

impl std::fmt::Display for Schedule {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const CORES: usize = 64; // 32 tiles

    #[test]
    fn scatter_one_per_tile_first() {
        // First 32 threads land on distinct tiles, core slot 0.
        let mut tiles = std::collections::HashSet::new();
        for i in 0..32 {
            let hw = Schedule::Scatter.place(i, CORES);
            assert_eq!(hw.slot_in_core(), 0);
            assert_eq!(hw.core().slot_in_tile(), 0);
            tiles.insert(hw.core().tile());
        }
        assert_eq!(tiles.len(), 32);
        // Threads 32..64 fill the second core of each tile.
        for i in 32..64 {
            let hw = Schedule::Scatter.place(i, CORES);
            assert_eq!(hw.core().slot_in_tile(), 1);
            assert_eq!(hw.slot_in_core(), 0);
        }
        // Thread 64 starts HyperThreads.
        assert_eq!(Schedule::Scatter.place(64, CORES).slot_in_core(), 1);
    }

    #[test]
    fn fill_tiles_one_per_core() {
        for i in 0..64 {
            let hw = Schedule::FillTiles.place(i, CORES);
            assert_eq!(hw.core(), CoreId(i as u16));
            assert_eq!(hw.slot_in_core(), 0);
        }
        // 128 threads → 2 per core (Fig. 9b's "128/64").
        let hw = Schedule::FillTiles.place(64, CORES);
        assert_eq!(hw.core(), CoreId(0));
        assert_eq!(hw.slot_in_core(), 1);
    }

    #[test]
    fn fill_cores_compact() {
        // Fig. 9a's "4/1": four threads on one core.
        for i in 0..4 {
            assert_eq!(Schedule::FillCores.place(i, CORES).core(), CoreId(0));
        }
        assert_eq!(Schedule::FillCores.place(4, CORES).core(), CoreId(1));
        assert_eq!(Schedule::FillCores.cores_used(8, CORES), 2);
        assert_eq!(Schedule::FillCores.cores_used(256, CORES), 64);
    }

    #[test]
    fn no_hardware_thread_reused() {
        for sched in Schedule::ALL {
            let mut seen = std::collections::HashSet::new();
            for i in 0..CORES * 4 {
                let hw = sched.place(i, CORES);
                assert!(seen.insert(hw), "{sched}: thread {i} reuses {hw:?}");
            }
        }
    }

    #[test]
    fn cores_used_counts() {
        assert_eq!(Schedule::Scatter.cores_used(32, CORES), 32);
        assert_eq!(Schedule::Scatter.cores_used(64, CORES), 64);
        assert_eq!(Schedule::Scatter.cores_used(128, CORES), 64);
        assert_eq!(Schedule::FillTiles.cores_used(16, CORES), 16);
        assert_eq!(Schedule::FillCores.cores_used(16, CORES), 4);
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn overflow_panics() {
        Schedule::Scatter.place(256, CORES);
    }
}
