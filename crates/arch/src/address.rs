//! Physical address maps: NUMA layout, line-interleaving over memory
//! channels, and the address → home-directory hash, per cluster and memory
//! mode (§II-C/D of the paper).
//!
//! * In all-to-all, quadrant, and hemisphere modes, "memory addresses are
//!   uniformly distributed across the memory channels, although the
//!   distribution pattern is internally different due to the different
//!   affinity configurations".
//! * In flat mode, "contiguous ranges are assigned to DDR and MCDRAM
//!   respectively, with the MCDRAM range above the DDR range".
//! * In SNC modes, "contiguous ranges of memory are assigned to each cluster
//!   [...] divided in two contiguous portions that are interleaved over the
//!   MCDRAM and DDR of the cluster"; a quadrant's DDR range "is interleaved
//!   among the three DDR channels of the closest DDR memory controller".

use crate::cluster::ClusterMode;
use crate::ids::{QuadrantId, TileId};
use crate::memmode::MemoryMode;
use crate::topology::{splitmix64, Topology, DDR_CHANNELS_PER_IMC, NUM_EDCS, NUM_IMCS};
use crate::LINE_SHIFT;
use std::ops::Range;

/// Kind of memory backing a NUMA node.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NumaKind {
    /// 'Far' memory: DDR4 through the two IMCs.
    Ddr,
    /// 'Near' memory: on-package MCDRAM through the eight EDCs.
    Mcdram,
}

/// One NUMA node exposed to software.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NumaNode {
    /// Dense node index as the OS would number it.
    pub id: usize,
    /// Backing memory technology.
    pub kind: NumaKind,
    /// Cluster (quadrant/hemisphere) index the node belongs to; 0 when the
    /// cluster mode exposes a single domain.
    pub cluster: u8,
    /// Physical address range of the node.
    pub range: Range<u64>,
}

/// The physical device a line address resolves to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemTarget {
    /// A DDR4 channel behind one of the two IMCs.
    Ddr {
        /// Memory controller (0 = west, 1 = east).
        imc: u8,
        /// Channel within the controller (0..3).
        chan: u8,
    },
    /// One of the eight MCDRAM EDCs.
    Mcdram {
        /// EDC index (0..8).
        edc: u8,
    },
}

impl MemTarget {
    /// Flat index usable for per-device bookkeeping: DDR channels occupy
    /// 0..6, EDCs 6..14.
    pub fn device_index(self) -> usize {
        match self {
            MemTarget::Ddr { imc, chan } => imc as usize * DDR_CHANNELS_PER_IMC + chan as usize,
            MemTarget::Mcdram { edc } => NUM_IMCS * DDR_CHANNELS_PER_IMC + edc as usize,
        }
    }

    /// Whether the target is an MCDRAM EDC.
    pub fn is_mcdram(self) -> bool {
        matches!(self, MemTarget::Mcdram { .. })
    }
}

/// Total number of distinct memory devices (6 DDR channels + 8 EDCs).
pub const NUM_MEM_DEVICES: usize = NUM_IMCS * DDR_CHANNELS_PER_IMC + NUM_EDCS;

/// Address map for one machine configuration.
#[derive(Debug, Clone)]
pub struct AddressMap {
    cluster_mode: ClusterMode,
    memory_mode: MemoryMode,
    ddr_bytes: u64,
    mcdram_flat_bytes: u64,
    mcdram_cache_bytes: u64,
    nodes: Vec<NumaNode>,
    /// Active tiles in each cluster of the current mode.
    tiles_by_cluster: Vec<Vec<TileId>>,
    /// Quadrant of each EDC.
    edc_quadrant: [u8; NUM_EDCS],
    /// Hemisphere (west=0/east=1) of each EDC.
    edc_hemisphere: [u8; NUM_EDCS],
    /// All active tiles (for the A2A hash).
    all_tiles: Vec<TileId>,
}

impl AddressMap {
    /// Build the address map for one (cluster, memory) configuration.
    pub fn new(
        topo: &Topology,
        cluster_mode: ClusterMode,
        memory_mode: MemoryMode,
        ddr_bytes: u64,
        mcdram_bytes: u64,
    ) -> Self {
        let mcdram_flat = memory_mode.mcdram_flat_bytes(mcdram_bytes);
        let mcdram_cache = memory_mode.mcdram_cache_bytes(mcdram_bytes);
        // Quadrant/Hemisphere are software-transparent: only SNC modes split
        // the address space into per-cluster NUMA ranges.
        let k = if cluster_mode.software_numa() {
            cluster_mode.num_clusters()
        } else {
            1
        };

        let mut nodes = Vec::new();
        let mut cursor = 0u64;
        let ddr_per = align_line(ddr_bytes / k as u64);
        let mc_per = align_line(mcdram_flat / k as u64);
        for c in 0..k as u8 {
            nodes.push(NumaNode {
                id: nodes.len(),
                kind: NumaKind::Ddr,
                cluster: c,
                range: cursor..cursor + ddr_per,
            });
            cursor += ddr_per;
            if mc_per > 0 {
                nodes.push(NumaNode {
                    id: nodes.len(),
                    kind: NumaKind::Mcdram,
                    cluster: c,
                    range: cursor..cursor + mc_per,
                });
                cursor += mc_per;
            }
        }
        // Non-SNC flat mode presents exactly two nodes (DDR then MCDRAM above
        // it); with k == 1 the loop above already produced that layout.

        // Directory affinity always follows the full cluster count, even for
        // the software-transparent modes.
        let tiles_by_cluster = (0..cluster_mode.num_clusters() as u8)
            .map(|c| topo.tiles_in_cluster(cluster_mode, c))
            .collect::<Vec<_>>();
        let mut edc_quadrant = [0u8; NUM_EDCS];
        let mut edc_hemisphere = [0u8; NUM_EDCS];
        for e in 0..NUM_EDCS as u8 {
            let pos = topo.edc_position(e);
            edc_quadrant[e as usize] = topo.quadrant_of_pos(pos).0;
            edc_hemisphere[e as usize] = (pos.0 >= crate::topology::GRID_COLS / 2) as u8;
        }
        let all_tiles = (0..topo.num_tiles() as u16).map(TileId).collect();

        AddressMap {
            cluster_mode,
            memory_mode,
            ddr_bytes: ddr_per * k as u64,
            mcdram_flat_bytes: mc_per * k as u64,
            mcdram_cache_bytes: mcdram_cache,
            nodes,
            tiles_by_cluster,
            edc_quadrant,
            edc_hemisphere,
            all_tiles,
        }
    }

    /// Total addressable bytes (cache-mode MCDRAM is not addressable).
    pub fn addressable_bytes(&self) -> u64 {
        self.ddr_bytes + self.mcdram_flat_bytes
    }

    /// Bytes of MCDRAM operating as memory-side cache.
    pub fn mcdram_cache_bytes(&self) -> u64 {
        self.mcdram_cache_bytes
    }

    /// Cluster mode the map was built for.
    pub fn cluster_mode(&self) -> ClusterMode {
        self.cluster_mode
    }

    /// Memory mode the map was built for.
    pub fn memory_mode(&self) -> MemoryMode {
        self.memory_mode
    }

    /// The NUMA nodes exposed to software.
    pub fn numa_nodes(&self) -> &[NumaNode] {
        &self.nodes
    }

    /// Address range backed by `kind` in `cluster` (cluster 0 when the mode
    /// has a single domain). Returns `None` if the kind is not addressable
    /// (e.g. MCDRAM in cache mode) or the cluster does not exist.
    pub fn region(&self, kind: NumaKind, cluster: u8) -> Option<Range<u64>> {
        self.nodes
            .iter()
            .find(|n| n.kind == kind && n.cluster == cluster)
            .map(|n| n.range.clone())
    }

    /// The NUMA node containing `paddr`.
    pub fn node_of(&self, paddr: u64) -> Option<&NumaNode> {
        self.nodes.iter().find(|n| n.range.contains(&paddr))
    }

    /// Resolve a physical address to its backing memory device.
    ///
    /// # Panics
    /// Panics if the address is outside the addressable range.
    pub fn mem_target(&self, paddr: u64) -> MemTarget {
        let node = self
            .node_of(paddr)
            .unwrap_or_else(|| panic!("address {paddr:#x} outside addressable range"));
        let line = paddr >> LINE_SHIFT;
        let h = splitmix64(line);
        match (node.kind, self.cluster_mode.num_clusters()) {
            (NumaKind::Ddr, 1) => {
                // Uniform over all six channels.
                let ch = (h % 6) as u8;
                MemTarget::Ddr {
                    imc: ch / 3,
                    chan: ch % 3,
                }
            }
            (NumaKind::Ddr, 2 | 4) if self.cluster_mode.software_numa() => {
                // SNC: interleave over the three channels of the closest IMC.
                let imc = self.imc_for_cluster(node.cluster);
                MemTarget::Ddr {
                    imc,
                    chan: (h % 3) as u8,
                }
            }
            (NumaKind::Ddr, _) => {
                // Quadrant/Hemisphere: uniform over all channels (the
                // affinity shows up in the directory hash, not here).
                let ch = (h % 6) as u8;
                MemTarget::Ddr {
                    imc: ch / 3,
                    chan: ch % 3,
                }
            }
            (NumaKind::Mcdram, 1) => MemTarget::Mcdram { edc: (h % 8) as u8 },
            (NumaKind::Mcdram, _) if self.cluster_mode.software_numa() => {
                let edcs = self.edcs_for_cluster(node.cluster);
                MemTarget::Mcdram {
                    edc: edcs[(h as usize) % edcs.len()],
                }
            }
            (NumaKind::Mcdram, _) => MemTarget::Mcdram { edc: (h % 8) as u8 },
        }
    }

    /// The EDC acting as memory-side cache for `paddr` (cache/hybrid modes).
    /// The MCDRAM cache is direct-mapped on physical addresses; the EDC is
    /// selected by line hash, within the cluster for SNC modes.
    pub fn mcdram_cache_edc(&self, paddr: u64) -> u8 {
        let line = paddr >> LINE_SHIFT;
        let h = splitmix64(line ^ 0xC0FF_EE00);
        if self.cluster_mode.software_numa() {
            let cluster = self.node_of(paddr).map(|n| n.cluster).unwrap_or(0);
            let edcs = self.edcs_for_cluster(cluster);
            edcs[(h as usize) % edcs.len()]
        } else {
            (h % 8) as u8
        }
    }

    /// The tile whose CHA is the home directory for the line containing
    /// `paddr` (§II-D, Fig. 3).
    pub fn home_directory(&self, paddr: u64) -> TileId {
        let line = paddr >> LINE_SHIFT;
        let h = splitmix64(line ^ 0xD1CE_D1CE);
        match self.cluster_mode {
            ClusterMode::A2A => self.all_tiles[(h as usize) % self.all_tiles.len()],
            _ => {
                let cluster = self.home_cluster(paddr, h);
                let tiles = &self.tiles_by_cluster[cluster as usize];
                tiles[(h as usize >> 8) % tiles.len()]
            }
        }
    }

    /// Cluster in which the line is homed: the cluster of the memory device
    /// the line is fetched from.
    fn home_cluster(&self, paddr: u64, h: u64) -> u8 {
        let device_cluster = |t: MemTarget| -> u8 {
            match t {
                MemTarget::Mcdram { edc } => match self.cluster_mode.num_clusters() {
                    2 => self.edc_hemisphere[edc as usize],
                    _ => self.edc_quadrant[edc as usize],
                },
                MemTarget::Ddr { imc, .. } => match self.cluster_mode.num_clusters() {
                    // Hemispheres follow the IMC side directly.
                    2 => imc,
                    // An IMC serves the two quadrants on its side; split them
                    // by hash so homes stay uniform.
                    _ => imc | ((h >> 16) as u8 & 1) << 1,
                },
            }
        };
        if self.memory_mode.has_mcdram_cache() && !self.memory_mode.has_flat_mcdram() {
            // Pure cache mode: lines are served from the MCDRAM cache EDC.
            let edc = self.mcdram_cache_edc(paddr);
            device_cluster(MemTarget::Mcdram { edc })
        } else {
            device_cluster(self.mem_target(paddr))
        }
    }

    /// IMC closest to a cluster: hemisphere index for 2 clusters; east/west
    /// bit of the quadrant for 4.
    fn imc_for_cluster(&self, cluster: u8) -> u8 {
        match self.cluster_mode.num_clusters() {
            2 => cluster,
            _ => cluster & 1,
        }
    }

    /// EDCs belonging to a cluster.
    fn edcs_for_cluster(&self, cluster: u8) -> Vec<u8> {
        match self.cluster_mode.num_clusters() {
            2 => (0..NUM_EDCS as u8)
                .filter(|&e| self.edc_hemisphere[e as usize] == cluster)
                .collect(),
            4 => (0..NUM_EDCS as u8)
                .filter(|&e| self.edc_quadrant[e as usize] == cluster)
                .collect(),
            _ => (0..NUM_EDCS as u8).collect(),
        }
    }

    /// Quadrant of an EDC (used by the simulator for routing distances).
    pub fn edc_quadrant(&self, edc: u8) -> QuadrantId {
        QuadrantId(self.edc_quadrant[edc as usize])
    }
}

fn align_line(b: u64) -> u64 {
    b & !((1u64 << LINE_SHIFT) - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::memmode::HybridSplit;

    const MB: u64 = 1 << 20;

    fn map(cm: ClusterMode, mm: MemoryMode) -> AddressMap {
        let topo = Topology::new(32, 7);
        AddressMap::new(&topo, cm, mm, 1024 * MB, 256 * MB)
    }

    #[test]
    fn flat_layout_two_nodes() {
        let m = map(ClusterMode::Quadrant, MemoryMode::Flat);
        assert_eq!(m.numa_nodes().len(), 2);
        assert_eq!(m.numa_nodes()[0].kind, NumaKind::Ddr);
        assert_eq!(m.numa_nodes()[1].kind, NumaKind::Mcdram);
        // MCDRAM range sits above the DDR range.
        assert_eq!(m.numa_nodes()[0].range.end, m.numa_nodes()[1].range.start);
        assert_eq!(m.addressable_bytes(), 1280 * MB);
        assert_eq!(m.mcdram_cache_bytes(), 0);
    }

    #[test]
    fn cache_mode_hides_mcdram() {
        let m = map(ClusterMode::Quadrant, MemoryMode::Cache);
        assert_eq!(m.numa_nodes().len(), 1);
        assert_eq!(m.addressable_bytes(), 1024 * MB);
        assert_eq!(m.mcdram_cache_bytes(), 256 * MB);
    }

    #[test]
    fn snc4_flat_has_eight_nodes() {
        let m = map(ClusterMode::Snc4, MemoryMode::Flat);
        assert_eq!(m.numa_nodes().len(), 8);
        let ddr = m
            .numa_nodes()
            .iter()
            .filter(|n| n.kind == NumaKind::Ddr)
            .count();
        assert_eq!(ddr, 4);
        // Each cluster's two portions are contiguous (DDR then MCDRAM).
        for c in 0..4u8 {
            let d = m.region(NumaKind::Ddr, c).unwrap();
            let mc = m.region(NumaKind::Mcdram, c).unwrap();
            assert_eq!(d.end, mc.start, "cluster {c}");
        }
    }

    #[test]
    fn hybrid_splits_capacity() {
        let m = map(ClusterMode::A2A, MemoryMode::Hybrid(HybridSplit::Half));
        assert_eq!(m.mcdram_cache_bytes(), 128 * MB);
        assert_eq!(m.addressable_bytes(), 1024 * MB + 128 * MB);
    }

    #[test]
    fn ddr_interleave_covers_all_channels_a2a() {
        let m = map(ClusterMode::A2A, MemoryMode::Flat);
        let mut seen = std::collections::HashSet::new();
        for i in 0..4096u64 {
            match m.mem_target(i * 64) {
                MemTarget::Ddr { imc, chan } => {
                    assert!(imc < 2 && chan < 3);
                    seen.insert((imc, chan));
                }
                t => panic!("DDR range resolved to {t:?}"),
            }
        }
        assert_eq!(seen.len(), 6, "all six channels used");
    }

    #[test]
    fn snc4_ddr_uses_closest_imc_only() {
        let m = map(ClusterMode::Snc4, MemoryMode::Flat);
        for c in 0..4u8 {
            let r = m.region(NumaKind::Ddr, c).unwrap();
            let expect_imc = c & 1;
            for i in 0..512u64 {
                match m.mem_target(r.start + i * 64) {
                    MemTarget::Ddr { imc, .. } => assert_eq!(imc, expect_imc, "cluster {c}"),
                    t => panic!("unexpected target {t:?}"),
                }
            }
        }
    }

    #[test]
    fn snc4_mcdram_stays_in_quadrant() {
        let m = map(ClusterMode::Snc4, MemoryMode::Flat);
        for c in 0..4u8 {
            let r = m.region(NumaKind::Mcdram, c).unwrap();
            for i in 0..512u64 {
                match m.mem_target(r.start + i * 64) {
                    MemTarget::Mcdram { edc } => {
                        assert_eq!(m.edc_quadrant(edc).0, c, "cluster {c} edc {edc}")
                    }
                    t => panic!("unexpected target {t:?}"),
                }
            }
        }
    }

    #[test]
    fn mcdram_flat_covers_all_edcs_uniformly() {
        let m = map(ClusterMode::Quadrant, MemoryMode::Flat);
        let r = m.region(NumaKind::Mcdram, 0).unwrap();
        let mut counts = [0usize; 8];
        let n = 80_000u64;
        for i in 0..n {
            if let MemTarget::Mcdram { edc } = m.mem_target(r.start + i * 64) {
                counts[edc as usize] += 1;
            }
        }
        for (e, &c) in counts.iter().enumerate() {
            let frac = c as f64 / n as f64;
            assert!((frac - 0.125).abs() < 0.02, "edc {e} frac {frac}");
        }
    }

    #[test]
    fn home_directory_in_range_and_deterministic() {
        for cm in ClusterMode::ALL {
            let m = map(cm, MemoryMode::Flat);
            for i in 0..2048u64 {
                let a = i * 64;
                let h1 = m.home_directory(a);
                let h2 = m.home_directory(a);
                assert_eq!(h1, h2);
                assert!((h1.0 as usize) < 32);
            }
        }
    }

    #[test]
    fn a2a_homes_spread_over_all_tiles() {
        let m = map(ClusterMode::A2A, MemoryMode::Flat);
        let mut seen = std::collections::HashSet::new();
        for i in 0..8192u64 {
            seen.insert(m.home_directory(i * 64));
        }
        assert_eq!(seen.len(), 32);
    }

    #[test]
    fn quadrant_homes_follow_memory_quadrant() {
        let topo = Topology::new(32, 7);
        let m = AddressMap::new(
            &topo,
            ClusterMode::Quadrant,
            MemoryMode::Flat,
            1024 * MB,
            256 * MB,
        );
        // For MCDRAM lines the home quadrant must equal the EDC's quadrant.
        let r = m.region(NumaKind::Mcdram, 0).unwrap();
        for i in 0..2048u64 {
            let a = r.start + i * 64;
            if let MemTarget::Mcdram { edc } = m.mem_target(a) {
                let home = m.home_directory(a);
                assert_eq!(
                    topo.tile_quadrant(home).0,
                    m.edc_quadrant(edc).0,
                    "line {a:#x}"
                );
            }
        }
    }

    #[test]
    fn cache_mode_cache_edc_stable() {
        let m = map(ClusterMode::Snc4, MemoryMode::Cache);
        for i in 0..1024u64 {
            let a = i * 64;
            assert_eq!(m.mcdram_cache_edc(a), m.mcdram_cache_edc(a));
            assert!(m.mcdram_cache_edc(a) < 8);
        }
    }

    #[test]
    #[should_panic(expected = "outside addressable range")]
    fn out_of_range_panics() {
        let m = map(ClusterMode::A2A, MemoryMode::Flat);
        m.mem_target(u64::MAX - 1024);
    }

    #[test]
    fn node_of_finds_cluster() {
        let m = map(ClusterMode::Snc2, MemoryMode::Flat);
        let r = m.region(NumaKind::Ddr, 1).unwrap();
        let n = m.node_of(r.start + 100).unwrap();
        assert_eq!(n.cluster, 1);
        assert_eq!(n.kind, NumaKind::Ddr);
    }
}
