//! Primitive timing parameters of the simulated machine.
//!
//! These are *not* the capability numbers of the paper's Tables I/II — they
//! are lower-level quantities (per-hop cost, directory occupancy, device
//! latencies and service rates) from which the table numbers *emerge* when
//! the benchmark suite runs on the simulator. `knl7210()` is calibrated so
//! the emergent numbers land near the paper's (see the calibration tests in
//! `knl-benchsuite`).
//!
//! All times are integer picoseconds; service rates are picoseconds per
//! 64-byte line.

/// Primitive timing parameters (picoseconds / ps-per-line).
#[derive(Debug, Clone, PartialEq)]
pub struct TimingParams {
    // ---- core ----
    /// Core clock period (1.3 GHz ⇒ ~769 ps).
    pub cycle_ps: u64,
    /// Minimum gap between consecutive memory-op issues from one core
    /// (two load ports ⇒ half a cycle when vectorized).
    pub issue_gap_ps: u64,
    /// Maximum outstanding line requests per core (MSHR-like cap).
    pub max_outstanding: u32,
    /// Maximum outstanding non-temporal stores (write-combining buffers).
    pub max_nt_outstanding: u32,

    // ---- L1 ----
    /// L1 data-cache hit latency.
    pub l1_hit_ps: u64,

    // ---- same-tile L2 ----
    /// L2 hit latency for a line in S or F state.
    pub l2_sf_ps: u64,
    /// Extra cost when the line is in E state (ownership bookkeeping).
    pub l2_e_extra_ps: u64,
    /// Extra cost when the line is Modified in the tile (write-back).
    pub l2_m_extra_ps: u64,
    /// Time for the L2 to declare a miss and emit a mesh request.
    pub l2_miss_detect_ps: u64,

    // ---- mesh ----
    /// Per-hop traversal cost on the mesh rings.
    pub hop_ps: u64,
    /// Cost to inject a message at a ring stop (waiting for a gap).
    pub inject_ps: u64,

    /// Per-message ring occupancy for the link-occupancy fabric ablation
    /// (0 = analytic contention-free fabric, the default; the paper
    /// measured no congestion).
    pub mesh_ring_service_ps: u64,

    // ---- distributed directory (CHA) ----
    /// Tag-directory lookup latency at the home CHA.
    pub cha_lookup_ps: u64,
    /// Per-request serialization at the home CHA when several requests race
    /// for the same line (this produces the contention law β of Table I).
    pub cha_line_serialize_ps: u64,

    // ---- remote tile service ----
    /// Remote L2 read-out (S/F) once the request arrives.
    pub remote_l2_ps: u64,
    /// Extra for E (exclusivity downgrade).
    pub remote_e_extra_ps: u64,
    /// Extra for M (forced write-back / downgrade-to-shared).
    pub remote_m_extra_ps: u64,
    /// Invalidation round penalty charged to a write gaining ownership per
    /// sharing tile.
    pub invalidate_per_sharer_ps: u64,
    /// Cache-line fill into the requesting L1/L2 on arrival.
    pub fill_ps: u64,

    // ---- memory devices ----
    /// DDR4 device access latency (row activation etc.).
    pub ddr_lat_ps: u64,
    /// MCDRAM device access latency (higher than DDR on KNL).
    pub mcdram_lat_ps: u64,
    /// DDR service time per line, reads.
    pub ddr_read_ps_per_line: u64,
    /// DDR service time per line, writes in a write-only streak (bus
    /// turnaround/ODT bound: ~36 GB/s aggregate).
    pub ddr_write_ps_per_line: u64,
    /// DDR service per write interleaved into a read stream (hides in read
    /// gaps; lets copy/triad reach ~70+ GB/s as in Table II).
    pub ddr_write_mixed_ps_per_line: u64,
    /// MCDRAM service time per line, reads.
    pub mcdram_read_ps_per_line: u64,
    /// MCDRAM service time per line, writes. MCDRAM EDCs are full-duplex
    /// (HMC links): reads and writes use independent sub-channels.
    pub mcdram_write_ps_per_line: u64,
    /// Penalty when a memory device switches between read and write service
    /// (bus turnaround; limits mixed-stream peaks like triad).
    pub rw_turnaround_ps: u64,

    // ---- MCDRAM memory-side cache (cache/hybrid modes) ----
    /// Tag check added to every memory access in cache mode.
    pub mcache_tag_ps: u64,
    /// Extra occupancy on the EDC for a fill after a cache miss.
    pub mcache_fill_ps_per_line: u64,

    // ---- memory-level parallelism caps ----
    /// Outstanding line reads a core sustains on cache-to-cache transfers,
    /// vectorized (AVX-512 gathers/streams; remote lines are not prefetched
    /// well, hence lower than the memory-stream cap).
    pub ov_c2c_read_vec: u32,
    /// Same, scalar code (paper: read bandwidth drops 2.5 → 1 GB/s).
    pub ov_c2c_read_scalar: u32,
    /// Outstanding reads during cache-to-cache copies (read + local write;
    /// write-combining lets copies overlap deeper than pure reads).
    pub ov_c2c_copy_vec: u32,
    /// Scalar-code variant of [`TimingParams::ov_c2c_copy_vec`].
    pub ov_c2c_copy_scalar: u32,
    /// Outstanding reads on memory streams (hardware prefetchers engaged).
    pub ov_mem_vec: u32,
    /// Scalar-code variant of [`TimingParams::ov_mem_vec`].
    pub ov_mem_scalar: u32,

    // ---- tile L2 port ----
    /// L2 data-port occupancy per line served to a same-tile requester
    /// (1 line read + half-line write per cycle limits same-tile copies).
    pub l2_port_ps_per_line: u64,
    /// Extra port occupancy when the served line was Modified.
    pub l2_port_m_extra_ps: u64,

    // ---- measurement noise ----
    /// Deterministic pseudo-random jitter applied to access latencies, in
    /// percent (the paper's boxplots have nonzero IQR; SNC2 is marked
    /// experimental and gets a wider value via [`TimingParams::jitter_for`]).
    pub jitter_pct: u32,
}

impl TimingParams {
    /// Calibration for the Intel Xeon Phi KNL 7210 used in the paper
    /// (64 cores @ 1.30 GHz, 16 GB MCDRAM, 96 GB DDR4-2133).
    pub fn knl7210() -> Self {
        TimingParams {
            cycle_ps: 769,
            issue_gap_ps: 400,
            max_outstanding: 14,
            max_nt_outstanding: 10,

            l1_hit_ps: 3_800,

            l2_sf_ps: 14_000,
            l2_e_extra_ps: 4_000,
            l2_m_extra_ps: 20_000,
            l2_miss_detect_ps: 8_000,

            hop_ps: 1_500,
            inject_ps: 7_000,
            mesh_ring_service_ps: 0,

            cha_lookup_ps: 28_000,
            cha_line_serialize_ps: 34_000,

            remote_l2_ps: 14_000,
            remote_e_extra_ps: 4_000,
            remote_m_extra_ps: 9_000,
            invalidate_per_sharer_ps: 6_000,
            fill_ps: 8_000,

            ddr_lat_ps: 60_000,
            mcdram_lat_ps: 88_000,
            // 6 DDR channels ⇒ 77 GB/s aggregate read (Table II: STREAM 77).
            ddr_read_ps_per_line: 4_990,
            // write-only peak ≈ 36 GB/s.
            ddr_write_ps_per_line: 10_600,
            ddr_write_mixed_ps_per_line: 4_990,
            // 8 EDCs ⇒ ~314 GB/s aggregate read.
            mcdram_read_ps_per_line: 1_630,
            // write-only peak ≈ 171 GB/s.
            mcdram_write_ps_per_line: 3_000,
            rw_turnaround_ps: 400,

            mcache_tag_ps: 28_000,
            mcache_fill_ps_per_line: 1_000,

            ov_c2c_read_vec: 4,
            ov_c2c_read_scalar: 2,
            ov_c2c_copy_vec: 13,
            ov_c2c_copy_scalar: 9,
            ov_mem_vec: 17,
            ov_mem_scalar: 6,

            l2_port_ps_per_line: 6_900,
            l2_port_m_extra_ps: 1_600,

            jitter_pct: 4,
        }
    }

    /// Jitter percentage to apply for a given cluster mode: the paper flags
    /// SNC2 as experimental with visibly higher variance.
    pub fn jitter_for(&self, mode: crate::cluster::ClusterMode) -> u32 {
        if mode.experimental() {
            self.jitter_pct * 3
        } else {
            self.jitter_pct
        }
    }

    /// Latency of a same-tile L2 access for a given MESIF state of the line
    /// (helper shared by the simulator and the model's documentation).
    pub fn tile_l2_ps(&self, state_m: bool, state_e: bool) -> u64 {
        self.l2_sf_ps
            + if state_m {
                self.l2_m_extra_ps
            } else if state_e {
                self.l2_e_extra_ps
            } else {
                0
            }
    }
}

impl Default for TimingParams {
    fn default() -> Self {
        TimingParams::knl7210()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterMode;

    #[test]
    fn knl_l1_is_3_8ns() {
        assert_eq!(TimingParams::knl7210().l1_hit_ps, 3_800);
    }

    #[test]
    fn tile_l2_state_costs_match_table1() {
        let t = TimingParams::knl7210();
        assert_eq!(t.tile_l2_ps(false, false), 14_000); // S/F 14 ns
        assert_eq!(t.tile_l2_ps(false, true), 18_000); // E 18 ns
        assert_eq!(t.tile_l2_ps(true, false), 34_000); // M 34 ns
    }

    #[test]
    fn ddr_aggregate_read_near_77gbps() {
        let t = TimingParams::knl7210();
        let per_chan = 64.0 / (t.ddr_read_ps_per_line as f64 * 1e-12) / 1e9;
        let agg = per_chan * 6.0;
        assert!((agg - 77.0).abs() < 2.0, "aggregate {agg}");
    }

    #[test]
    fn mcdram_aggregate_read_near_314gbps() {
        let t = TimingParams::knl7210();
        let per_edc = 64.0 / (t.mcdram_read_ps_per_line as f64 * 1e-12) / 1e9;
        let agg = per_edc * 8.0;
        assert!((agg - 314.0).abs() < 5.0, "aggregate {agg}");
    }

    #[test]
    fn snc2_jitter_widened() {
        let t = TimingParams::knl7210();
        assert!(t.jitter_for(ClusterMode::Snc2) > t.jitter_for(ClusterMode::Snc4));
    }

    #[test]
    fn mcdram_latency_higher_than_ddr() {
        let t = TimingParams::knl7210();
        assert!(t.mcdram_lat_ps > t.ddr_lat_ps);
    }
}
