//! Operations executable by a simulated thread.

use crate::SimTime;

/// Streaming-kernel flavours (the paper's four access patterns, §V-A):
/// copy `a[i] = b[i]`, read `a = b[i]`, write `b[i] = a`, and
/// triad `a[i] = b[i] + s·c[i]`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StreamKind {
    /// `a[i] = b[i]`.
    Copy,
    /// `a = b[i]`.
    Read,
    /// `b[i] = a`.
    Write,
    /// `a[i] = b[i] + s*c[i]`.
    Triad,
}

impl StreamKind {
    /// The four kernels, in the paper's order.
    pub const ALL: [StreamKind; 4] = [
        StreamKind::Copy,
        StreamKind::Read,
        StreamKind::Write,
        StreamKind::Triad,
    ];

    /// Bytes moved per line-iteration as counted by the paper (reads +
    /// writes): copy 2, read 1, write 1, triad 3.
    pub fn bytes_per_line(self) -> u64 {
        match self {
            StreamKind::Copy => 128,
            StreamKind::Read | StreamKind::Write => 64,
            StreamKind::Triad => 192,
        }
    }

    /// Lower-case kernel name used in tables/CSVs.
    pub fn name(self) -> &'static str {
        match self {
            StreamKind::Copy => "copy",
            StreamKind::Read => "read",
            StreamKind::Write => "write",
            StreamKind::Triad => "triad",
        }
    }

    /// Inverse of [`name`](Self::name), for decoding cached results.
    pub fn from_name(name: &str) -> Option<StreamKind> {
        Self::ALL.into_iter().find(|k| k.name() == name)
    }
}

/// One simulated-thread operation.
#[derive(Debug, Clone, PartialEq)]
pub enum Op {
    /// Coherent single-line read.
    Read(u64),
    /// Coherent single-line write (RFO).
    Write(u64),
    /// Non-temporal store of one line.
    NtStore(u64),
    /// Explicitly flush one line from the executing tile's caches
    /// (clflush-style): the tile drops the line from L1/L2, surrenders its
    /// directory slot, and writes back if dirty.
    Evict(u64),
    /// Dependent pointer-chase: `count` serialized reads over the lines of
    /// `[base, base + count*64)` in a hash-scrambled order (models BenchIT's
    /// pointer chasing — no overlap).
    Chase {
        /// Buffer base address.
        base: u64,
        /// Buffer length in lines (also the chase length).
        lines: u64,
    },
    /// Vectorized read of a buffer into registers (overlapped).
    ReadBuf {
        /// Source base address.
        src: u64,
        /// Bytes to read.
        bytes: u64,
        /// Vectorized access (deeper MLP).
        vectorized: bool,
    },
    /// Vectorized copy through the caches (overlapped).
    CopyBuf {
        /// Source base address.
        src: u64,
        /// Destination base address.
        dst: u64,
        /// Bytes to copy.
        bytes: u64,
        /// Vectorized access (deeper MLP).
        vectorized: bool,
    },
    /// Bulk streaming kernel over `lines` lines (chunked by the runner).
    Stream {
        /// Kernel flavour.
        kind: StreamKind,
        /// Output buffer base (`a[i]`).
        a: u64,
        /// First input buffer base (`b[i]`).
        b: u64,
        /// Second input buffer base (`c[i]`, triad only).
        c: u64,
        /// Lines per buffer.
        lines: u64,
        /// Vectorized access (deeper MLP).
        vectorized: bool,
    },
    /// Busy computation for a fixed duration.
    Compute(SimTime),
    /// Write `val` to the flag at `addr` (coherent write + wake waiters).
    SetFlag {
        /// Flag line address.
        addr: u64,
        /// Value to publish (monotone counters).
        val: u64,
    },
    /// Block until the flag at `addr` is ≥ `val`; then pay a re-read.
    WaitFlag {
        /// Flag line address.
        addr: u64,
        /// Minimum value to wait for.
        val: u64,
    },
    /// Wait until an absolute simulated time (window synchronization).
    WaitUntil(SimTime),
    /// Begin measured interval `k` for this thread.
    MarkStart(usize),
    /// End measured interval `k`.
    MarkEnd(usize),
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bytes_per_line() {
        assert_eq!(StreamKind::Copy.bytes_per_line(), 128);
        assert_eq!(StreamKind::Triad.bytes_per_line(), 192);
        assert_eq!(StreamKind::Read.bytes_per_line(), 64);
    }

    #[test]
    fn names() {
        for k in StreamKind::ALL {
            assert!(!k.name().is_empty());
        }
    }
}
