//! The MCDRAM memory-side cache of the cache and hybrid modes (§II-C).
//!
//! "It is a direct mapped memory based on physical addresses with 64 B
//! lines. [...] It is a 'memory-side' cache and acts like a high-bandwidth
//! buffer on the memory side. MCDRAM as cache is inclusive of all modified
//! lines in L2 (write-backs are made directly to MCDRAM). Before a line is
//! evicted from MCDRAM, there is a snoop to check if a modified copy exists
//! in L2."
//!
//! The tag store is sparse (keyed by set index) because the simulated
//! capacities are large relative to touched footprints. It is a
//! [`LineMap`], not a `std` hash map: the tag lookup runs on *every*
//! simulated memory access in cache/hybrid modes, and SipHash dominated
//! the profile (DESIGN.md §6). The map is never iterated, so its internal
//! order cannot leak into observable output.

use crate::fxmap::LineMap;

/// Outcome of a lookup/fill on the memory-side cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum McacheOutcome {
    /// The requested line was present.
    Hit,
    /// Miss; the victim set was empty (cold fill).
    MissCold,
    /// Miss; a clean line was replaced.
    MissCleanEvict {
        /// Line address of the victim (for the L2 snoop check).
        victim_line: u64,
    },
    /// Miss; a dirty line was replaced and must be written back to DDR.
    MissDirtyEvict {
        /// Line address of the dirty victim to write back.
        victim_line: u64,
    },
}

#[derive(Debug, Clone, Copy, Default)]
struct Entry {
    line: u64,
    dirty: bool,
}

/// Direct-mapped memory-side cache over physical line addresses.
///
/// # Disabled-cache contract
///
/// A cache built with zero capacity (`sets == 0`, the flat mode) has no
/// sets, so a set index cannot even be computed for it. Callers must gate
/// every [`MemorySideCache::access`] on [`MemorySideCache::enabled`] —
/// exactly what the `engine/serve.rs` call sites do with their
/// `self.mcache.enabled() && in_ddr` guards. Calling `access` while
/// disabled is a caller bug: it is caught by a `debug_assert` in debug
/// builds (and would divide by zero in release, so the assert is not load-
/// bearing for memory safety — it exists to give the bug a name). The
/// read-only [`MemorySideCache::contains`] probe is total and simply
/// reports `false` when disabled.
#[derive(Debug, Clone)]
pub struct MemorySideCache {
    /// Number of 64 B sets (= capacity in lines). 0 disables the cache.
    sets: u64,
    tags: LineMap<Entry>,
    /// Lifetime hit count (see [`MemorySideCache::reset_stats`]).
    pub hits: u64,
    /// Lifetime miss count.
    pub misses: u64,
}

impl MemorySideCache {
    /// Build with `capacity_bytes` of MCDRAM operating as cache.
    pub fn new(capacity_bytes: u64) -> Self {
        MemorySideCache {
            sets: capacity_bytes >> knl_arch::LINE_SHIFT,
            tags: LineMap::new(),
            hits: 0,
            misses: 0,
        }
    }

    /// Whether any capacity is configured.
    pub fn enabled(&self) -> bool {
        self.sets > 0
    }

    /// Set index of `line`. Only meaningful when [`Self::enabled`]; the
    /// `debug_assert` keeps the `% 0` case from ever reaching the modulo
    /// silently (see the disabled-cache contract on the type).
    fn set_of(&self, line: u64) -> u64 {
        debug_assert!(self.enabled(), "set_of on a disabled memory-side cache");
        line % self.sets
    }

    /// Access `line` (a physical address >> 6). On miss the line is filled
    /// (the memory-side cache allocates on both reads and writes). `dirty`
    /// marks the line dirty (write-backs from L2 and NT stores land dirty).
    ///
    /// Callers must check [`Self::enabled`] first — see the disabled-cache
    /// contract on the type.
    pub fn access(&mut self, line: u64, dirty: bool) -> McacheOutcome {
        debug_assert!(self.enabled(), "memory-side cache disabled");
        let set = self.set_of(line);
        match self.tags.get_mut(set) {
            Some(e) if e.line == line => {
                e.dirty |= dirty;
                self.hits += 1;
                McacheOutcome::Hit
            }
            Some(e) => {
                let victim = *e;
                *e = Entry { line, dirty };
                self.misses += 1;
                if victim.dirty {
                    McacheOutcome::MissDirtyEvict {
                        victim_line: victim.line,
                    }
                } else {
                    McacheOutcome::MissCleanEvict {
                        victim_line: victim.line,
                    }
                }
            }
            None => {
                self.tags.insert(set, Entry { line, dirty });
                self.misses += 1;
                McacheOutcome::MissCold
            }
        }
    }

    /// Peek without filling (used by diagnostics). Total: reports `false`
    /// when the cache is disabled.
    pub fn contains(&self, line: u64) -> bool {
        self.enabled()
            && self
                .tags
                .get(self.set_of(line))
                .is_some_and(|e| e.line == line)
    }

    /// Hit fraction since construction or [`MemorySideCache::reset_stats`].
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            return 0.0;
        }
        self.hits as f64 / total as f64
    }

    /// Zero the hit/miss counters.
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Drop all cached lines (between benchmark repetitions).
    pub fn clear(&mut self) {
        self.tags.clear();
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fill_then_hit() {
        let mut c = MemorySideCache::new(64 * 64); // 64 lines
        assert_eq!(c.access(5, false), McacheOutcome::MissCold);
        assert_eq!(c.access(5, false), McacheOutcome::Hit);
        assert!(c.contains(5));
        assert_eq!(c.hit_rate(), 0.5);
    }

    #[test]
    fn direct_mapped_conflict() {
        let mut c = MemorySideCache::new(64 * 64);
        c.access(1, false);
        // Line 65 maps to the same set (1 + 64).
        assert_eq!(
            c.access(65, false),
            McacheOutcome::MissCleanEvict { victim_line: 1 }
        );
        assert!(!c.contains(1));
        assert!(c.contains(65));
    }

    #[test]
    fn dirty_eviction_reported() {
        let mut c = MemorySideCache::new(64 * 64);
        c.access(1, true);
        assert_eq!(
            c.access(65, false),
            McacheOutcome::MissDirtyEvict { victim_line: 1 }
        );
    }

    #[test]
    fn dirty_sticks_on_hit() {
        let mut c = MemorySideCache::new(64 * 64);
        c.access(1, false);
        c.access(1, true); // hit that dirties
        assert_eq!(
            c.access(65, false),
            McacheOutcome::MissDirtyEvict { victim_line: 1 }
        );
    }

    #[test]
    fn disabled_cache() {
        let c = MemorySideCache::new(0);
        assert!(!c.enabled());
        // `contains` is total: false, never a panic, on the sets == 0
        // (flat-mode) path, even though no set index exists.
        assert!(!c.contains(3));
        assert!(!c.contains(0));
        assert_eq!(c.hit_rate(), 0.0);
    }

    #[test]
    fn sub_line_capacity_is_disabled() {
        // Fewer than 64 bytes rounds down to zero sets: the flat-mode
        // contract applies, `set_of`'s modulo can never see zero.
        let c = MemorySideCache::new(63);
        assert!(!c.enabled());
        assert!(!c.contains(0));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "disabled")]
    fn access_disabled_panics_in_debug() {
        // The contract violation is named in debug builds; release builds
        // would hit the modulo-by-zero instead (callers must gate on
        // `enabled()`, as every engine/serve.rs site does).
        MemorySideCache::new(0).access(0, false);
    }

    #[test]
    fn working_set_larger_than_capacity_thrashes() {
        let mut c = MemorySideCache::new(64 * 64); // 64 lines
                                                   // Touch 128 distinct lines twice; second pass must still miss
                                                   // (every set holds the *other* conflicting line by then).
        for round in 0..2 {
            for l in 0..128u64 {
                c.access(l, false);
            }
            if round == 0 {
                c.reset_stats();
            }
        }
        assert_eq!(
            c.hits, 0,
            "direct-mapped 2x-capacity cyclic sweep never hits"
        );
    }

    #[test]
    fn clear_empties() {
        let mut c = MemorySideCache::new(64 * 64);
        c.access(9, true);
        c.clear();
        assert!(!c.contains(9));
        assert_eq!(c.hits + c.misses, 0);
    }
}
