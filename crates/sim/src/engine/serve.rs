//! Coherent protocol paths: single-line reads, writes (RFO), NT stores,
//! the memory/mcache flows, and fills/evictions/state preparation.
//!
//! Every observable action is emitted exactly once through the
//! [`crate::engine::observe::ObserverHub`] at the point the engine has
//! already computed its payload; nothing here consults an observer for
//! control flow, so timings and counters are bit-identical whether the
//! hub is empty or full.

use crate::cache::Insert;
use crate::engine::observe::{gstate_tag, src_tag};
use crate::invariants::ProtoEvent;
use crate::machine::{AccessOutcome, Machine, ServedBy};
use crate::mcache::McacheOutcome;
use crate::mesif::{GlobalState, MesifState};
use crate::trace::hop_dist;
use crate::SimTime;
use knl_arch::{CoreId, MemTarget, TileId, LINE_SHIFT};

impl Machine {
    pub(crate) fn read(
        &mut self,
        core: CoreId,
        tile: TileId,
        line: u64,
        addr: u64,
        now: SimTime,
    ) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        let ver = self.dir.get(line).map_or(0, |e| e.version);

        // L1 hit.
        if self.l1[core.0 as usize].lookup(line, ver) {
            self.counters.l1_hits += 1;
            self.hub.coherent_read(now, line, false);
            let dur = self.jitter(t.l1_hit_ps, line);
            self.hub.serve(now + dur, line, 'R', 'L', 0, dur);
            return AccessOutcome {
                complete: now + dur,
                served_by: ServedBy::L1,
            };
        }

        // Same-tile L2 hit.
        let tile_state = self
            .dir
            .get(line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile));
        if tile_state != MesifState::Invalid && self.l2[tile.0 as usize].lookup(line, ver) {
            self.counters.l2_hits += 1;
            let is_m = tile_state == MesifState::Modified;
            let is_e = tile_state == MesifState::Exclusive;
            let lat = t.tile_l2_ps(is_m, is_e);
            // Port occupancy bounds same-tile bandwidth.
            let port = t.l2_port_ps_per_line + if is_m { t.l2_port_m_extra_ps } else { 0 };
            let start = now.max(self.l2_port_busy[tile.0 as usize]);
            self.l2_port_busy[tile.0 as usize] = start + port;
            let complete = (start + self.jitter(lat, line)).max(start + port);
            self.l1_fill(core, line, ver);
            self.hub.coherent_read(now, line, false);
            self.hub.serve(complete, line, 'R', 'T', 0, complete - now);
            return AccessOutcome {
                complete,
                served_by: ServedBy::TileL2(tile_state),
            };
        }

        // Remote path: requester -> home CHA.
        let home = self.map.home_directory(addr);
        let req_pos = self.topo.tile_position(tile);
        let home_pos = self.topo.tile_position(home);
        let t_req = self
            .mesh
            .traverse(req_pos, home_pos, now + t.l2_miss_detect_ps + t.inject_ps);
        if self.hub.enabled() {
            self.hub.issue(now, line, 'R');
            self.hub.hop(t_req, line, 'q', hop_dist(req_pos, home_pos));
        }

        let entry = self.dir.get_or_insert_default(line);
        let wait = entry.busy_until.saturating_sub(t_req);
        let t_svc = t_req + wait + t.cha_lookup_ps;
        entry.busy_until = t_req + wait + t.cha_line_serialize_ps;

        let supplier = entry.supplier().filter(|&s| s != tile);
        let outcome = if let Some(sup) = supplier {
            let st = entry.state_of(sup);
            let extra = match st {
                MesifState::Modified => t.remote_m_extra_ps,
                MesifState::Exclusive => t.remote_e_extra_ps,
                _ => 0,
            };
            let sup_pos = self.topo.tile_position(sup);
            let t_data =
                self.mesh.traverse(home_pos, sup_pos, t_svc + t.inject_ps) + t.remote_l2_ps + extra;
            let complete = self.mesh.traverse(sup_pos, req_pos, t_data + t.inject_ps) + t.fill_ps;
            self.counters.remote_cache_hits += 1;
            let entry = self.dir.get_mut(line).expect("entry exists");
            let from = gstate_tag(&entry.state);
            if st == MesifState::Modified {
                // Forced write-back downgrades M to S.
                self.counters.writebacks += 1;
            }
            entry.grant_read(tile);
            self.hub.dir_transition(
                t_svc,
                line,
                from,
                ProtoEvent::GrantRead { tile },
                entry,
                true,
            );
            self.hub.coherent_read(t_svc, line, false);
            let jc = now + self.jitter(complete - now, line);
            if self.hub.enabled() {
                self.hub.hop(t_data, line, 'd', hop_dist(home_pos, sup_pos));
                self.hub
                    .hop(complete, line, 'r', hop_dist(sup_pos, req_pos));
                if st == MesifState::Modified {
                    self.hub.writeback(complete, line, false);
                }
                self.hub.serve(
                    jc,
                    line,
                    'R',
                    st.letter(),
                    hop_dist(req_pos, sup_pos),
                    jc - now,
                );
            }
            AccessOutcome {
                complete: jc,
                served_by: ServedBy::RemoteCache {
                    holder: sup,
                    state: st,
                },
            }
        } else {
            let (ready, served_by) = self.memory_read(addr, line, home_pos, t_svc);
            let served_pos = self.served_pos(served_by);
            let complete = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps) + t.fill_ps;
            let entry = self.dir.get_mut(line).expect("entry exists");
            let from = gstate_tag(&entry.state);
            entry.grant_read(tile);
            self.hub.dir_transition(
                t_svc,
                line,
                from,
                ProtoEvent::GrantRead { tile },
                entry,
                true,
            );
            self.hub.coherent_read(t_svc, line, true);
            let jc = now + self.jitter(complete - now, line);
            if self.hub.enabled() {
                self.hub
                    .hop(complete, line, 'r', hop_dist(served_pos, req_pos));
                self.hub.serve(
                    jc,
                    line,
                    'R',
                    src_tag(served_by),
                    hop_dist(req_pos, served_pos),
                    jc - now,
                );
            }
            AccessOutcome {
                complete: jc,
                served_by,
            }
        };

        let ver = self.dir.get(line).map_or(0, |e| e.version);
        self.l2_fill(tile, line, ver);
        self.l1_fill(core, line, ver);
        outcome
    }

    pub(crate) fn write(
        &mut self,
        core: CoreId,
        tile: TileId,
        line: u64,
        addr: u64,
        now: SimTime,
    ) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        let tile_state = self
            .dir
            .get(line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile));
        let ver = self.dir.get(line).map_or(0, |e| e.version);

        // Silent upgrade: tile already owns the line (M or E).
        if matches!(tile_state, MesifState::Modified | MesifState::Exclusive)
            && self.l2[tile.0 as usize].lookup(line, ver)
        {
            let in_l1 = self.l1[core.0 as usize].lookup(line, ver);
            let lat = if in_l1 {
                self.counters.l1_hits += 1;
                t.l1_hit_ps
            } else {
                self.counters.l2_hits += 1;
                t.tile_l2_ps(
                    tile_state == MesifState::Modified,
                    tile_state == MesifState::Exclusive,
                )
            };
            let entry = self.dir.get_mut(line).expect("owned line has entry");
            let from = gstate_tag(&entry.state);
            let invalidated = entry.grant_write(tile);
            self.hub.dir_transition(
                now,
                line,
                from,
                ProtoEvent::GrantWrite { tile, invalidated },
                entry,
                true,
            );
            // The version advanced (sibling-core L1 copies die); re-stamp
            // the writer's own caches.
            let ver = entry.version;
            self.l2_fill(tile, line, ver);
            self.l1_fill(core, line, ver);
            let dur = self.jitter(lat, line);
            self.hub
                .serve(now + dur, line, 'W', if in_l1 { 'L' } else { 'T' }, 0, dur);
            return AccessOutcome {
                complete: now + dur,
                served_by: if in_l1 {
                    ServedBy::L1
                } else {
                    ServedBy::TileL2(tile_state)
                },
            };
        }

        // RFO through the home directory.
        let home = self.map.home_directory(addr);
        let req_pos = self.topo.tile_position(tile);
        let home_pos = self.topo.tile_position(home);
        let t_req = self
            .mesh
            .traverse(req_pos, home_pos, now + t.l2_miss_detect_ps + t.inject_ps);
        if self.hub.enabled() {
            self.hub.issue(now, line, 'W');
            self.hub.hop(t_req, line, 'q', hop_dist(req_pos, home_pos));
        }

        let entry = self.dir.get_or_insert_default(line);
        let wait = entry.busy_until.saturating_sub(t_req);
        let t_svc = t_req + wait + t.cha_lookup_ps;
        entry.busy_until = t_req + wait + t.cha_line_serialize_ps;

        let supplier = entry.supplier().filter(|&s| s != tile);

        let (data_ready, served_by) = if let Some(sup) = supplier {
            let st = entry.state_of(sup);
            let extra = match st {
                MesifState::Modified => t.remote_m_extra_ps,
                MesifState::Exclusive => t.remote_e_extra_ps,
                _ => 0,
            };
            let sup_pos = self.topo.tile_position(sup);
            let at_sup =
                self.mesh.traverse(home_pos, sup_pos, t_svc + t.inject_ps) + t.remote_l2_ps + extra;
            let ready = self.mesh.traverse(sup_pos, req_pos, at_sup + t.inject_ps);
            self.counters.remote_cache_hits += 1;
            if self.hub.enabled() {
                self.hub.hop(at_sup, line, 'd', hop_dist(home_pos, sup_pos));
                self.hub.hop(ready, line, 'r', hop_dist(sup_pos, req_pos));
            }
            (
                ready,
                ServedBy::RemoteCache {
                    holder: sup,
                    state: st,
                },
            )
        } else if tile_state != MesifState::Invalid {
            // Upgrade from S/F: data already local; only permission needed.
            let ready = self.mesh.traverse(home_pos, req_pos, t_svc + t.inject_ps);
            (ready, ServedBy::TileL2(tile_state))
        } else {
            let (ready, served) = self.memory_read(addr, line, home_pos, t_svc);
            let served_pos = self.served_pos(served);
            let ready = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps);
            self.hub
                .hop(ready, line, 'r', hop_dist(served_pos, req_pos));
            (ready, served)
        };

        let entry = self.dir.get_mut(line).expect("entry exists");
        let from = gstate_tag(&entry.state);
        // Fault injection (checker tests): remember one holder whose
        // invalidation we are about to "forget".
        let stale = if self.skip_invalidation {
            match &entry.state {
                GlobalState::Exclusive { owner } | GlobalState::Modified { owner }
                    if *owner != tile =>
                {
                    Some(*owner)
                }
                GlobalState::Shared { .. } => entry.sharers.iter().copied().find(|&s| s != tile),
                _ => None,
            }
        } else {
            None
        };
        let invalidated = entry.grant_write(tile);
        if let Some(s) = stale {
            entry.sharers.push(s);
        }
        self.hub.dir_transition(
            t_svc,
            line,
            from,
            ProtoEvent::GrantWrite { tile, invalidated },
            entry,
            true,
        );
        self.counters.invalidations += invalidated as u64;
        let inv_cost = invalidated as u64 * t.invalidate_per_sharer_ps;

        let complete = data_ready + inv_cost + t.fill_ps;
        let ver = self.dir.get(line).map_or(0, |e| e.version);
        self.l2_fill(tile, line, ver);
        self.l1_fill(core, line, ver);
        let jc = now + self.jitter(complete - now, line);
        if self.hub.enabled() {
            if invalidated > 0 {
                self.hub.inv(t_svc, line, invalidated as u32);
            }
            let (src, hops) = match served_by {
                ServedBy::TileL2(_) => ('T', hop_dist(req_pos, home_pos)),
                other => (src_tag(other), hop_dist(req_pos, self.served_pos(other))),
            };
            self.hub.serve(jc, line, 'W', src, hops, jc - now);
        }
        AccessOutcome {
            complete: jc,
            served_by,
        }
    }

    pub(crate) fn nt_store(
        &mut self,
        tile: TileId,
        line: u64,
        addr: u64,
        now: SimTime,
    ) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        self.counters.nt_stores += 1;
        self.hub.issue(now, line, 'N');
        // Invalidate any cached copies (rare for streaming workloads). One
        // invalidation message goes to *each* holder — the same accounting
        // as the RFO path, which the coherence checker reconciles exactly.
        let mut extra = 0;
        let mut destroyed = None;
        if let Some(entry) = self.dir.get_mut(line) {
            let holders = entry.num_holders();
            if holders > 0 {
                let from = gstate_tag(&entry.state);
                let dirty = entry.invalidate_all();
                self.hub.dir_transition(
                    now,
                    line,
                    from,
                    ProtoEvent::InvalidateAll { holders, dirty },
                    entry,
                    true,
                );
                destroyed = Some((holders, dirty));
            }
        }
        if let Some((holders, dirty)) = destroyed {
            self.counters.invalidations += holders as u64;
            extra = holders as u64 * t.invalidate_per_sharer_ps;
            self.hub.inv(now, line, holders as u32);
            if dirty {
                self.counters.writebacks += 1;
                self.hub.writeback(now, line, false);
            }
        }
        self.hub.nt_store(now, line);
        // Posted: the core only pays the issue cost; the device is occupied
        // in the background. The accept time is returned to let callers
        // throttle on write-combining-buffer capacity.
        let req_pos = self.topo.tile_position(tile);
        let accept = self.memory_write(addr, line, req_pos, now + t.issue_gap_ps);
        AccessOutcome {
            complete: accept + extra,
            served_by: ServedBy::Posted,
        }
    }

    // ------------------------------------------------------------------
    // Memory paths
    // ------------------------------------------------------------------

    /// Read `line` from memory; `from_pos` is where the request departs
    /// (home CHA). Returns (data-ready-at-device time, provenance).
    pub(crate) fn memory_read(
        &mut self,
        addr: u64,
        line: u64,
        from_pos: (i32, i32),
        t0: SimTime,
    ) -> (SimTime, ServedBy) {
        let t = self.cfg.timing.clone();
        let in_ddr = matches!(self.map.mem_target(addr), MemTarget::Ddr { .. });
        if self.mcache.enabled() && in_ddr {
            // Memory-side cache flow.
            let edc = self.map.mcdram_cache_edc(addr);
            let edc_pos = self.topo.edc_position(edc);
            let arrive = self.mesh.traverse(from_pos, edc_pos, t0 + t.inject_ps) + t.mcache_tag_ps;
            let edc_dev = 6 + edc as usize;
            match self.mcache.access(line, false) {
                McacheOutcome::Hit => {
                    self.counters.mcache_hits += 1;
                    self.counters.mcdram_accesses += 1;
                    if self.hub.enabled() {
                        let depth = self.devices[edc_dev].backlog_lines(arrive);
                        self.hub.mcache(arrive, line, edc, true);
                        self.hub
                            .dev_enter(arrive, line, edc_dev as u8, false, depth);
                    }
                    let ready = self.devices[edc_dev].read(arrive);
                    self.hub.dev_leave(ready, line, edc_dev as u8);
                    (ready, ServedBy::McacheHit { edc })
                }
                outcome => {
                    self.counters.mcache_misses += 1;
                    self.counters.ddr_accesses += 1;
                    let target = self.map.mem_target(addr);
                    let ddr_pos = self.ddr_pos(target);
                    let at_ddr = self.mesh.traverse(edc_pos, ddr_pos, arrive + t.inject_ps);
                    let ddr_dev = target.device_index();
                    if self.hub.enabled() {
                        self.hub.mcache(arrive, line, edc, false);
                        self.hub.hop(at_ddr, line, 'd', hop_dist(edc_pos, ddr_pos));
                        let depth = self.devices[ddr_dev].backlog_lines(at_ddr);
                        self.hub
                            .dev_enter(at_ddr, line, ddr_dev as u8, false, depth);
                    }
                    let ready = self.devices[ddr_dev].read(at_ddr);
                    self.hub.dev_leave(ready, line, ddr_dev as u8);
                    // Fill the cache line in the background ("data read from
                    // DDR is sent to MCDRAM and the requesting tile
                    // simultaneously").
                    if self.hub.enabled() {
                        let depth = self.devices[edc_dev].backlog_lines(ready);
                        self.hub.dev_enter(ready, line, edc_dev as u8, true, depth);
                    }
                    self.devices[edc_dev].write(ready);
                    if let McacheOutcome::MissDirtyEvict { victim_line } = outcome {
                        // Victim write-back to DDR (plus the L2 snoop the
                        // paper describes; both happen off the critical path).
                        let victim_addr = victim_line << LINE_SHIFT;
                        let vt = self.map.mem_target(victim_addr);
                        if self.hub.enabled() {
                            let depth = self.devices[vt.device_index()].backlog_lines(ready);
                            self.hub.dev_enter(
                                ready,
                                victim_line,
                                vt.device_index() as u8,
                                true,
                                depth,
                            );
                        }
                        self.hub.writeback(ready, victim_line, true);
                        self.devices[vt.device_index()].write(ready);
                        self.counters.writebacks += 1;
                    }
                    (ready, ServedBy::Memory(target))
                }
            }
        } else {
            let target = self.map.mem_target(addr);
            let pos = self.target_pos(target);
            let arrive = self.mesh.traverse(from_pos, pos, t0 + t.inject_ps);
            let dev = target.device_index();
            if self.hub.enabled() {
                let depth = self.devices[dev].backlog_lines(arrive);
                self.hub.dev_enter(arrive, line, dev as u8, false, depth);
            }
            let ready = self.devices[dev].read(arrive);
            self.hub.dev_leave(ready, line, dev as u8);
            match target {
                MemTarget::Ddr { .. } => self.counters.ddr_accesses += 1,
                MemTarget::Mcdram { .. } => self.counters.mcdram_accesses += 1,
            }
            (ready, ServedBy::Memory(target))
        }
    }

    /// Write one line to memory (write-back or NT store). Returns accept time.
    pub(crate) fn memory_write(
        &mut self,
        addr: u64,
        line: u64,
        from_pos: (i32, i32),
        t0: SimTime,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let in_ddr = matches!(self.map.mem_target(addr), MemTarget::Ddr { .. });
        if self.mcache.enabled() && in_ddr {
            // Write-backs and NT stores land in the MCDRAM cache directly.
            let edc = self.map.mcdram_cache_edc(addr);
            let edc_pos = self.topo.edc_position(edc);
            let arrive = self.mesh.traverse(from_pos, edc_pos, t0 + t.inject_ps) + t.mcache_tag_ps;
            let edc_dev = 6 + edc as usize;
            if self.hub.enabled() {
                let depth = self.devices[edc_dev].backlog_lines(arrive);
                self.hub.dev_enter(arrive, line, edc_dev as u8, true, depth);
            }
            match self.mcache.access(line, true) {
                McacheOutcome::Hit
                | McacheOutcome::MissCold
                | McacheOutcome::MissCleanEvict { .. } => {
                    self.counters.mcdram_accesses += 1;
                    let accept = self.devices[edc_dev].write(arrive);
                    self.hub.dev_leave(accept, line, edc_dev as u8);
                    accept
                }
                McacheOutcome::MissDirtyEvict { victim_line } => {
                    self.counters.mcdram_accesses += 1;
                    let accept = self.devices[edc_dev].write(arrive);
                    self.hub.dev_leave(accept, line, edc_dev as u8);
                    let victim_addr = victim_line << LINE_SHIFT;
                    let vt = self.map.mem_target(victim_addr);
                    // The dirty victim must drain to DDR before the cache
                    // can accept the new line: evictions backpressure the
                    // write stream (this is why cache-mode write bandwidth
                    // collapses toward the DDR write rate in Table II).
                    if self.hub.enabled() {
                        let depth = self.devices[vt.device_index()].backlog_lines(accept);
                        self.hub.dev_enter(
                            accept,
                            victim_line,
                            vt.device_index() as u8,
                            true,
                            depth,
                        );
                    }
                    self.hub.writeback(accept, victim_line, true);
                    let drained = self.devices[vt.device_index()].write(accept);
                    self.hub
                        .dev_leave(drained, victim_line, vt.device_index() as u8);
                    self.counters.writebacks += 1;
                    drained
                }
            }
        } else {
            let target = self.map.mem_target(addr);
            let pos = self.target_pos(target);
            let arrive = self.mesh.traverse(from_pos, pos, t0 + t.inject_ps);
            let dev = target.device_index();
            if self.hub.enabled() {
                let depth = self.devices[dev].backlog_lines(arrive);
                self.hub.dev_enter(arrive, line, dev as u8, true, depth);
            }
            match target {
                MemTarget::Ddr { .. } => self.counters.ddr_accesses += 1,
                MemTarget::Mcdram { .. } => self.counters.mcdram_accesses += 1,
            }
            let accept = self.devices[dev].write(arrive);
            self.hub.dev_leave(accept, line, dev as u8);
            accept
        }
    }

    pub(crate) fn target_pos(&self, target: MemTarget) -> (i32, i32) {
        match target {
            MemTarget::Ddr { imc, .. } => self.topo.imc_position(imc),
            MemTarget::Mcdram { edc } => self.topo.edc_position(edc),
        }
    }

    pub(crate) fn ddr_pos(&self, target: MemTarget) -> (i32, i32) {
        match target {
            MemTarget::Ddr { imc, .. } => self.topo.imc_position(imc),
            MemTarget::Mcdram { .. } => unreachable!("mcache backing store must be DDR"),
        }
    }

    pub(crate) fn served_pos(&self, served: ServedBy) -> (i32, i32) {
        match served {
            ServedBy::Memory(t) => self.target_pos(t),
            ServedBy::McacheHit { edc } => self.topo.edc_position(edc),
            ServedBy::RemoteCache { holder, .. } => self.topo.tile_position(holder),
            // L1/L2/Posted never route a reply across the mesh.
            _ => (0, 0),
        }
    }

    // ------------------------------------------------------------------
    // Fills & evictions
    // ------------------------------------------------------------------

    pub(crate) fn l1_fill(&mut self, core: CoreId, line: u64, version: u32) {
        // L1 evictions are silent (the tile L2 retains the line).
        let _ = self.l1[core.0 as usize].insert(line, version);
    }

    pub(crate) fn l2_fill(&mut self, tile: TileId, line: u64, version: u32) {
        if let Insert::Evicted(victim) = self.l2[tile.0 as usize].insert(line, version) {
            let mut dirty = None;
            let when = self.l2_port_busy[tile.0 as usize];
            if let Some(entry) = self.dir.get_mut(victim) {
                let from = gstate_tag(&entry.state);
                let d = entry.evict(tile);
                self.hub.dir_transition(
                    when,
                    victim,
                    from,
                    ProtoEvent::Evict { tile, dirty: d },
                    entry,
                    true,
                );
                dirty = Some(d);
            }
            if dirty == Some(true) {
                // Dirty victim: write back in the background.
                self.counters.writebacks += 1;
                self.hub.writeback(when, victim, false);
                let victim_addr = victim << LINE_SHIFT;
                let pos = self.topo.tile_position(tile);
                self.memory_write(victim_addr, victim, pos, when);
            }
        }
    }

    /// Explicitly drop `addr`'s line from `core`'s tile (both L1s and the
    /// shared L2), updating the directory; a dirty copy is written back in
    /// the background. Returns the core-visible completion time. This is
    /// the [`crate::ops::Op::Evict`] primitive the coherence fuzzer uses to
    /// exercise eviction paths without overflowing the tag arrays.
    pub fn evict_line(&mut self, core: CoreId, addr: u64, now: SimTime) -> SimTime {
        let t = self.cfg.timing.clone();
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        self.hub.set_tile(tile.0);
        for c in tile.cores() {
            if (c.0 as usize) < self.l1.len() {
                self.l1[c.0 as usize].remove(line);
            }
        }
        self.l2[tile.0 as usize].remove(line);
        let mut dirty = None;
        if let Some(entry) = self.dir.get_mut(line) {
            let from = gstate_tag(&entry.state);
            let d = entry.evict(tile);
            self.hub.dir_transition(
                now,
                line,
                from,
                ProtoEvent::Evict { tile, dirty: d },
                entry,
                true,
            );
            dirty = Some(d);
        }
        if dirty == Some(true) {
            self.counters.writebacks += 1;
            self.hub.writeback(now, line, false);
            let pos = self.topo.tile_position(tile);
            self.memory_write(addr, line, pos, now + t.issue_gap_ps);
        }
        // The core pays only the flush issue; write-backs are posted.
        now + t.l1_hit_ps
    }

    /// Pre-load a line into a tile's caches in a given state without timing
    /// (benchmark state preparation). `core` receives an L1 copy too.
    pub fn prepare_line(&mut self, core: CoreId, addr: u64, state: MesifState) {
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        match state {
            MesifState::Invalid => {
                if let Some(entry) = self.dir.get_mut(line) {
                    let from = gstate_tag(&entry.state);
                    let holders = entry.num_holders();
                    let dirty = entry.invalidate_all();
                    self.hub.dir_transition(
                        0,
                        line,
                        from,
                        ProtoEvent::InvalidateAll { holders, dirty },
                        entry,
                        false,
                    );
                }
            }
            MesifState::Modified => {
                let entry = self.dir.get_or_insert_default(line);
                let from = gstate_tag(&entry.state);
                let invalidated = entry.grant_write(tile);
                self.hub.dir_transition(
                    0,
                    line,
                    from,
                    ProtoEvent::GrantWrite { tile, invalidated },
                    entry,
                    false,
                );
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
            MesifState::Exclusive => {
                let entry = self.dir.get_or_insert_default(line);
                let from = gstate_tag(&entry.state);
                let holders = entry.num_holders();
                let dirty = entry.invalidate_all();
                entry.grant_read(tile); // first reader ⇒ E
                self.hub.dir_transition(
                    0,
                    line,
                    from,
                    ProtoEvent::InvalidateAll { holders, dirty },
                    entry,
                    false,
                );
                self.hub.dir_transition(
                    0,
                    line,
                    from,
                    ProtoEvent::GrantRead { tile },
                    entry,
                    false,
                );
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
            MesifState::Shared | MesifState::Forward => {
                // Owner reads, then a helper tile reads, leaving the owner S
                // and the helper F; for an F request we re-read from `core`.
                let entry = self.dir.get_or_insert_default(line);
                let from = gstate_tag(&entry.state);
                let holders = entry.num_holders();
                let dirty = entry.invalidate_all();
                let helper = TileId((tile.0 + 1) % self.cfg.active_tiles as u16);
                let (first, second) = if state == MesifState::Shared {
                    (tile, helper)
                } else {
                    (helper, tile)
                };
                entry.grant_read(first);
                entry.grant_read(second);
                self.hub.dir_transition(
                    0,
                    line,
                    from,
                    ProtoEvent::InvalidateAll { holders, dirty },
                    entry,
                    false,
                );
                self.hub.dir_transition(
                    0,
                    line,
                    from,
                    ProtoEvent::GrantRead { tile: second },
                    entry,
                    false,
                );
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::machine::{AccessKind, Machine, ServedBy};
    use crate::mesif::MesifState;
    use knl_arch::{ClusterMode, CoreId, MachineConfig, MemTarget, MemoryMode, NumaKind, Schedule};

    fn machine(cm: ClusterMode, mm: MemoryMode) -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(cm, mm));
        m.set_jitter(0);
        m
    }

    fn ddr_addr(m: &Machine) -> u64 {
        let mut a = m.arena();
        a.alloc(NumaKind::Ddr, 4096)
    }

    #[test]
    fn l1_hit_after_first_read() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let addr = ddr_addr(&m);
        let c = CoreId(0);
        let first = m.access(c, addr, AccessKind::Read, 0);
        assert!(matches!(first.served_by, ServedBy::Memory(_)));
        let second = m.access(c, addr, AccessKind::Read, first.complete);
        assert!(matches!(second.served_by, ServedBy::L1));
        assert_eq!(second.complete - first.complete, 3_800);
    }

    #[test]
    fn memory_read_latency_near_140ns() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let mut lat = Vec::new();
        for i in 0..200u64 {
            let addr = 4096 + i * 64;
            let out = m.access(c, addr, AccessKind::Read, i * 1_000_000);
            lat.push((out.complete - i * 1_000_000) as f64 / 1000.0);
        }
        let med = {
            let mut v = lat.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!((120.0..170.0).contains(&med), "DDR latency {med} ns");
    }

    #[test]
    fn mcdram_latency_higher_than_ddr() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let mut arena = m.arena();
        let ddr = arena.alloc(NumaKind::Ddr, 1 << 16);
        let mc = arena.alloc(NumaKind::Mcdram, 1 << 16);
        let mut tddr = 0u64;
        let mut tmc = 0u64;
        for i in 0..100u64 {
            let o = m.access(c, ddr + i * 64, AccessKind::Read, i * 1_000_000);
            tddr += o.complete - i * 1_000_000;
        }
        for i in 0..100u64 {
            let o = m.access(c, mc + i * 64, AccessKind::Read, (1000 + i) * 1_000_000);
            tmc += o.complete - (1000 + i) * 1_000_000;
        }
        assert!(
            tmc > tddr,
            "MCDRAM latency must exceed DDR ({tmc} vs {tddr})"
        );
    }

    #[test]
    fn same_tile_transfer_states() {
        // Table I: tile M 34 ns, E 18 ns, S/F 14 ns (plus port effects).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(0);
        let reader = CoreId(1); // same tile
        for (state, expect_ns) in [
            (MesifState::Modified, 34.0),
            (MesifState::Exclusive, 18.0),
            (MesifState::Shared, 14.0),
        ] {
            let addr = 1 << 16;
            m.reset_caches();
            m.prepare_line(owner, addr, state);
            let out = m.access(reader, addr, AccessKind::Read, 1_000_000);
            let ns = (out.complete - 1_000_000) as f64 / 1000.0;
            assert!(
                (ns - expect_ns).abs() < expect_ns * 0.35 + 2.0,
                "state {state:?}: got {ns} ns, expected ~{expect_ns}"
            );
            assert!(
                matches!(out.served_by, ServedBy::TileL2(_)),
                "{:?}",
                out.served_by
            );
        }
    }

    #[test]
    fn remote_transfer_slower_than_tile() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(10); // tile 5
        let reader = CoreId(0); // tile 0
        let addr = 1 << 16;
        m.prepare_line(owner, addr, MesifState::Modified);
        let out = m.access(reader, addr, AccessKind::Read, 0);
        assert!(matches!(out.served_by, ServedBy::RemoteCache { .. }));
        let ns = out.complete as f64 / 1000.0;
        assert!((80.0..170.0).contains(&ns), "remote M latency {ns} ns");
    }

    #[test]
    fn remote_m_costs_more_than_sf() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(10);
        let reader = CoreId(0);
        let addr_m = 1 << 16;
        let addr_s = 2 << 16;
        m.prepare_line(owner, addr_m, MesifState::Modified);
        m.prepare_line(owner, addr_s, MesifState::Forward);
        let tm = m.access(reader, addr_m, AccessKind::Read, 0).complete;
        let ts = m
            .access(reader, addr_s, AccessKind::Read, 10_000_000)
            .complete
            - 10_000_000;
        assert!(tm > ts, "M {tm} must exceed S/F {ts}");
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let a = CoreId(0);
        let b = CoreId(10);
        let addr = 1 << 16;
        // b owns; a reads (both share); b writes (invalidates a); a reads again.
        m.prepare_line(b, addr, MesifState::Modified);
        let r1 = m.access(a, addr, AccessKind::Read, 0);
        assert!(matches!(r1.served_by, ServedBy::RemoteCache { .. }));
        let w = m.access(b, addr, AccessKind::Write, r1.complete);
        let c0 = m.counters();
        assert!(c0.invalidations >= 1);
        let r2 = m.access(a, addr, AccessKind::Read, w.complete + 1_000_000);
        assert!(
            matches!(r2.served_by, ServedBy::RemoteCache { .. }),
            "invalidated reader must refetch, got {:?}",
            r2.served_by
        );
    }

    #[test]
    fn contention_serializes_at_directory() {
        // N readers hitting the same M line nearly simultaneously: the last
        // completion grows roughly linearly with N (Table I: α + β·N).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(0);
        let addr = 1 << 16;
        let last_for = |m: &mut Machine, n: usize| -> u64 {
            m.reset_caches();
            m.prepare_line(owner, addr, MesifState::Modified);
            let mut worst = 0;
            for i in 0..n {
                let reader = Schedule::Scatter.core(i + 1, 64);
                let out = m.access(reader, addr, AccessKind::Read, 0);
                worst = worst.max(out.complete);
            }
            worst
        };
        let t8 = last_for(&mut m, 8);
        let t32 = last_for(&mut m, 32);
        let slope = (t32 - t8) as f64 / 24.0 / 1000.0;
        assert!(
            (20.0..50.0).contains(&slope),
            "contention slope {slope} ns/thread (expect ~34)"
        );
    }

    #[test]
    fn cache_mode_hits_and_misses() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Cache);
        let c = CoreId(0);
        let addr = 1 << 20;
        let miss = m.access(c, addr, AccessKind::Read, 0);
        assert!(matches!(
            miss.served_by,
            ServedBy::Memory(MemTarget::Ddr { .. })
        ));
        // Evict from L1+L2 is hard; instead touch a different line mapping
        // to the same mcache set? Simpler: re-read after clearing the tile
        // caches — the memory-side cache keeps its content.
        for l2 in &mut m.l1 {
            l2.clear();
        }
        for l2 in &mut m.l2 {
            l2.clear();
        }
        m.dir.clear();
        let hit = m.access(c, addr, AccessKind::Read, 10_000_000);
        assert!(
            matches!(hit.served_by, ServedBy::McacheHit { .. }),
            "{:?}",
            hit.served_by
        );
        // Cache-mode hit latency exceeds a flat DDR access (tag check +
        // MCDRAM's higher device latency), per Table II.
        let hit_ns = (hit.complete - 10_000_000) as f64 / 1000.0;
        assert!(
            (140.0..210.0).contains(&hit_ns),
            "cache-mode latency {hit_ns}"
        );
    }

    #[test]
    fn flat_mode_never_touches_disabled_mcache() {
        // In flat mode the memory-side cache has sets == 0. Every serve
        // path (reads, writes, NT stores, evictions — DDR and MCDRAM
        // targets alike) must stay behind the `mcache.enabled()` guards:
        // an unguarded access would trip the disabled-cache debug assert
        // (or `set_of`'s modulo-by-zero) right here.
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        assert!(!m.mcache.enabled());
        let mut a = m.arena();
        let ddr = a.alloc(knl_arch::NumaKind::Ddr, 1 << 16);
        let mcdram = a.alloc(knl_arch::NumaKind::Mcdram, 1 << 16);
        let mut t = 0;
        for base in [ddr, mcdram] {
            for i in 0..32u64 {
                let c = CoreId((i % 8 * 2) as u16);
                let addr = base + i * 64;
                t = m.access(c, addr, AccessKind::Read, t).complete;
                t = m.access(c, addr, AccessKind::Write, t).complete;
                t = m.access(c, addr, AccessKind::NtStore, t).complete;
            }
        }
        t = m.evict_line(CoreId(0), ddr, t);
        m.reset_caches(); // must skip the disabled mcache
        m.access(CoreId(0), ddr, AccessKind::Read, t);
        assert_eq!(m.counters().mcache_hits + m.counters().mcache_misses, 0);
        assert_eq!(m.mcache_hit_rate(), 0.0);
    }

    #[test]
    fn nt_store_is_posted_and_counted() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let out = m.access(c, 4096, AccessKind::NtStore, 0);
        assert!(matches!(out.served_by, ServedBy::Posted));
        assert_eq!(m.counters().nt_stores, 1);
    }

    #[test]
    fn nt_store_invalidates_every_holder() {
        // An NT store destroys all cached copies; the invalidation counter
        // must reflect each one, exactly like an RFO (audit fix pinned by
        // the checker's counter reconciliation).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut t = 0;
        for c in [CoreId(0), CoreId(2), CoreId(4)] {
            t = m.access(c, 4096, AccessKind::Read, t).complete;
        }
        let before = m.counters().invalidations;
        m.access(CoreId(6), 4096, AccessKind::NtStore, t);
        assert_eq!(m.counters().invalidations - before, 3);
    }
}
