//! The event spine: one [`ProtocolEvent`] stream, emitted exactly once per
//! protocol action by the engine, fanned out by the [`ObserverHub`] to
//! whatever [`MachineObserver`]s are registered.
//!
//! Observers are *pure*: they may panic (the checker's whole job) but must
//! never change simulated timings, counters, or cache state — the
//! equivalence tests (`checked ≡ unchecked`, `traced ≡ untraced`,
//! `analyzer-on ≡ off`) pin this bit-for-bit. The hub caches whether any
//! registered observer consumes events; when none does, every emission
//! helper is a single `#[inline]` flag test, so an unobserved machine pays
//! one never-taken branch per emission point — the same cost as the old
//! per-observer `Option<Box<_>>` gates it replaces.

use crate::analyze::AnalyzeLevel;
use crate::counters::Counters;
use crate::invariants::{CheckLevel, CoherenceChecker, ProtoEvent};
use crate::machine::ServedBy;
use crate::mesif::{DirEntry, GlobalState};
use crate::program::Program;
use crate::trace::{EventKind, TraceLevel, Tracer, NO_TILE};
use crate::SimTime;
use knl_arch::MemTarget;
use std::any::Any;

/// One observable protocol action, tagged with everything the engine has
/// already computed at the emission point (supplier state, hop counts,
/// queue depths, directory entry after the transition). Borrowed fields
/// keep emission allocation-free.
#[derive(Debug, Clone, Copy)]
pub enum ProtocolEvent<'a> {
    /// A coherent request leaves the core (`R`/`W`/`N`).
    Issue {
        /// Operation tag: `R`ead, `W`rite, `N`T store.
        op: char,
    },
    /// A request completed, with provenance and latency.
    Serve {
        /// Operation tag (`R`/`W`).
        op: char,
        /// Source tag (see [`src_tag`]).
        src: char,
        /// Mesh distance between requester and server.
        hops: u32,
        /// End-to-end latency of the access.
        latency_ps: SimTime,
    },
    /// A directory transition, after the entry was updated. `counted`
    /// mirrors the protocol/preparation split: state preparation
    /// ([`crate::machine::Machine::prepare_line`]) transitions are
    /// uncounted and do not appear in traces.
    Dir {
        /// Global state tag before the transition (see [`gstate_tag`]).
        from: char,
        /// The protocol action that caused the transition.
        proto: ProtoEvent,
        /// The directory entry, already in its post-transition state.
        entry: &'a DirEntry,
        /// False for timing-free state preparation.
        counted: bool,
    },
    /// A message finished one mesh leg (`q`uery/`d`ata/`r`eply).
    Hop {
        /// Leg tag.
        leg: char,
        /// Manhattan hop count of the leg.
        hops: u32,
    },
    /// A request entered a memory device queue.
    DevEnter {
        /// Device index (0–5 DDR, 6+ MCDRAM EDC).
        dev: u8,
        /// Write (vs read) request.
        write: bool,
        /// Lines already queued ahead of it.
        depth: u32,
    },
    /// A request left a memory device queue.
    DevLeave {
        /// Device index.
        dev: u8,
    },
    /// Memory-side cache lookup outcome (cache/hybrid modes).
    Mcache {
        /// EDC holding the set.
        edc: u8,
        /// Hit or miss.
        hit: bool,
    },
    /// Invalidation messages sent to `n` holders.
    Inv {
        /// Number of holders invalidated.
        n: u32,
    },
    /// A dirty line was written back. `external` write-backs originate
    /// outside the directory's view (memory-side-cache victim evictions);
    /// the checker reconciles them separately from the directory-implied
    /// ones it infers from [`ProtocolEvent::Dir`] transitions.
    Writeback {
        /// True only for mcache victim evictions.
        external: bool,
    },
    /// A measured-interval boundary (runner `MarkStart`/`MarkEnd`).
    Mark {
        /// Interval id.
        id: u32,
        /// Start (vs end) of the interval.
        start: bool,
    },
    /// A coherent read was satisfied (`from_memory`: served by a device
    /// rather than a cache). Consumed by the checker's read oracle only;
    /// never traced.
    CoherentRead {
        /// Data came from memory, not a cache.
        from_memory: bool,
    },
    /// An NT store overwrote the line (checker shadow-memory update only).
    NtStore,
}

/// A sink for [`ProtocolEvent`]s plus the machine lifecycle hooks the
/// existing observers need. All hooks default to no-ops; an observer
/// implements only what it consumes. The `as_any` boilerplate lets the
/// [`ObserverHub`] hand back concrete observers (`get`/`take`) to the
/// sweep drivers that serialize tracers per job.
pub trait MachineObserver: Any + Send {
    /// Does this observer consume [`ProtocolEvent`]s at all? The hub skips
    /// event fan-out (and the engine skips event-only bookkeeping such as
    /// queue-depth sampling) when no registered observer wants events.
    fn wants_events(&self) -> bool {
        true
    }

    /// One protocol event. `line` is the cache-line index it concerns
    /// (0 for line-less events such as marks).
    fn on_event(&mut self, time: SimTime, line: u64, event: &ProtocolEvent<'_>);

    /// The runner switched execution context to `thread`.
    fn set_thread(&mut self, _thread: u32) {}

    /// Subsequent events originate from `tile`.
    fn set_tile(&mut self, _tile: u16) {}

    /// The on-die caches and directory were cleared (fresh repetition).
    fn on_reset(&mut self) {}

    /// A runner is about to execute `programs` with `initial_flags`
    /// (sorted by address). The analyzer gate runs its pre-pass here.
    fn on_run_start(&mut self, _programs: &[Program], _initial_flags: &[(u64, u64)]) {}

    /// End-of-run verification against the machine's hardware counters.
    fn finish(&self, _counters: &Counters) {}

    /// Concrete-type access for [`ObserverHub::get`].
    fn as_any(&self) -> &dyn Any;
    /// Concrete-type access for [`ObserverHub::get_mut`].
    fn as_any_mut(&mut self) -> &mut dyn Any;
    /// Concrete-type extraction for [`ObserverHub::take`].
    fn into_any(self: Box<Self>) -> Box<dyn Any>;
}

/// Which observers to attach at construction — the one knob that replaced
/// `with_check`/`with_observers` and the per-observer setters. Build with
/// the chainable setters; `Default` is all-off (no observers, zero-cost
/// hot path).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ObserverConfig {
    /// Dynamic coherence checking level.
    pub check: CheckLevel,
    /// Structured event tracing level.
    pub trace: TraceLevel,
    /// Static workload analysis level (runner pre-pass).
    pub analyze: AnalyzeLevel,
}

impl ObserverConfig {
    /// Set the coherence-checking level.
    pub fn check(mut self, level: CheckLevel) -> Self {
        self.check = level;
        self
    }

    /// Set the tracing level.
    pub fn trace(mut self, level: TraceLevel) -> Self {
        self.trace = level;
        self
    }

    /// Set the static-analysis level.
    pub fn analyze(mut self, level: AnalyzeLevel) -> Self {
        self.analyze = level;
        self
    }
}

/// The composable observer bus: owns the registered observers and fans
/// each emitted event out to those that want events. Emission helpers are
/// the *single* construction site of each [`ProtocolEvent`] variant.
///
/// The two built-in event consumers live in *typed slots* rather than the
/// `dyn` vector: the common single-observer configurations (`--check` or
/// `--trace` alone, and both together) then dispatch statically — no
/// vtable load, and the observer bodies can inline into the fan-out
/// (DESIGN.md §6). Custom observers still go through `dyn` in `others`.
/// Fan-out order is fixed: checker, then tracer, then `others` in
/// registration order — observers are pure (see the module docs), so the
/// order is unobservable in simulated results; the equivalence tests pin
/// this.
#[derive(Default)]
pub struct ObserverHub {
    /// Typed fast slot for the first registered [`CoherenceChecker`].
    checker: Option<Box<CoherenceChecker>>,
    /// Typed fast slot for the first registered [`Tracer`].
    tracer: Option<Box<Tracer>>,
    /// Everything else (custom observers, duplicate built-ins).
    others: Vec<Box<dyn MachineObserver>>,
    /// Cached `any(wants_events)` — the empty-hub fast path.
    events: bool,
}

impl ObserverHub {
    /// Build the hub an [`ObserverConfig`] describes. `base` is the
    /// machine's counter snapshot at attach time (the checker reconciles
    /// against the delta from this point).
    pub(crate) fn from_config(oc: ObserverConfig, base: Counters) -> Self {
        let mut hub = ObserverHub::default();
        if oc.check != CheckLevel::Off {
            hub.register(Box::new(CoherenceChecker::new(oc.check, base)));
        }
        if oc.trace != TraceLevel::Off {
            hub.register(Box::new(Tracer::new(oc.trace)));
        }
        if oc.analyze != AnalyzeLevel::Off {
            hub.register(Box::new(AnalyzeGate::new(oc.analyze)));
        }
        hub
    }

    /// Attach an observer. The first checker and the first tracer land in
    /// their typed fast slots; anything else joins the `dyn` vector.
    pub fn register(&mut self, observer: Box<dyn MachineObserver>) {
        // `into_any` consumes the box, so type-test with `as_any` first.
        if self.checker.is_none() && observer.as_any().is::<CoherenceChecker>() {
            self.checker = observer.into_any().downcast().ok();
        } else if self.tracer.is_none() && observer.as_any().is::<Tracer>() {
            self.tracer = observer.into_any().downcast().ok();
        } else {
            self.others.push(observer);
        }
        self.recompute_events();
    }

    /// Re-derive the cached `any(wants_events)` flag.
    fn recompute_events(&mut self) {
        // Both built-in slot types consume events (`wants_events` default).
        self.events = self.checker.is_some()
            || self.tracer.is_some()
            || self.others.iter().any(|o| o.wants_events());
    }

    /// Is any registered observer consuming events? The engine gates
    /// event-only bookkeeping (queue-depth sampling, source/hop tagging)
    /// behind this.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.events
    }

    /// Is anything registered at all (event consumer or not)?
    pub fn is_empty(&self) -> bool {
        self.checker.is_none() && self.tracer.is_none() && self.others.is_empty()
    }

    /// The first registered observer of concrete type `T`, if any.
    pub fn get<T: MachineObserver>(&self) -> Option<&T> {
        self.checker
            .as_deref()
            .and_then(|c| (c as &dyn Any).downcast_ref::<T>())
            .or_else(|| {
                self.tracer
                    .as_deref()
                    .and_then(|t| (t as &dyn Any).downcast_ref::<T>())
            })
            .or_else(|| {
                self.others
                    .iter()
                    .find_map(|o| o.as_any().downcast_ref::<T>())
            })
    }

    /// Mutable access to the first observer of type `T`.
    pub fn get_mut<T: MachineObserver>(&mut self) -> Option<&mut T> {
        if let Some(c) = self.checker.as_deref_mut() {
            if let Some(t) = (c as &mut dyn Any).downcast_mut::<T>() {
                return Some(t);
            }
        }
        if let Some(tr) = self.tracer.as_deref_mut() {
            if let Some(t) = (tr as &mut dyn Any).downcast_mut::<T>() {
                return Some(t);
            }
        }
        self.others
            .iter_mut()
            .find_map(|o| o.as_any_mut().downcast_mut::<T>())
    }

    /// Detach and return the first observer of type `T` (sweep drivers
    /// take the tracer to serialize it per job).
    pub fn take<T: MachineObserver>(&mut self) -> Option<Box<T>> {
        let taken = if self
            .checker
            .as_deref()
            .is_some_and(|c| (c as &dyn Any).is::<T>())
        {
            (self.checker.take().expect("checked") as Box<dyn Any>)
                .downcast::<T>()
                .ok()
        } else if self
            .tracer
            .as_deref()
            .is_some_and(|t| (t as &dyn Any).is::<T>())
        {
            (self.tracer.take().expect("checked") as Box<dyn Any>)
                .downcast::<T>()
                .ok()
        } else {
            let idx = self.others.iter().position(|o| o.as_any().is::<T>())?;
            self.others.remove(idx).into_any().downcast::<T>().ok()
        };
        self.recompute_events();
        taken
    }

    /// Fan one event out (the outlined slow path of every emitter). The
    /// typed slots dispatch statically; only `others` goes through `dyn`.
    fn emit(&mut self, time: SimTime, line: u64, event: &ProtocolEvent<'_>) {
        if let Some(c) = self.checker.as_deref_mut() {
            c.on_event(time, line, event);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            t.on_event(time, line, event);
        }
        for o in &mut self.others {
            if o.wants_events() {
                o.on_event(time, line, event);
            }
        }
    }

    // ------------------------------------------------------------------
    // Emission helpers — one per variant, each the variant's only
    // construction site. All are a single flag test when the hub has no
    // event consumer.
    // ------------------------------------------------------------------

    /// Emit [`ProtocolEvent::Issue`].
    #[inline]
    pub(crate) fn issue(&mut self, time: SimTime, line: u64, op: char) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::Issue { op });
        }
    }

    /// Emit [`ProtocolEvent::Serve`].
    #[inline]
    pub(crate) fn serve(
        &mut self,
        time: SimTime,
        line: u64,
        op: char,
        src: char,
        hops: u32,
        latency_ps: SimTime,
    ) {
        if self.events {
            self.emit(
                time,
                line,
                &ProtocolEvent::Serve {
                    op,
                    src,
                    hops,
                    latency_ps,
                },
            );
        }
    }

    /// Emit [`ProtocolEvent::Dir`] for an entry already in its
    /// post-transition state.
    #[inline]
    pub(crate) fn dir_transition(
        &mut self,
        time: SimTime,
        line: u64,
        from: char,
        proto: ProtoEvent,
        entry: &DirEntry,
        counted: bool,
    ) {
        if self.events {
            self.emit(
                time,
                line,
                &ProtocolEvent::Dir {
                    from,
                    proto,
                    entry,
                    counted,
                },
            );
        }
    }

    /// Emit [`ProtocolEvent::Hop`].
    #[inline]
    pub(crate) fn hop(&mut self, time: SimTime, line: u64, leg: char, hops: u32) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::Hop { leg, hops });
        }
    }

    /// Emit [`ProtocolEvent::DevEnter`].
    #[inline]
    pub(crate) fn dev_enter(&mut self, time: SimTime, line: u64, dev: u8, write: bool, depth: u32) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::DevEnter { dev, write, depth });
        }
    }

    /// Emit [`ProtocolEvent::DevLeave`].
    #[inline]
    pub(crate) fn dev_leave(&mut self, time: SimTime, line: u64, dev: u8) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::DevLeave { dev });
        }
    }

    /// Emit [`ProtocolEvent::Mcache`].
    #[inline]
    pub(crate) fn mcache(&mut self, time: SimTime, line: u64, edc: u8, hit: bool) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::Mcache { edc, hit });
        }
    }

    /// Emit [`ProtocolEvent::Inv`].
    #[inline]
    pub(crate) fn inv(&mut self, time: SimTime, line: u64, n: u32) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::Inv { n });
        }
    }

    /// Emit [`ProtocolEvent::Writeback`].
    #[inline]
    pub(crate) fn writeback(&mut self, time: SimTime, line: u64, external: bool) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::Writeback { external });
        }
    }

    /// Emit [`ProtocolEvent::Mark`] (line-less).
    #[inline]
    pub(crate) fn mark(&mut self, time: SimTime, id: u32, start: bool) {
        if self.events {
            self.emit(time, 0, &ProtocolEvent::Mark { id, start });
        }
    }

    /// Emit [`ProtocolEvent::CoherentRead`].
    #[inline]
    pub(crate) fn coherent_read(&mut self, time: SimTime, line: u64, from_memory: bool) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::CoherentRead { from_memory });
        }
    }

    /// Emit [`ProtocolEvent::NtStore`].
    #[inline]
    pub(crate) fn nt_store(&mut self, time: SimTime, line: u64) {
        if self.events {
            self.emit(time, line, &ProtocolEvent::NtStore);
        }
    }

    // ------------------------------------------------------------------
    // Lifecycle fan-out
    // ------------------------------------------------------------------

    /// Forward a thread-context switch.
    #[inline]
    pub(crate) fn set_thread(&mut self, thread: u32) {
        if self.events {
            if let Some(c) = self.checker.as_deref_mut() {
                MachineObserver::set_thread(c, thread);
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                MachineObserver::set_thread(t, thread);
            }
            for o in &mut self.others {
                o.set_thread(thread);
            }
        }
    }

    /// Forward a tile-context switch.
    #[inline]
    pub(crate) fn set_tile(&mut self, tile: u16) {
        if self.events {
            if let Some(c) = self.checker.as_deref_mut() {
                MachineObserver::set_tile(c, tile);
            }
            if let Some(t) = self.tracer.as_deref_mut() {
                MachineObserver::set_tile(t, tile);
            }
            for o in &mut self.others {
                o.set_tile(tile);
            }
        }
    }

    /// Forward a cache/directory reset.
    pub(crate) fn on_reset(&mut self) {
        if let Some(c) = self.checker.as_deref_mut() {
            MachineObserver::on_reset(c);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            MachineObserver::on_reset(t);
        }
        for o in &mut self.others {
            o.on_reset();
        }
    }

    /// Forward a run start (analyzer pre-pass).
    pub(crate) fn on_run_start(&mut self, programs: &[Program], initial_flags: &[(u64, u64)]) {
        if let Some(c) = self.checker.as_deref_mut() {
            MachineObserver::on_run_start(c, programs, initial_flags);
        }
        if let Some(t) = self.tracer.as_deref_mut() {
            MachineObserver::on_run_start(t, programs, initial_flags);
        }
        for o in &mut self.others {
            o.on_run_start(programs, initial_flags);
        }
    }

    /// Forward end-of-run verification.
    pub(crate) fn finish(&self, counters: &Counters) {
        if let Some(c) = self.checker.as_deref() {
            MachineObserver::finish(c, counters);
        }
        if let Some(t) = self.tracer.as_deref() {
            MachineObserver::finish(t, counters);
        }
        for o in &self.others {
            o.finish(counters);
        }
    }
}

/// The analyzer's runtime enforcement as an observer: a pure pre-pass on
/// [`MachineObserver::on_run_start`], never consulted on the event hot
/// path (`wants_events` is false, so an analyze-only machine keeps the
/// empty-hub fast path).
pub struct AnalyzeGate {
    level: AnalyzeLevel,
}

impl AnalyzeGate {
    /// Gate at `level` (findings at `Error` severity panic; lower
    /// severities print per the level).
    pub fn new(level: AnalyzeLevel) -> Self {
        assert_ne!(level, AnalyzeLevel::Off, "use no gate instead of Off");
        AnalyzeGate { level }
    }

    /// The enforcement level.
    pub fn level(&self) -> AnalyzeLevel {
        self.level
    }
}

impl MachineObserver for AnalyzeGate {
    fn wants_events(&self) -> bool {
        false
    }

    fn on_event(&mut self, _time: SimTime, _line: u64, _event: &ProtocolEvent<'_>) {}

    fn on_run_start(&mut self, programs: &[Program], initial_flags: &[(u64, u64)]) {
        crate::analyze::analyze(programs, initial_flags).enforce(self.level);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl MachineObserver for CoherenceChecker {
    fn on_event(&mut self, _time: SimTime, line: u64, event: &ProtocolEvent<'_>) {
        match *event {
            ProtocolEvent::Dir {
                proto,
                entry,
                counted,
                ..
            } => self.on_transition(line, proto, entry, counted),
            ProtocolEvent::CoherentRead { from_memory } => self.observe_read(line, from_memory),
            ProtocolEvent::NtStore => self.on_nt_store(line),
            // Directory-implied write-backs are inferred from `Dir`
            // transitions; only the mcache victim evictions need notice.
            ProtocolEvent::Writeback { external: true } => self.note_external_writeback(),
            _ => {}
        }
    }

    fn on_reset(&mut self) {
        CoherenceChecker::on_reset(self);
    }

    fn finish(&self, counters: &Counters) {
        CoherenceChecker::finish(self, counters);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

impl MachineObserver for Tracer {
    fn on_event(&mut self, time: SimTime, line: u64, event: &ProtocolEvent<'_>) {
        let kind = match *event {
            ProtocolEvent::Issue { op } => EventKind::Issue { op },
            ProtocolEvent::Serve {
                op,
                src,
                hops,
                latency_ps,
            } => EventKind::Serve {
                op,
                src,
                hops,
                latency_ps,
            },
            ProtocolEvent::Dir {
                from,
                entry,
                counted,
                ..
            } => {
                // State preparation is timing-free and never traced.
                if !counted {
                    return;
                }
                let forwarder = match &entry.state {
                    GlobalState::Uncached => NO_TILE,
                    GlobalState::Exclusive { owner } | GlobalState::Modified { owner } => owner.0,
                    GlobalState::Shared { forward } => forward.map_or(NO_TILE, |t| t.0),
                };
                EventKind::Dir {
                    from,
                    to: gstate_tag(&entry.state),
                    forwarder,
                    sharers: entry.num_holders() as u16,
                }
            }
            ProtocolEvent::Hop { leg, hops } => EventKind::Hop { leg, hops },
            ProtocolEvent::DevEnter { dev, write, depth } => {
                EventKind::DevEnter { dev, write, depth }
            }
            ProtocolEvent::DevLeave { dev } => EventKind::DevLeave { dev },
            ProtocolEvent::Mcache { edc, hit } => EventKind::Mcache { edc, hit },
            ProtocolEvent::Inv { n } => EventKind::Inv { n },
            ProtocolEvent::Writeback { .. } => EventKind::Writeback,
            ProtocolEvent::Mark { id, start } => EventKind::Mark { id, start },
            // Checker-oracle events; not part of the trace format.
            ProtocolEvent::CoherentRead { .. } | ProtocolEvent::NtStore => return,
        };
        self.record(time, line, kind);
    }

    fn set_thread(&mut self, thread: u32) {
        Tracer::set_thread(self, thread);
    }

    fn set_tile(&mut self, tile: u16) {
        Tracer::set_tile(self, tile);
    }

    fn as_any(&self) -> &dyn Any {
        self
    }
    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
    fn into_any(self: Box<Self>) -> Box<dyn Any> {
        self
    }
}

/// Directory global-state tag for trace events (`U`/`E`/`M`/`S`).
pub(crate) fn gstate_tag(s: &GlobalState) -> char {
    match s {
        GlobalState::Uncached => 'U',
        GlobalState::Exclusive { .. } => 'E',
        GlobalState::Modified { .. } => 'M',
        GlobalState::Shared { .. } => 'S',
    }
}

/// Trace source tag for a [`ServedBy`] provenance.
pub(crate) fn src_tag(served: ServedBy) -> char {
    match served {
        ServedBy::L1 => 'L',
        ServedBy::TileL2(_) => 'T',
        ServedBy::RemoteCache { state, .. } => state.letter(),
        ServedBy::Memory(MemTarget::Ddr { .. }) => 'D',
        ServedBy::Memory(MemTarget::Mcdram { .. }) => 'C',
        ServedBy::McacheHit { .. } => 'H',
        ServedBy::Posted => 'N',
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::machine::{AccessKind, Machine};
    use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, NumaKind};

    fn ddr_addr(m: &Machine) -> u64 {
        let mut a = m.arena();
        a.alloc(NumaKind::Ddr, 4096)
    }

    #[test]
    fn empty_hub_reports_disabled() {
        let hub = ObserverHub::default();
        assert!(!hub.enabled());
        assert!(hub.is_empty());
    }

    #[test]
    fn analyze_only_hub_keeps_event_fast_path() {
        // The analyzer gate never consumes events: the hot-path flag stays
        // cold even though an observer is registered.
        let hub = ObserverHub::from_config(
            ObserverConfig::default().analyze(AnalyzeLevel::Info),
            Counters::default(),
        );
        assert!(!hub.enabled());
        assert!(!hub.is_empty());
        assert_eq!(
            hub.get::<AnalyzeGate>().map(|g| g.level()),
            Some(AnalyzeLevel::Info)
        );
    }

    #[test]
    fn hub_get_and_take_by_concrete_type() {
        let mut hub = ObserverHub::from_config(
            ObserverConfig::default()
                .check(CheckLevel::Invariants)
                .trace(TraceLevel::Full),
            Counters::default(),
        );
        assert!(hub.enabled());
        assert!(hub.get::<CoherenceChecker>().is_some());
        assert_eq!(
            hub.get::<Tracer>().map(|t| t.level()),
            Some(TraceLevel::Full)
        );
        let taken = hub.take::<Tracer>().expect("tracer registered");
        assert_eq!(taken.level(), TraceLevel::Full);
        assert!(hub.get::<Tracer>().is_none());
        // The checker still wants events; the fast-path flag survives.
        assert!(hub.enabled());
        hub.take::<CoherenceChecker>().expect("checker registered");
        assert!(!hub.enabled());
    }

    #[test]
    fn checked_machine_matches_unchecked_timing() {
        // CheckLevel must be a pure observer: identical access timings and
        // counters with the oracle on or off.
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
        let mut plain = Machine::new(cfg.clone());
        let mut checked = Machine::with_observer_config(
            cfg,
            ObserverConfig::default().check(CheckLevel::FullOracle),
        );
        plain.set_jitter(0);
        checked.set_jitter(0);
        let mut tp = 0;
        let mut tc = 0;
        for (i, kind) in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Read,
            AccessKind::NtStore,
            AccessKind::Read,
        ]
        .iter()
        .enumerate()
        {
            let c = CoreId((i as u16 % 4) * 2);
            tp = plain.access(c, 4096, *kind, tp).complete;
            tc = checked.access(c, 4096, *kind, tc).complete;
            assert_eq!(tp, tc, "op {i}");
        }
        assert_eq!(plain.counters(), checked.counters());
        checked.finish_check();
    }

    #[test]
    fn traced_machine_matches_untraced_timing() {
        // TraceLevel must be a pure observer: identical access timings and
        // counters with tracing on or off.
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
        let mut plain = Machine::new(cfg.clone());
        let mut traced =
            Machine::with_observer_config(cfg, ObserverConfig::default().trace(TraceLevel::Full));
        plain.set_jitter(0);
        traced.set_jitter(0);
        let mut tp = 0;
        let mut tc = 0;
        for (i, kind) in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Read,
            AccessKind::NtStore,
            AccessKind::Read,
            AccessKind::Write,
        ]
        .iter()
        .enumerate()
        {
            let c = CoreId((i as u16 % 4) * 2);
            tp = plain.access(c, 4096, *kind, tp).complete;
            tc = traced.access(c, 4096, *kind, tc).complete;
            assert_eq!(tp, tc, "op {i}");
        }
        tp = plain.evict_line(CoreId(0), 4096, tp);
        tc = traced.evict_line(CoreId(0), 4096, tc);
        assert_eq!(tp, tc);
        assert_eq!(plain.counters(), traced.counters());
        assert!(!traced
            .tracer()
            .expect("tracer attached")
            .events()
            .is_empty());
    }

    #[test]
    fn remote_serve_traced_with_state_and_hops() {
        use crate::mesif::MesifState;
        use crate::trace::hop_dist;
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut m =
            Machine::with_observer_config(cfg, ObserverConfig::default().trace(TraceLevel::Full));
        m.set_jitter(0);
        let addr = ddr_addr(&m);
        let owner = CoreId(0);
        let reader = CoreId(10);
        let t = m.access(owner, addr, AccessKind::Write, 0).complete;
        let out = m.access(reader, addr, AccessKind::Read, t);
        let holder = match out.served_by {
            ServedBy::RemoteCache { holder, state } => {
                assert_eq!(state, MesifState::Modified);
                holder
            }
            other => panic!("expected remote-cache serve, got {other:?}"),
        };
        let want_hops = hop_dist(
            m.topology().tile_position(reader.tile()),
            m.topology().tile_position(holder),
        );
        let tr = m.tracer().expect("tracer attached");
        let srv = tr
            .events()
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Serve {
                    op: 'R', src, hops, ..
                } => Some((src, hops, e.tile)),
                _ => None,
            })
            .expect("remote read recorded a Serve event");
        assert_eq!(srv.0, 'M', "supplier held the line Modified");
        assert_eq!(srv.1, want_hops);
        assert_eq!(srv.2, reader.tile().0, "stamped with requesting tile");
    }

    #[test]
    fn trace_metrics_reconcile_with_counters() {
        // Every Inv/Writeback/Mcache event the tracer aggregates must match
        // the machine's own hardware counters, at Summary as well as Full.
        for level in [TraceLevel::Summary, TraceLevel::Full] {
            let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
            let mut m = Machine::with_observer_config(cfg, ObserverConfig::default().trace(level));
            m.set_jitter(0);
            let addr = {
                let mut a = m.arena();
                a.alloc(NumaKind::Ddr, 1 << 20)
            };
            let mut t = 0;
            for i in 0..512u64 {
                let c = CoreId((i % 8 * 2) as u16);
                let a = addr + (i % 64) * 64;
                let kind = match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::NtStore,
                };
                t = m.access(c, a, kind, t).complete;
            }
            let ctr = m.counters();
            let tr = m.take_tracer().expect("tracer attached");
            let mm = tr.metrics();
            assert_eq!(mm.invalidations, ctr.invalidations, "{level:?}");
            assert_eq!(mm.writebacks, ctr.writebacks, "{level:?}");
            assert_eq!(mm.mcache_hits, ctr.mcache_hits, "{level:?}");
            assert_eq!(mm.mcache_misses, ctr.mcache_misses, "{level:?}");
            // Every Serve lands in exactly one histogram and one tile row,
            // and remote serves reconcile with the remote-hit counter.
            let serves: u64 = mm.tiles.values().map(|s| s.serves).sum();
            let hist_total: u64 = mm.hist.values().map(|h| h.count).sum();
            assert_eq!(serves, hist_total, "{level:?}");
            let remote: u64 = mm.tiles.values().map(|s| s.remote).sum();
            assert_eq!(remote, ctr.remote_cache_hits, "{level:?}");
        }
    }

    #[test]
    fn all_three_observers_match_bare_machine() {
        // The full stack at once — checker, tracer, and analyzer gate —
        // must still be invisible to simulated results.
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache);
        let mut plain = Machine::new(cfg.clone());
        let mut observed = Machine::with_observer_config(
            cfg,
            ObserverConfig::default()
                .check(CheckLevel::FullOracle)
                .trace(TraceLevel::Full)
                .analyze(AnalyzeLevel::Error),
        );
        plain.set_jitter(0);
        observed.set_jitter(0);
        let mut tp = 0;
        let mut to = 0;
        for i in 0..64u64 {
            let c = CoreId((i % 8 * 2) as u16);
            let a = 4096 + (i % 16) * 64;
            let kind = match i % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::NtStore,
            };
            tp = plain.access(c, a, kind, tp).complete;
            to = observed.access(c, a, kind, to).complete;
            assert_eq!(tp, to, "op {i}");
        }
        assert_eq!(plain.counters(), observed.counters());
        observed.finish_check();
        assert!(!observed.tracer().unwrap().events().is_empty());
    }
}
