//! The simulation engine, split by concern:
//!
//! * [`observe`] — the event spine: [`observe::ProtocolEvent`], the
//!   [`observe::MachineObserver`] trait, and the [`observe::ObserverHub`]
//!   that fans each event out to the registered observers (coherence
//!   checker, tracer/metrics, analyzer gate).
//! * [`serve`] — the coherent protocol paths: single-line reads, writes
//!   (RFO), NT stores, the memory/mcache flows, fills and evictions.
//! * [`transfer`] — bulk data movement: cached copy/read buffers and the
//!   bounded-MLP streaming kernels.
//!
//! [`crate::machine::Machine`] is the facade tying these together; every
//! module here implements methods on it.

pub mod observe;
pub(crate) mod serve;
pub(crate) mod transfer;
