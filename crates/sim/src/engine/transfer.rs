//! Bulk data movement: cached copy/read buffers (core-to-core transfer
//! benchmarks, Table I) and bounded-MLP streaming kernels (memory
//! bandwidth, Table II / Fig. 9). Observable actions route through the
//! [`crate::engine::observe::ObserverHub`] exactly like the single-line
//! protocol paths in [`crate::engine::serve`].

use crate::engine::observe::src_tag;
use crate::machine::{AccessKind, Machine};
use crate::trace::hop_dist;
use crate::SimTime;
use knl_arch::{CoreId, LINE_SHIFT};

/// State carried across the chunks of one streaming kernel: rings of
/// outstanding load/store completions implementing bounded MLP.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    load_ring: Vec<SimTime>,
    load_idx: usize,
    nt_ring: Vec<SimTime>,
    nt_idx: usize,
    last_issue: SimTime,
}

impl StreamState {
    fn gate_load(&mut self, ov: usize, issue: SimTime) -> SimTime {
        if self.load_ring.len() < ov {
            self.load_ring.push(0);
        }
        let slot = self.load_idx % self.load_ring.len().max(1);
        self.load_idx += 1;
        issue.max(self.load_ring[slot])
    }

    fn record_load(&mut self, complete: SimTime) {
        let slot = (self.load_idx - 1) % self.load_ring.len().max(1);
        self.load_ring[slot] = complete;
    }

    fn gate_nt(&mut self, ov: usize, issue: SimTime) -> SimTime {
        if self.nt_ring.len() < ov {
            self.nt_ring.push(0);
        }
        let slot = self.nt_idx % self.nt_ring.len().max(1);
        self.nt_idx += 1;
        issue.max(self.nt_ring[slot])
    }

    fn record_nt(&mut self, accept: SimTime) {
        let slot = (self.nt_idx - 1) % self.nt_ring.len().max(1);
        self.nt_ring[slot] = accept;
    }

    /// Time when every outstanding request has completed.
    fn drain_time(&self) -> SimTime {
        let l = self.load_ring.iter().copied().max().unwrap_or(0);
        let n = self.nt_ring.iter().copied().max().unwrap_or(0);
        l.max(n)
    }
}

impl Machine {
    /// Copy `bytes` from `src` to `dst` through the cache hierarchy,
    /// overlapping up to the copy MLP cap.
    pub fn copy_buf(
        &mut self,
        core: CoreId,
        src: u64,
        dst: u64,
        bytes: u64,
        vectorized: bool,
        now: SimTime,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let ov = if vectorized {
            t.ov_c2c_copy_vec
        } else {
            t.ov_c2c_copy_scalar
        } as usize;
        let lines = knl_arch::lines_for(bytes);
        let mut ring: Vec<SimTime> = vec![now; ov.max(1)];
        let mut issue = now;
        let mut done = now;
        for i in 0..lines {
            let slot = (i as usize) % ring.len();
            let gated = issue.max(ring[slot]);
            let r = self.access(core, src + i * 64, AccessKind::Read, gated);
            // The local store is buffered; it costs a write access that is
            // overlapped with subsequent reads, so only its ownership fetch
            // (first touch) shows up via the cache state.
            let w = self.access(core, dst + i * 64, AccessKind::Write, r.complete);
            ring[slot] = r.complete;
            done = w.complete;
            issue += t.issue_gap_ps;
        }
        done
    }

    /// Read `bytes` from `src` into registers (no destination buffer),
    /// overlapping up to the read MLP cap.
    pub fn read_buf(
        &mut self,
        core: CoreId,
        src: u64,
        bytes: u64,
        vectorized: bool,
        now: SimTime,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let ov = if vectorized {
            t.ov_c2c_read_vec
        } else {
            t.ov_c2c_read_scalar
        } as usize;
        let lines = knl_arch::lines_for(bytes);
        let mut ring: Vec<SimTime> = vec![now; ov.max(1)];
        let mut issue = now;
        let mut done = now;
        for i in 0..lines {
            let slot = (i as usize) % ring.len();
            let gated = issue.max(ring[slot]);
            let r = self.access(core, src + i * 64, AccessKind::Read, gated);
            ring[slot] = r.complete;
            done = done.max(r.complete);
            issue += t.issue_gap_ps;
        }
        done
    }

    /// Stream up to `max_lines` lines of a memory kernel starting at line
    /// offset `start_line` within the kernel's buffers, stopping early when
    /// the issue frontier passes `deadline` (the runner's time slice, which
    /// bounds how far out of order device arrivals can be). Coherence
    /// bookkeeping is bypassed (fresh lines, no reuse); device queueing and
    /// the memory-side cache are fully modelled.
    ///
    /// Returns `(time, lines_done)`: when the kernel finished (`lines_done
    /// == max_lines`), `time` is the drain time of all outstanding requests;
    /// otherwise it is the issue frontier where the slice stopped.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_chunk(
        &mut self,
        core: CoreId,
        kind: crate::ops::StreamKind,
        a: u64,
        b: u64,
        c: u64,
        start_line: u64,
        max_lines: u64,
        vectorized: bool,
        state: &mut StreamState,
        now: SimTime,
        deadline: SimTime,
    ) -> (SimTime, u64) {
        self.stream_chunk_shared(
            core, kind, a, b, c, start_line, max_lines, vectorized, state, now, deadline, 1,
        )
    }

    /// [`Machine::stream_chunk`] with `core_threads` HyperThreads sharing
    /// the core: MLP caps and issue bandwidth are divided among co-resident
    /// threads (they share MSHRs and load ports).
    #[allow(clippy::too_many_arguments)]
    pub fn stream_chunk_shared(
        &mut self,
        core: CoreId,
        kind: crate::ops::StreamKind,
        a: u64,
        b: u64,
        c: u64,
        start_line: u64,
        max_lines: u64,
        vectorized: bool,
        state: &mut StreamState,
        now: SimTime,
        deadline: SimTime,
        core_threads: u32,
    ) -> (SimTime, u64) {
        use crate::ops::StreamKind::*;
        let t = self.cfg.timing.clone();
        let share = core_threads.max(1);
        let ov_load = ((if vectorized {
            t.ov_mem_vec
        } else {
            t.ov_mem_scalar
        }) / share)
            .max(1) as usize;
        let ov_nt = (t.max_nt_outstanding / share).max(1) as usize;
        let issue_gap = t.issue_gap_ps * share as u64;
        let tile = core.tile();
        let req_pos = self.topo.tile_position(tile);
        self.hub.set_tile(tile.0);
        state.last_issue = state.last_issue.max(now);
        let mut lines_done = 0u64;
        for i in start_line..start_line + max_lines {
            state.last_issue += issue_gap;
            let issue = state.last_issue;
            match kind {
                Read => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                }
                Write => {
                    self.stream_nt(a + i * 64, req_pos, ov_nt, issue, state);
                }
                Copy => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                    self.stream_nt(a + i * 64, req_pos, ov_nt, issue, state);
                }
                Triad => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                    state.last_issue += issue_gap;
                    self.stream_load(c + i * 64, req_pos, ov_load, state.last_issue, state);
                    self.stream_nt(a + i * 64, req_pos, ov_nt, state.last_issue, state);
                }
            }
            lines_done += 1;
            if state.last_issue > deadline {
                break;
            }
        }
        if lines_done == max_lines {
            (state.drain_time().max(state.last_issue), lines_done)
        } else {
            (state.last_issue, lines_done)
        }
    }

    fn stream_load(
        &mut self,
        addr: u64,
        req_pos: (i32, i32),
        ov: usize,
        issue: SimTime,
        state: &mut StreamState,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let gated = state.gate_load(ov, issue);
        // The issue frontier tracks real issue times so MLP backpressure
        // throttles the stream (and slice deadlines stay meaningful).
        state.last_issue = state.last_issue.max(gated);
        let line = addr >> LINE_SHIFT;
        let home = self.map.home_directory(addr);
        let home_pos = self.topo.tile_position(home);
        let t_svc =
            self.mesh
                .traverse(req_pos, home_pos, gated + t.l2_miss_detect_ps + t.inject_ps)
                + t.cha_lookup_ps;
        let (ready, served) = self.memory_read(addr, line, home_pos, t_svc);
        let served_pos = self.served_pos(served);
        let complete = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps) + t.fill_ps;
        let complete = gated + self.jitter(complete - gated, line);
        if self.hub.enabled() {
            self.hub.serve(
                complete,
                line,
                'R',
                src_tag(served),
                hop_dist(req_pos, served_pos),
                complete - gated,
            );
        }
        state.record_load(complete);
        complete
    }

    fn stream_nt(
        &mut self,
        addr: u64,
        req_pos: (i32, i32),
        ov: usize,
        issue: SimTime,
        state: &mut StreamState,
    ) -> SimTime {
        let gated = state.gate_nt(ov, issue);
        state.last_issue = state.last_issue.max(gated);
        let line = addr >> LINE_SHIFT;
        self.counters.nt_stores += 1;
        let accept = self.memory_write(addr, line, req_pos, gated);
        state.record_nt(accept);
        // The core moves on immediately; the gate above models WC-buffer
        // backpressure.
        gated.max(issue)
    }
}

#[cfg(test)]
mod tests {
    use super::StreamState;
    use crate::machine::Machine;
    use crate::mesif::MesifState;
    use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, NumaKind, Schedule};

    fn machine(cm: ClusterMode, mm: MemoryMode) -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(cm, mm));
        m.set_jitter(0);
        m
    }

    #[test]
    fn stream_read_ddr_saturates_near_77gbps() {
        // 32 cores streaming reads concurrently (via the runner, which
        // interleaves chunks in time order): aggregate must approach the
        // 77 GB/s DDR peak.
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let lines_per_core = 4096u64;
        let progs: Vec<crate::program::Program> = (0..32usize)
            .map(|i| {
                let core = Schedule::FillTiles.core(i, 64);
                let mut p = crate::program::Program::on_core(core);
                p.push(crate::ops::Op::Stream {
                    kind: crate::ops::StreamKind::Read,
                    a: 0,
                    b: (i as u64) * (1 << 22),
                    c: 0,
                    lines: lines_per_core,
                    vectorized: true,
                });
                p
            })
            .collect();
        let r = crate::runner::run_programs(&mut m, progs);
        let bytes = 32 * lines_per_core * 64;
        let gbps = (bytes as f64 / 1e9) / (r.end_time as f64 / 1e12);
        assert!(
            (55.0..85.0).contains(&gbps),
            "aggregate DDR read {gbps} GB/s"
        );
    }

    #[test]
    fn single_thread_mem_read_near_8gbps() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut st = StreamState::default();
        let (done, n) = m.stream_chunk(
            CoreId(0),
            crate::ops::StreamKind::Read,
            0,
            0,
            0,
            0,
            8192,
            true,
            &mut st,
            0,
            u64::MAX,
        );
        assert_eq!(n, 8192);
        let gbps = (8192.0 * 64.0 / 1e9) / (done as f64 / 1e12);
        assert!(
            (5.0..11.0).contains(&gbps),
            "single-thread DDR read {gbps} GB/s"
        );
    }

    #[test]
    fn stream_chunk_respects_deadline() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut st = StreamState::default();
        let (t, n) = m.stream_chunk(
            CoreId(0),
            crate::ops::StreamKind::Read,
            0,
            0,
            0,
            0,
            1_000_000,
            true,
            &mut st,
            0,
            100_000, // 100 ns slice
        );
        assert!(n < 1_000_000, "slice must stop early, did {n} lines");
        assert!(
            (100_000..400_000).contains(&t),
            "frontier near deadline: {t}"
        );
    }

    #[test]
    fn mcdram_stream_faster_than_ddr_aggregate() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut arena = m.arena();
        let mc = arena.alloc(NumaKind::Mcdram, 64 << 20);
        let run = |m: &mut Machine, base: u64| -> f64 {
            m.reset_devices();
            m.reset_caches();
            let lines = 2048u64;
            let progs: Vec<crate::program::Program> = (0..64usize)
                .map(|i| {
                    let core = Schedule::FillTiles.core(i, 64);
                    let mut p = crate::program::Program::on_core(core);
                    p.push(crate::ops::Op::Stream {
                        kind: crate::ops::StreamKind::Read,
                        a: 0,
                        b: base + (i as u64) * lines * 64,
                        c: 0,
                        lines,
                        vectorized: true,
                    });
                    p
                })
                .collect();
            let r = crate::runner::run_programs(m, progs);
            (64.0 * 2048.0 * 64.0 / 1e9) / (r.end_time as f64 / 1e12)
        };
        let ddr = run(&mut m, 0);
        let mcd = run(&mut m, mc);
        assert!(mcd > 2.0 * ddr, "MCDRAM {mcd} must be well above DDR {ddr}");
    }

    #[test]
    fn copy_buf_remote_bandwidth_band() {
        // Table I: remote copy ≈ 7.5 GB/s single-thread.
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(20);
        let reader = CoreId(0);
        let bytes = 64 * 1024u64;
        let src = 1 << 20;
        let dst = 8 << 20;
        for l in 0..knl_arch::lines_for(bytes) {
            m.prepare_line(owner, src + l * 64, MesifState::Modified);
        }
        let done = m.copy_buf(reader, src, dst, bytes, true, 0);
        let gbps = (bytes as f64 / 1e9) / (done as f64 / 1e12);
        assert!((4.0..12.0).contains(&gbps), "remote copy {gbps} GB/s");
    }
}
