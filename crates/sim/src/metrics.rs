//! Aggregated metrics over the trace event stream.
//!
//! Every event recorded by [`crate::trace::Tracer`] flows through
//! [`Metrics::record`], which maintains
//!
//! * latency histograms keyed by **(source tag, hop distance)** — the
//!   decomposition of the paper's Fig. 4 latency map by supplier MESIF
//!   state and mesh distance,
//! * per-tile serve counts broken down by source class, with time-binned
//!   activity ([`BIN_PS`] bins),
//! * per-device queue statistics (lines in/out, peak and mean estimated
//!   queue depth) with time-binned line counts (→ bandwidth),
//! * a hot-line profile, and
//! * protocol totals (directory transitions by `from→to` pair,
//!   invalidations, write-backs, mcache hits/misses).
//!
//! Metrics serialize to deterministic text lines (all maps iterate in
//! ascending key order or are sorted at serialization time) and merge
//! additively, so per-job sections of a parallel sweep can be
//! re-aggregated by `knl-trace` in any grouping with identical results.
//!
//! The keyed aggregates are [`SortedVecMap`]s — iteration order identical
//! to the `BTreeMap`s they replaced, but with dense binary-search lookups
//! on the per-event record path (DESIGN.md §6). The exception is
//! [`Metrics::hot_lines`]: its keyspace is one entry per distinct line, so
//! it stays a `BTreeMap` (a sorted vec would shift the tail on every new
//! line of a streaming workload).

use crate::svmap::SortedVecMap;
use crate::trace::{EventKind, TraceEvent};
use crate::SimTime;
use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Width of one activity time bin (100 µs of sim time).
pub const BIN_PS: SimTime = 100_000_000;

/// Log₂ latency-histogram bins (bin `k` covers `[2^(k-1), 2^k)` ns).
pub const HIST_BINS: usize = 28;

/// Hot lines retained when serializing (the in-memory profile is exact;
/// the serialized top-N is marked approximate after a merge).
pub const HOT_LINES_TOP: usize = 32;

/// One latency histogram: moments plus log₂ ns bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hist {
    /// Samples recorded.
    pub count: u64,
    /// Sum of latencies (ps).
    pub sum_ps: u64,
    /// Minimum latency (ps).
    pub min_ps: u64,
    /// Maximum latency (ps).
    pub max_ps: u64,
    /// Log₂ bins over nanoseconds.
    pub bins: [u64; HIST_BINS],
}

impl Default for Hist {
    fn default() -> Self {
        Hist {
            count: 0,
            sum_ps: 0,
            min_ps: u64::MAX,
            max_ps: 0,
            bins: [0; HIST_BINS],
        }
    }
}

fn bin_of(ps: u64) -> usize {
    let ns = ps / 1000;
    ((u64::BITS - ns.leading_zeros()) as usize).min(HIST_BINS - 1)
}

impl Hist {
    /// Record one latency sample.
    pub fn add(&mut self, ps: SimTime) {
        self.count += 1;
        self.sum_ps += ps;
        self.min_ps = self.min_ps.min(ps);
        self.max_ps = self.max_ps.max(ps);
        self.bins[bin_of(ps)] += 1;
    }

    /// Mean latency in ns (0 when empty).
    pub fn mean_ns(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum_ps as f64 / self.count as f64 / 1000.0
        }
    }

    /// Approximate median in ns: upper edge of the bin holding the
    /// median sample.
    pub fn p50_ns(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = self.count.div_ceil(2);
        let mut seen = 0;
        for (k, &n) in self.bins.iter().enumerate() {
            seen += n;
            if seen >= target {
                return (1u64 << k) as f64;
            }
        }
        self.max_ps as f64 / 1000.0
    }

    /// Merge another histogram into this one.
    pub fn merge(&mut self, o: &Hist) {
        self.count += o.count;
        self.sum_ps += o.sum_ps;
        self.min_ps = self.min_ps.min(o.min_ps);
        self.max_ps = self.max_ps.max(o.max_ps);
        for (a, b) in self.bins.iter_mut().zip(o.bins.iter()) {
            *a += b;
        }
    }
}

/// Per-tile serve counts by source class.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TileStat {
    /// Requests served for cores of this tile.
    pub serves: u64,
    /// …from the core's own L1.
    pub l1: u64,
    /// …from the tile's L2.
    pub l2: u64,
    /// …forwarded from a remote tile's cache.
    pub remote: u64,
    /// …from a memory device (DDR or flat MCDRAM).
    pub mem: u64,
    /// …from the memory-side cache.
    pub mcache: u64,
}

/// Per-device queue statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DevStat {
    /// Lines entering the read path.
    pub reads: u64,
    /// Lines entering the write path.
    pub writes: u64,
    /// Peak estimated queue depth observed at any arrival.
    pub depth_peak: u32,
    /// Sum of observed depths (mean = `depth_sum / (reads + writes)`).
    pub depth_sum: u64,
}

/// Aggregated, mergeable trace metrics.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Latency histograms keyed by (source tag, hop distance).
    pub hist: SortedVecMap<(char, u32), Hist>,
    /// Per-tile serve breakdown.
    pub tiles: SortedVecMap<u16, TileStat>,
    /// Per-device queue statistics.
    pub devices: SortedVecMap<u8, DevStat>,
    /// Lines entering each device per time bin.
    pub dev_bins: SortedVecMap<(u8, u64), u64>,
    /// Serves per tile per time bin.
    pub tile_bins: SortedVecMap<(u16, u64), u64>,
    /// Directory transitions by (from, to) state tag.
    pub dir_transitions: SortedVecMap<(char, char), u64>,
    /// Exact per-line access counts (pruned to a top-N on serialize).
    /// Deliberately still a `BTreeMap`: one key per distinct line makes
    /// this the lone unbounded, insert-heavy keyspace here.
    pub hot_lines: BTreeMap<u64, u64>,
    /// Requests that left a tile for the home CHA.
    pub issues: u64,
    /// Invalidation messages.
    pub invalidations: u64,
    /// Write-backs.
    pub writebacks: u64,
    /// Memory-side cache hits.
    pub mcache_hits: u64,
    /// Memory-side cache misses.
    pub mcache_misses: u64,
    /// Mesh hops crossed (all legs).
    pub mesh_hops: u64,
    /// Events aggregated.
    pub events: u64,
    /// Latest event timestamp.
    pub end_time: SimTime,
}

impl Metrics {
    /// Fold one event into the aggregates.
    pub fn record(&mut self, ev: &TraceEvent) {
        self.events += 1;
        self.end_time = self.end_time.max(ev.time);
        match ev.kind {
            EventKind::Issue { .. } => self.issues += 1,
            EventKind::Serve {
                src,
                hops,
                latency_ps,
                ..
            } => {
                self.hist.entry_or_default((src, hops)).add(latency_ps);
                let t = self.tiles.entry_or_default(ev.tile);
                t.serves += 1;
                match src {
                    'L' => t.l1 += 1,
                    'T' => t.l2 += 1,
                    'M' | 'E' | 'S' | 'F' => t.remote += 1,
                    'H' => t.mcache += 1,
                    _ => t.mem += 1,
                }
                *self.tile_bins.entry_or_default((ev.tile, ev.time / BIN_PS)) += 1;
                *self.hot_lines.entry(ev.line).or_default() += 1;
            }
            EventKind::Dir { from, to, .. } => {
                *self.dir_transitions.entry_or_default((from, to)) += 1;
            }
            EventKind::Hop { hops, .. } => self.mesh_hops += hops as u64,
            EventKind::DevEnter { dev, write, depth } => {
                let d = self.devices.entry_or_default(dev);
                if write {
                    d.writes += 1;
                } else {
                    d.reads += 1;
                }
                d.depth_peak = d.depth_peak.max(depth);
                d.depth_sum += depth as u64;
                *self.dev_bins.entry_or_default((dev, ev.time / BIN_PS)) += 1;
            }
            EventKind::DevLeave { .. } => {}
            EventKind::Mcache { hit, .. } => {
                if hit {
                    self.mcache_hits += 1;
                } else {
                    self.mcache_misses += 1;
                }
            }
            EventKind::Inv { n } => self.invalidations += n as u64,
            EventKind::Writeback => self.writebacks += 1,
            EventKind::Mark { .. } => {}
        }
    }

    /// Merge another aggregation into this one (additive; order-free).
    pub fn merge(&mut self, o: &Metrics) {
        for (k, h) in &o.hist {
            self.hist.entry_or_default(*k).merge(h);
        }
        for (k, t) in &o.tiles {
            let d = self.tiles.entry_or_default(*k);
            d.serves += t.serves;
            d.l1 += t.l1;
            d.l2 += t.l2;
            d.remote += t.remote;
            d.mem += t.mem;
            d.mcache += t.mcache;
        }
        for (k, s) in &o.devices {
            let d = self.devices.entry_or_default(*k);
            d.reads += s.reads;
            d.writes += s.writes;
            d.depth_peak = d.depth_peak.max(s.depth_peak);
            d.depth_sum += s.depth_sum;
        }
        for (k, n) in &o.dev_bins {
            *self.dev_bins.entry_or_default(*k) += n;
        }
        for (k, n) in &o.tile_bins {
            *self.tile_bins.entry_or_default(*k) += n;
        }
        for (k, n) in &o.dir_transitions {
            *self.dir_transitions.entry_or_default(*k) += n;
        }
        for (k, n) in &o.hot_lines {
            *self.hot_lines.entry(*k).or_default() += n;
        }
        self.issues += o.issues;
        self.invalidations += o.invalidations;
        self.writebacks += o.writebacks;
        self.mcache_hits += o.mcache_hits;
        self.mcache_misses += o.mcache_misses;
        self.mesh_hops += o.mesh_hops;
        self.events += o.events;
        self.end_time = self.end_time.max(o.end_time);
    }

    /// Hot lines sorted by (count desc, line asc), truncated to `top`.
    pub fn top_lines(&self, top: usize) -> Vec<(u64, u64)> {
        let mut v: Vec<(u64, u64)> = self.hot_lines.iter().map(|(&l, &n)| (l, n)).collect();
        v.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        v.truncate(top);
        v
    }

    /// Serialize as deterministic metric lines (see the format note in
    /// [`crate::trace`]): `H` histograms, `T` tiles, `D` devices, `B`
    /// device bins, `U` tile bins, `X` directory transitions, `L` hot
    /// lines (top [`HOT_LINES_TOP`]), `C` scalar counters, `Z` trailer.
    pub fn serialize_into(&self, out: &mut String) {
        for ((src, hops), h) in &self.hist {
            let _ = write!(
                out,
                "H {src} {hops} {} {} {} {}",
                h.count, h.sum_ps, h.min_ps, h.max_ps
            );
            let mut bins = String::new();
            for (i, b) in h.bins.iter().enumerate() {
                if i > 0 {
                    bins.push(',');
                }
                let _ = write!(bins, "{b}");
            }
            let _ = writeln!(out, " {bins}");
        }
        for (tile, t) in &self.tiles {
            let _ = writeln!(
                out,
                "T {tile} {} {} {} {} {} {}",
                t.serves, t.l1, t.l2, t.remote, t.mem, t.mcache
            );
        }
        for (dev, d) in &self.devices {
            let _ = writeln!(
                out,
                "D {dev} {} {} {} {}",
                d.reads, d.writes, d.depth_peak, d.depth_sum
            );
        }
        for ((dev, bin), n) in &self.dev_bins {
            let _ = writeln!(out, "B {dev} {bin} {n}");
        }
        for ((tile, bin), n) in &self.tile_bins {
            let _ = writeln!(out, "U {tile} {bin} {n}");
        }
        for ((from, to), n) in &self.dir_transitions {
            let _ = writeln!(out, "X {from} {to} {n}");
        }
        for (line, n) in self.top_lines(HOT_LINES_TOP) {
            let _ = writeln!(out, "L {line:x} {n}");
        }
        let _ = writeln!(out, "C issues {}", self.issues);
        let _ = writeln!(out, "C inv {}", self.invalidations);
        let _ = writeln!(out, "C wb {}", self.writebacks);
        let _ = writeln!(out, "C mc_hit {}", self.mcache_hits);
        let _ = writeln!(out, "C mc_miss {}", self.mcache_misses);
        let _ = writeln!(out, "C hops {}", self.mesh_hops);
        let _ = writeln!(out, "Z {} {}", self.events, self.end_time);
    }

    /// Parse one metric line, merging it into `self`. Returns `false` for
    /// lines that are not metric lines (events, comments, garbage).
    pub fn parse_line(&mut self, line: &str) -> bool {
        let mut it = line.split_ascii_whitespace();
        let Some(tag) = it.next() else { return false };
        let mut parse = || -> Option<()> {
            let mut it = line.split_ascii_whitespace().skip(1);
            match tag {
                "H" => {
                    let src = it.next()?.chars().next()?;
                    let hops: u32 = it.next()?.parse().ok()?;
                    let mut h = Hist {
                        count: it.next()?.parse().ok()?,
                        sum_ps: it.next()?.parse().ok()?,
                        min_ps: it.next()?.parse().ok()?,
                        max_ps: it.next()?.parse().ok()?,
                        bins: [0; HIST_BINS],
                    };
                    for (i, b) in it.next()?.split(',').enumerate() {
                        if i >= HIST_BINS {
                            return None;
                        }
                        h.bins[i] = b.parse().ok()?;
                    }
                    self.hist.entry_or_default((src, hops)).merge(&h);
                }
                "T" => {
                    let tile: u16 = it.next()?.parse().ok()?;
                    let vals: Vec<u64> = it.map(|v| v.parse().unwrap_or(0)).collect();
                    if vals.len() != 6 {
                        return None;
                    }
                    let d = self.tiles.entry_or_default(tile);
                    d.serves += vals[0];
                    d.l1 += vals[1];
                    d.l2 += vals[2];
                    d.remote += vals[3];
                    d.mem += vals[4];
                    d.mcache += vals[5];
                }
                "D" => {
                    let dev: u8 = it.next()?.parse().ok()?;
                    let d = self.devices.entry_or_default(dev);
                    d.reads += it.next()?.parse::<u64>().ok()?;
                    d.writes += it.next()?.parse::<u64>().ok()?;
                    d.depth_peak = d.depth_peak.max(it.next()?.parse().ok()?);
                    d.depth_sum += it.next()?.parse::<u64>().ok()?;
                }
                "B" => {
                    let dev: u8 = it.next()?.parse().ok()?;
                    let bin: u64 = it.next()?.parse().ok()?;
                    *self.dev_bins.entry_or_default((dev, bin)) +=
                        it.next()?.parse::<u64>().ok()?;
                }
                "U" => {
                    let tile: u16 = it.next()?.parse().ok()?;
                    let bin: u64 = it.next()?.parse().ok()?;
                    *self.tile_bins.entry_or_default((tile, bin)) +=
                        it.next()?.parse::<u64>().ok()?;
                }
                "X" => {
                    let from = it.next()?.chars().next()?;
                    let to = it.next()?.chars().next()?;
                    *self.dir_transitions.entry_or_default((from, to)) +=
                        it.next()?.parse::<u64>().ok()?;
                }
                "L" => {
                    let l = u64::from_str_radix(it.next()?, 16).ok()?;
                    *self.hot_lines.entry(l).or_default() += it.next()?.parse::<u64>().ok()?;
                }
                "C" => {
                    let field = it.next()?;
                    let n: u64 = it.next()?.parse().ok()?;
                    match field {
                        "issues" => self.issues += n,
                        "inv" => self.invalidations += n,
                        "wb" => self.writebacks += n,
                        "mc_hit" => self.mcache_hits += n,
                        "mc_miss" => self.mcache_misses += n,
                        "hops" => self.mesh_hops += n,
                        _ => return None,
                    }
                }
                "Z" => {
                    self.events += it.next()?.parse::<u64>().ok()?;
                    self.end_time = self.end_time.max(it.next()?.parse().ok()?);
                }
                _ => return None,
            }
            Some(())
        };
        matches!(tag, "H" | "T" | "D" | "B" | "U" | "X" | "L" | "C" | "Z") && parse().is_some()
    }

    /// Human-readable report (the `knl-trace` default output).
    pub fn report(&self, top: usize) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "== knl trace report ==");
        let _ = writeln!(
            out,
            "events={} issues={} mesh_hops={} end_time={:.3} ms",
            self.events,
            self.issues,
            self.mesh_hops,
            self.end_time as f64 / 1e9
        );
        let _ = writeln!(
            out,
            "inv={} wb={} mcache={}h/{}m",
            self.invalidations, self.writebacks, self.mcache_hits, self.mcache_misses
        );

        if !self.hist.is_empty() {
            let _ = writeln!(out, "\n-- latency by (source, hops) [ns] --");
            let _ = writeln!(
                out,
                "{:<6} {:>4} {:>10} {:>9} {:>9} {:>9} {:>9}",
                "source", "hops", "count", "mean", "p50", "min", "max"
            );
            for ((src, hops), h) in &self.hist {
                let _ = writeln!(
                    out,
                    "{:<6} {:>4} {:>10} {:>9.1} {:>9.1} {:>9.1} {:>9.1}",
                    src_name(*src),
                    hops,
                    h.count,
                    h.mean_ns(),
                    h.p50_ns(),
                    h.min_ps as f64 / 1000.0,
                    h.max_ps as f64 / 1000.0
                );
            }
        }

        if !self.tiles.is_empty() {
            let _ = writeln!(out, "\n-- hot tiles (top {top}) --");
            let _ = writeln!(
                out,
                "{:<5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                "tile", "serves", "l1", "l2", "remote", "mem", "mcache"
            );
            let mut tiles: Vec<(&u16, &TileStat)> = self.tiles.iter().collect();
            tiles.sort_by(|a, b| b.1.serves.cmp(&a.1.serves).then(a.0.cmp(b.0)));
            for (tile, t) in tiles.into_iter().take(top) {
                let _ = writeln!(
                    out,
                    "{:<5} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}",
                    tile, t.serves, t.l1, t.l2, t.remote, t.mem, t.mcache
                );
            }
        }

        if !self.devices.is_empty() {
            let _ = writeln!(out, "\n-- devices --");
            let _ = writeln!(
                out,
                "{:<8} {:>10} {:>10} {:>10} {:>10} {:>12}",
                "device", "reads", "writes", "peak_q", "mean_q", "peak_GB/s"
            );
            for (dev, d) in &self.devices {
                let total = d.reads + d.writes;
                let mean_q = if total == 0 {
                    0.0
                } else {
                    d.depth_sum as f64 / total as f64
                };
                let peak_lines = self
                    .dev_bins
                    .iter()
                    .filter(|((dv, _), _)| dv == dev)
                    .map(|(_, &n)| n)
                    .max()
                    .unwrap_or(0);
                let peak_gbps = peak_lines as f64 * 64.0 / (BIN_PS as f64 / 1e12) / 1e9;
                let _ = writeln!(
                    out,
                    "{:<8} {:>10} {:>10} {:>10} {:>10.1} {:>12.1}",
                    dev_name(*dev),
                    d.reads,
                    d.writes,
                    d.depth_peak,
                    mean_q,
                    peak_gbps
                );
            }
        }

        if !self.dir_transitions.is_empty() {
            let _ = writeln!(out, "\n-- directory transitions --");
            for ((from, to), n) in &self.dir_transitions {
                let _ = writeln!(out, "{from}->{to} {n}");
            }
        }

        let lines = self.top_lines(top);
        if !lines.is_empty() {
            let _ = writeln!(out, "\n-- hot lines (top {top}) --");
            for (line, n) in lines {
                let _ = writeln!(out, "{:#014x} {n}", line << 6);
            }
        }
        out
    }

    /// The latency histogram as CSV (`src,hops,count,mean_ns,...`).
    pub fn latency_csv(&self) -> String {
        let mut out = String::from("source,hops,count,mean_ns,p50_ns,min_ns,max_ns\n");
        for ((src, hops), h) in &self.hist {
            let _ = writeln!(
                out,
                "{},{},{},{:.2},{:.2},{:.2},{:.2}",
                src_name(*src),
                hops,
                h.count,
                h.mean_ns(),
                h.p50_ns(),
                h.min_ps as f64 / 1000.0,
                h.max_ps as f64 / 1000.0
            );
        }
        out
    }
}

/// Human name of a source tag.
pub fn src_name(src: char) -> &'static str {
    match src {
        'L' => "L1",
        'T' => "L2",
        'M' => "c2c-M",
        'E' => "c2c-E",
        'S' => "c2c-S",
        'F' => "c2c-F",
        'D' => "ddr",
        'C' => "mcdram",
        'H' => "mcache",
        _ => "?",
    }
}

/// Human name of a device index (0–5 DDR channels, 6+ EDCs).
pub fn dev_name(dev: u8) -> String {
    if dev < 6 {
        format!("ddr{dev}")
    } else {
        format!("edc{}", dev - 6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::TraceEvent;

    fn serve(time: u64, tile: u16, line: u64, src: char, hops: u32, lat: u64) -> TraceEvent {
        TraceEvent {
            time,
            thread: 0,
            tile,
            line,
            kind: EventKind::Serve {
                op: 'R',
                src,
                hops,
                latency_ps: lat,
            },
        }
    }

    #[test]
    fn histogram_moments() {
        let mut m = Metrics::default();
        m.record(&serve(0, 0, 1, 'M', 4, 100_000));
        m.record(&serve(10, 0, 1, 'M', 4, 120_000));
        m.record(&serve(20, 0, 2, 'E', 4, 80_000));
        let h = &m.hist[&('M', 4)];
        assert_eq!(h.count, 2);
        assert_eq!(h.min_ps, 100_000);
        assert_eq!(h.max_ps, 120_000);
        assert!((h.mean_ns() - 110.0).abs() < 1e-9);
        assert_eq!(m.hist.len(), 2);
        assert_eq!(m.tiles[&0].remote, 3);
        assert_eq!(m.hot_lines[&1], 2);
    }

    #[test]
    fn serialize_parse_merge_round_trip() {
        let mut a = Metrics::default();
        a.record(&serve(1_000, 3, 0x40, 'M', 6, 107_000));
        a.record(&TraceEvent {
            time: 2_000,
            thread: 1,
            tile: 3,
            line: 0x40,
            kind: EventKind::DevEnter {
                dev: 7,
                write: false,
                depth: 5,
            },
        });
        a.record(&TraceEvent {
            time: 2_500,
            thread: 1,
            tile: 3,
            line: 0x40,
            kind: EventKind::Dir {
                from: 'U',
                to: 'E',
                forwarder: 3,
                sharers: 1,
            },
        });
        a.record(&TraceEvent {
            time: 3_000,
            thread: 1,
            tile: 3,
            line: 0x41,
            kind: EventKind::Inv { n: 2 },
        });
        let mut s = String::new();
        a.serialize_into(&mut s);
        let mut b = Metrics::default();
        for line in s.lines() {
            assert!(b.parse_line(line), "unparsed: {line}");
        }
        assert_eq!(a, b);

        // Parsing the same text twice equals merging two copies.
        let mut twice = Metrics::default();
        for line in s.lines().chain(s.lines()) {
            assert!(twice.parse_line(line));
        }
        let mut merged = a.clone();
        merged.merge(&a);
        assert_eq!(twice, merged);
    }

    #[test]
    fn non_metric_lines_rejected() {
        let mut m = Metrics::default();
        assert!(!m.parse_line("# comment"));
        assert!(!m.parse_line("E 1 0 0 40 iss R"));
        assert!(!m.parse_line(""));
        assert!(!m.parse_line("H M"));
        assert_eq!(m, Metrics::default());
    }

    #[test]
    fn report_and_csv_nonempty() {
        let mut m = Metrics::default();
        m.record(&serve(5_000, 1, 0x99, 'S', 3, 55_000));
        let rep = m.report(8);
        assert!(rep.contains("latency by (source, hops)"));
        assert!(rep.contains("c2c-S"));
        let csv = m.latency_csv();
        assert!(csv.starts_with("source,hops,count"));
        assert!(csv.contains("c2c-S,3,1"));
    }

    #[test]
    fn top_lines_order_is_deterministic() {
        let mut m = Metrics::default();
        m.record(&serve(0, 0, 7, 'L', 0, 1_000));
        m.record(&serve(1, 0, 5, 'L', 0, 1_000));
        m.record(&serve(2, 0, 5, 'L', 0, 1_000));
        m.record(&serve(3, 0, 9, 'L', 0, 1_000));
        assert_eq!(m.top_lines(3), vec![(5, 2), (7, 1), (9, 1)]);
    }
}
