//! A dependency-free open-addressed hash map keyed by `u64`, used on the
//! per-access hot path in place of `std::collections::HashMap`.
//!
//! `std`'s map defaults to SipHash-1-3, a keyed hash designed to resist
//! collision flooding from untrusted input. Simulated line addresses are
//! not untrusted input, and the SipHash rounds dominated the directory and
//! memory-side-cache lookups that run on *every* simulated access (see
//! DESIGN.md §6). `LineMap` instead uses Fibonacci (golden-ratio) integer
//! hashing with linear probing over a power-of-two table — the same design
//! point as the well-known `FxHashMap`, specialised to `u64` keys.
//!
//! Determinism: iteration order of the table depends on insertion history,
//! exactly like `HashMap` (minus the per-process random seed). `LineMap`
//! deliberately exposes no iterator; callers that need to walk entries use
//! [`LineMap::sorted_keys`], which is order-stable by construction. This is
//! what makes the replacement behaviour-identical and keeps `knl-lint`'s
//! `hash-collection` rule satisfied.
//!
//! One key value is reserved: `u64::MAX` marks an empty slot. Line
//! addresses are physical addresses shifted right by 6, so the sentinel is
//! unreachable in practice; it is `debug_assert`ed at the API boundary.

/// Reserved key marking an empty slot.
const EMPTY: u64 = u64::MAX;

/// 2^64 / φ, the Fibonacci hashing multiplier.
const PHI: u64 = 0x9E37_79B9_7F4A_7C15;

/// Open-addressed `u64 -> V` map with Fibonacci hashing and linear probing.
///
/// Values must implement [`Default`] so vacated and never-used slots can
/// hold an inert placeholder without `unsafe` uninitialised storage.
#[derive(Debug, Clone)]
pub struct LineMap<V> {
    /// Slot keys; `EMPTY` marks a free slot. Separate from `vals` so the
    /// probe loop only touches this dense array.
    keys: Vec<u64>,
    vals: Vec<V>,
    len: usize,
}

impl<V: Default> Default for LineMap<V> {
    fn default() -> Self {
        LineMap::new()
    }
}

impl<V: Default> LineMap<V> {
    /// An empty map. Allocates nothing until the first insert.
    pub fn new() -> Self {
        LineMap {
            keys: Vec::new(),
            vals: Vec::new(),
            len: 0,
        }
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Slot index for `key` at the current capacity.
    #[inline]
    fn slot_of(&self, key: u64) -> usize {
        // Fibonacci hashing: the high bits of key*φ are well mixed even for
        // sequential keys, which line addresses typically are.
        let h = key.wrapping_mul(PHI);
        (h >> (64 - self.keys.len().trailing_zeros())) as usize
    }

    /// Find the slot holding `key`, or the empty slot where it would go.
    #[inline]
    fn probe(&self, key: u64) -> usize {
        let mask = self.keys.len() - 1;
        let mut i = self.slot_of(key);
        loop {
            let k = self.keys[i];
            if k == key || k == EMPTY {
                return i;
            }
            i = (i + 1) & mask;
        }
    }

    /// Shared-reference lookup.
    #[inline]
    pub fn get(&self, key: u64) -> Option<&V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(key);
        (self.keys[i] == key).then(|| &self.vals[i])
    }

    /// Mutable lookup.
    #[inline]
    pub fn get_mut(&mut self, key: u64) -> Option<&mut V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.keys.is_empty() {
            return None;
        }
        let i = self.probe(key);
        if self.keys[i] == key {
            Some(&mut self.vals[i])
        } else {
            None
        }
    }

    /// Whether `key` is present.
    pub fn contains_key(&self, key: u64) -> bool {
        self.get(key).is_some()
    }

    /// Insert `val` under `key`, returning the previous value if any.
    pub fn insert(&mut self, key: u64, val: V) -> Option<V> {
        let slot = self.entry_slot(key);
        let prev = std::mem::replace(&mut self.vals[slot], val);
        if self.keys[slot] == key {
            Some(prev)
        } else {
            self.keys[slot] = key;
            self.len += 1;
            None
        }
    }

    /// Mutable reference to the value under `key`, inserting
    /// `V::default()` first if absent (the `entry(k).or_default()` idiom).
    #[inline]
    pub fn get_or_insert_default(&mut self, key: u64) -> &mut V {
        let slot = self.entry_slot(key);
        if self.keys[slot] != key {
            self.keys[slot] = key;
            self.vals[slot] = V::default();
            self.len += 1;
        }
        &mut self.vals[slot]
    }

    /// Slot where `key` lives or should be inserted, growing first if the
    /// insert could push load factor past 3/4.
    #[inline]
    fn entry_slot(&mut self, key: u64) -> usize {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.keys.is_empty() || (self.len + 1) * 4 > self.keys.len() * 3 {
            self.grow();
        }
        self.probe(key)
    }

    /// Remove `key`, returning its value if present. Uses backward-shift
    /// deletion so no tombstones accumulate.
    pub fn remove(&mut self, key: u64) -> Option<V> {
        debug_assert_ne!(key, EMPTY, "u64::MAX is reserved");
        if self.keys.is_empty() {
            return None;
        }
        let mask = self.keys.len() - 1;
        let mut hole = self.probe(key);
        if self.keys[hole] != key {
            return None;
        }
        let out = std::mem::take(&mut self.vals[hole]);
        self.keys[hole] = EMPTY;
        self.len -= 1;
        // Backward-shift: re-seat any displaced entries in the run after
        // the hole so future probes still find them.
        let mut i = (hole + 1) & mask;
        while self.keys[i] != EMPTY {
            let home = self.slot_of(self.keys[i]);
            // `i` wants to be at `home`; move it into the hole if the hole
            // lies cyclically between home and i.
            let between = if hole <= i {
                home <= hole || home > i
            } else {
                home <= hole && home > i
            };
            if between {
                self.keys[hole] = self.keys[i];
                self.vals.swap(hole, i);
                self.keys[i] = EMPTY;
                self.vals[i] = V::default();
                hole = i;
            }
            i = (i + 1) & mask;
        }
        Some(out)
    }

    /// Drop all entries, keeping capacity.
    pub fn clear(&mut self) {
        for k in &mut self.keys {
            *k = EMPTY;
        }
        for v in &mut self.vals {
            *v = V::default();
        }
        self.len = 0;
    }

    /// All keys in ascending order. This is the only way to walk a
    /// `LineMap`, so entry order can never leak into observable output.
    pub fn sorted_keys(&self) -> Vec<u64> {
        let mut out: Vec<u64> = self.keys.iter().copied().filter(|&k| k != EMPTY).collect();
        out.sort_unstable();
        out
    }

    /// Double (or initially allocate) the table and re-seat every entry.
    fn grow(&mut self) {
        let new_cap = (self.keys.len() * 2).max(16);
        let old_keys = std::mem::replace(&mut self.keys, vec![EMPTY; new_cap]);
        let old_vals = std::mem::take(&mut self.vals);
        self.vals = Vec::with_capacity(new_cap);
        self.vals.resize_with(new_cap, V::default);
        let mask = new_cap - 1;
        for (k, v) in old_keys.into_iter().zip(old_vals) {
            if k == EMPTY {
                continue;
            }
            let mut i = self.slot_of(k);
            while self.keys[i] != EMPTY {
                i = (i + 1) & mask;
            }
            self.keys[i] = k;
            self.vals[i] = v;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_lookups() {
        let m: LineMap<u64> = LineMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(7), None);
        assert!(!m.contains_key(7));
    }

    #[test]
    fn insert_get_overwrite() {
        let mut m = LineMap::new();
        assert_eq!(m.insert(1, 10u64), None);
        assert_eq!(m.insert(2, 20), None);
        assert_eq!(m.insert(1, 11), Some(10));
        assert_eq!(m.get(1), Some(&11));
        assert_eq!(m.get(2), Some(&20));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn get_or_insert_default_is_entry_or_default() {
        let mut m: LineMap<u64> = LineMap::new();
        *m.get_or_insert_default(5) += 3;
        *m.get_or_insert_default(5) += 4;
        assert_eq!(m.get(5), Some(&7));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn remove_and_backward_shift() {
        let mut m = LineMap::new();
        for k in 0..100u64 {
            m.insert(k, k * 2);
        }
        for k in (0..100).step_by(2) {
            assert_eq!(m.remove(k), Some(k * 2), "remove {k}");
        }
        assert_eq!(m.len(), 50);
        for k in 0..100u64 {
            if k % 2 == 0 {
                assert_eq!(m.get(k), None, "{k} should be gone");
            } else {
                assert_eq!(m.get(k), Some(&(k * 2)), "{k} should survive");
            }
        }
        assert_eq!(m.remove(98), None);
    }

    #[test]
    fn growth_preserves_entries() {
        let mut m = LineMap::new();
        // Sequential line addresses, the common case.
        for k in 0..10_000u64 {
            m.insert(k, k);
        }
        assert_eq!(m.len(), 10_000);
        for k in 0..10_000u64 {
            assert_eq!(m.get(k), Some(&k));
        }
    }

    #[test]
    fn clear_keeps_capacity_and_empties() {
        let mut m = LineMap::new();
        m.insert(1, 1u64);
        m.insert(2, 2);
        m.clear();
        assert!(m.is_empty());
        assert_eq!(m.get(1), None);
        m.insert(3, 3);
        assert_eq!(m.get(3), Some(&3));
    }

    #[test]
    fn sorted_keys_is_sorted_regardless_of_insertion_order() {
        let mut m = LineMap::new();
        for k in [9u64, 3, 7, 1, 1 << 40, 5] {
            m.insert(k, ());
        }
        assert_eq!(m.sorted_keys(), vec![1, 3, 5, 7, 9, 1 << 40]);
    }

    #[test]
    fn colliding_run_survives_mid_run_removal() {
        // Dense sequential keys produce probe runs once load rises; delete
        // from the middle of runs and verify every survivor stays findable.
        let mut m = LineMap::new();
        for k in 0..48u64 {
            m.insert(k, k + 1);
        }
        for k in 10..20u64 {
            m.remove(k);
        }
        for k in 0..48u64 {
            let expect = if (10..20).contains(&k) {
                None
            } else {
                Some(k + 1)
            };
            assert_eq!(m.get(k).copied(), expect, "key {k}");
        }
    }

    #[test]
    fn matches_std_hashmap_on_random_workload() {
        // Deterministic xorshift exercise mixing inserts/removes/lookups.
        let mut model = std::collections::HashMap::new();
        let mut m = LineMap::new();
        let mut x = 0x1234_5678_9abc_def0u64;
        for _ in 0..20_000 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let key = x % 512; // small keyspace to force collisions/overwrites
            match x % 3 {
                0 => {
                    assert_eq!(m.insert(key, x), model.insert(key, x));
                }
                1 => {
                    assert_eq!(m.remove(key), model.remove(&key));
                }
                _ => {
                    assert_eq!(m.get(key), model.get(&key));
                }
            }
            assert_eq!(m.len(), model.len());
        }
    }
}
