//! A per-thread program: a pinned hardware thread plus a list of ops.

use crate::ops::Op;
use knl_arch::{CoreId, HwThreadId};

/// The workload of one simulated thread.
#[derive(Debug, Clone)]
pub struct Program {
    /// Hardware thread the program is pinned to.
    pub hw: HwThreadId,
    /// Ops executed in order.
    pub ops: Vec<Op>,
}

impl Program {
    /// Program pinned to a specific hardware thread.
    pub fn new(hw: HwThreadId) -> Self {
        Program {
            hw,
            ops: Vec::new(),
        }
    }

    /// Convenience: pin to the first HyperThread of `core`.
    pub fn on_core(core: CoreId) -> Self {
        Program::new(HwThreadId(core.0 * 4))
    }

    /// Core the program's hardware thread belongs to.
    pub fn core(&self) -> CoreId {
        self.hw.core()
    }

    /// Append one op (builder style).
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// Append `op` `n` times.
    pub fn repeat(&mut self, op: Op, n: usize) -> &mut Self {
        for _ in 0..n {
            self.ops.push(op.clone());
        }
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder() {
        let mut p = Program::on_core(CoreId(3));
        p.push(Op::Read(0)).push(Op::Write(64));
        p.repeat(Op::Compute(10), 3);
        assert_eq!(p.core(), CoreId(3));
        assert_eq!(p.hw, HwThreadId(12));
        assert_eq!(p.ops.len(), 5);
    }
}
