//! Set-associative tag arrays with LRU replacement.
//!
//! The simulator keeps *real* tag arrays for every L1 and L2 so that
//! capacity and conflict behaviour is genuine. Only tags are stored; data
//! never exists (timing simulation only).
//!
//! Invalidation is handled by versioning rather than eager removal: the
//! coherence layer bumps a per-line version on ownership changes, and a tag
//! hit only counts if the stored version matches (see `mesif`).

use knl_arch::LINE_SHIFT;

/// Result of inserting a line into a cache.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Insert {
    /// The line was already present (refreshed LRU).
    Hit,
    /// Inserted into a free way.
    Placed,
    /// Inserted, evicting the returned line address.
    Evicted(u64),
}

#[derive(Debug, Clone, Copy, Default)]
struct Way {
    /// Line address (full address >> 6), or `u64::MAX` when empty.
    tag: u64,
    /// Version stamp assigned by the caller (coherence epoch).
    version: u32,
    /// LRU stamp; larger = more recent.
    lru: u64,
}

const EMPTY: u64 = u64::MAX;

/// A set-associative tag cache.
#[derive(Debug, Clone)]
pub struct TagCache {
    ways: usize,
    sets: usize,
    slots: Vec<Way>,
    tick: u64,
}

impl TagCache {
    /// Build a cache of `capacity_bytes` with `ways` associativity and 64 B
    /// lines.
    ///
    /// # Panics
    /// Panics unless `capacity_bytes` is a multiple of `ways * 64`.
    pub fn new(capacity_bytes: u64, ways: usize) -> Self {
        let lines = (capacity_bytes >> LINE_SHIFT) as usize;
        assert!(
            ways > 0 && lines.is_multiple_of(ways),
            "capacity must be a multiple of ways*64"
        );
        let sets = lines / ways;
        assert!(
            sets.is_power_of_two(),
            "number of sets must be a power of two, got {sets}"
        );
        TagCache {
            ways,
            sets,
            slots: vec![
                Way {
                    tag: EMPTY,
                    version: 0,
                    lru: 0
                };
                lines
            ],
            tick: 0,
        }
    }

    /// KNL L1D: 32 KB, 8-way.
    pub fn knl_l1() -> Self {
        TagCache::new(32 << 10, 8)
    }

    /// KNL tile L2: 1 MB, 16-way.
    pub fn knl_l2() -> Self {
        TagCache::new(1 << 20, 16)
    }

    fn set_of(&self, line: u64) -> usize {
        (line as usize) & (self.sets - 1)
    }

    fn set_slots(&mut self, set: usize) -> &mut [Way] {
        let base = set * self.ways;
        &mut self.slots[base..base + self.ways]
    }

    /// Look up `line`; a hit requires a matching `version`. Refreshes LRU on
    /// hit. Returns true on hit.
    pub fn lookup(&mut self, line: u64, version: u32) -> bool {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        for w in self.set_slots(set) {
            if w.tag == line && w.version == version {
                w.lru = tick;
                return true;
            }
        }
        false
    }

    /// Look up ignoring version (presence of any epoch of the line).
    pub fn present_any_version(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.ways;
        self.slots[base..base + self.ways]
            .iter()
            .any(|w| w.tag == line)
    }

    /// Insert `line` with `version`, evicting the LRU way if needed.
    /// A stale-version copy of the same line is refreshed in place.
    pub fn insert(&mut self, line: u64, version: u32) -> Insert {
        self.tick += 1;
        let tick = self.tick;
        let set = self.set_of(line);
        let slots = self.set_slots(set);
        // Same line (any version): refresh.
        if let Some(w) = slots.iter_mut().find(|w| w.tag == line) {
            let was_current = w.version == version;
            w.version = version;
            w.lru = tick;
            return if was_current {
                Insert::Hit
            } else {
                Insert::Placed
            };
        }
        // Free way?
        if let Some(w) = slots.iter_mut().find(|w| w.tag == EMPTY) {
            *w = Way {
                tag: line,
                version,
                lru: tick,
            };
            return Insert::Placed;
        }
        // Evict LRU.
        let victim = slots
            .iter_mut()
            .min_by_key(|w| w.lru)
            .expect("non-empty set");
        let evicted = victim.tag;
        *victim = Way {
            tag: line,
            version,
            lru: tick,
        };
        Insert::Evicted(evicted)
    }

    /// Remove `line` if present (e.g. after an external invalidation when the
    /// caller wants the way back immediately).
    pub fn remove(&mut self, line: u64) -> bool {
        let set = self.set_of(line);
        for w in self.set_slots(set) {
            if w.tag == line {
                *w = Way {
                    tag: EMPTY,
                    version: 0,
                    lru: 0,
                };
                return true;
            }
        }
        false
    }

    /// Total capacity in lines.
    pub fn capacity_lines(&self) -> usize {
        self.sets * self.ways
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        self.sets
    }

    /// Associativity.
    pub fn ways(&self) -> usize {
        self.ways
    }

    /// Drop every entry (used between benchmark repetitions).
    pub fn clear(&mut self) {
        for w in &mut self.slots {
            *w = Way {
                tag: EMPTY,
                version: 0,
                lru: 0,
            };
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn knl_geometries() {
        let l1 = TagCache::knl_l1();
        assert_eq!(l1.capacity_lines(), 512);
        assert_eq!(l1.ways(), 8);
        assert_eq!(l1.num_sets(), 64);
        let l2 = TagCache::knl_l2();
        assert_eq!(l2.capacity_lines(), 16384);
        assert_eq!(l2.ways(), 16);
        assert_eq!(l2.num_sets(), 1024);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = TagCache::new(1024, 2);
        assert!(!c.lookup(5, 0));
        assert_eq!(c.insert(5, 0), Insert::Placed);
        assert!(c.lookup(5, 0));
    }

    #[test]
    fn version_mismatch_is_miss() {
        let mut c = TagCache::new(1024, 2);
        c.insert(5, 0);
        assert!(!c.lookup(5, 1), "stale version must miss");
        assert!(c.present_any_version(5));
        // Re-inserting with the new version refreshes in place (no eviction).
        assert_eq!(c.insert(5, 1), Insert::Placed);
        assert!(c.lookup(5, 1));
    }

    #[test]
    fn lru_evicts_least_recent() {
        // 2 ways, 8 sets: lines 0, 16, 32 all map to set 0.
        let mut c = TagCache::new(1024, 2);
        assert_eq!(c.num_sets(), 8);
        c.insert(0, 0);
        c.insert(16, 0);
        c.lookup(0, 0); // 0 now more recent than 16
        match c.insert(32, 0) {
            Insert::Evicted(v) => assert_eq!(v, 16),
            other => panic!("expected eviction, got {other:?}"),
        }
        assert!(c.lookup(0, 0));
        assert!(!c.lookup(16, 0));
        assert!(c.lookup(32, 0));
    }

    #[test]
    fn insert_same_line_is_hit() {
        let mut c = TagCache::new(1024, 2);
        c.insert(7, 3);
        assert_eq!(c.insert(7, 3), Insert::Hit);
    }

    #[test]
    fn remove_frees_way() {
        let mut c = TagCache::new(1024, 2);
        c.insert(0, 0);
        c.insert(16, 0);
        assert!(c.remove(0));
        assert!(!c.remove(0));
        // Now inserting a third conflicting line does not evict.
        assert_eq!(c.insert(32, 0), Insert::Placed);
        assert!(c.lookup(16, 0));
    }

    #[test]
    fn clear_empties() {
        let mut c = TagCache::new(1024, 2);
        c.insert(1, 0);
        c.clear();
        assert!(!c.lookup(1, 0));
    }

    #[test]
    fn capacity_fills_without_spurious_evictions() {
        let mut c = TagCache::new(64 * 64, 4); // 64 lines, 16 sets
        let mut evictions = 0;
        for i in 0..64u64 {
            if let Insert::Evicted(_) = c.insert(i, 0) {
                evictions += 1;
            }
        }
        assert_eq!(
            evictions, 0,
            "distinct lines filling capacity must not evict"
        );
        // One more round of distinct lines now evicts every time.
        for i in 64..128u64 {
            assert!(matches!(c.insert(i, 0), Insert::Evicted(_)));
        }
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_panics() {
        TagCache::new(3 * 64, 1);
    }
}
