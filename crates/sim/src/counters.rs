//! Event counters collected by the machine during a run.

/// Aggregate hardware event counts (whole machine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Counters {
    /// Loads/stores satisfied by the requesting core's L1.
    pub l1_hits: u64,
    /// Accesses satisfied by the requester's own tile L2.
    pub l2_hits: u64,
    /// Misses served by a remote tile's cache (forward/ownership transfer).
    pub remote_cache_hits: u64,
    /// Misses served by DDR.
    pub ddr_accesses: u64,
    /// Misses served by MCDRAM (flat region or memory-side cache hit).
    pub mcdram_accesses: u64,
    /// Memory-side cache hits / misses (cache & hybrid modes).
    pub mcache_hits: u64,
    /// Memory-side cache misses (filled from DDR).
    pub mcache_misses: u64,
    /// Lines written back due to evictions or downgrades.
    pub writebacks: u64,
    /// Invalidation messages sent by writes.
    pub invalidations: u64,
    /// Non-temporal stores.
    pub nt_stores: u64,
}

impl Counters {
    /// Total line requests that reached memory devices.
    pub fn memory_accesses(&self) -> u64 {
        self.ddr_accesses + self.mcdram_accesses
    }

    /// L1 hits as a fraction of all cache-hierarchy lookups that resolved
    /// somewhere (0.0 when nothing ran — rates never divide by zero).
    pub fn l1_hit_rate(&self) -> f64 {
        let total = self.l1_hits + self.l2_hits + self.remote_cache_hits + self.memory_accesses();
        ratio(self.l1_hits, total)
    }

    /// Memory-side cache hit rate over its lookups (cache/hybrid modes;
    /// 0.0 when the cache never saw a request).
    pub fn mcache_hit_rate(&self) -> f64 {
        ratio(self.mcache_hits, self.mcache_hits + self.mcache_misses)
    }

    /// Fraction of off-tile misses served by a *remote cache* rather than a
    /// memory device — the knob the paper's cache-transfer benchmarks turn.
    pub fn remote_service_fraction(&self) -> f64 {
        ratio(
            self.remote_cache_hits,
            self.remote_cache_hits + self.memory_accesses(),
        )
    }

    /// Difference since an earlier snapshot.
    ///
    /// A machine's counters are monotone for its whole lifetime (cache
    /// resets do not zero them), so `earlier` must be a snapshot of *this*
    /// machine taken no later than `self`. A field running backwards means
    /// an accounting bug — the class PR 2 caught in `nt_store` — and is
    /// caught per field by a `debug_assert`. Release builds saturate at
    /// zero instead of wrapping to garbage, so a production sweep degrades
    /// to a zero delta rather than reporting 2^64-ish counts.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            l1_hits: delta(self.l1_hits, earlier.l1_hits, "l1_hits"),
            l2_hits: delta(self.l2_hits, earlier.l2_hits, "l2_hits"),
            remote_cache_hits: delta(
                self.remote_cache_hits,
                earlier.remote_cache_hits,
                "remote_cache_hits",
            ),
            ddr_accesses: delta(self.ddr_accesses, earlier.ddr_accesses, "ddr_accesses"),
            mcdram_accesses: delta(
                self.mcdram_accesses,
                earlier.mcdram_accesses,
                "mcdram_accesses",
            ),
            mcache_hits: delta(self.mcache_hits, earlier.mcache_hits, "mcache_hits"),
            mcache_misses: delta(self.mcache_misses, earlier.mcache_misses, "mcache_misses"),
            writebacks: delta(self.writebacks, earlier.writebacks, "writebacks"),
            invalidations: delta(self.invalidations, earlier.invalidations, "invalidations"),
            nt_stores: delta(self.nt_stores, earlier.nt_stores, "nt_stores"),
        }
    }
}

/// One [`Counters::since`] field: `later - earlier`, with the regression
/// named in debug builds and saturated to zero in release builds.
fn delta(later: u64, earlier: u64, field: &str) -> u64 {
    debug_assert!(
        later >= earlier,
        "counter `{field}` regressed: later snapshot has {later}, earlier has {earlier}"
    );
    later.saturating_sub(earlier)
}

fn ratio(num: u64, den: u64) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

/// One-line summary for sweep progress output.
impl std::fmt::Display for Counters {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "l1 {} l2 {} remote {} ddr {} mcdram {} \
             mc-hit {} mc-miss {} wb {} inv {} nt {} \
             (l1 {:.1}% mcache {:.1}% remote-svc {:.1}%)",
            self.l1_hits,
            self.l2_hits,
            self.remote_cache_hits,
            self.ddr_accesses,
            self.mcdram_accesses,
            self.mcache_hits,
            self.mcache_misses,
            self.writebacks,
            self.invalidations,
            self.nt_stores,
            100.0 * self.l1_hit_rate(),
            100.0 * self.mcache_hit_rate(),
            100.0 * self.remote_service_fraction(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Counters {
            l1_hits: 10,
            ddr_accesses: 4,
            ..Default::default()
        };
        let b = Counters {
            l1_hits: 25,
            ddr_accesses: 9,
            ..Default::default()
        };
        let d = b.since(&a);
        assert_eq!(d.l1_hits, 15);
        assert_eq!(d.ddr_accesses, 5);
        assert_eq!(d.memory_accesses(), 5);
    }

    /// A fabricated regression (a "later" snapshot with smaller counts) is
    /// caught by the per-field debug assert in debug builds…
    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "counter `l1_hits` regressed")]
    fn since_catches_regression_in_debug() {
        let before = Counters {
            l1_hits: 100,
            writebacks: 7,
            ..Default::default()
        };
        let bogus_later = Counters {
            l1_hits: 3,
            ..Default::default()
        };
        let _ = bogus_later.since(&before);
    }

    /// …and still saturates to zero in release builds, so a production
    /// sweep reports a zero delta instead of 2^64-ish garbage.
    #[cfg(not(debug_assertions))]
    #[test]
    fn since_saturates_in_release() {
        let before = Counters {
            l1_hits: 100,
            writebacks: 7,
            ..Default::default()
        };
        let bogus_later = Counters {
            l1_hits: 3,
            ..Default::default()
        };
        let d = bogus_later.since(&before);
        assert_eq!(d.l1_hits, 0);
        assert_eq!(d.writebacks, 0);
    }

    #[test]
    fn rates_survive_zero_denominators() {
        let z = Counters::default();
        assert_eq!(z.l1_hit_rate(), 0.0);
        assert_eq!(z.mcache_hit_rate(), 0.0);
        assert_eq!(z.remote_service_fraction(), 0.0);
        // And the Display impl must not divide by zero either.
        let s = format!("{z}");
        assert!(s.contains("l1 0"), "{s}");
    }

    #[test]
    fn rates_compute_expected_fractions() {
        let c = Counters {
            l1_hits: 60,
            l2_hits: 20,
            remote_cache_hits: 10,
            ddr_accesses: 6,
            mcdram_accesses: 4,
            mcache_hits: 3,
            mcache_misses: 1,
            ..Default::default()
        };
        assert!((c.l1_hit_rate() - 0.6).abs() < 1e-12);
        assert!((c.mcache_hit_rate() - 0.75).abs() < 1e-12);
        assert!((c.remote_service_fraction() - 0.5).abs() < 1e-12);
        let s = format!("{c}");
        assert!(s.contains("remote 10"), "{s}");
        assert!(s.contains("mcache 75.0%"), "{s}");
    }
}
