//! Event counters collected by the machine during a run.

use serde::{Deserialize, Serialize};

/// Aggregate hardware event counts (whole machine).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Counters {
    /// Loads/stores satisfied by the requesting core's L1.
    pub l1_hits: u64,
    /// Accesses satisfied by the requester's own tile L2.
    pub l2_hits: u64,
    /// Misses served by a remote tile's cache (forward/ownership transfer).
    pub remote_cache_hits: u64,
    /// Misses served by DDR.
    pub ddr_accesses: u64,
    /// Misses served by MCDRAM (flat region or memory-side cache hit).
    pub mcdram_accesses: u64,
    /// Memory-side cache hits / misses (cache & hybrid modes).
    pub mcache_hits: u64,
    /// Memory-side cache misses (filled from DDR).
    pub mcache_misses: u64,
    /// Lines written back due to evictions or downgrades.
    pub writebacks: u64,
    /// Invalidation messages sent by writes.
    pub invalidations: u64,
    /// Non-temporal stores.
    pub nt_stores: u64,
}

impl Counters {
    /// Total line requests that reached memory devices.
    pub fn memory_accesses(&self) -> u64 {
        self.ddr_accesses + self.mcdram_accesses
    }

    /// Difference since an earlier snapshot.
    pub fn since(&self, earlier: &Counters) -> Counters {
        Counters {
            l1_hits: self.l1_hits - earlier.l1_hits,
            l2_hits: self.l2_hits - earlier.l2_hits,
            remote_cache_hits: self.remote_cache_hits - earlier.remote_cache_hits,
            ddr_accesses: self.ddr_accesses - earlier.ddr_accesses,
            mcdram_accesses: self.mcdram_accesses - earlier.mcdram_accesses,
            mcache_hits: self.mcache_hits - earlier.mcache_hits,
            mcache_misses: self.mcache_misses - earlier.mcache_misses,
            writebacks: self.writebacks - earlier.writebacks,
            invalidations: self.invalidations - earlier.invalidations,
            nt_stores: self.nt_stores - earlier.nt_stores,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn since_subtracts() {
        let a = Counters { l1_hits: 10, ddr_accesses: 4, ..Default::default() };
        let b = Counters { l1_hits: 25, ddr_accesses: 9, ..Default::default() };
        let d = b.since(&a);
        assert_eq!(d.l1_hits, 15);
        assert_eq!(d.ddr_accesses, 5);
        assert_eq!(d.memory_accesses(), 5);
    }
}
