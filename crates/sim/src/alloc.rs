//! Bump allocation over the simulated physical address space.
//!
//! Simulated programs address physical memory directly (no paging); the
//! arena hands out line-aligned, non-overlapping ranges from the NUMA
//! regions of the machine's address map. In flat mode a buffer is placed "in
//! DDR" or "in MCDRAM" simply by allocating from the corresponding region —
//! exactly the `numactl`/`hbwmalloc` choice the paper makes. The paper does
//! *not* use NUMA-aware per-cluster allocation in SNC modes, so the default
//! allocation spreads over clusters round-robin; an explicit cluster can be
//! requested where an experiment needs it.

use knl_arch::{AddressMap, NumaKind, LINE_BYTES};

/// Bump allocator over a machine's NUMA regions.
#[derive(Debug, Clone)]
pub struct Arena {
    /// (kind, cluster, next free address, end).
    regions: Vec<Region>,
    /// Round-robin cursor per kind for cluster-less allocation.
    rr: [usize; 2],
}

#[derive(Debug, Clone)]
struct Region {
    kind: NumaKind,
    cluster: u8,
    next: u64,
    end: u64,
}

fn kind_idx(k: NumaKind) -> usize {
    match k {
        NumaKind::Ddr => 0,
        NumaKind::Mcdram => 1,
    }
}

impl Arena {
    /// Build an arena over a machine's NUMA regions.
    pub fn new(map: &AddressMap) -> Self {
        let regions = map
            .numa_nodes()
            .iter()
            .map(|n| Region {
                kind: n.kind,
                cluster: n.cluster,
                next: n.range.start,
                end: n.range.end,
            })
            .collect();
        Arena {
            regions,
            rr: [0, 0],
        }
    }

    /// Allocate `bytes` (rounded up to whole lines) from memory of `kind`,
    /// round-robin over clusters. Returns the base address.
    ///
    /// # Panics
    /// Panics if no region of `kind` has room (the simulated machine is out
    /// of that memory) or the kind is not addressable in this mode.
    pub fn alloc(&mut self, kind: NumaKind, bytes: u64) -> u64 {
        let candidates: Vec<usize> = self
            .regions
            .iter()
            .enumerate()
            .filter(|(_, r)| r.kind == kind)
            .map(|(i, _)| i)
            .collect();
        assert!(
            !candidates.is_empty(),
            "{kind:?} is not addressable in this memory mode"
        );
        let need = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        let n = candidates.len();
        let start = self.rr[kind_idx(kind)];
        for off in 0..n {
            let i = candidates[(start + off) % n];
            let r = &mut self.regions[i];
            if r.end - r.next >= need {
                let addr = r.next;
                r.next += need;
                self.rr[kind_idx(kind)] = (start + off + 1) % n;
                return addr;
            }
        }
        panic!("simulated {kind:?} exhausted allocating {bytes} bytes");
    }

    /// Allocate from a specific cluster's region of `kind`.
    pub fn alloc_in_cluster(&mut self, kind: NumaKind, cluster: u8, bytes: u64) -> u64 {
        let need = bytes.div_ceil(LINE_BYTES) * LINE_BYTES;
        let r = self
            .regions
            .iter_mut()
            .find(|r| r.kind == kind && r.cluster == cluster)
            .unwrap_or_else(|| panic!("no {kind:?} region in cluster {cluster}"));
        assert!(
            r.end - r.next >= need,
            "cluster {cluster} {kind:?} exhausted"
        );
        let addr = r.next;
        r.next += need;
        addr
    }

    /// Remaining bytes of `kind` across all clusters.
    pub fn remaining(&self, kind: NumaKind) -> u64 {
        self.regions
            .iter()
            .filter(|r| r.kind == kind)
            .map(|r| r.end - r.next)
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    fn arena(cm: ClusterMode, mm: MemoryMode) -> Arena {
        let cfg = MachineConfig::knl7210(cm, mm);
        let topo = cfg.topology();
        Arena::new(&cfg.address_map(&topo))
    }

    #[test]
    fn alloc_line_aligned_and_disjoint() {
        let mut a = arena(ClusterMode::Quadrant, MemoryMode::Flat);
        let x = a.alloc(NumaKind::Ddr, 100);
        let y = a.alloc(NumaKind::Ddr, 100);
        assert_eq!(x % 64, 0);
        assert_eq!(y % 64, 0);
        assert!(y >= x + 128, "allocations must not overlap");
    }

    #[test]
    fn mcdram_alloc_lands_in_mcdram_region() {
        let mut a = arena(ClusterMode::Quadrant, MemoryMode::Flat);
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let x = a.alloc(NumaKind::Mcdram, 4096);
        let node = map.node_of(x).unwrap();
        assert_eq!(node.kind, NumaKind::Mcdram);
    }

    #[test]
    fn snc4_round_robin_spreads_clusters() {
        let mut a = arena(ClusterMode::Snc4, MemoryMode::Flat);
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        // Set used only for a cardinality assertion; order never escapes.
        let clusters: std::collections::HashSet<u8> = (0..4) // knl-lint: allow(hash-collection)
            .map(|_| {
                let x = a.alloc(NumaKind::Ddr, 4096);
                map.node_of(x).unwrap().cluster
            })
            .collect();
        assert_eq!(
            clusters.len(),
            4,
            "four allocations should hit four clusters"
        );
    }

    #[test]
    fn explicit_cluster() {
        let mut a = arena(ClusterMode::Snc4, MemoryMode::Flat);
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let x = a.alloc_in_cluster(NumaKind::Mcdram, 2, 64);
        assert_eq!(map.node_of(x).unwrap().cluster, 2);
    }

    #[test]
    #[should_panic(expected = "not addressable")]
    fn cache_mode_has_no_mcdram_region() {
        let mut a = arena(ClusterMode::Quadrant, MemoryMode::Cache);
        a.alloc(NumaKind::Mcdram, 64);
    }

    #[test]
    fn remaining_decreases() {
        let mut a = arena(ClusterMode::A2A, MemoryMode::Flat);
        let before = a.remaining(NumaKind::Ddr);
        a.alloc(NumaKind::Ddr, 1 << 20);
        assert_eq!(a.remaining(NumaKind::Ddr), before - (1 << 20));
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn exhaustion_panics() {
        let mut a = arena(ClusterMode::A2A, MemoryMode::Flat);
        let all = a.remaining(NumaKind::Mcdram);
        a.alloc(NumaKind::Mcdram, all);
        a.alloc(NumaKind::Mcdram, 64);
    }
}
