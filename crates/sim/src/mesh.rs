//! The mesh-of-rings fabric.
//!
//! Messages route Y-first then X over bidirectional half rings, so the hop
//! latency between stops is Manhattan. The paper measured *no* congestion
//! on the KNL mesh ("we experimented with multiple thread schedules and did
//! not observe any increase in latency"), so the default fabric is the
//! analytic hop-cost model with unlimited link capacity.
//!
//! For ablation (`knl-bench --bin ablation`, mesh section), a
//! link-occupancy fabric can be enabled: every ring (one per column for the
//! Y leg, one per row for the X leg) is a work-conserving server that a
//! message occupies for `ring_service_ps` per traversal. With KNL-realistic
//! ring bandwidth the congestion benchmark stays flat — the "no congestion"
//! finding is then *emergent* rather than assumed — while artificially slow
//! rings make congestion appear, demonstrating the mechanism.

use crate::memdev::{DeviceParams, MemDevice};
use crate::SimTime;
use knl_arch::topology::{GRID_COLS, GRID_ROWS};

/// Reorder tolerance for ring servers: must cover the runner's bulk-op time
/// slice (arrivals can be out of order by up to one slice), but no more —
/// a wider window would swallow genuine short bursts of ring backlog.
const RING_REORDER_WINDOW_PS: SimTime = 450_000;

/// Fabric configuration.
#[derive(Debug, Clone, Copy)]
pub struct MeshConfig {
    /// Per-hop traversal latency.
    pub hop_ps: SimTime,
    /// Ring-occupancy modeling; `None` = analytic contention-free fabric.
    pub ring_service_ps: Option<SimTime>,
}

/// The fabric: hop-latency always; per-ring occupancy optionally.
#[derive(Debug)]
pub struct Mesh {
    cfg: MeshConfig,
    /// Column rings (Y legs) then row rings (X legs).
    rings: Vec<MemDevice>,
}

impl Mesh {
    /// Build the fabric (rings are instantiated even when occupancy
    /// modeling is off; they are simply never consulted).
    pub fn new(cfg: MeshConfig) -> Self {
        let n = (GRID_COLS + GRID_ROWS) as usize;
        let service = cfg.ring_service_ps.unwrap_or(0);
        let rings = (0..n)
            .map(|_| {
                MemDevice::new(DeviceParams {
                    latency_ps: 0,
                    read_service_ps: service,
                    write_service_ps: service,
                    write_mixed_ps: service,
                    turnaround_ps: 0,
                    duplex: true,
                })
                .with_window(RING_REORDER_WINDOW_PS)
            })
            .collect();
        Mesh { cfg, rings }
    }

    /// Time for a message injected at `from` at time `t` to arrive at `to`
    /// (excluding the injection cost, which the caller charges).
    pub fn traverse(&mut self, from: (i32, i32), to: (i32, i32), t: SimTime) -> SimTime {
        let dy = (from.1 - to.1).unsigned_abs() as u64;
        let dx = (from.0 - to.0).unsigned_abs() as u64;
        let mut arrive = t + (dy + dx) * self.cfg.hop_ps;
        if self.cfg.ring_service_ps.is_some() {
            // Y leg rides the column ring of `from.0`; X leg rides the row
            // ring of `to.1` (Y-then-X routing).
            if dy > 0 {
                let col = from.0 as usize;
                arrive = arrive.max(self.rings[col].read(t) + dy * self.cfg.hop_ps);
            }
            if dx > 0 {
                let row = GRID_COLS as usize + to.1 as usize;
                arrive = arrive.max(self.rings[row].read(t) + dx * self.cfg.hop_ps);
            }
        }
        arrive
    }

    /// Whether occupancy modeling is on.
    pub fn models_occupancy(&self) -> bool {
        self.cfg.ring_service_ps.is_some()
    }

    /// Reset ring queues (between benchmark repetitions).
    pub fn reset(&mut self) {
        for r in &mut self.rings {
            r.reset();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn analytic() -> Mesh {
        Mesh::new(MeshConfig {
            hop_ps: 1_500,
            ring_service_ps: None,
        })
    }

    #[test]
    fn manhattan_latency() {
        let mut m = analytic();
        assert_eq!(m.traverse((0, 0), (0, 0), 100), 100);
        assert_eq!(m.traverse((0, 0), (3, 0), 0), 4_500);
        assert_eq!(m.traverse((1, 1), (4, 5), 0), 7 * 1_500);
        assert!(!m.models_occupancy());
    }

    #[test]
    fn occupancy_queues_on_shared_ring() {
        // Slow rings: two messages on the same column ring serialize.
        let mut m = Mesh::new(MeshConfig {
            hop_ps: 1_000,
            ring_service_ps: Some(50_000),
        });
        let a = m.traverse((0, 0), (0, 5), 0);
        let b = m.traverse((0, 5), (0, 0), 0);
        assert!(b > a, "second message queues: {a} vs {b}");
        // A message on a different column is unaffected.
        let c = m.traverse((3, 0), (3, 5), 0);
        assert_eq!(c, m.traverse((4, 0), (4, 5), 0));
    }

    #[test]
    fn fast_rings_add_no_queueing() {
        let mut occ = Mesh::new(MeshConfig {
            hop_ps: 1_500,
            ring_service_ps: Some(100),
        });
        let mut ana = analytic();
        for i in 0..20u64 {
            let t = i * 10_000;
            let a = ana.traverse((2, 1), (2, 7), t);
            let o = occ.traverse((2, 1), (2, 7), t);
            assert!(o <= a + 200, "fast rings ≈ analytic: {o} vs {a}");
        }
    }

    #[test]
    fn reset_clears_rings() {
        let mut m = Mesh::new(MeshConfig {
            hop_ps: 1_000,
            ring_service_ps: Some(50_000),
        });
        for _ in 0..10 {
            m.traverse((0, 0), (0, 5), 0);
        }
        m.reset();
        let a = m.traverse((0, 0), (0, 5), 0);
        assert_eq!(a, 50_000 + 5_000);
        // Bursts larger than the reorder window queue visibly.
        m.reset();
        let mut last = 0;
        for _ in 0..20 {
            last = m.traverse((0, 0), (0, 5), 0);
        }
        assert!(
            last >= 20 * 50_000 - RING_REORDER_WINDOW_PS,
            "burst queues: {last}"
        );
    }
}
