//! A sorted-vec map for small, ordered aggregation keyspaces.
//!
//! [`crate::metrics::Metrics`] folds every traced event into half a dozen
//! keyed aggregates. The keyspaces are small and stable — source tags ×
//! hop distances, tile ids, device ids, time bins that grow append-mostly —
//! so a pair of parallel sorted vectors beats a `BTreeMap`: lookups are a
//! binary search over a dense array (no pointer chasing), iteration is a
//! linear scan, and iteration order is ascending by key exactly like the
//! `BTreeMap` it replaces, which keeps serialized output byte-identical
//! (DESIGN.md §6).
//!
//! Not suitable for large, insert-heavy keyspaces (e.g. the per-line
//! hot-line profile): a miss inserts by shifting the tail, which is O(n)
//! per new key.

use std::ops::Index;

/// A map backed by parallel key/value vectors kept sorted by key.
///
/// Iteration ([`SortedVecMap::iter`], [`SortedVecMap::values`], `&map` in
/// a `for` loop) is always in ascending key order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SortedVecMap<K, V> {
    keys: Vec<K>,
    vals: Vec<V>,
}

impl<K, V> Default for SortedVecMap<K, V> {
    fn default() -> Self {
        SortedVecMap {
            keys: Vec::new(),
            vals: Vec::new(),
        }
    }
}

impl<K: Ord + Copy, V> SortedVecMap<K, V> {
    /// An empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Shared-reference lookup.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.keys.binary_search(key).ok().map(|i| &self.vals[i])
    }

    /// Mutable reference to the value under `key`, inserting
    /// `V::default()` first if absent (the `entry(k).or_default()` idiom).
    pub fn entry_or_default(&mut self, key: K) -> &mut V
    where
        V: Default,
    {
        let i = match self.keys.binary_search(&key) {
            Ok(i) => i,
            Err(i) => {
                self.keys.insert(i, key);
                self.vals.insert(i, V::default());
                i
            }
        };
        &mut self.vals[i]
    }

    /// Entries in ascending key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &V)> {
        self.keys.iter().zip(self.vals.iter())
    }

    /// Values in ascending key order.
    pub fn values(&self) -> impl Iterator<Item = &V> {
        self.vals.iter()
    }
}

impl<K: Ord + Copy, V> Index<&K> for SortedVecMap<K, V> {
    type Output = V;

    fn index(&self, key: &K) -> &V {
        self.get(key).expect("no entry found for key")
    }
}

impl<'a, K: Ord + Copy, V> IntoIterator for &'a SortedVecMap<K, V> {
    type Item = (&'a K, &'a V);
    type IntoIter = std::iter::Zip<std::slice::Iter<'a, K>, std::slice::Iter<'a, V>>;

    fn into_iter(self) -> Self::IntoIter {
        self.keys.iter().zip(self.vals.iter())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty() {
        let m: SortedVecMap<u16, u64> = SortedVecMap::new();
        assert!(m.is_empty());
        assert_eq!(m.get(&3), None);
        assert_eq!(m.iter().count(), 0);
    }

    #[test]
    fn entry_inserts_and_updates() {
        let mut m: SortedVecMap<u16, u64> = SortedVecMap::new();
        *m.entry_or_default(5) += 2;
        *m.entry_or_default(1) += 7;
        *m.entry_or_default(5) += 3;
        assert_eq!(m.len(), 2);
        assert_eq!(m[&5], 5);
        assert_eq!(m[&1], 7);
    }

    #[test]
    fn iteration_is_key_sorted() {
        let mut m: SortedVecMap<(char, u32), u64> = SortedVecMap::new();
        for k in [('M', 4), ('E', 2), ('M', 1), ('D', 9)] {
            *m.entry_or_default(k) += 1;
        }
        let keys: Vec<_> = m.iter().map(|(k, _)| *k).collect();
        assert_eq!(keys, vec![('D', 9), ('E', 2), ('M', 1), ('M', 4)]);
        // Matches BTreeMap order for the same inserts.
        let mut bt = std::collections::BTreeMap::new();
        for k in [('M', 4), ('E', 2), ('M', 1), ('D', 9)] {
            *bt.entry(k).or_insert(0u64) += 1;
        }
        let bt_keys: Vec<_> = bt.keys().copied().collect();
        assert_eq!(keys, bt_keys);
    }

    #[test]
    fn values_follow_key_order() {
        let mut m: SortedVecMap<u8, u64> = SortedVecMap::new();
        *m.entry_or_default(9) = 90;
        *m.entry_or_default(2) = 20;
        assert_eq!(m.values().copied().collect::<Vec<_>>(), vec![20, 90]);
    }

    #[test]
    fn equality_ignores_insertion_history() {
        let mut a: SortedVecMap<u8, u64> = SortedVecMap::new();
        let mut b: SortedVecMap<u8, u64> = SortedVecMap::new();
        *a.entry_or_default(1) = 1;
        *a.entry_or_default(2) = 2;
        *b.entry_or_default(2) = 2;
        *b.entry_or_default(1) = 1;
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "no entry found")]
    fn index_missing_panics() {
        let m: SortedVecMap<u8, u64> = SortedVecMap::new();
        let _ = m[&1];
    }
}
