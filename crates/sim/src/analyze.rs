//! Static workload analysis: happens-before race detection, deadlock /
//! liveness checking, and footprint diagnostics over [`crate::Program`]s.
//!
//! The paper's methodology assumes every workload is well-formed: the
//! contention and cache-to-cache experiments rely on flag-synchronized
//! threads with no unintended sharing, and the collective schedules rely on
//! deadlock-free wait chains. This module checks both *before* a simulation
//! runs, complementing the dynamic [`crate::invariants`] checker: given the
//! programs a [`crate::Runner`] is about to execute, it
//!
//! * builds a **happens-before order** from program order, the
//!   `SetFlag`/`WaitFlag` release–acquire edges (monotone-max flag
//!   semantics: a wait for `v` is ordered after the *meet* of every
//!   publisher that could have satisfied it), and `WaitUntil` windows,
//! * expands every op to its **line footprint** (`Chase`, `ReadBuf`,
//!   `CopyBuf` and `Stream` become line ranges) and reports conflicting,
//!   happens-before-unordered accesses as **data races** — flag lines
//!   touched by flag ops are intended sharing and exempt, streaming
//!   (NT-store) overlap and window-separated conflicts are downgraded to
//!   warnings,
//! * replays an **abstract scheduler** over the flag ops to prove every
//!   `WaitFlag` is eventually satisfied (monotone flags make this exact:
//!   executing any enabled op never disables another, so one maximal run
//!   decides liveness), reporting never-published flags and cyclic wait
//!   chains, plus `MarkStart`/`MarkEnd` pairing errors and duplicate
//!   hardware-thread pins, and
//! * compares per-thread and per-tile **working sets** against the L1/L2
//!   capacities as informational diagnostics.
//!
//! Findings are deterministic (sorted by severity, rule, thread, op) and
//! carry thread/op indices plus line addresses. Enforcement is wired into
//! [`crate::Runner::run`] behind [`AnalyzeLevel`] (selected via `--analyze`
//! / `KNL_ANALYZE` in the bench harness) with the same zero-cost-when-off
//! contract as `--check` and `--trace`: the analysis is a pure pre-pass and
//! never changes simulation results.

use crate::cache::TagCache;
use crate::ops::{Op, StreamKind};
use crate::program::Program;
use std::collections::{BTreeMap, BTreeSet};
use std::fmt;

/// How much static analysis [`crate::Runner::run`] performs before
/// executing, and how much of the report is surfaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum AnalyzeLevel {
    /// No analysis; no observable cost.
    #[default]
    Off,
    /// Analyze and panic on `Error` findings; say nothing otherwise.
    Error,
    /// `Error`, plus print `Warn` findings to stderr.
    Warn,
    /// `Warn`, plus print `Info` diagnostics (footprint/capacity).
    Info,
}

impl AnalyzeLevel {
    /// All levels, weakest first.
    pub const ALL: [AnalyzeLevel; 4] = [
        AnalyzeLevel::Off,
        AnalyzeLevel::Error,
        AnalyzeLevel::Warn,
        AnalyzeLevel::Info,
    ];

    /// Name as accepted by `--analyze` / `KNL_ANALYZE`.
    pub fn name(self) -> &'static str {
        match self {
            AnalyzeLevel::Off => "off",
            AnalyzeLevel::Error => "error",
            AnalyzeLevel::Warn => "warn",
            AnalyzeLevel::Info => "info",
        }
    }

    /// Inverse of [`name`](Self::name); `on` is an alias for `warn`.
    pub fn parse(s: &str) -> Option<AnalyzeLevel> {
        match s {
            "off" | "none" => Some(AnalyzeLevel::Off),
            "error" | "errors" => Some(AnalyzeLevel::Error),
            "warn" | "warning" | "on" => Some(AnalyzeLevel::Warn),
            "info" | "all" => Some(AnalyzeLevel::Info),
            _ => None,
        }
    }

    /// The weakest severity this level surfaces (`None` when off).
    fn threshold(self) -> Option<Severity> {
        match self {
            AnalyzeLevel::Off => None,
            AnalyzeLevel::Error => Some(Severity::Error),
            AnalyzeLevel::Warn => Some(Severity::Warn),
            AnalyzeLevel::Info => Some(Severity::Info),
        }
    }
}

/// Severity lattice of a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Diagnostic only (footprint/capacity observations).
    Info,
    /// Suspicious but possibly intended (streaming overlap, heuristically
    /// window-ordered conflicts, unclosed marks).
    Warn,
    /// The workload is malformed: a provable race, deadlock, pairing
    /// error, or duplicate pin. [`AnalysisReport::enforce`] panics.
    Error,
}

impl Severity {
    /// Lower-case label used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Severity::Info => "info",
            Severity::Warn => "warn",
            Severity::Error => "error",
        }
    }
}

/// Which analysis pass produced a finding.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Rule {
    /// Conflicting line accesses not ordered by happens-before.
    Race,
    /// A data op touches a line also used as a synchronization flag.
    FlagSharing,
    /// A `WaitFlag` that can never be satisfied (never-published value or
    /// cyclic wait chain).
    Deadlock,
    /// `MarkStart`/`MarkEnd` pairing errors.
    MarkPairing,
    /// Two programs pinned to the same hardware thread.
    DuplicatePin,
    /// Working set vs L1/L2 capacity diagnostics.
    Capacity,
    /// A structurally malformed communication plan (produced by
    /// higher-level passes such as the collectives' rank-plan validator;
    /// the core analyzer itself never emits this).
    Plan,
}

impl Rule {
    /// Stable kebab-case name used in reports.
    pub fn name(self) -> &'static str {
        match self {
            Rule::Race => "race",
            Rule::FlagSharing => "flag-sharing",
            Rule::Deadlock => "deadlock",
            Rule::MarkPairing => "mark-pairing",
            Rule::DuplicatePin => "duplicate-pin",
            Rule::Capacity => "capacity",
            Rule::Plan => "plan",
        }
    }
}

/// One analysis finding, with enough indices to locate the offending ops.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// How bad it is.
    pub severity: Severity,
    /// Which pass found it.
    pub rule: Rule,
    /// Thread indices involved, ascending.
    pub threads: Vec<usize>,
    /// Op indices, parallel to `threads` where applicable.
    pub ops: Vec<usize>,
    /// Line address (byte address of the 64 B line), when applicable.
    pub line: Option<u64>,
    /// Human-readable description.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{}] {}: {}",
            self.severity.name(),
            self.rule.name(),
            self.message
        )
    }
}

/// The machine-readable result of [`analyze`].
#[derive(Debug, Clone, Default)]
pub struct AnalysisReport {
    /// Findings in deterministic order: errors first, then by rule,
    /// thread, and op indices.
    pub findings: Vec<Finding>,
    /// Threads analyzed.
    pub num_threads: usize,
    /// Total ops analyzed.
    pub num_ops: usize,
}

impl AnalysisReport {
    /// Number of findings at exactly `sev`.
    pub fn count(&self, sev: Severity) -> usize {
        self.findings.iter().filter(|f| f.severity == sev).count()
    }

    /// True when no finding is at or above `sev`.
    pub fn clean_at(&self, sev: Severity) -> bool {
        self.findings.iter().all(|f| f.severity < sev)
    }

    /// Findings of one rule.
    pub fn by_rule(&self, rule: Rule) -> impl Iterator<Item = &Finding> {
        self.findings.iter().filter(move |f| f.rule == rule)
    }

    /// Surface the report at `level`: print sub-error findings the level
    /// asks for to stderr, then panic with every `Error` finding if any
    /// exist. A pure observer otherwise — callers' results are unaffected.
    pub fn enforce(&self, level: AnalyzeLevel) {
        let Some(threshold) = level.threshold() else {
            return;
        };
        for f in &self.findings {
            if f.severity < Severity::Error && f.severity >= threshold {
                eprintln!("analyze: {f}");
            }
        }
        if !self.clean_at(Severity::Error) {
            let mut msg = String::from("static analysis violation:\n");
            for f in self
                .findings
                .iter()
                .filter(|f| f.severity == Severity::Error)
            {
                msg.push_str(&format!("  {f}\n"));
            }
            panic!("{msg}");
        }
    }
}

impl fmt::Display for AnalysisReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "analysis: {} threads, {} ops — {} error(s), {} warning(s), {} note(s)",
            self.num_threads,
            self.num_ops,
            self.count(Severity::Error),
            self.count(Severity::Warn),
            self.count(Severity::Info)
        )?;
        for finding in &self.findings {
            writeln!(f, "  {finding}")?;
        }
        Ok(())
    }
}

/// Per-rule cap on reported findings (a racy workload can produce
/// quadratically many pairs; the report stays bounded and deterministic).
const MAX_PER_RULE: usize = 64;

const LINE: u64 = 64;

fn line_of(addr: u64) -> u64 {
    addr / LINE
}

fn span_lines(addr: u64, bytes: u64) -> (u64, u64) {
    let first = addr / LINE;
    let last = (addr + bytes.max(1) - 1) / LINE;
    (first, last - first + 1)
}

/// One expanded line-range access of a data op.
#[derive(Debug, Clone, Copy)]
struct Access {
    thread: usize,
    op: usize,
    /// First line index (byte address / 64).
    start: u64,
    /// Lines spanned.
    lines: u64,
    write: bool,
    /// NT-store streaming access (bypasses coherent ownership).
    streaming: bool,
    /// Latest `WaitUntil` bound preceding this op in program order.
    win_lo: u64,
    /// Earliest `WaitUntil` bound following this op (`u64::MAX` if none).
    win_hi: u64,
}

/// Expand `op` into its line-footprint accesses. Flag ops and `Evict` are
/// handled by the callers (synchronization and capacity passes).
fn footprint(op: &Op) -> Vec<(u64, u64, bool, bool)> {
    match *op {
        Op::Read(a) => vec![(line_of(a), 1, false, false)],
        Op::Write(a) => vec![(line_of(a), 1, true, false)],
        Op::NtStore(a) => vec![(line_of(a), 1, true, true)],
        Op::Chase { base, lines } => vec![(line_of(base), lines.max(1), false, false)],
        Op::ReadBuf { src, bytes, .. } => {
            let (s, n) = span_lines(src, bytes);
            vec![(s, n, false, false)]
        }
        Op::CopyBuf {
            src, dst, bytes, ..
        } => {
            let (s, sn) = span_lines(src, bytes);
            let (d, dn) = span_lines(dst, bytes);
            vec![(s, sn, false, false), (d, dn, true, false)]
        }
        Op::Stream {
            kind,
            a,
            b,
            c,
            lines,
            ..
        } => {
            let n = lines.max(1);
            match kind {
                StreamKind::Read => vec![(line_of(b), n, false, false)],
                StreamKind::Write => vec![(line_of(a), n, true, true)],
                StreamKind::Copy => {
                    vec![(line_of(b), n, false, false), (line_of(a), n, true, true)]
                }
                StreamKind::Triad => vec![
                    (line_of(b), n, false, false),
                    (line_of(c), n, false, false),
                    (line_of(a), n, true, true),
                ],
            }
        }
        _ => Vec::new(),
    }
}

/// Statically analyze `programs` as a [`crate::Runner`] would execute them,
/// with `initial_flags` pre-set (the `Runner::set_initial_flag` values).
/// Pure: no machine required, nothing is simulated.
pub fn analyze(programs: &[Program], initial_flags: &[(u64, u64)]) -> AnalysisReport {
    let num_ops = programs.iter().map(|p| p.ops.len()).sum();
    let mut findings = Vec::new();

    duplicate_pins(programs, &mut findings);
    mark_pairing(programs, &mut findings);
    let vc = happens_before(programs, initial_flags);
    liveness(programs, initial_flags, &mut findings);
    races(programs, &vc, &mut findings);
    capacity(programs, &mut findings);

    findings.sort_by(|a, b| {
        (
            std::cmp::Reverse(b.severity),
            a.rule,
            &a.threads,
            &a.ops,
            a.line,
        )
            .cmp(&(
                std::cmp::Reverse(a.severity),
                b.rule,
                &b.threads,
                &b.ops,
                b.line,
            ))
    });
    // Bound the report: keep the first MAX_PER_RULE findings per rule.
    let mut kept: BTreeMap<(Rule, Severity), usize> = BTreeMap::new();
    let mut dropped: BTreeMap<(Rule, Severity), usize> = BTreeMap::new();
    let mut bounded = Vec::with_capacity(findings.len().min(6 * MAX_PER_RULE));
    for f in findings {
        let k = (f.rule, f.severity);
        let seen = kept.entry(k).or_insert(0);
        if *seen < MAX_PER_RULE {
            *seen += 1;
            bounded.push(f);
        } else {
            *dropped.entry(k).or_insert(0) += 1;
        }
    }
    for ((rule, severity), n) in dropped {
        bounded.push(Finding {
            severity,
            rule,
            threads: Vec::new(),
            ops: Vec::new(),
            line: None,
            message: format!(
                "…and {n} more {} {} finding(s)",
                severity.name(),
                rule.name()
            ),
        });
    }
    bounded.sort_by(|a, b| {
        (
            std::cmp::Reverse(b.severity),
            a.rule,
            &a.threads,
            &a.ops,
            a.line,
        )
            .cmp(&(
                std::cmp::Reverse(a.severity),
                b.rule,
                &b.threads,
                &b.ops,
                b.line,
            ))
    });

    AnalysisReport {
        findings: bounded,
        num_threads: programs.len(),
        num_ops,
    }
}

fn duplicate_pins(programs: &[Program], findings: &mut Vec<Finding>) {
    let mut by_hw: BTreeMap<u16, Vec<usize>> = BTreeMap::new();
    for (t, p) in programs.iter().enumerate() {
        by_hw.entry(p.hw.0).or_default().push(t);
    }
    for (hw, threads) in by_hw {
        if threads.len() > 1 {
            findings.push(Finding {
                severity: Severity::Error,
                rule: Rule::DuplicatePin,
                message: format!("threads {threads:?} are all pinned to hardware thread {hw}"),
                threads,
                ops: Vec::new(),
                line: None,
            });
        }
    }
}

fn mark_pairing(programs: &[Program], findings: &mut Vec<Finding>) {
    for (t, p) in programs.iter().enumerate() {
        let mut open: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, op) in p.ops.iter().enumerate() {
            match *op {
                Op::MarkStart(k) => {
                    if let Some(&prev) = open.get(&k) {
                        findings.push(Finding {
                            severity: Severity::Warn,
                            rule: Rule::MarkPairing,
                            threads: vec![t],
                            ops: vec![prev, i],
                            line: None,
                            message: format!(
                                "thread {t}: MarkStart({k}) at op {i} re-opens the interval \
                                 opened at op {prev} (the first start is silently lost)"
                            ),
                        });
                    }
                    open.insert(k, i);
                }
                // The guard's `remove` also closes properly-paired marks:
                // when it returns `Some` the arm is skipped but the
                // interval is already consumed.
                Op::MarkEnd(k) if open.remove(&k).is_none() => {
                    findings.push(Finding {
                        severity: Severity::Error,
                        rule: Rule::MarkPairing,
                        threads: vec![t],
                        ops: vec![i],
                        line: None,
                        message: format!(
                            "thread {t}: MarkEnd({k}) at op {i} without a matching MarkStart \
                             (the runner panics on this)"
                        ),
                    });
                }
                _ => {}
            }
        }
        for (k, i) in open {
            findings.push(Finding {
                severity: Severity::Warn,
                rule: Rule::MarkPairing,
                threads: vec![t],
                ops: vec![i],
                line: None,
                message: format!(
                    "thread {t}: MarkStart({k}) at op {i} is never closed (interval dropped)"
                ),
            });
        }
    }
}

/// Vector clocks per op: `vc[t][i][u]` = ops of thread `u` known complete
/// once op `i` of thread `t` completes. A `WaitFlag` for `v` joins the
/// pointwise *meet* over every publisher that could have satisfied it
/// (any single `SetFlag` with value ≥ `v`, or a pre-set initial flag, may
/// unblock the wait — only what *all* of them have in common is ordered
/// before it). Iterated to fixpoint: clocks only grow and are bounded.
fn happens_before(programs: &[Program], initial_flags: &[(u64, u64)]) -> Vec<Vec<Vec<u64>>> {
    let n = programs.len();
    let mut init: BTreeMap<u64, u64> = BTreeMap::new();
    for &(addr, val) in initial_flags {
        let e = init.entry(addr).or_insert(0);
        *e = (*e).max(val);
    }
    // addr → publishers (val, thread, op).
    let mut setters: BTreeMap<u64, Vec<(u64, usize, usize)>> = BTreeMap::new();
    for (t, p) in programs.iter().enumerate() {
        for (i, op) in p.ops.iter().enumerate() {
            if let Op::SetFlag { addr, val } = *op {
                setters.entry(addr).or_default().push((val, t, i));
            }
        }
    }

    let mut vc: Vec<Vec<Vec<u64>>> = programs
        .iter()
        .map(|p| vec![vec![0u64; n]; p.ops.len()])
        .collect();
    loop {
        let mut changed = false;
        for (t, p) in programs.iter().enumerate() {
            let mut cur = vec![0u64; n];
            for (i, op) in p.ops.iter().enumerate() {
                cur[t] = i as u64 + 1;
                if let Op::WaitFlag { addr, val } = *op {
                    let satisfied_initially = init.get(&addr).copied().unwrap_or(0) >= val;
                    if !satisfied_initially {
                        let candidates: Vec<&Vec<u64>> = setters
                            .get(&addr)
                            .map(|v| {
                                v.iter()
                                    .filter(|&&(sv, _, _)| sv >= val)
                                    .map(|&(_, st, si)| &vc[st][si])
                                    .collect()
                            })
                            .unwrap_or_default();
                        if !candidates.is_empty() {
                            // meet = pointwise min over all possible publishers.
                            let mut meet = candidates[0].clone();
                            for c in &candidates[1..] {
                                for (m, &v) in meet.iter_mut().zip(c.iter()) {
                                    *m = (*m).min(v);
                                }
                            }
                            for (c, m) in cur.iter_mut().zip(meet) {
                                *c = (*c).max(m);
                            }
                        }
                    }
                }
                if vc[t][i] != cur {
                    vc[t][i].clone_from(&cur);
                    changed = true;
                }
            }
        }
        if !changed {
            return vc;
        }
    }
}

/// Abstract maximal scheduler over the flag ops. Flags are monotone-max
/// counters, so executing any enabled op never disables another: a single
/// maximal run decides liveness exactly. Threads still blocked at the end
/// are deadlocked — either waiting on a value nobody ever publishes, or on
/// a cyclic chain among the stuck threads.
fn liveness(programs: &[Program], initial_flags: &[(u64, u64)], findings: &mut Vec<Finding>) {
    let n = programs.len();
    let mut flags: BTreeMap<u64, u64> = BTreeMap::new();
    for &(addr, val) in initial_flags {
        let e = flags.entry(addr).or_insert(0);
        *e = (*e).max(val);
    }
    let mut pc = vec![0usize; n];
    let mut progress = true;
    while progress {
        progress = false;
        for t in 0..n {
            while pc[t] < programs[t].ops.len() {
                match programs[t].ops[pc[t]] {
                    Op::WaitFlag { addr, val } => {
                        if flags.get(&addr).copied().unwrap_or(0) >= val {
                            pc[t] += 1;
                            progress = true;
                        } else {
                            break;
                        }
                    }
                    Op::SetFlag { addr, val } => {
                        let e = flags.entry(addr).or_insert(0);
                        *e = (*e).max(val);
                        pc[t] += 1;
                        progress = true;
                    }
                    _ => {
                        pc[t] += 1;
                        progress = true;
                    }
                }
            }
        }
    }
    let stuck: Vec<usize> = (0..n).filter(|&t| pc[t] < programs[t].ops.len()).collect();
    for &t in &stuck {
        let i = pc[t];
        let Op::WaitFlag { addr, val } = programs[t].ops[i] else {
            unreachable!("only WaitFlag blocks the abstract scheduler");
        };
        // Could anyone — stuck or not — ever publish enough?
        let publishers: Vec<usize> = programs
            .iter()
            .enumerate()
            .filter(|(_, p)| {
                p.ops
                    .iter()
                    .any(|o| matches!(*o, Op::SetFlag { addr: a, val: v } if a == addr && v >= val))
            })
            .map(|(u, _)| u)
            .collect();
        let message = if publishers.is_empty() {
            format!(
                "thread {t}: WaitFlag(addr {addr:#x}, val {val}) at op {i} can never be \
                 satisfied — no thread publishes {val} or more to that flag"
            )
        } else {
            format!(
                "thread {t}: WaitFlag(addr {addr:#x}, val {val}) at op {i} deadlocks — \
                 publishers {publishers:?} are themselves blocked (cyclic wait chain among \
                 threads {stuck:?})"
            )
        };
        findings.push(Finding {
            severity: Severity::Error,
            rule: Rule::Deadlock,
            threads: vec![t],
            ops: vec![i],
            line: Some(addr & !(LINE - 1)),
            message,
        });
    }
}

fn races(programs: &[Program], vc: &[Vec<Vec<u64>>], findings: &mut Vec<Finding>) {
    // Lines used by flag ops are intended sharing; data ops touching them
    // are flagged separately as accidental sharing.
    let mut flag_lines: BTreeSet<u64> = BTreeSet::new();
    for p in programs {
        for op in &p.ops {
            if let Op::SetFlag { addr, .. } | Op::WaitFlag { addr, .. } = *op {
                flag_lines.insert(line_of(addr));
            }
        }
    }

    let mut accesses: Vec<Access> = Vec::new();
    for (t, p) in programs.iter().enumerate() {
        // WaitUntil window bounds around each op.
        let mut win_lo = vec![0u64; p.ops.len()];
        let mut lo = 0u64;
        for (i, op) in p.ops.iter().enumerate() {
            if let Op::WaitUntil(w) = *op {
                lo = lo.max(w);
            }
            win_lo[i] = lo;
        }
        let mut win_hi = vec![u64::MAX; p.ops.len()];
        let mut hi = u64::MAX;
        for (i, op) in p.ops.iter().enumerate().rev() {
            win_hi[i] = hi;
            if let Op::WaitUntil(w) = *op {
                hi = w;
            }
        }
        for (i, op) in p.ops.iter().enumerate() {
            for (start, lines, write, streaming) in footprint(op) {
                accesses.push(Access {
                    thread: t,
                    op: i,
                    start,
                    lines,
                    write,
                    streaming,
                    win_lo: win_lo[i],
                    win_hi: win_hi[i],
                });
            }
        }
    }

    // Interval sweep: sort by start line, keep an active set pruned by end.
    accesses.sort_by_key(|a| (a.start, a.thread, a.op));
    let mut active: Vec<Access> = Vec::new();
    for &acc in &accesses {
        active.retain(|o| o.start + o.lines > acc.start);
        for &other in active.iter() {
            conflict(vc, &flag_lines, other, acc, findings);
        }
        active.push(acc);
    }
}

fn ordered(vc: &[Vec<Vec<u64>>], a: &Access, b: &Access) -> bool {
    vc[b.thread][b.op][a.thread] > a.op as u64 || vc[a.thread][a.op][b.thread] > b.op as u64
}

fn conflict(
    vc: &[Vec<Vec<u64>>],
    flag_lines: &BTreeSet<u64>,
    a: Access,
    b: Access,
    findings: &mut Vec<Finding>,
) {
    if a.thread == b.thread || (!a.write && !b.write) || ordered(vc, &a, &b) {
        return;
    }
    let lo = a.start.max(b.start);
    let hi = (a.start + a.lines).min(b.start + b.lines);
    if lo >= hi {
        return;
    }
    let shared_flag_line = (lo..hi).any(|l| flag_lines.contains(&l));
    let (mut t1, mut t2) = (a, b);
    if (t2.thread, t2.op) < (t1.thread, t1.op) {
        std::mem::swap(&mut t1, &mut t2);
    }
    let what = |x: &Access| if x.write { "writes" } else { "reads" };
    let describe = format!(
        "thread {} (op {}) {} and thread {} (op {}) {} line{} {:#x}{} with no \
         happens-before order",
        t1.thread,
        t1.op,
        what(&t1),
        t2.thread,
        t2.op,
        what(&t2),
        if hi - lo > 1 { "s" } else { "" },
        lo * LINE,
        if hi - lo > 1 {
            format!("..{:#x}", hi * LINE)
        } else {
            String::new()
        },
    );
    let (severity, rule, note) = if shared_flag_line {
        (
            Severity::Warn,
            Rule::FlagSharing,
            " — the line doubles as a synchronization flag (accidental sharing?)",
        )
    } else if a.streaming || b.streaming {
        (
            Severity::Warn,
            Rule::Race,
            " — a non-temporal stream is involved (shared streaming buffers are \
             intended pool collisions; values are not read back)",
        )
    } else if a.win_hi <= b.win_lo || b.win_hi <= a.win_lo {
        (
            Severity::Warn,
            Rule::Race,
            " — separated by WaitUntil windows (ordered only if the earlier op finishes \
             within its window; not a happens-before guarantee)",
        )
    } else {
        (Severity::Error, Rule::Race, "")
    };
    findings.push(Finding {
        severity,
        rule,
        threads: vec![t1.thread, t2.thread],
        ops: vec![t1.op, t2.op],
        line: Some(lo * LINE),
        message: format!("{describe}{note}"),
    });
}

/// Per-tile accumulation: (threads on the tile, their merged line ranges).
type TileFootprint = (Vec<usize>, Vec<(u64, u64)>);

fn capacity(programs: &[Program], findings: &mut Vec<Finding>) {
    let l1_lines = TagCache::knl_l1().capacity_lines() as u64;
    let l2_lines = TagCache::knl_l2().capacity_lines() as u64;
    let mut per_tile: BTreeMap<u16, TileFootprint> = BTreeMap::new();
    for (t, p) in programs.iter().enumerate() {
        let mut ranges: Vec<(u64, u64)> = Vec::new();
        for op in &p.ops {
            for (start, lines, _, _) in footprint(op) {
                ranges.push((start, start + lines));
            }
            if let Op::Evict(a) = *op {
                ranges.push((line_of(a), line_of(a) + 1));
            }
        }
        let ws = distinct_lines(&mut ranges);
        if ws > l1_lines {
            findings.push(Finding {
                severity: Severity::Info,
                rule: Rule::Capacity,
                threads: vec![t],
                ops: Vec::new(),
                line: None,
                message: format!(
                    "thread {t} touches {ws} distinct lines (> L1's {l1_lines}): a \
                     cache-resident phase would spill to L2/memory"
                ),
            });
        }
        let tile = per_tile.entry(p.core().tile().0).or_default();
        tile.0.push(t);
        tile.1.extend(ranges);
    }
    for (tile, (threads, mut ranges)) in per_tile {
        let ws = distinct_lines(&mut ranges);
        if ws > l2_lines {
            findings.push(Finding {
                severity: Severity::Info,
                rule: Rule::Capacity,
                message: format!(
                    "tile {tile} (threads {threads:?}) touches {ws} distinct lines \
                     (> L2's {l2_lines}): the tile working set spills to memory"
                ),
                threads,
                ops: Vec::new(),
                line: None,
            });
        }
    }
}

/// Count distinct lines covered by half-open `(start, end)` ranges.
fn distinct_lines(ranges: &mut [(u64, u64)]) -> u64 {
    ranges.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for &(s, e) in ranges.iter() {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::HwThreadId;

    fn prog(hw: u16, ops: Vec<Op>) -> Program {
        let mut p = Program::new(HwThreadId(hw));
        for op in ops {
            p.push(op);
        }
        p
    }

    #[test]
    fn level_parse_roundtrip() {
        for l in AnalyzeLevel::ALL {
            assert_eq!(AnalyzeLevel::parse(l.name()), Some(l));
        }
        assert_eq!(AnalyzeLevel::parse("on"), Some(AnalyzeLevel::Warn));
        assert_eq!(AnalyzeLevel::parse("bogus"), None);
    }

    #[test]
    fn unsynchronized_write_write_is_an_error_race() {
        let a = prog(0, vec![Op::Write(4096)]);
        let b = prog(4, vec![Op::Write(4096)]);
        let r = analyze(&[a, b], &[]);
        assert_eq!(r.count(Severity::Error), 1);
        let f = &r.findings[0];
        assert_eq!(f.rule, Rule::Race);
        assert_eq!(f.threads, vec![0, 1]);
        assert_eq!(f.line, Some(4096));
    }

    #[test]
    fn flag_handoff_orders_the_pair() {
        let flag = 1 << 20;
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::Write(4096))
            .push(Op::SetFlag { addr: flag, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitFlag { addr: flag, val: 1 })
            .push(Op::Read(4096));
        let r = analyze(&[a, b], &[]);
        assert!(r.clean_at(Severity::Warn), "{r}");
    }

    #[test]
    fn meet_over_publishers_is_conservative() {
        // Two possible publishers; only one also wrote the data line. The
        // wait may be satisfied by the *other*, so the read still races.
        let flag = 1 << 20;
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::Write(4096))
            .push(Op::SetFlag { addr: flag, val: 1 });
        let mut c = Program::new(HwThreadId(8));
        c.push(Op::SetFlag { addr: flag, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitFlag { addr: flag, val: 1 })
            .push(Op::Read(4096));
        let r = analyze(&[a, c, b], &[]);
        assert_eq!(r.count(Severity::Error), 1, "{r}");
        assert_eq!(r.findings[0].rule, Rule::Race);
    }

    #[test]
    fn transitive_ordering_through_a_chain() {
        let (f1, f2) = (1 << 20, 2 << 20);
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::Write(4096))
            .push(Op::SetFlag { addr: f1, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitFlag { addr: f1, val: 1 })
            .push(Op::SetFlag { addr: f2, val: 1 });
        let mut c = Program::new(HwThreadId(8));
        c.push(Op::WaitFlag { addr: f2, val: 1 })
            .push(Op::Write(4096));
        let r = analyze(&[a, b, c], &[]);
        assert!(r.clean_at(Severity::Warn), "{r}");
    }

    #[test]
    fn initial_flag_breaks_the_edge() {
        // The wait can complete immediately via the pre-set flag, so the
        // publisher's write is NOT ordered before the read.
        let flag = 1 << 20;
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::Write(4096))
            .push(Op::SetFlag { addr: flag, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitFlag { addr: flag, val: 1 })
            .push(Op::Read(4096));
        let r = analyze(&[a.clone(), b.clone()], &[(flag, 1)]);
        assert_eq!(r.count(Severity::Error), 1, "{r}");
        let r = analyze(&[a, b], &[]);
        assert!(r.clean_at(Severity::Warn));
    }

    #[test]
    fn never_published_wait_is_a_deadlock() {
        let p = prog(0, vec![Op::WaitFlag { addr: 64, val: 1 }]);
        let r = analyze(&[p], &[]);
        assert_eq!(r.count(Severity::Error), 1);
        let f = &r.findings[0];
        assert_eq!(f.rule, Rule::Deadlock);
        assert!(f.message.contains("no thread publishes"), "{}", f.message);
    }

    #[test]
    fn insufficient_value_is_a_deadlock() {
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::SetFlag { addr: 64, val: 1 });
        let b = prog(4, vec![Op::WaitFlag { addr: 64, val: 2 }]);
        let r = analyze(&[a, b], &[]);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.findings[0].rule, Rule::Deadlock);
    }

    #[test]
    fn cyclic_wait_chain_is_a_deadlock() {
        let (f1, f2) = (64u64, 128u64);
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::WaitFlag { addr: f2, val: 1 })
            .push(Op::SetFlag { addr: f1, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitFlag { addr: f1, val: 1 })
            .push(Op::SetFlag { addr: f2, val: 1 });
        let r = analyze(&[a, b], &[]);
        assert_eq!(r.count(Severity::Error), 2, "{r}");
        for f in &r.findings {
            assert_eq!(f.rule, Rule::Deadlock);
            assert!(f.message.contains("cyclic wait chain"), "{}", f.message);
        }
    }

    #[test]
    fn initial_flag_unblocks_liveness() {
        let p = prog(0, vec![Op::WaitFlag { addr: 64, val: 3 }]);
        let r = analyze(&[p], &[(64, 3)]);
        assert!(r.clean_at(Severity::Warn), "{r}");
    }

    #[test]
    fn mark_pairing_errors() {
        let p = prog(0, vec![Op::MarkEnd(0)]);
        let r = analyze(&[p], &[]);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.findings[0].rule, Rule::MarkPairing);

        let p = prog(0, vec![Op::MarkStart(0), Op::MarkStart(0), Op::MarkEnd(0)]);
        let r = analyze(&[p], &[]);
        assert_eq!(r.count(Severity::Warn), 1, "double-open warns: {r}");

        let p = prog(0, vec![Op::MarkStart(3)]);
        let r = analyze(&[p], &[]);
        assert_eq!(r.count(Severity::Warn), 1, "unclosed warns: {r}");
    }

    #[test]
    fn duplicate_pin_is_an_error() {
        let a = prog(0, vec![Op::Compute(10)]);
        let b = prog(0, vec![Op::Compute(10)]);
        let r = analyze(&[a, b], &[]);
        assert_eq!(r.count(Severity::Error), 1);
        assert_eq!(r.findings[0].rule, Rule::DuplicatePin);
    }

    #[test]
    fn stream_overlap_is_a_warning_not_an_error() {
        let mk = |hw: u16| {
            prog(
                hw,
                vec![Op::Stream {
                    kind: StreamKind::Write,
                    a: 1 << 20,
                    b: 0,
                    c: 0,
                    lines: 16,
                    vectorized: true,
                }],
            )
        };
        let r = analyze(&[mk(0), mk(4)], &[]);
        assert!(r.clean_at(Severity::Error), "{r}");
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.findings[0].rule, Rule::Race);
    }

    #[test]
    fn read_vs_stream_overlap_is_a_warning_not_an_error() {
        // membw's random-pool methodology: a coherent load sweep racing
        // another thread's non-temporal store over the same pool buffer is
        // an intended collision (values are never read back), so it must
        // stay below Error — the suite runs under `--analyze error`.
        let reader = prog(
            0,
            vec![Op::ReadBuf {
                src: 1 << 20,
                bytes: 16 * 64,
                vectorized: true,
            }],
        );
        let writer = prog(
            4,
            vec![Op::Stream {
                kind: StreamKind::Write,
                a: 1 << 20,
                b: 0,
                c: 0,
                lines: 16,
                vectorized: true,
            }],
        );
        let r = analyze(&[reader, writer], &[]);
        assert!(r.clean_at(Severity::Error), "{r}");
        assert_eq!(r.count(Severity::Warn), 1);
        assert_eq!(r.findings[0].rule, Rule::Race);
    }

    #[test]
    fn window_separated_conflict_downgrades_to_warn() {
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::WaitUntil(1_000_000))
            .push(Op::Write(4096))
            .push(Op::WaitUntil(2_000_000));
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::WaitUntil(2_000_000)).push(Op::Write(4096));
        let r = analyze(&[a, b], &[]);
        assert!(r.clean_at(Severity::Error), "{r}");
        assert_eq!(r.count(Severity::Warn), 1);
    }

    #[test]
    fn data_op_on_flag_line_warns_accidental_sharing() {
        let flag = 1 << 20;
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::SetFlag { addr: flag, val: 1 });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::Write(flag));
        let mut c = Program::new(HwThreadId(8));
        c.push(Op::NtStore(flag));
        let r = analyze(&[a, b, c], &[]);
        assert!(r.clean_at(Severity::Error), "{r}");
        assert!(r.by_rule(Rule::FlagSharing).count() >= 1, "{r}");
    }

    #[test]
    fn footprint_expansion_catches_buffer_overlap() {
        // CopyBuf destination overlaps another thread's chase buffer.
        let mut a = Program::new(HwThreadId(0));
        a.push(Op::CopyBuf {
            src: 0,
            dst: 1 << 20,
            bytes: 64 * 64,
            vectorized: true,
        });
        let mut b = Program::new(HwThreadId(4));
        b.push(Op::Chase {
            base: (1 << 20) + 32 * 64,
            lines: 64,
        });
        let r = analyze(&[a, b], &[]);
        assert_eq!(r.count(Severity::Error), 1, "{r}");
        let f = &r.findings[0];
        assert_eq!(f.line, Some((1u64 << 20) + 32 * 64));
    }

    #[test]
    fn capacity_diagnostics_are_info_only() {
        let p = prog(
            0,
            vec![Op::Chase {
                base: 1 << 22,
                lines: 4096,
            }],
        );
        let r = analyze(&[p], &[]);
        assert!(r.clean_at(Severity::Warn), "{r}");
        assert_eq!(r.count(Severity::Info), 1);
        assert_eq!(r.findings[0].rule, Rule::Capacity);
    }

    #[test]
    fn report_is_bounded_and_deterministic() {
        // 100 racing single-line writers per line → far over MAX_PER_RULE.
        let progs: Vec<Program> = (0..40)
            .map(|t| {
                prog(
                    (t * 4) as u16,
                    (0..6).map(|k| Op::Write(4096 + k * 64)).collect(),
                )
            })
            .collect();
        let r1 = analyze(&progs, &[]);
        let r2 = analyze(&progs, &[]);
        assert_eq!(r1.findings, r2.findings);
        assert!(r1.count(Severity::Error) <= MAX_PER_RULE + 1);
        assert!(
            r1.findings
                .iter()
                .any(|f| f.message.contains("more error race")),
            "truncation note present: {}",
            r1.findings.last().unwrap()
        );
    }

    #[test]
    fn distinct_lines_merges_overlaps() {
        let mut r = vec![(0, 4), (2, 6), (10, 12)];
        assert_eq!(distinct_lines(&mut r), 8);
        let mut r = vec![];
        assert_eq!(distinct_lines(&mut r), 0);
    }

    #[test]
    #[should_panic(expected = "static analysis violation")]
    fn enforce_panics_on_errors() {
        let a = prog(0, vec![Op::Write(4096)]);
        let b = prog(4, vec![Op::Write(4096)]);
        analyze(&[a, b], &[]).enforce(AnalyzeLevel::Error);
    }

    #[test]
    fn enforce_off_ignores_everything() {
        let a = prog(0, vec![Op::Write(4096)]);
        let b = prog(4, vec![Op::Write(4096)]);
        analyze(&[a, b], &[]).enforce(AnalyzeLevel::Off);
    }
}
