//! MESIF coherence state, tracked per line at the line's home directory.
//!
//! KNL keeps L2 caches coherent with a MESIF protocol run by the distributed
//! Cache/Home Agents (one per tile). We track the global truth per line in a
//! [`DirEntry`]: which tiles cache it, who owns it (M/E), and which sharer
//! holds the F (forward) state. Tag arrays (see `cache`) model capacity; the
//! directory models permission. Invalidation uses an epoch counter (`version`)
//! so private L1s never need to be walked.

use knl_arch::TileId;

/// The five MESIF states, from the perspective of one tile's copy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MesifState {
    /// Dirty, exclusive to one tile.
    Modified,
    /// Clean, exclusive to one tile.
    Exclusive,
    /// Clean, possibly replicated.
    Shared,
    /// Shared copy designated to answer requests (MESIF's F).
    Forward,
    /// Not present.
    Invalid,
}

impl MesifState {
    /// Single-character tag used by benchmark labels (`M`, `E`, `S`, `F`, `I`).
    pub fn letter(self) -> char {
        match self {
            MesifState::Modified => 'M',
            MesifState::Exclusive => 'E',
            MesifState::Shared => 'S',
            MesifState::Forward => 'F',
            MesifState::Invalid => 'I',
        }
    }
}

/// Global (directory-side) state of a line.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum GlobalState {
    /// No cache holds the line.
    #[default]
    Uncached,
    /// A single tile holds it clean-exclusive.
    Exclusive {
        /// The owning tile.
        owner: TileId,
    },
    /// A single tile holds it dirty.
    Modified {
        /// The owning tile.
        owner: TileId,
    },
    /// One or more tiles hold it shared; at most one is the F(orward) holder.
    Shared {
        /// The designated forwarder, if one survives.
        forward: Option<TileId>,
    },
}

/// Directory entry for one line.
#[derive(Debug, Clone, Default)]
pub struct DirEntry {
    /// Global residency/ownership state.
    pub state: GlobalState,
    /// Tiles holding the line in S (the F holder is listed here too).
    pub sharers: Vec<TileId>,
    /// Coherence epoch: bumped whenever cached copies become invalid, so
    /// tag-array hits can be validated without eager invalidation walks.
    pub version: u32,
    /// The home CHA serializes requests to this line; next free service slot.
    pub busy_until: u64,
}

impl DirEntry {
    /// The MESIF state tile `t` holds this line in (assuming its tag array
    /// still has a current-version copy).
    pub fn state_of(&self, t: TileId) -> MesifState {
        match &self.state {
            GlobalState::Uncached => MesifState::Invalid,
            GlobalState::Exclusive { owner } => {
                if *owner == t {
                    MesifState::Exclusive
                } else {
                    MesifState::Invalid
                }
            }
            GlobalState::Modified { owner } => {
                if *owner == t {
                    MesifState::Modified
                } else {
                    MesifState::Invalid
                }
            }
            GlobalState::Shared { forward } => {
                if *forward == Some(t) {
                    MesifState::Forward
                } else if self.sharers.contains(&t) {
                    MesifState::Shared
                } else {
                    MesifState::Invalid
                }
            }
        }
    }

    /// The tile that must supply data (owner or F holder), if any cache can.
    pub fn supplier(&self) -> Option<TileId> {
        match &self.state {
            GlobalState::Uncached => None,
            GlobalState::Exclusive { owner } | GlobalState::Modified { owner } => Some(*owner),
            // In MESIF only the F holder responds; if F was dropped (e.g.
            // evicted), memory supplies the data.
            GlobalState::Shared { forward } => *forward,
        }
    }

    /// Is the line dirty somewhere?
    pub fn dirty(&self) -> bool {
        matches!(self.state, GlobalState::Modified { .. })
    }

    /// Number of tiles holding a copy.
    pub fn num_holders(&self) -> usize {
        match &self.state {
            GlobalState::Uncached => 0,
            GlobalState::Exclusive { .. } | GlobalState::Modified { .. } => 1,
            GlobalState::Shared { .. } => self.sharers.len(),
        }
    }

    /// Record a read by tile `t` that was satisfied (by cache or memory).
    /// Returns the new state `t` holds. MESIF: the most recent requester
    /// becomes the F holder; a previous owner downgrades to S.
    pub fn grant_read(&mut self, t: TileId) -> MesifState {
        match self.state.clone() {
            GlobalState::Uncached => {
                self.state = GlobalState::Exclusive { owner: t };
                self.sharers.clear();
                MesifState::Exclusive
            }
            GlobalState::Exclusive { owner } | GlobalState::Modified { owner } => {
                if owner == t {
                    return self.state_of(t);
                }
                self.sharers.clear();
                self.sharers.push(owner);
                self.sharers.push(t);
                self.state = GlobalState::Shared { forward: Some(t) };
                MesifState::Forward
            }
            GlobalState::Shared { .. } => {
                if !self.sharers.contains(&t) {
                    self.sharers.push(t);
                }
                self.state = GlobalState::Shared { forward: Some(t) };
                MesifState::Forward
            }
        }
    }

    /// Record a write by tile `t` gaining ownership. Returns the number of
    /// *other* tiles whose copies were invalidated.
    ///
    /// The version is bumped on *every* write: even a silent E→M upgrade
    /// must invalidate the sibling core's L1 copy within the tile (the
    /// writer's own caches are re-filled with the new version by the
    /// machine, so only stale copies die).
    pub fn grant_write(&mut self, t: TileId) -> usize {
        let invalidated = match &self.state {
            GlobalState::Uncached => 0,
            GlobalState::Exclusive { owner } | GlobalState::Modified { owner } => {
                usize::from(*owner != t)
            }
            GlobalState::Shared { .. } => self.sharers.iter().filter(|&&s| s != t).count(),
        };
        self.version = self.version.wrapping_add(1);
        self.state = GlobalState::Modified { owner: t };
        self.sharers.clear();
        invalidated
    }

    /// Tile `t` drops its copy (capacity eviction). Returns true if the line
    /// was dirty at `t` (a write-back is due).
    pub fn evict(&mut self, t: TileId) -> bool {
        match self.state.clone() {
            GlobalState::Uncached => false,
            GlobalState::Exclusive { owner } => {
                if owner == t {
                    self.state = GlobalState::Uncached;
                }
                false
            }
            GlobalState::Modified { owner } => {
                if owner == t {
                    self.state = GlobalState::Uncached;
                    true
                } else {
                    false
                }
            }
            GlobalState::Shared { forward } => {
                self.sharers.retain(|&s| s != t);
                let fwd = if forward == Some(t) { None } else { forward };
                if self.sharers.is_empty() {
                    self.state = GlobalState::Uncached;
                } else {
                    self.state = GlobalState::Shared { forward: fwd };
                }
                false
            }
        }
    }

    /// Invalidate every copy (e.g. a non-temporal store overwrote memory).
    /// Returns true if a dirty copy was destroyed.
    pub fn invalidate_all(&mut self) -> bool {
        let was_dirty = self.dirty();
        if !matches!(self.state, GlobalState::Uncached) {
            self.version = self.version.wrapping_add(1);
        }
        self.state = GlobalState::Uncached;
        self.sharers.clear();
        was_dirty
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T0: TileId = TileId(0);
    const T1: TileId = TileId(1);
    const T2: TileId = TileId(2);

    #[test]
    fn first_read_is_exclusive() {
        let mut e = DirEntry::default();
        assert_eq!(e.grant_read(T0), MesifState::Exclusive);
        assert_eq!(e.state_of(T0), MesifState::Exclusive);
        assert_eq!(e.state_of(T1), MesifState::Invalid);
        assert_eq!(e.supplier(), Some(T0));
    }

    #[test]
    fn second_read_creates_forward() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        assert_eq!(e.grant_read(T1), MesifState::Forward);
        assert_eq!(e.state_of(T0), MesifState::Shared);
        assert_eq!(e.state_of(T1), MesifState::Forward);
        // Only the F holder supplies.
        assert_eq!(e.supplier(), Some(T1));
        assert_eq!(e.num_holders(), 2);
    }

    #[test]
    fn forward_moves_to_latest_reader() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.grant_read(T2);
        assert_eq!(e.state_of(T1), MesifState::Shared);
        assert_eq!(e.state_of(T2), MesifState::Forward);
        assert_eq!(e.num_holders(), 3);
    }

    #[test]
    fn write_invalidates_sharers_and_bumps_version() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.grant_read(T2);
        let v0 = e.version;
        let inv = e.grant_write(T0);
        assert_eq!(inv, 2);
        assert_eq!(e.state_of(T0), MesifState::Modified);
        assert_eq!(e.state_of(T1), MesifState::Invalid);
        assert_ne!(e.version, v0);
    }

    #[test]
    fn write_upgrade_from_exclusive_sends_no_invalidations_but_bumps_version() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        let v0 = e.version;
        assert_eq!(e.grant_write(T0), 0, "E→M upgrade is silent on the mesh");
        assert_ne!(e.version, v0, "sibling-core L1 copies must still die");
        assert!(e.dirty());
    }

    #[test]
    fn read_of_modified_downgrades_owner() {
        let mut e = DirEntry::default();
        e.grant_write(T0);
        assert_eq!(e.grant_read(T1), MesifState::Forward);
        assert_eq!(e.state_of(T0), MesifState::Shared);
        assert!(!e.dirty(), "downgrade implies write-back");
    }

    #[test]
    fn evict_dirty_reports_writeback() {
        let mut e = DirEntry::default();
        e.grant_write(T0);
        assert!(e.evict(T0));
        assert_eq!(e.state_of(T0), MesifState::Invalid);
        assert_eq!(e.num_holders(), 0);
    }

    #[test]
    fn evict_forward_falls_back_to_memory() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        assert!(!e.evict(T1)); // F holder evicts
        assert_eq!(e.supplier(), None, "no F holder -> memory supplies");
        assert_eq!(e.state_of(T0), MesifState::Shared);
    }

    #[test]
    fn evict_last_sharer_uncaches() {
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.evict(T0);
        e.evict(T1);
        assert_eq!(e.state, GlobalState::Uncached);
    }

    #[test]
    fn single_writer_invariant() {
        // Whatever sequence of grants happens, at most one tile may ever be
        // in M/E, and M/E excludes sharers.
        let mut e = DirEntry::default();
        let seq: [(bool, TileId); 8] = [
            (false, T0),
            (true, T1),
            (false, T2),
            (false, T0),
            (true, T2),
            (true, T0),
            (false, T1),
            (true, T1),
        ];
        for (is_write, t) in seq {
            if is_write {
                e.grant_write(t);
            } else {
                e.grant_read(t);
            }
            let owners = [T0, T1, T2]
                .iter()
                .filter(|&&x| matches!(e.state_of(x), MesifState::Modified | MesifState::Exclusive))
                .count();
            assert!(owners <= 1);
            if owners == 1 {
                let sharers = [T0, T1, T2]
                    .iter()
                    .filter(|&&x| matches!(e.state_of(x), MesifState::Shared | MesifState::Forward))
                    .count();
                assert_eq!(sharers, 0, "M/E excludes S/F copies");
            }
        }
    }

    #[test]
    fn evict_forward_then_reread_restores_forward() {
        // Once the F holder evicts, memory supplies — until the next read,
        // whose requester becomes the new forwarder.
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.evict(T1);
        assert_eq!(e.supplier(), None);
        assert_eq!(e.grant_read(T2), MesifState::Forward);
        assert_eq!(e.supplier(), Some(T2));
        assert_eq!(e.state_of(T0), MesifState::Shared);
    }

    #[test]
    fn evict_non_holder_is_noop() {
        let mut e = DirEntry::default();
        e.grant_write(T0);
        let v = e.version;
        assert!(!e.evict(T1), "a tile without a copy owes no write-back");
        assert_eq!(e.state_of(T0), MesifState::Modified);
        assert_eq!(e.version, v);
        let mut s = DirEntry::default();
        s.grant_read(T0);
        s.grant_read(T1);
        assert!(!s.evict(T2));
        assert_eq!(s.num_holders(), 2);
    }

    #[test]
    fn evict_last_sharer_then_read_is_exclusive() {
        // Last-sharer downgrade: S with one holder collapses to Uncached on
        // evict, so the next reader starts a fresh E epoch.
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.evict(T1);
        e.evict(T0);
        assert_eq!(e.state, GlobalState::Uncached);
        assert!(e.sharers.is_empty(), "no stale sharers may survive");
        assert_eq!(e.grant_read(T2), MesifState::Exclusive);
    }

    #[test]
    fn invalidate_all_preserves_future_busy_slot() {
        // The home CHA's service slot outlives the copies: invalidation is
        // a directory action and must not rewind `busy_until` (the checker
        // enforces per-line monotonicity).
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.busy_until = 5_000_000;
        e.invalidate_all();
        assert_eq!(e.busy_until, 5_000_000);
        assert_eq!(e.num_holders(), 0);
    }

    #[test]
    fn invalidate_all_bumps_version_only_when_cached() {
        let mut e = DirEntry::default();
        assert!(!e.invalidate_all());
        assert_eq!(e.version, 0, "nothing cached: no epoch to retire");
        e.grant_read(T0);
        let v = e.version;
        e.invalidate_all();
        assert_ne!(e.version, v, "cached copies must die via the epoch bump");
    }

    #[test]
    fn invalidate_all_destroys_dirty() {
        let mut e = DirEntry::default();
        e.grant_write(T1);
        assert!(e.invalidate_all());
        assert!(!e.invalidate_all());
        assert_eq!(e.num_holders(), 0);
    }

    #[test]
    fn letters() {
        assert_eq!(MesifState::Modified.letter(), 'M');
        assert_eq!(MesifState::Invalid.letter(), 'I');
    }
}
