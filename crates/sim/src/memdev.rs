//! Memory devices (DDR channels and MCDRAM EDCs) as queueing servers.
//!
//! Each device serves one 64 B line per service interval; latency and
//! occupancy are decoupled so a lone access sees the device latency while a
//! saturated stream is spaced at the service rate.
//!
//! Two device flavours, reflecting the physics the paper's Table II
//! numbers imply:
//!
//! * **DDR channels** are half-duplex: reads and writes share one bus. A
//!   *write streak* pays the full write service (bus turnaround, ODT — the
//!   write-only peak is ~36 GB/s, half the read peak), but a write
//!   *interleaved* with reads hides in read gaps and costs about a read
//!   slot — which is how copy and triad reach the ~70+ GB/s the paper
//!   measures despite the low write-only peak.
//! * **MCDRAM EDCs** (Hybrid-Memory-Cube links) are full-duplex: reads and
//!   writes run on separate sub-channels, so a copy streams at
//!   `min(read_peak, write_peak)` per direction concurrently.
//!
//! Because the runner executes thread programs in bounded time slices,
//! arrivals may be *slightly* out of order (bounded by the slice span).
//! Each server runs a virtual clock `V` with a reorder window: `V` may lag
//! real time by at most `window`. Total work is conserved exactly, so
//! saturated throughput equals the service rate regardless of event
//! ordering.

use crate::SimTime;

/// Direction of the last serviced request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Dir {
    Idle,
    Read,
    Write,
}

/// Static parameters of one device.
#[derive(Debug, Clone, Copy)]
pub struct DeviceParams {
    /// Access latency (decoupled from occupancy).
    pub latency_ps: SimTime,
    /// Service time per line read.
    pub read_service_ps: SimTime,
    /// Service per write within a write streak.
    pub write_service_ps: SimTime,
    /// Service per write that interleaves a read stream (half-duplex only).
    pub write_mixed_ps: SimTime,
    /// Penalty when a half-duplex bus flips direction.
    pub turnaround_ps: SimTime,
    /// Full-duplex devices serve reads and writes on independent channels.
    pub duplex: bool,
}

/// One memory device (a DDR channel or an MCDRAM EDC).
#[derive(Debug, Clone)]
pub struct MemDevice {
    p: DeviceParams,
    /// Virtual service clock for reads (and, when half-duplex, writes too).
    vclock: SimTime,
    /// Write-direction virtual clock (duplex devices only).
    wclock: SimTime,
    window_ps: SimTime,
    last: Dir,
    /// Lines served as reads (utilization reporting).
    pub served_reads: u64,
    /// Lines served as writes.
    pub served_writes: u64,
}

/// Default reorder window: matches the runner's chunk time-slice bound.
pub const DEFAULT_REORDER_WINDOW_PS: SimTime = 1_000_000;

impl MemDevice {
    /// Build a device from its parameters.
    pub fn new(p: DeviceParams) -> Self {
        MemDevice {
            p,
            vclock: 0,
            wclock: 0,
            window_ps: DEFAULT_REORDER_WINDOW_PS,
            last: Dir::Idle,
            served_reads: 0,
            served_writes: 0,
        }
    }

    /// Half-duplex device with symmetric mixed writes (tests/back-compat).
    pub fn simple(
        latency_ps: SimTime,
        read_service_ps: SimTime,
        write_service_ps: SimTime,
        turnaround_ps: SimTime,
    ) -> Self {
        MemDevice::new(DeviceParams {
            latency_ps,
            read_service_ps,
            write_service_ps,
            write_mixed_ps: write_service_ps,
            turnaround_ps,
            duplex: false,
        })
    }

    /// Override the reorder window (tests / ablation).
    pub fn with_window(mut self, window_ps: SimTime) -> Self {
        self.window_ps = window_ps;
        self
    }

    /// Serve one line read arriving at the device at `arrival`.
    /// Returns the time the data is ready at the device.
    pub fn read(&mut self, arrival: SimTime) -> SimTime {
        self.served_reads += 1;
        let turnaround = if !self.p.duplex && self.last == Dir::Write {
            self.p.turnaround_ps
        } else {
            0
        };
        self.last = Dir::Read;
        let v = self.vclock.max(arrival.saturating_sub(self.window_ps));
        let start = v + turnaround;
        self.vclock = start + self.p.read_service_ps;
        (arrival + self.p.latency_ps).max(arrival.max(start) + self.p.read_service_ps)
    }

    /// Serve one line write arriving at `arrival`. Returns the time the
    /// write is accepted (posted writes don't wait for retirement).
    pub fn write(&mut self, arrival: SimTime) -> SimTime {
        self.served_writes += 1;
        if self.p.duplex {
            // Independent write channel: no interaction with reads.
            let v = self.wclock.max(arrival.saturating_sub(self.window_ps));
            self.wclock = v + self.p.write_service_ps;
            return (arrival + self.p.latency_ps).max(arrival.max(v) + self.p.write_service_ps);
        }
        // Half-duplex: a write following a read hides in the read stream's
        // gaps (mixed cost); consecutive writes pay the streak cost.
        let service = if self.last == Dir::Write {
            self.p.write_service_ps
        } else {
            self.p.write_mixed_ps
        };
        let turnaround = if self.last == Dir::Read {
            self.p.turnaround_ps
        } else {
            0
        };
        self.last = Dir::Write;
        let v = self.vclock.max(arrival.saturating_sub(self.window_ps));
        let start = v + turnaround;
        self.vclock = start + service;
        (arrival + self.p.latency_ps).max(arrival.max(start) + service)
    }

    /// Device latency (exposed for path accounting).
    pub fn latency_ps(&self) -> SimTime {
        self.p.latency_ps
    }

    /// Work committed through this virtual time (read/shared channel).
    pub fn vclock(&self) -> SimTime {
        self.vclock
    }

    /// Estimated lines queued ahead of a request arriving at `arrival`
    /// (service slots committed beyond the arrival time, on the shared/read
    /// channel). A pure observer for the trace layer's queue-depth events.
    pub fn backlog_lines(&self, arrival: SimTime) -> u32 {
        let pending = self.vclock.saturating_sub(arrival);
        (pending / self.p.read_service_ps.max(1)).min(u32::MAX as u64) as u32
    }

    /// Forget all queueing state (between benchmark repetitions).
    pub fn reset(&mut self) {
        self.vclock = 0;
        self.wclock = 0;
        self.last = Dir::Idle;
        self.served_reads = 0;
        self.served_writes = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dev() -> MemDevice {
        MemDevice::simple(60_000, 5_000, 10_000, 400)
    }

    #[test]
    fn lone_read_sees_latency() {
        let mut d = dev();
        assert_eq!(d.read(1_000), 61_000);
    }

    #[test]
    fn back_to_back_reads_spaced_at_service_rate() {
        let mut d = dev();
        let mut last = 0;
        for i in 0..200u64 {
            last = d.read(i * 100);
        }
        assert!(last >= 1_000_000, "last={last}");
        assert!(last < 1_000_000 + 70_000);
        assert_eq!(d.served_reads, 200);
    }

    #[test]
    fn idle_gaps_do_not_accumulate() {
        let mut d = dev();
        let a = d.read(0);
        let b = d.read(10_000_000);
        assert_eq!(b - 10_000_000, a, "second lone read sees same latency");
    }

    #[test]
    fn write_streak_pays_full_service() {
        let mut d = dev();
        for _ in 0..100 {
            d.write(0);
        }
        // First write mixed (10_000? no: last=Idle -> mixed cost), then 99
        // streak writes at 10_000 each.
        assert!(d.vclock() >= 99 * 10_000, "streak writes: {}", d.vclock());
    }

    #[test]
    fn mixed_write_hides_in_read_stream() {
        // R W R W ... on a half-duplex device with cheap mixed writes.
        let mut d = MemDevice::new(DeviceParams {
            latency_ps: 60_000,
            read_service_ps: 5_000,
            write_service_ps: 10_000,
            write_mixed_ps: 5_000,
            turnaround_ps: 0,
            duplex: false,
        });
        for _ in 0..50 {
            d.read(0);
            d.write(0);
        }
        // 50 reads + 50 mixed writes at 5_000 each = 500_000.
        assert_eq!(d.vclock(), 500_000);
    }

    #[test]
    fn duplex_overlaps_reads_and_writes() {
        let mut d = MemDevice::new(DeviceParams {
            latency_ps: 88_000,
            read_service_ps: 1_630,
            write_service_ps: 3_000,
            write_mixed_ps: 3_000,
            turnaround_ps: 400,
            duplex: true,
        });
        let mut last = 0u64;
        for _ in 0..100 {
            last = last.max(d.read(0));
            last = last.max(d.write(0));
        }
        // Writes bound the copy: 100 * 3_000 = 300_000, NOT 100*(1_630+3_000).
        assert!(last <= 300_000 + 88_000 + 5_000, "duplex copy: {last}");
        assert!(last >= 300_000, "write channel still serializes: {last}");
    }

    #[test]
    fn out_of_order_arrivals_conserve_throughput() {
        let mut d = dev().with_window(1_000_000);
        let mut last = 0u64;
        for i in 0..100u64 {
            last = last.max(d.read(i * 8_000));
        }
        for i in 0..100u64 {
            last = last.max(d.read(i * 8_000));
        }
        assert!(last >= 1_000_000, "conservation: {last}");
        assert!(last <= 1_100_000 + 60_000, "no double counting: {last}");
    }

    #[test]
    fn burst_after_idle_still_queues() {
        let mut d = dev().with_window(1_000);
        d.read(0);
        let t0 = 10_000_000_000u64;
        let mut last = 0;
        for _ in 0..1000u64 {
            last = d.read(t0);
        }
        assert!(
            last >= t0 + 5_000 * 1000 - 1_000 - 5_000,
            "burst must queue: {}",
            last - t0
        );
    }

    #[test]
    fn backlog_estimates_queue_depth() {
        let mut d = dev(); // read service 5_000 ps/line
        assert_eq!(d.backlog_lines(0), 0);
        for _ in 0..10 {
            d.read(0);
        }
        assert_eq!(d.backlog_lines(0), 10);
        assert_eq!(d.backlog_lines(25_000), 5);
        assert_eq!(d.backlog_lines(1_000_000), 0);
    }

    #[test]
    fn reset_clears_queue() {
        let mut d = dev();
        for _ in 0..10 {
            d.read(0);
        }
        d.reset();
        assert_eq!(d.vclock(), 0);
        assert_eq!(d.read(0), 60_000);
    }
}
