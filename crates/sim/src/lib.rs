//! Discrete-event simulator of the KNL memory system.
//!
//! This crate is the hardware substitute for the Xeon Phi KNL 7210 the paper
//! measured (see DESIGN.md §2). It models, at 64-byte line granularity:
//!
//! * per-core L1 and per-tile L2 **tag arrays** (real sets/ways/LRU),
//! * a **MESIF** coherence protocol with one distributed tag directory (CHA)
//!   per tile; requests to the same line serialize at its home CHA, which is
//!   what *produces* the paper's linear contention law `T_C(N) = α + β·N`,
//! * the **mesh of rings** as an analytic Y-then-X hop-cost fabric (the
//!   paper measured no congestion; a link-occupancy fabric is provided for
//!   ablation),
//! * **DDR channels and MCDRAM EDCs** as queueing servers with separate
//!   read/write service rates and a read↔write turnaround penalty,
//! * the **MCDRAM memory-side direct-mapped cache** of the cache/hybrid
//!   modes, with fills, dirty evictions, and the L2 snoop-on-evict rule, and
//! * **cores with bounded memory-level parallelism**, so single-thread
//!   bandwidth emerges as `overlap · 64 B / latency` and aggregate bandwidth
//!   saturates at device service rates.
//!
//! Thread workloads are [`program::Program`]s of [`ops::Op`]s executed by the
//! [`runner::Runner`]; programs synchronize through coherent flag lines
//! (`SetFlag`/`WaitFlag`), which is exactly how the paper's collectives work.

pub mod alloc;
pub mod analyze;
pub mod cache;
pub mod counters;
pub mod engine;
pub mod fuzz;
pub mod fxmap;
pub mod invariants;
pub mod machine;
pub mod mcache;
pub mod memdev;
pub mod mesh;
pub mod mesif;
pub mod metrics;
pub mod ops;
pub mod program;
pub mod runner;
pub mod svmap;
pub mod trace;

pub use alloc::Arena;
pub use analyze::{analyze, AnalysisReport, AnalyzeLevel, Finding, Rule, Severity};
pub use counters::Counters;
pub use engine::observe::{
    AnalyzeGate, MachineObserver, ObserverConfig, ObserverHub, ProtocolEvent,
};
pub use invariants::{CheckLevel, CoherenceChecker};
pub use machine::{AccessKind, Machine};
pub use mesif::MesifState;
pub use metrics::Metrics;
pub use ops::{Op, StreamKind};
pub use program::Program;
pub use runner::{RunResult, Runner};
pub use trace::{TraceEvent, TraceLevel, Tracer};

/// Simulated time in integer picoseconds.
pub type SimTime = u64;
