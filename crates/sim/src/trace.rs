//! Structured protocol-event tracing.
//!
//! The paper's methodology is *attribution*: explaining a latency or a
//! bandwidth number by the component that produced it (supplier MESIF
//! state, hop distance, device queue). This module records the protocol
//! events [`crate::Machine`] already computes — request issue/serve, L1/L2
//! hits, directory transitions, mesh hops, device queue enter/leave with
//! queue depth, memory-side-cache hits, invalidations and write-backs —
//! each stamped with sim time, thread, tile, and line address.
//!
//! Tracing follows the same zero-cost-when-off gating pattern as
//! [`crate::invariants`]: the machine holds an `Option<Box<Tracer>>` that
//! is `None` at [`TraceLevel::Off`], so hot paths pay one never-taken
//! branch. Like the coherence checker, the tracer is a pure observer —
//! results are bit-identical at every level.
//!
//! At [`TraceLevel::Summary`] only the [`crate::metrics::Metrics`]
//! aggregation is kept; [`TraceLevel::Full`] additionally retains the
//! per-event log (capped at [`EVENT_CAP`] events; overflow is counted,
//! never silently dropped from the accounting).
//!
//! # Serialized format
//!
//! A trace file is line-oriented ASCII. `#` starts a comment or a section
//! marker (`# job <i>` separates per-job sections merged in canonical job
//! order by the sweep drivers). Event lines start with `E`:
//!
//! ```text
//! E <time_ps> <thread> <tile> <line_hex> <kind> [kind fields...]
//! ```
//!
//! and metric lines (see [`crate::metrics`]) start with `H`/`T`/`D`/`B`/
//! `U`/`X`/`C`/`Z`. `knl-trace` (crates/bench) parses both: metric lines
//! feed the report, event lines feed the Chrome `trace_event` export.

use crate::metrics::Metrics;
use crate::SimTime;

/// Thread stamp used before any thread context is set (machine-internal
/// activity such as background write-backs).
pub const NO_THREAD: u32 = u32::MAX;

/// Forwarder stamp meaning "no forwarder survives".
pub const NO_TILE: u16 = u16::MAX;

/// Cap on the retained per-event log at [`TraceLevel::Full`]. Aggregated
/// metrics keep counting past the cap; only the raw event log stops
/// growing (the overflow count is serialized with the trace).
pub const EVENT_CAP: usize = 1 << 20;

/// How much tracing the machine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TraceLevel {
    /// No tracing; no observable cost.
    #[default]
    Off,
    /// Aggregate metrics only (histograms, per-tile/per-device stats).
    Summary,
    /// `Summary` plus the per-event log (Chrome trace export).
    Full,
}

impl TraceLevel {
    /// All levels, weakest first.
    pub const ALL: [TraceLevel; 3] = [TraceLevel::Off, TraceLevel::Summary, TraceLevel::Full];

    /// Name as accepted by `--trace-level` / `KNL_TRACE`.
    pub fn name(self) -> &'static str {
        match self {
            TraceLevel::Off => "off",
            TraceLevel::Summary => "summary",
            TraceLevel::Full => "full",
        }
    }

    /// Inverse of [`name`](Self::name).
    pub fn parse(s: &str) -> Option<TraceLevel> {
        match s {
            "off" | "none" => Some(TraceLevel::Off),
            "summary" | "metrics" => Some(TraceLevel::Summary),
            "full" | "events" => Some(TraceLevel::Full),
            _ => None,
        }
    }
}

/// What happened (the payload of one [`TraceEvent`]).
///
/// Source tags (`src`) classify where a request was served from:
/// `L` = own L1, `T` = own tile L2, `M`/`E`/`S`/`F` = remote cache in that
/// MESIF state, `D` = DDR, `C` = MCDRAM (flat/background), `H` =
/// memory-side cache hit. Directory tags: `U`ncached, `E`xclusive,
/// `M`odified, `S`hared. Hop legs: `q` request→home, `d` home→data
/// source, `r` reply→requester.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventKind {
    /// A request left the tile for the home CHA (`R`ead, `W`rite/RFO,
    /// `N`T-store).
    Issue {
        /// Operation tag: `R`, `W`, or `N`.
        op: char,
    },
    /// A request completed: where it was served from, the Manhattan hop
    /// distance to the data source, and the end-to-end latency.
    Serve {
        /// Operation tag: `R` or `W`.
        op: char,
        /// Source tag (see enum docs).
        src: char,
        /// Manhattan hops between requester and data source.
        hops: u32,
        /// End-to-end latency of the access.
        latency_ps: SimTime,
    },
    /// A directory entry transitioned global state.
    Dir {
        /// State tag before the transition.
        from: char,
        /// State tag after.
        to: char,
        /// Forwarder/owner tile after the transition ([`NO_TILE`] = none).
        forwarder: u16,
        /// Holder count after the transition.
        sharers: u16,
    },
    /// One mesh traversal leg.
    Hop {
        /// Leg tag: `q`, `d`, or `r` (see enum docs).
        leg: char,
        /// Manhattan hops crossed.
        hops: u32,
    },
    /// A line entered a memory device queue.
    DevEnter {
        /// Device index (0–5 DDR channels, 6+ EDCs).
        dev: u8,
        /// Write (vs read) direction.
        write: bool,
        /// Estimated lines queued ahead at arrival.
        depth: u32,
    },
    /// The device finished (read) or accepted (write) the line.
    DevLeave {
        /// Device index.
        dev: u8,
    },
    /// Memory-side cache lookup (cache/hybrid modes).
    Mcache {
        /// EDC holding the cache slice.
        edc: u8,
        /// Hit or miss.
        hit: bool,
    },
    /// Invalidation messages sent to `n` holders.
    Inv {
        /// Holders invalidated.
        n: u32,
    },
    /// A dirty line was written back.
    Writeback,
    /// A measured interval boundary (runner `MarkStart`/`MarkEnd`).
    Mark {
        /// Interval id.
        id: u32,
        /// Start (vs end) of the interval.
        start: bool,
    },
}

/// One traced protocol event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// Sim time the event took effect.
    pub time: SimTime,
    /// Executing thread ([`NO_THREAD`] outside runner context).
    pub thread: u32,
    /// Tile the triggering access executed on.
    pub tile: u16,
    /// Line address (`addr >> LINE_SHIFT`).
    pub line: u64,
    /// Payload.
    pub kind: EventKind,
}

impl TraceEvent {
    /// Append the one-line serialization of this event to `out`.
    pub fn write_line(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = write!(
            out,
            "E {} {} {} {:x} ",
            self.time, self.thread, self.tile, self.line
        );
        let _ = match self.kind {
            EventKind::Issue { op } => write!(out, "iss {op}"),
            EventKind::Serve {
                op,
                src,
                hops,
                latency_ps,
            } => write!(out, "srv {op} {src} {hops} {latency_ps}"),
            EventKind::Dir {
                from,
                to,
                forwarder,
                sharers,
            } => write!(out, "dir {from} {to} {forwarder} {sharers}"),
            EventKind::Hop { leg, hops } => write!(out, "hop {leg} {hops}"),
            EventKind::DevEnter { dev, write, depth } => {
                write!(out, "dev+ {dev} {} {depth}", if write { 'w' } else { 'r' })
            }
            EventKind::DevLeave { dev } => write!(out, "dev- {dev}"),
            EventKind::Mcache { edc, hit } => {
                write!(out, "mc {edc} {}", if hit { 'h' } else { 'm' })
            }
            EventKind::Inv { n } => write!(out, "inv {n}"),
            EventKind::Writeback => write!(out, "wb"),
            EventKind::Mark { id, start } => {
                write!(out, "mk {id} {}", if start { 's' } else { 'e' })
            }
        };
        out.push('\n');
    }

    /// Parse one serialized event line (inverse of [`write_line`]
    /// (Self::write_line)). Returns `None` for non-event or malformed
    /// lines.
    pub fn parse(line: &str) -> Option<TraceEvent> {
        let mut it = line.split_ascii_whitespace();
        if it.next()? != "E" {
            return None;
        }
        let time = it.next()?.parse().ok()?;
        let thread = it.next()?.parse().ok()?;
        let tile = it.next()?.parse().ok()?;
        let line_addr = u64::from_str_radix(it.next()?, 16).ok()?;
        let tag = it.next()?;
        let ch = |it: &mut std::str::SplitAsciiWhitespace| -> Option<char> {
            let s = it.next()?;
            (s.len() == 1).then(|| s.chars().next().unwrap())
        };
        let kind = match tag {
            "iss" => EventKind::Issue { op: ch(&mut it)? },
            "srv" => EventKind::Serve {
                op: ch(&mut it)?,
                src: ch(&mut it)?,
                hops: it.next()?.parse().ok()?,
                latency_ps: it.next()?.parse().ok()?,
            },
            "dir" => EventKind::Dir {
                from: ch(&mut it)?,
                to: ch(&mut it)?,
                forwarder: it.next()?.parse().ok()?,
                sharers: it.next()?.parse().ok()?,
            },
            "hop" => EventKind::Hop {
                leg: ch(&mut it)?,
                hops: it.next()?.parse().ok()?,
            },
            "dev+" => EventKind::DevEnter {
                dev: it.next()?.parse().ok()?,
                write: ch(&mut it)? == 'w',
                depth: it.next()?.parse().ok()?,
            },
            "dev-" => EventKind::DevLeave {
                dev: it.next()?.parse().ok()?,
            },
            "mc" => EventKind::Mcache {
                edc: it.next()?.parse().ok()?,
                hit: ch(&mut it)? == 'h',
            },
            "inv" => EventKind::Inv {
                n: it.next()?.parse().ok()?,
            },
            "wb" => EventKind::Writeback,
            "mk" => EventKind::Mark {
                id: it.next()?.parse().ok()?,
                start: ch(&mut it)? == 's',
            },
            _ => return None,
        };
        Some(TraceEvent {
            time,
            thread,
            tile,
            line: line_addr,
            kind,
        })
    }
}

/// Manhattan hop distance between two mesh positions.
pub fn hop_dist(a: (i32, i32), b: (i32, i32)) -> u32 {
    ((a.0 - b.0).abs() + (a.1 - b.1).abs()) as u32
}

/// The event recorder attached to a [`crate::Machine`].
///
/// Context (current thread/tile) is set by the runner and the machine's
/// access entry points; every recorded event is stamped with it. All
/// events flow through the [`Metrics`] aggregation; at
/// [`TraceLevel::Full`] they are additionally retained verbatim.
#[derive(Debug, Clone)]
pub struct Tracer {
    level: TraceLevel,
    thread: u32,
    tile: u16,
    metrics: Metrics,
    events: Vec<TraceEvent>,
    dropped: u64,
}

impl Tracer {
    /// A tracer recording at `level` (must not be [`TraceLevel::Off`] —
    /// "off" is represented by not having a tracer at all).
    pub fn new(level: TraceLevel) -> Tracer {
        assert_ne!(level, TraceLevel::Off, "TraceLevel::Off means no tracer");
        Tracer {
            level,
            thread: NO_THREAD,
            tile: 0,
            metrics: Metrics::default(),
            events: Vec::new(),
            dropped: 0,
        }
    }

    /// The active level.
    pub fn level(&self) -> TraceLevel {
        self.level
    }

    /// Set the executing-thread context for subsequent events.
    pub fn set_thread(&mut self, thread: u32) {
        self.thread = thread;
    }

    /// Set the executing-tile context for subsequent events.
    pub fn set_tile(&mut self, tile: u16) {
        self.tile = tile;
    }

    /// Record one event at `time` for `line`.
    pub fn record(&mut self, time: SimTime, line: u64, kind: EventKind) {
        let ev = TraceEvent {
            time,
            thread: self.thread,
            tile: self.tile,
            line,
            kind,
        };
        self.metrics.record(&ev);
        if self.level == TraceLevel::Full {
            if self.events.len() < EVENT_CAP {
                self.events.push(ev);
            } else {
                self.dropped += 1;
            }
        }
    }

    /// The retained event log ([`TraceLevel::Full`] only).
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Events that overflowed [`EVENT_CAP`].
    pub fn events_dropped(&self) -> u64 {
        self.dropped
    }

    /// The aggregated metrics.
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// Append the full serialization (header comment, event log, metric
    /// lines) to `out`. Deterministic: identical runs serialize to
    /// identical bytes.
    pub fn serialize_into(&self, out: &mut String) {
        use std::fmt::Write;
        let _ = writeln!(out, "# level={}", self.level.name());
        if self.dropped > 0 {
            let _ = writeln!(out, "# events_dropped={}", self.dropped);
        }
        for ev in &self.events {
            ev.write_line(out);
        }
        self.metrics.serialize_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_names_round_trip() {
        for l in TraceLevel::ALL {
            assert_eq!(TraceLevel::parse(l.name()), Some(l));
        }
        assert_eq!(TraceLevel::parse("metrics"), Some(TraceLevel::Summary));
        assert_eq!(TraceLevel::parse("bogus"), None);
    }

    #[test]
    fn events_round_trip_through_text() {
        let kinds = [
            EventKind::Issue { op: 'R' },
            EventKind::Serve {
                op: 'W',
                src: 'M',
                hops: 7,
                latency_ps: 123_456,
            },
            EventKind::Dir {
                from: 'U',
                to: 'E',
                forwarder: 3,
                sharers: 1,
            },
            EventKind::Hop { leg: 'q', hops: 4 },
            EventKind::DevEnter {
                dev: 6,
                write: true,
                depth: 17,
            },
            EventKind::DevLeave { dev: 6 },
            EventKind::Mcache { edc: 2, hit: false },
            EventKind::Inv { n: 3 },
            EventKind::Writeback,
            EventKind::Mark { id: 1, start: true },
        ];
        for (i, kind) in kinds.into_iter().enumerate() {
            let ev = TraceEvent {
                time: 1_000 + i as u64,
                thread: i as u32,
                tile: 2 * i as u16,
                line: 0xdead_0000 + i as u64,
                kind,
            };
            let mut s = String::new();
            ev.write_line(&mut s);
            assert_eq!(TraceEvent::parse(s.trim_end()), Some(ev), "{s}");
        }
        assert_eq!(TraceEvent::parse("# comment"), None);
        assert_eq!(TraceEvent::parse("E 1 2"), None);
    }

    #[test]
    fn full_level_retains_events_summary_does_not() {
        let ev = EventKind::Issue { op: 'R' };
        let mut full = Tracer::new(TraceLevel::Full);
        full.record(10, 1, ev);
        assert_eq!(full.events().len(), 1);
        let mut sum = Tracer::new(TraceLevel::Summary);
        sum.record(10, 1, ev);
        assert!(sum.events().is_empty());
        assert_eq!(sum.metrics().issues, 1);
        assert_eq!(full.metrics().issues, 1);
    }

    #[test]
    #[should_panic(expected = "no tracer")]
    fn off_level_tracer_rejected() {
        let _ = Tracer::new(TraceLevel::Off);
    }

    #[test]
    fn hop_distance_is_manhattan() {
        assert_eq!(hop_dist((0, 0), (3, 4)), 7);
        assert_eq!(hop_dist((2, 5), (2, 5)), 0);
        assert_eq!(hop_dist((5, 1), (1, 2)), 5);
    }
}
