//! Event-driven execution of thread programs on the machine.
//!
//! Each event advances one thread by one op (long streaming ops are sliced
//! into chunks so resource contention between threads interleaves at fine
//! granularity). Threads synchronize through coherent flag lines:
//! `SetFlag` performs a real coherent write (invalidating pollers) and wakes
//! waiters, who then pay a real coherent re-read of the flag line — exactly
//! the cost structure of the paper's polling-based collectives.

use crate::machine::{AccessKind, Machine, StreamState};
use crate::ops::Op;
use crate::program::Program;
use crate::SimTime;
use knl_arch::topology::splitmix64;
use std::cmp::Reverse;
// The runner's maps never leak iteration order: intervals/mark_open are
// read back per key, flags are sorted before escaping to observers, and
// waiter wake-ups go through the deterministic event queue.
use std::collections::{BinaryHeap, HashMap}; // knl-lint: allow(hash-collection)

/// Simulated-time span of one scheduling slice of a bulk streaming op. Must
/// stay below the memory devices' reorder window so cross-thread arrival
/// disorder is bounded (see `memdev`).
const STREAM_SLICE_PS: SimTime = 400_000;
/// Lines per slice of a dependent pointer chase (each ~100+ ns).
const CHASE_CHUNK_LINES: u64 = 8;

/// Result of one run: per-thread measured intervals.
#[derive(Debug, Clone, Default)]
pub struct RunResult {
    /// (thread, interval-id) → [(start, end)].
    intervals: HashMap<(usize, usize), Vec<(SimTime, SimTime)>>, // knl-lint: allow(hash-collection)
    /// Time the last thread finished.
    pub end_time: SimTime,
    /// Number of threads that ran.
    pub num_threads: usize,
}

impl RunResult {
    /// Duration of interval `k` for `thread`, in ps.
    ///
    /// **First-occurrence contract:** when a program brackets the same mark
    /// id several times, this returns the duration of the *first* bracket
    /// only (the steady-state figure tables want is usually the max or the
    /// full list — see [`RunResult::iteration_max_ns`] and
    /// [`RunResult::occurrence_durations_ps`]). Use
    /// [`RunResult::occurrences`] to detect multi-bracket programs.
    pub fn duration_ps(&self, thread: usize, k: usize) -> Option<SimTime> {
        self.intervals
            .get(&(thread, k))
            .and_then(|v| v.first())
            .map(|&(s, e)| e - s)
    }

    /// How many times `thread` bracketed mark id `k` (0 if never).
    pub fn occurrences(&self, thread: usize, k: usize) -> usize {
        self.intervals.get(&(thread, k)).map_or(0, |v| v.len())
    }

    /// Durations of *every* occurrence of interval `k` measured by
    /// `thread`, in ps, in measurement order. A program that brackets the
    /// same mark id several times (e.g. a timing loop reusing one id)
    /// contributes one entry per bracket.
    pub fn occurrence_durations_ps(&self, thread: usize, k: usize) -> Vec<SimTime> {
        self.intervals
            .get(&(thread, k))
            .map(|v| v.iter().map(|&(s, e)| e - s).collect())
            .unwrap_or_default()
    }

    /// The paper's reporting rule: the *maximum* duration of interval `k`
    /// across all threads — and all occurrences per thread — in
    /// nanoseconds.
    pub fn iteration_max_ns(&self, k: usize) -> Option<f64> {
        self.intervals
            .iter()
            .filter(|((_, id), _)| *id == k)
            .flat_map(|(_, spans)| spans.iter().map(|&(s, e)| e - s))
            .max()
            .map(|ps| ps as f64 / 1000.0)
    }

    /// All durations of interval `k`, in nanoseconds: threads in index
    /// order, each thread's occurrences in measurement order.
    pub fn iteration_durations_ns(&self, k: usize) -> Vec<f64> {
        (0..self.num_threads)
            .flat_map(|t| self.occurrence_durations_ps(t, k))
            .map(|ps| ps as f64 / 1000.0)
            .collect()
    }

    /// Number of distinct interval ids measured by `thread`.
    pub fn intervals_of(&self, thread: usize) -> usize {
        self.intervals.keys().filter(|&&(t, _)| t == thread).count()
    }
}

#[derive(Debug, Default)]
struct ThreadState {
    pc: usize,
    now: SimTime,
    /// Progress inside a sliced bulk op (lines done).
    bulk_done: u64,
    stream: StreamState,
    mark_open: HashMap<usize, SimTime>, // knl-lint: allow(hash-collection)
    parked_on: Option<(u64, u64)>,
    finished: bool,
}

/// Executes a set of programs to completion on a machine.
pub struct Runner<'m> {
    machine: &'m mut Machine,
    programs: Vec<Program>,
    /// Number of programs sharing each program's core (HyperThreading).
    core_threads: Vec<u32>,
    threads: Vec<ThreadState>,
    flags: HashMap<u64, u64>,          // knl-lint: allow(hash-collection)
    waiters: HashMap<u64, Vec<usize>>, // knl-lint: allow(hash-collection)
    queue: BinaryHeap<Reverse<(SimTime, u64, usize)>>,
    seq: u64,
    result: RunResult,
}

impl<'m> Runner<'m> {
    /// Prepare a run of `programs` on `machine`.
    pub fn new(machine: &'m mut Machine, programs: Vec<Program>) -> Self {
        let n = programs.len();
        let mut threads = Vec::with_capacity(n);
        threads.resize_with(n, ThreadState::default);
        let mut per_core: HashMap<knl_arch::CoreId, u32> = HashMap::new(); // knl-lint: allow(hash-collection)
        for p in &programs {
            *per_core.entry(p.core()).or_insert(0) += 1;
        }
        let core_threads = programs.iter().map(|p| per_core[&p.core()]).collect();
        Runner {
            core_threads,
            machine,
            programs,
            threads,
            flags: HashMap::new(),   // knl-lint: allow(hash-collection)
            waiters: HashMap::new(), // knl-lint: allow(hash-collection)
            queue: BinaryHeap::new(),
            seq: 0,
            result: RunResult {
                num_threads: n,
                ..Default::default()
            },
        }
    }

    /// Pre-set a flag's initial value.
    pub fn set_initial_flag(&mut self, addr: u64, val: u64) {
        self.flags.insert(addr, val);
    }

    /// Run to completion.
    pub fn run(mut self) -> RunResult {
        if self.machine.has_observers() {
            // Observer run-start hook, with the pre-set flags as the initial
            // flag state (sorted for determinism). The analyzer gate does
            // its static pre-pass here — pure observers all: they may panic
            // (Error findings, coherence violations) but never change what
            // the simulation computes.
            let mut initial: Vec<(u64, u64)> = self.flags.iter().map(|(&a, &v)| (a, v)).collect();
            initial.sort_unstable();
            self.machine.observe_run_start(&self.programs, &initial);
        }
        for tid in 0..self.programs.len() {
            self.enqueue(0, tid);
        }
        while let Some(Reverse((time, _, tid))) = self.queue.pop() {
            if self.threads[tid].finished {
                continue;
            }
            self.threads[tid].now = self.threads[tid].now.max(time);
            self.step(tid);
        }
        let parked: Vec<usize> = self
            .threads
            .iter()
            .enumerate()
            .filter(|(_, t)| t.parked_on.is_some())
            .map(|(i, _)| i)
            .collect();
        assert!(
            parked.is_empty(),
            "deadlock: threads {parked:?} parked on flags {:?}",
            parked
                .iter()
                .map(|&i| self.threads[i].parked_on)
                .collect::<Vec<_>>()
        );
        self.result.end_time = self.threads.iter().map(|t| t.now).max().unwrap_or(0);
        self.result
    }

    fn enqueue(&mut self, time: SimTime, tid: usize) {
        self.seq += 1;
        self.queue.push(Reverse((time, self.seq, tid)));
    }

    fn core_of(&self, tid: usize) -> knl_arch::CoreId {
        self.programs[tid].core()
    }

    /// Execute one op (or one slice) for `tid`, then re-enqueue.
    fn step(&mut self, tid: usize) {
        let pc = self.threads[tid].pc;
        if pc >= self.programs[tid].ops.len() {
            self.threads[tid].finished = true;
            return;
        }
        let op = self.programs[tid].ops[pc].clone();
        let core = self.core_of(tid);
        let now = self.threads[tid].now;
        self.machine.set_trace_thread(tid as u32);
        let mut advance = true;
        match op {
            Op::Read(addr) => {
                self.threads[tid].now = self
                    .machine
                    .access(core, addr, AccessKind::Read, now)
                    .complete;
            }
            Op::Write(addr) => {
                self.threads[tid].now = self
                    .machine
                    .access(core, addr, AccessKind::Write, now)
                    .complete;
            }
            Op::NtStore(addr) => {
                self.threads[tid].now = self
                    .machine
                    .access(core, addr, AccessKind::NtStore, now)
                    .complete;
            }
            Op::Evict(addr) => {
                self.threads[tid].now = self.machine.evict_line(core, addr, now);
            }
            Op::Chase { base, lines } => {
                let done = self.threads[tid].bulk_done;
                let n = CHASE_CHUNK_LINES.min(lines - done);
                let mut t = now;
                for i in done..done + n {
                    // Hash-scrambled visiting order defeats prefetching, as
                    // in BenchIT's pointer chasing.
                    let idx = splitmix64(i ^ base) % lines;
                    t = self
                        .machine
                        .access(core, base + idx * 64, AccessKind::Read, t)
                        .complete;
                }
                self.threads[tid].now = t;
                self.threads[tid].bulk_done += n;
                advance = self.threads[tid].bulk_done >= lines;
            }
            Op::ReadBuf {
                src,
                bytes,
                vectorized,
            } => {
                self.threads[tid].now = self.machine.read_buf(core, src, bytes, vectorized, now);
            }
            Op::CopyBuf {
                src,
                dst,
                bytes,
                vectorized,
            } => {
                self.threads[tid].now = self
                    .machine
                    .copy_buf(core, src, dst, bytes, vectorized, now);
            }
            Op::Stream {
                kind,
                a,
                b,
                c,
                lines,
                vectorized,
            } => {
                let done = self.threads[tid].bulk_done;
                // Split borrows: take the stream state out during the call.
                let mut st = std::mem::take(&mut self.threads[tid].stream);
                let share = self.core_threads[tid];
                let (t, n) = self.machine.stream_chunk_shared(
                    core,
                    kind,
                    a,
                    b,
                    c,
                    done,
                    lines - done,
                    vectorized,
                    &mut st,
                    now,
                    now + STREAM_SLICE_PS,
                    share,
                );
                self.threads[tid].stream = st;
                self.threads[tid].now = t;
                self.threads[tid].bulk_done += n;
                advance = self.threads[tid].bulk_done >= lines;
                if advance {
                    self.threads[tid].stream = StreamState::default();
                }
            }
            Op::Compute(d) => {
                self.threads[tid].now = now + d;
            }
            Op::SetFlag { addr, val } => {
                let complete = self
                    .machine
                    .access(core, addr, AccessKind::Write, now)
                    .complete;
                self.threads[tid].now = complete;
                let v = self.flags.entry(addr).or_insert(0);
                *v = (*v).max(val);
                if let Some(ws) = self.waiters.remove(&addr) {
                    let mut still = Vec::new();
                    for w in ws {
                        let (_, want) = self.threads[w].parked_on.expect("parked");
                        if self.flags[&addr] >= want {
                            self.threads[w].parked_on = None;
                            self.threads[w].now = self.threads[w].now.max(complete);
                            self.enqueue(complete, w);
                        } else {
                            still.push(w);
                        }
                    }
                    if !still.is_empty() {
                        self.waiters.insert(addr, still);
                    }
                }
            }
            Op::WaitFlag { addr, val } => {
                if self.flags.get(&addr).copied().unwrap_or(0) >= val {
                    // Satisfied: pay the re-read of the (just invalidated)
                    // flag line.
                    self.threads[tid].now = self
                        .machine
                        .access(core, addr, AccessKind::Read, now)
                        .complete;
                } else {
                    self.threads[tid].parked_on = Some((addr, val));
                    self.waiters.entry(addr).or_default().push(tid);
                    return; // do not advance or re-enqueue; SetFlag wakes us
                }
            }
            Op::WaitUntil(t) => {
                self.threads[tid].now = now.max(t);
            }
            Op::MarkStart(k) => {
                self.threads[tid].mark_open.insert(k, now);
                self.machine.trace_mark(k as u32, true, now);
            }
            Op::MarkEnd(k) => {
                let start = self.threads[tid]
                    .mark_open
                    .remove(&k)
                    .unwrap_or_else(|| panic!("thread {tid}: MarkEnd({k}) without MarkStart"));
                self.result
                    .intervals
                    .entry((tid, k))
                    .or_default()
                    .push((start, now));
                self.machine.trace_mark(k as u32, false, now);
            }
        }
        if advance {
            self.threads[tid].pc += 1;
            self.threads[tid].bulk_done = 0;
        }
        let t = self.threads[tid].now;
        self.enqueue(t, tid);
    }
}

/// Convenience: run `programs` on `machine`.
pub fn run_programs(machine: &mut Machine, programs: Vec<Program>) -> RunResult {
    Runner::new(machine, programs).run()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::StreamKind;
    use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        m
    }

    #[test]
    fn single_thread_marks() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::MarkStart(0))
            .push(Op::Read(4096))
            .push(Op::MarkEnd(0))
            .push(Op::MarkStart(1))
            .push(Op::Read(4096))
            .push(Op::MarkEnd(1));
        let r = run_programs(&mut m, vec![p]);
        let d0 = r.duration_ps(0, 0).unwrap();
        let d1 = r.duration_ps(0, 1).unwrap();
        assert!(d0 > d1, "second read hits L1: {d0} vs {d1}");
        // An L1 hit costs a few ns; pin it to a band rather than one exact
        // picosecond figure so timing-table tweaks don't break the test.
        assert!(
            (1_000..=8_000).contains(&d1),
            "L1 hit latency out of band: {d1} ps"
        );
        assert_eq!(r.intervals_of(0), 2);
    }

    #[test]
    fn flag_handoff_orders_threads() {
        let mut m = machine();
        let flag = 1 << 20;
        let data = 2 << 20;
        let mut producer = Program::on_core(CoreId(0));
        producer
            .push(Op::Write(data))
            .push(Op::SetFlag { addr: flag, val: 1 });
        let mut consumer = Program::on_core(CoreId(10));
        consumer
            .push(Op::MarkStart(0))
            .push(Op::WaitFlag { addr: flag, val: 1 })
            .push(Op::Read(data))
            .push(Op::MarkEnd(0));
        let r = run_programs(&mut m, vec![producer, consumer]);
        // The consumer must have waited for the producer's write+flag.
        let d = r.duration_ps(1, 0).unwrap();
        assert!(d > 100_000, "consumer waited: {d} ps");
    }

    #[test]
    fn wait_on_already_set_flag_is_cheap() {
        let mut m = machine();
        let flag = 1 << 20;
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::MarkStart(0))
            .push(Op::WaitFlag { addr: flag, val: 1 })
            .push(Op::MarkEnd(0));
        let mut r = Runner::new(&mut m, vec![p]);
        r.set_initial_flag(flag, 1);
        let res = r.run();
        let d = res.duration_ps(0, 0).unwrap();
        assert!(d < 1_000_000, "pre-set flag should not block: {d}");
    }

    #[test]
    #[should_panic(expected = "deadlock")]
    fn unmatched_wait_deadlocks() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::WaitFlag { addr: 64, val: 1 });
        run_programs(&mut m, vec![p]);
    }

    #[test]
    fn iteration_max_takes_slowest_thread() {
        let mut m = machine();
        let mut fast = Program::on_core(CoreId(0));
        fast.push(Op::MarkStart(0))
            .push(Op::Compute(1_000))
            .push(Op::MarkEnd(0));
        let mut slow = Program::on_core(CoreId(2));
        slow.push(Op::MarkStart(0))
            .push(Op::Compute(9_000))
            .push(Op::MarkEnd(0));
        let r = run_programs(&mut m, vec![fast, slow]);
        assert_eq!(r.iteration_max_ns(0), Some(9.0));
        assert_eq!(r.iteration_durations_ns(0), vec![1.0, 9.0]);
    }

    #[test]
    fn repeated_mark_id_keeps_every_occurrence() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        // Three brackets of the same mark id with growing cost: the slowest
        // is the *last* occurrence, which the old first-only accounting
        // dropped.
        for i in 1..=3u64 {
            p.push(Op::MarkStart(0))
                .push(Op::Compute(i * 2_000))
                .push(Op::MarkEnd(0));
        }
        let r = run_programs(&mut m, vec![p]);
        assert_eq!(r.occurrence_durations_ps(0, 0), vec![2_000, 4_000, 6_000]);
        assert_eq!(r.iteration_durations_ns(0), vec![2.0, 4.0, 6.0]);
        assert_eq!(r.iteration_max_ns(0), Some(6.0));
        // First-occurrence accessor keeps its documented meaning.
        assert_eq!(r.duration_ps(0, 0), Some(2_000));
        assert!(r.occurrence_durations_ps(0, 9).is_empty());
        assert_eq!(r.occurrences(0, 0), 3);
        assert_eq!(r.occurrences(0, 9), 0);
        assert_eq!(r.occurrences(5, 0), 0, "no such thread");
    }

    #[test]
    fn runner_stamps_trace_events_with_thread_and_marks() {
        use crate::engine::observe::ObserverConfig;
        use crate::trace::{EventKind, TraceLevel};
        let mut m = Machine::with_observer_config(
            MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat),
            ObserverConfig::default().trace(TraceLevel::Full),
        );
        m.set_jitter(0);
        let mk = |core: u16| {
            let mut p = Program::on_core(CoreId(core));
            p.push(Op::MarkStart(7))
                .push(Op::Read(1 << 20))
                .push(Op::MarkEnd(7));
            p
        };
        run_programs(&mut m, vec![mk(0), mk(2)]);
        let tr = m.tracer().expect("tracer attached");
        let marks: Vec<(u32, u32, bool)> = tr
            .events()
            .iter()
            .filter_map(|e| match e.kind {
                EventKind::Mark { id, start } => Some((e.thread, id, start)),
                _ => None,
            })
            .collect();
        // Each thread contributes one start and one end of mark 7.
        for t in 0..2u32 {
            assert!(marks.contains(&(t, 7, true)), "thread {t} start");
            assert!(marks.contains(&(t, 7, false)), "thread {t} end");
        }
        // The reads themselves carry the issuing thread's stamp.
        assert!(tr
            .events()
            .iter()
            .any(|e| { matches!(e.kind, EventKind::Serve { op: 'R', .. }) && e.thread == 1 }));
    }

    #[test]
    fn stream_op_slices_and_completes() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::MarkStart(0))
            .push(Op::Stream {
                kind: StreamKind::Read,
                a: 0,
                b: 0,
                c: 0,
                lines: 1000,
                vectorized: true,
            })
            .push(Op::MarkEnd(0));
        let r = run_programs(&mut m, vec![p]);
        let d = r.duration_ps(0, 0).unwrap();
        let gbps = (1000.0 * 64.0 / 1e9) / (d as f64 / 1e12);
        assert!((4.0..12.0).contains(&gbps), "stream read {gbps} GB/s");
    }

    #[test]
    fn two_streams_share_bandwidth() {
        let mut m = machine();
        let mk = |core: u16, base: u64| {
            let mut p = Program::on_core(CoreId(core));
            p.push(Op::MarkStart(0))
                .push(Op::Stream {
                    kind: StreamKind::Read,
                    a: 0,
                    b: base,
                    c: 0,
                    lines: 4096,
                    vectorized: true,
                })
                .push(Op::MarkEnd(0));
            p
        };
        // Solo run.
        let r1 = run_programs(&mut m, vec![mk(0, 0)]);
        let solo = r1.duration_ps(0, 0).unwrap();
        // 24 concurrent streams: far beyond 6 DDR channels' capacity.
        m.reset_devices();
        m.reset_caches();
        let progs: Vec<Program> = (0..24).map(|i| mk(i * 2, (i as u64) << 22)).collect();
        let r = run_programs(&mut m, progs);
        let worst = (0..24).map(|t| r.duration_ps(t, 0).unwrap()).max().unwrap();
        assert!(
            worst > solo * 3 / 2,
            "24 streams must queue at DDR: worst {worst} vs solo {solo}"
        );
    }

    #[test]
    fn chase_op_is_latency_bound() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        let lines = 512u64;
        p.push(Op::MarkStart(0))
            .push(Op::Chase {
                base: 1 << 22,
                lines,
            })
            .push(Op::MarkEnd(0));
        let r = run_programs(&mut m, vec![p]);
        let d = r.duration_ps(0, 0).unwrap();
        // Dependent accesses: no overlap, so ≥ lines × (DDR-ish latency,
        // minus the share that hits caches on revisits).
        assert!(
            d > lines * 60_000,
            "chase too fast: {d} ps for {lines} lines"
        );
        let per = d as f64 / lines as f64 / 1000.0;
        assert!(per < 200.0, "chase too slow: {per} ns/line");
    }

    #[test]
    fn waituntil_aligns_start() {
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::WaitUntil(5_000_000))
            .push(Op::MarkStart(0))
            .push(Op::MarkEnd(0));
        let r = run_programs(&mut m, vec![p]);
        assert!(r.end_time >= 5_000_000);
    }
}
