//! The simulated machine: caches + MESIF directory + mesh + memory devices.
//!
//! [`Machine::access`] performs one coherent line access and returns its
//! completion time, mutating every shared resource it touches (directory
//! serialization slots, device queues, tag arrays). Bulk streaming kernels
//! use [`Machine::stream_chunk`], which bypasses the coherence bookkeeping
//! (streams touch fresh lines with no reuse) but keeps device queueing and —
//! in cache mode — the memory-side cache behaviour.

use crate::alloc::Arena;
use crate::analyze::AnalyzeLevel;
use crate::cache::{Insert, TagCache};
use crate::counters::Counters;
use crate::invariants::{CheckLevel, CoherenceChecker, ProtoEvent};
use crate::mcache::{McacheOutcome, MemorySideCache};
use crate::memdev::{DeviceParams, MemDevice};
use crate::mesh::{Mesh, MeshConfig};
use crate::mesif::{DirEntry, GlobalState, MesifState};
use crate::trace::{hop_dist, EventKind, TraceLevel, Tracer, NO_TILE};
use crate::SimTime;
use knl_arch::address::NUM_MEM_DEVICES;
use knl_arch::topology::splitmix64;
use knl_arch::{AddressMap, CoreId, MachineConfig, MemTarget, TileId, Topology, LINE_SHIFT};
use std::collections::HashMap;

/// Kind of a single coherent access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Coherent load.
    Read,
    /// Coherent store (read-for-ownership).
    Write,
    /// Non-temporal (streaming) store: bypasses the caches, invalidates any
    /// cached copies, writes straight to memory.
    NtStore,
}

/// Where an access was served from (for assertions and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Requesting core's own L1.
    L1,
    /// Requester's tile L2, with the line's state there.
    TileL2(MesifState),
    /// Forwarded from another tile's cache.
    RemoteCache {
        /// Supplying tile.
        holder: TileId,
        /// State the supplier held the line in.
        state: MesifState,
    },
    /// Served by a memory device.
    Memory(MemTarget),
    /// Served by the MCDRAM memory-side cache (cache/hybrid modes).
    McacheHit {
        /// EDC that held the line.
        edc: u8,
    },
    /// NT stores are posted; nothing is "served".
    Posted,
}

/// Completion time plus provenance of one access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Completion time of the access.
    pub complete: SimTime,
    /// Where the data came from.
    pub served_by: ServedBy,
}

/// State carried across the chunks of one streaming kernel: rings of
/// outstanding load/store completions implementing bounded MLP.
#[derive(Debug, Clone, Default)]
pub struct StreamState {
    load_ring: Vec<SimTime>,
    load_idx: usize,
    nt_ring: Vec<SimTime>,
    nt_idx: usize,
    last_issue: SimTime,
}

impl StreamState {
    fn gate_load(&mut self, ov: usize, issue: SimTime) -> SimTime {
        if self.load_ring.len() < ov {
            self.load_ring.push(0);
        }
        let slot = self.load_idx % self.load_ring.len().max(1);
        self.load_idx += 1;
        issue.max(self.load_ring[slot])
    }

    fn record_load(&mut self, complete: SimTime) {
        let slot = (self.load_idx - 1) % self.load_ring.len().max(1);
        self.load_ring[slot] = complete;
    }

    fn gate_nt(&mut self, ov: usize, issue: SimTime) -> SimTime {
        if self.nt_ring.len() < ov {
            self.nt_ring.push(0);
        }
        let slot = self.nt_idx % self.nt_ring.len().max(1);
        self.nt_idx += 1;
        issue.max(self.nt_ring[slot])
    }

    fn record_nt(&mut self, accept: SimTime) {
        let slot = (self.nt_idx - 1) % self.nt_ring.len().max(1);
        self.nt_ring[slot] = accept;
    }

    /// Time when every outstanding request has completed.
    fn drain_time(&self) -> SimTime {
        let l = self.load_ring.iter().copied().max().unwrap_or(0);
        let n = self.nt_ring.iter().copied().max().unwrap_or(0);
        l.max(n)
    }
}

/// The simulated KNL.
pub struct Machine {
    cfg: MachineConfig,
    topo: Topology,
    map: AddressMap,
    l1: Vec<TagCache>,
    l2: Vec<TagCache>,
    /// Data-port occupancy of each tile's L2.
    l2_port_busy: Vec<SimTime>,
    dir: HashMap<u64, DirEntry>,
    mesh: Mesh,
    devices: Vec<MemDevice>,
    mcache: MemorySideCache,
    counters: Counters,
    jitter_pct: u32,
    jitter_seq: u64,
    /// Dynamic coherence checking; `None` at [`CheckLevel::Off`], so the
    /// hot paths pay one never-taken branch when checking is disabled.
    checker: Option<Box<CoherenceChecker>>,
    /// Structured event tracing; same gating pattern as `checker`: `None`
    /// at [`TraceLevel::Off`], one never-taken branch on the hot paths.
    tracer: Option<Box<Tracer>>,
    /// Fault injection for checker tests: a write skips invalidating one
    /// stale holder (see [`Machine::debug_skip_invalidation`]).
    skip_invalidation: bool,
    /// Static workload analysis level. A plain `Copy` flag: the analyzer
    /// is a pure pre-pass in [`crate::Runner::run`], never consulted on
    /// the access hot paths, so `Off` costs nothing.
    analyze: AnalyzeLevel,
}

// Sweep workers (knl-benchsuite's executor) each own a fresh Machine on a
// scoped thread; keep the type `Send` so a future field (Rc, RefCell over
// shared state, raw pointer) can't silently break the parallel drivers.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
};

impl Machine {
    /// Instantiate the simulated machine for one configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let t = &cfg.timing;
        let num_cores = cfg.num_cores();
        let num_tiles = cfg.active_tiles;
        let mut devices = Vec::with_capacity(NUM_MEM_DEVICES);
        for i in 0..NUM_MEM_DEVICES {
            let is_ddr = i < 6;
            devices.push(if is_ddr {
                MemDevice::new(DeviceParams {
                    latency_ps: t.ddr_lat_ps,
                    read_service_ps: t.ddr_read_ps_per_line,
                    write_service_ps: t.ddr_write_ps_per_line,
                    write_mixed_ps: t.ddr_write_mixed_ps_per_line,
                    turnaround_ps: t.rw_turnaround_ps,
                    duplex: false,
                })
            } else {
                MemDevice::new(DeviceParams {
                    latency_ps: t.mcdram_lat_ps,
                    read_service_ps: t.mcdram_read_ps_per_line,
                    write_service_ps: t.mcdram_write_ps_per_line,
                    write_mixed_ps: t.mcdram_write_ps_per_line,
                    turnaround_ps: t.rw_turnaround_ps,
                    duplex: true,
                })
            });
        }
        let mcache = MemorySideCache::new(map.mcdram_cache_bytes());
        let mesh = Mesh::new(MeshConfig {
            hop_ps: t.hop_ps,
            ring_service_ps: (t.mesh_ring_service_ps > 0).then_some(t.mesh_ring_service_ps),
        });
        let jitter_pct = t.jitter_for(cfg.cluster);
        Machine {
            cfg,
            topo,
            map,
            l1: (0..num_cores).map(|_| TagCache::knl_l1()).collect(),
            l2: (0..num_tiles).map(|_| TagCache::knl_l2()).collect(),
            l2_port_busy: vec![0; num_tiles],
            dir: HashMap::new(),
            mesh,
            devices,
            mcache,
            counters: Counters::default(),
            jitter_pct,
            jitter_seq: 0,
            checker: None,
            tracer: None,
            skip_invalidation: false,
            analyze: AnalyzeLevel::Off,
        }
    }

    /// [`Machine::new`] with dynamic checking enabled at `level`.
    pub fn with_check(cfg: MachineConfig, level: CheckLevel) -> Self {
        let mut m = Self::new(cfg);
        m.set_check_level(level);
        m
    }

    /// Enable/disable dynamic coherence checking. Attaching mid-run is
    /// fine: counter reconciliation works on the delta from this point.
    pub fn set_check_level(&mut self, level: CheckLevel) {
        self.checker = match level {
            CheckLevel::Off => None,
            _ => Some(Box::new(CoherenceChecker::new(level, self.counters))),
        };
    }

    /// The active checking level.
    pub fn check_level(&self) -> CheckLevel {
        self.checker.as_ref().map_or(CheckLevel::Off, |c| c.level())
    }

    /// The attached checker, if any (tests and diagnostics).
    pub fn checker(&self) -> Option<&CoherenceChecker> {
        self.checker.as_deref()
    }

    /// End-of-run verification: reconcile the checker's message counters
    /// with [`Machine::counters`] and, at [`CheckLevel::FullOracle`], check
    /// the final memory image against the sequential reference. No-op when
    /// checking is off; panics with a `coherence violation` report on any
    /// divergence.
    pub fn finish_check(&self) {
        if let Some(ck) = self.checker.as_ref() {
            ck.finish(&self.counters);
        }
    }

    /// Fault injection for checker tests: while enabled, a write that
    /// should invalidate other holders leaves one stale sharer behind —
    /// the "skipped invalidation" directory bug the checker must catch.
    #[doc(hidden)]
    pub fn debug_skip_invalidation(&mut self, on: bool) {
        self.skip_invalidation = on;
    }

    /// [`Machine::new`] with both observers (coherence checking and event
    /// tracing) configured.
    pub fn with_observers(cfg: MachineConfig, check: CheckLevel, trace: TraceLevel) -> Self {
        let mut m = Self::new(cfg);
        m.set_check_level(check);
        m.set_trace_level(trace);
        m
    }

    /// Enable/disable structured event tracing. Like the coherence
    /// checker, the tracer is a pure observer: access timings and
    /// counters are bit-identical at every level.
    pub fn set_trace_level(&mut self, level: TraceLevel) {
        self.tracer = match level {
            TraceLevel::Off => None,
            _ => Some(Box::new(Tracer::new(level))),
        };
    }

    /// The active tracing level.
    pub fn trace_level(&self) -> TraceLevel {
        self.tracer.as_ref().map_or(TraceLevel::Off, |t| t.level())
    }

    /// The attached tracer, if any (tests and diagnostics).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.tracer.as_deref()
    }

    /// Detach and return the tracer; sweep drivers serialize it per job
    /// and merge the sections in canonical job order.
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.tracer.take()
    }

    /// Enable/disable static workload analysis. The runner analyzes its
    /// programs before executing (see [`crate::analyze`]); findings at
    /// `Error` severity panic, lower severities print per the level. A
    /// pure pre-pass: simulation results are bit-identical at every level.
    pub fn set_analyze_level(&mut self, level: AnalyzeLevel) {
        self.analyze = level;
    }

    /// The active static-analysis level.
    pub fn analyze_level(&self) -> AnalyzeLevel {
        self.analyze
    }

    /// Stamp subsequent trace events with the executing `thread` (set by
    /// the runner; machine-internal activity keeps the last context).
    pub fn set_trace_thread(&mut self, thread: u32) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_thread(thread);
        }
    }

    /// Record a measured-interval boundary in the trace (runner
    /// `MarkStart`/`MarkEnd`). No-op when tracing is off.
    pub fn trace_mark(&mut self, id: u32, start: bool, now: SimTime) {
        self.trace(now, 0, EventKind::Mark { id, start });
    }

    #[inline]
    fn trace(&mut self, time: SimTime, line: u64, kind: EventKind) {
        if let Some(tr) = self.tracer.as_mut() {
            tr.record(time, line, kind);
        }
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The die topology (tile/EDC/IMC coordinates).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The machine's address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Snapshot of the hardware event counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// A fresh arena over this machine's NUMA regions.
    pub fn arena(&self) -> Arena {
        Arena::new(&self.map)
    }

    /// Disable latency jitter (model fitting wants clean parameters;
    /// benchmark realism wants jitter on).
    pub fn set_jitter(&mut self, pct: u32) {
        self.jitter_pct = pct;
    }

    /// Clear caches, directory, and memory-side cache (fresh repetition).
    pub fn reset_caches(&mut self) {
        self.reset_tile_caches();
        if self.mcache.enabled() {
            self.mcache.clear();
        }
    }

    /// Clear only the on-die caches (L1/L2/directory), leaving the MCDRAM
    /// memory-side cache warm — used by cache-mode latency benchmarks.
    pub fn reset_tile_caches(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.l2_port_busy.fill(0);
        self.dir.clear();
        if let Some(ck) = self.checker.as_mut() {
            ck.on_reset();
        }
    }

    /// Clear device queue backlog (memory devices and mesh rings).
    pub fn reset_devices(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        self.mesh.reset();
    }

    /// Hit rate of the memory-side cache so far (cache/hybrid modes).
    pub fn mcache_hit_rate(&self) -> f64 {
        self.mcache.hit_rate()
    }

    // ------------------------------------------------------------------
    // Coherent single-line access
    // ------------------------------------------------------------------

    /// Perform one coherent access; returns completion time and provenance.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: u64,
        kind: AccessKind,
        now: SimTime,
    ) -> AccessOutcome {
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_tile(tile.0);
        }
        match kind {
            AccessKind::Read => self.read(core, tile, line, addr, now),
            AccessKind::Write => self.write(core, tile, line, addr, now),
            AccessKind::NtStore => self.nt_store(tile, line, addr, now),
        }
    }

    fn read(
        &mut self,
        core: CoreId,
        tile: TileId,
        line: u64,
        addr: u64,
        now: SimTime,
    ) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        let ver = self.dir.get(&line).map_or(0, |e| e.version);

        // L1 hit.
        if self.l1[core.0 as usize].lookup(line, ver) {
            self.counters.l1_hits += 1;
            if let Some(ck) = self.checker.as_mut() {
                ck.observe_read(line, false);
            }
            let dur = self.jitter(t.l1_hit_ps, line);
            self.trace(
                now + dur,
                line,
                EventKind::Serve {
                    op: 'R',
                    src: 'L',
                    hops: 0,
                    latency_ps: dur,
                },
            );
            return AccessOutcome {
                complete: now + dur,
                served_by: ServedBy::L1,
            };
        }

        // Same-tile L2 hit.
        let tile_state = self
            .dir
            .get(&line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile));
        if tile_state != MesifState::Invalid && self.l2[tile.0 as usize].lookup(line, ver) {
            self.counters.l2_hits += 1;
            let is_m = tile_state == MesifState::Modified;
            let is_e = tile_state == MesifState::Exclusive;
            let lat = t.tile_l2_ps(is_m, is_e);
            // Port occupancy bounds same-tile bandwidth.
            let port = t.l2_port_ps_per_line + if is_m { t.l2_port_m_extra_ps } else { 0 };
            let start = now.max(self.l2_port_busy[tile.0 as usize]);
            self.l2_port_busy[tile.0 as usize] = start + port;
            let complete = (start + self.jitter(lat, line)).max(start + port);
            self.l1_fill(core, line, ver);
            if let Some(ck) = self.checker.as_mut() {
                ck.observe_read(line, false);
            }
            self.trace(
                complete,
                line,
                EventKind::Serve {
                    op: 'R',
                    src: 'T',
                    hops: 0,
                    latency_ps: complete - now,
                },
            );
            return AccessOutcome {
                complete,
                served_by: ServedBy::TileL2(tile_state),
            };
        }

        // Remote path: requester -> home CHA.
        let home = self.map.home_directory(addr);
        let req_pos = self.topo.tile_position(tile);
        let home_pos = self.topo.tile_position(home);
        let t_req = self
            .mesh
            .traverse(req_pos, home_pos, now + t.l2_miss_detect_ps + t.inject_ps);
        if self.tracer.is_some() {
            self.trace(now, line, EventKind::Issue { op: 'R' });
            self.trace(
                t_req,
                line,
                EventKind::Hop {
                    leg: 'q',
                    hops: hop_dist(req_pos, home_pos),
                },
            );
        }

        let entry = self.dir.entry(line).or_default();
        let wait = entry.busy_until.saturating_sub(t_req);
        let t_svc = t_req + wait + t.cha_lookup_ps;
        entry.busy_until = t_req + wait + t.cha_line_serialize_ps;

        let supplier = entry.supplier().filter(|&s| s != tile);
        let outcome = if let Some(sup) = supplier {
            let st = entry.state_of(sup);
            let extra = match st {
                MesifState::Modified => t.remote_m_extra_ps,
                MesifState::Exclusive => t.remote_e_extra_ps,
                _ => 0,
            };
            let sup_pos = self.topo.tile_position(sup);
            let t_data =
                self.mesh.traverse(home_pos, sup_pos, t_svc + t.inject_ps) + t.remote_l2_ps + extra;
            let complete = self.mesh.traverse(sup_pos, req_pos, t_data + t.inject_ps) + t.fill_ps;
            self.counters.remote_cache_hits += 1;
            let entry = self.dir.get_mut(&line).expect("entry exists");
            let from = gstate_tag(&entry.state);
            if st == MesifState::Modified {
                // Forced write-back downgrades M to S.
                self.counters.writebacks += 1;
            }
            entry.grant_read(tile);
            if let Some(ck) = self.checker.as_mut() {
                ck.on_event(line, ProtoEvent::GrantRead { tile }, entry, true);
                ck.observe_read(line, false);
            }
            trace_dir(&mut self.tracer, t_svc, line, from, entry);
            let jc = now + self.jitter(complete - now, line);
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    t_data,
                    line,
                    EventKind::Hop {
                        leg: 'd',
                        hops: hop_dist(home_pos, sup_pos),
                    },
                );
                tr.record(
                    complete,
                    line,
                    EventKind::Hop {
                        leg: 'r',
                        hops: hop_dist(sup_pos, req_pos),
                    },
                );
                if st == MesifState::Modified {
                    tr.record(complete, line, EventKind::Writeback);
                }
                tr.record(
                    jc,
                    line,
                    EventKind::Serve {
                        op: 'R',
                        src: st.letter(),
                        hops: hop_dist(req_pos, sup_pos),
                        latency_ps: jc - now,
                    },
                );
            }
            AccessOutcome {
                complete: jc,
                served_by: ServedBy::RemoteCache {
                    holder: sup,
                    state: st,
                },
            }
        } else {
            let (ready, served_by) = self.memory_read(addr, line, home_pos, t_svc);
            let served_pos = self.served_pos(served_by);
            let complete = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps) + t.fill_ps;
            let entry = self.dir.get_mut(&line).expect("entry exists");
            let from = gstate_tag(&entry.state);
            entry.grant_read(tile);
            if let Some(ck) = self.checker.as_mut() {
                ck.on_event(line, ProtoEvent::GrantRead { tile }, entry, true);
                ck.observe_read(line, true);
            }
            trace_dir(&mut self.tracer, t_svc, line, from, entry);
            let jc = now + self.jitter(complete - now, line);
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    complete,
                    line,
                    EventKind::Hop {
                        leg: 'r',
                        hops: hop_dist(served_pos, req_pos),
                    },
                );
                tr.record(
                    jc,
                    line,
                    EventKind::Serve {
                        op: 'R',
                        src: src_tag(served_by),
                        hops: hop_dist(req_pos, served_pos),
                        latency_ps: jc - now,
                    },
                );
            }
            AccessOutcome {
                complete: jc,
                served_by,
            }
        };

        let ver = self.dir.get(&line).map_or(0, |e| e.version);
        self.l2_fill(tile, line, ver);
        self.l1_fill(core, line, ver);
        outcome
    }

    fn write(
        &mut self,
        core: CoreId,
        tile: TileId,
        line: u64,
        addr: u64,
        now: SimTime,
    ) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        let tile_state = self
            .dir
            .get(&line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile));
        let ver = self.dir.get(&line).map_or(0, |e| e.version);

        // Silent upgrade: tile already owns the line (M or E).
        if matches!(tile_state, MesifState::Modified | MesifState::Exclusive)
            && self.l2[tile.0 as usize].lookup(line, ver)
        {
            let in_l1 = self.l1[core.0 as usize].lookup(line, ver);
            let lat = if in_l1 {
                self.counters.l1_hits += 1;
                t.l1_hit_ps
            } else {
                self.counters.l2_hits += 1;
                t.tile_l2_ps(
                    tile_state == MesifState::Modified,
                    tile_state == MesifState::Exclusive,
                )
            };
            let entry = self.dir.get_mut(&line).expect("owned line has entry");
            let from = gstate_tag(&entry.state);
            let invalidated = entry.grant_write(tile);
            if let Some(ck) = self.checker.as_mut() {
                ck.on_event(
                    line,
                    ProtoEvent::GrantWrite { tile, invalidated },
                    entry,
                    true,
                );
            }
            trace_dir(&mut self.tracer, now, line, from, entry);
            // The version advanced (sibling-core L1 copies die); re-stamp
            // the writer's own caches.
            let ver = entry.version;
            self.l2_fill(tile, line, ver);
            self.l1_fill(core, line, ver);
            let dur = self.jitter(lat, line);
            self.trace(
                now + dur,
                line,
                EventKind::Serve {
                    op: 'W',
                    src: if in_l1 { 'L' } else { 'T' },
                    hops: 0,
                    latency_ps: dur,
                },
            );
            return AccessOutcome {
                complete: now + dur,
                served_by: if in_l1 {
                    ServedBy::L1
                } else {
                    ServedBy::TileL2(tile_state)
                },
            };
        }

        // RFO through the home directory.
        let home = self.map.home_directory(addr);
        let req_pos = self.topo.tile_position(tile);
        let home_pos = self.topo.tile_position(home);
        let t_req = self
            .mesh
            .traverse(req_pos, home_pos, now + t.l2_miss_detect_ps + t.inject_ps);
        if self.tracer.is_some() {
            self.trace(now, line, EventKind::Issue { op: 'W' });
            self.trace(
                t_req,
                line,
                EventKind::Hop {
                    leg: 'q',
                    hops: hop_dist(req_pos, home_pos),
                },
            );
        }

        let entry = self.dir.entry(line).or_default();
        let wait = entry.busy_until.saturating_sub(t_req);
        let t_svc = t_req + wait + t.cha_lookup_ps;
        entry.busy_until = t_req + wait + t.cha_line_serialize_ps;

        let supplier = entry.supplier().filter(|&s| s != tile);
        let other_sharers = match supplier {
            Some(_) => entry
                .num_holders()
                .saturating_sub(usize::from(entry.sharers.contains(&tile))),
            None => entry.num_holders(),
        };

        let (data_ready, served_by) = if let Some(sup) = supplier {
            let st = entry.state_of(sup);
            let extra = match st {
                MesifState::Modified => t.remote_m_extra_ps,
                MesifState::Exclusive => t.remote_e_extra_ps,
                _ => 0,
            };
            let sup_pos = self.topo.tile_position(sup);
            let at_sup =
                self.mesh.traverse(home_pos, sup_pos, t_svc + t.inject_ps) + t.remote_l2_ps + extra;
            let ready = self.mesh.traverse(sup_pos, req_pos, at_sup + t.inject_ps);
            self.counters.remote_cache_hits += 1;
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    at_sup,
                    line,
                    EventKind::Hop {
                        leg: 'd',
                        hops: hop_dist(home_pos, sup_pos),
                    },
                );
                tr.record(
                    ready,
                    line,
                    EventKind::Hop {
                        leg: 'r',
                        hops: hop_dist(sup_pos, req_pos),
                    },
                );
            }
            (
                ready,
                ServedBy::RemoteCache {
                    holder: sup,
                    state: st,
                },
            )
        } else if tile_state != MesifState::Invalid {
            // Upgrade from S/F: data already local; only permission needed.
            let ready = self.mesh.traverse(home_pos, req_pos, t_svc + t.inject_ps);
            (ready, ServedBy::TileL2(tile_state))
        } else {
            let (ready, served) = self.memory_read(addr, line, home_pos, t_svc);
            let served_pos = self.served_pos(served);
            let ready = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps);
            if let Some(tr) = self.tracer.as_mut() {
                tr.record(
                    ready,
                    line,
                    EventKind::Hop {
                        leg: 'r',
                        hops: hop_dist(served_pos, req_pos),
                    },
                );
            }
            (ready, served)
        };

        let entry = self.dir.get_mut(&line).expect("entry exists");
        let from = gstate_tag(&entry.state);
        // Fault injection (checker tests): remember one holder whose
        // invalidation we are about to "forget".
        let stale = if self.skip_invalidation {
            match &entry.state {
                GlobalState::Exclusive { owner } | GlobalState::Modified { owner }
                    if *owner != tile =>
                {
                    Some(*owner)
                }
                GlobalState::Shared { .. } => entry.sharers.iter().copied().find(|&s| s != tile),
                _ => None,
            }
        } else {
            None
        };
        let invalidated = entry.grant_write(tile);
        if let Some(s) = stale {
            entry.sharers.push(s);
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.on_event(
                line,
                ProtoEvent::GrantWrite { tile, invalidated },
                entry,
                true,
            );
        }
        trace_dir(&mut self.tracer, t_svc, line, from, entry);
        self.counters.invalidations += invalidated as u64;
        let inv_cost = invalidated as u64 * t.invalidate_per_sharer_ps;
        let _ = other_sharers;

        let complete = data_ready + inv_cost + t.fill_ps;
        let ver = self.dir.get(&line).map_or(0, |e| e.version);
        self.l2_fill(tile, line, ver);
        self.l1_fill(core, line, ver);
        let jc = now + self.jitter(complete - now, line);
        if self.tracer.is_some() {
            if invalidated > 0 {
                self.trace(
                    t_svc,
                    line,
                    EventKind::Inv {
                        n: invalidated as u32,
                    },
                );
            }
            let (src, hops) = match served_by {
                ServedBy::TileL2(_) => ('T', hop_dist(req_pos, home_pos)),
                other => (src_tag(other), hop_dist(req_pos, self.served_pos(other))),
            };
            self.trace(
                jc,
                line,
                EventKind::Serve {
                    op: 'W',
                    src,
                    hops,
                    latency_ps: jc - now,
                },
            );
        }
        AccessOutcome {
            complete: jc,
            served_by,
        }
    }

    fn nt_store(&mut self, tile: TileId, line: u64, addr: u64, now: SimTime) -> AccessOutcome {
        let t = self.cfg.timing.clone();
        self.counters.nt_stores += 1;
        self.trace(now, line, EventKind::Issue { op: 'N' });
        // Invalidate any cached copies (rare for streaming workloads). One
        // invalidation message goes to *each* holder — the same accounting
        // as the RFO path, which the coherence checker reconciles exactly.
        let mut extra = 0;
        let mut destroyed = None;
        if let Some(entry) = self.dir.get_mut(&line) {
            let holders = entry.num_holders();
            if holders > 0 {
                let from = gstate_tag(&entry.state);
                let dirty = entry.invalidate_all();
                if let Some(ck) = self.checker.as_mut() {
                    ck.on_event(
                        line,
                        ProtoEvent::InvalidateAll { holders, dirty },
                        entry,
                        true,
                    );
                }
                trace_dir(&mut self.tracer, now, line, from, entry);
                destroyed = Some((holders, dirty));
            }
        }
        if let Some((holders, dirty)) = destroyed {
            self.counters.invalidations += holders as u64;
            extra = holders as u64 * t.invalidate_per_sharer_ps;
            if self.tracer.is_some() {
                self.trace(now, line, EventKind::Inv { n: holders as u32 });
            }
            if dirty {
                self.counters.writebacks += 1;
                self.trace(now, line, EventKind::Writeback);
            }
        }
        if let Some(ck) = self.checker.as_mut() {
            ck.on_nt_store(line);
        }
        // Posted: the core only pays the issue cost; the device is occupied
        // in the background. The accept time is returned to let callers
        // throttle on write-combining-buffer capacity.
        let req_pos = self.topo.tile_position(tile);
        let accept = self.memory_write(addr, line, req_pos, now + t.issue_gap_ps);
        AccessOutcome {
            complete: accept + extra,
            served_by: ServedBy::Posted,
        }
    }

    // ------------------------------------------------------------------
    // Memory paths
    // ------------------------------------------------------------------

    /// Read `line` from memory; `from_pos` is where the request departs
    /// (home CHA). Returns (data-ready-at-device time, provenance).
    fn memory_read(
        &mut self,
        addr: u64,
        line: u64,
        from_pos: (i32, i32),
        t0: SimTime,
    ) -> (SimTime, ServedBy) {
        let t = self.cfg.timing.clone();
        let in_ddr = matches!(self.map.mem_target(addr), MemTarget::Ddr { .. });
        if self.mcache.enabled() && in_ddr {
            // Memory-side cache flow.
            let edc = self.map.mcdram_cache_edc(addr);
            let edc_pos = self.topo.edc_position(edc);
            let arrive = self.mesh.traverse(from_pos, edc_pos, t0 + t.inject_ps) + t.mcache_tag_ps;
            let edc_dev = 6 + edc as usize;
            match self.mcache.access(line, false) {
                McacheOutcome::Hit => {
                    self.counters.mcache_hits += 1;
                    self.counters.mcdram_accesses += 1;
                    if self.tracer.is_some() {
                        let depth = self.devices[edc_dev].backlog_lines(arrive);
                        self.trace(arrive, line, EventKind::Mcache { edc, hit: true });
                        self.trace(
                            arrive,
                            line,
                            EventKind::DevEnter {
                                dev: edc_dev as u8,
                                write: false,
                                depth,
                            },
                        );
                    }
                    let ready = self.devices[edc_dev].read(arrive);
                    self.trace(ready, line, EventKind::DevLeave { dev: edc_dev as u8 });
                    (ready, ServedBy::McacheHit { edc })
                }
                outcome => {
                    self.counters.mcache_misses += 1;
                    self.counters.ddr_accesses += 1;
                    let target = self.map.mem_target(addr);
                    let ddr_pos = self.ddr_pos(target);
                    let at_ddr = self.mesh.traverse(edc_pos, ddr_pos, arrive + t.inject_ps);
                    let ddr_dev = target.device_index();
                    if self.tracer.is_some() {
                        self.trace(arrive, line, EventKind::Mcache { edc, hit: false });
                        self.trace(
                            at_ddr,
                            line,
                            EventKind::Hop {
                                leg: 'd',
                                hops: hop_dist(edc_pos, ddr_pos),
                            },
                        );
                        let depth = self.devices[ddr_dev].backlog_lines(at_ddr);
                        self.trace(
                            at_ddr,
                            line,
                            EventKind::DevEnter {
                                dev: ddr_dev as u8,
                                write: false,
                                depth,
                            },
                        );
                    }
                    let ready = self.devices[ddr_dev].read(at_ddr);
                    self.trace(ready, line, EventKind::DevLeave { dev: ddr_dev as u8 });
                    // Fill the cache line in the background ("data read from
                    // DDR is sent to MCDRAM and the requesting tile
                    // simultaneously").
                    if self.tracer.is_some() {
                        let depth = self.devices[edc_dev].backlog_lines(ready);
                        self.trace(
                            ready,
                            line,
                            EventKind::DevEnter {
                                dev: edc_dev as u8,
                                write: true,
                                depth,
                            },
                        );
                    }
                    self.devices[edc_dev].write(ready);
                    if let McacheOutcome::MissDirtyEvict { victim_line } = outcome {
                        // Victim write-back to DDR (plus the L2 snoop the
                        // paper describes; both happen off the critical path).
                        let victim_addr = victim_line << LINE_SHIFT;
                        let vt = self.map.mem_target(victim_addr);
                        if self.tracer.is_some() {
                            let depth = self.devices[vt.device_index()].backlog_lines(ready);
                            self.trace(
                                ready,
                                victim_line,
                                EventKind::DevEnter {
                                    dev: vt.device_index() as u8,
                                    write: true,
                                    depth,
                                },
                            );
                            self.trace(ready, victim_line, EventKind::Writeback);
                        }
                        self.devices[vt.device_index()].write(ready);
                        self.counters.writebacks += 1;
                        if let Some(ck) = self.checker.as_mut() {
                            ck.note_external_writeback();
                        }
                    }
                    (ready, ServedBy::Memory(target))
                }
            }
        } else {
            let target = self.map.mem_target(addr);
            let pos = self.target_pos(target);
            let arrive = self.mesh.traverse(from_pos, pos, t0 + t.inject_ps);
            let dev = target.device_index();
            if self.tracer.is_some() {
                let depth = self.devices[dev].backlog_lines(arrive);
                self.trace(
                    arrive,
                    line,
                    EventKind::DevEnter {
                        dev: dev as u8,
                        write: false,
                        depth,
                    },
                );
            }
            let ready = self.devices[dev].read(arrive);
            self.trace(ready, line, EventKind::DevLeave { dev: dev as u8 });
            match target {
                MemTarget::Ddr { .. } => self.counters.ddr_accesses += 1,
                MemTarget::Mcdram { .. } => self.counters.mcdram_accesses += 1,
            }
            (ready, ServedBy::Memory(target))
        }
    }

    /// Write one line to memory (write-back or NT store). Returns accept time.
    fn memory_write(&mut self, addr: u64, line: u64, from_pos: (i32, i32), t0: SimTime) -> SimTime {
        let t = self.cfg.timing.clone();
        let in_ddr = matches!(self.map.mem_target(addr), MemTarget::Ddr { .. });
        if self.mcache.enabled() && in_ddr {
            // Write-backs and NT stores land in the MCDRAM cache directly.
            let edc = self.map.mcdram_cache_edc(addr);
            let edc_pos = self.topo.edc_position(edc);
            let arrive = self.mesh.traverse(from_pos, edc_pos, t0 + t.inject_ps) + t.mcache_tag_ps;
            let edc_dev = 6 + edc as usize;
            if self.tracer.is_some() {
                let depth = self.devices[edc_dev].backlog_lines(arrive);
                self.trace(
                    arrive,
                    line,
                    EventKind::DevEnter {
                        dev: edc_dev as u8,
                        write: true,
                        depth,
                    },
                );
            }
            match self.mcache.access(line, true) {
                McacheOutcome::Hit
                | McacheOutcome::MissCold
                | McacheOutcome::MissCleanEvict { .. } => {
                    self.counters.mcdram_accesses += 1;
                    let accept = self.devices[edc_dev].write(arrive);
                    self.trace(accept, line, EventKind::DevLeave { dev: edc_dev as u8 });
                    accept
                }
                McacheOutcome::MissDirtyEvict { victim_line } => {
                    self.counters.mcdram_accesses += 1;
                    let accept = self.devices[edc_dev].write(arrive);
                    self.trace(accept, line, EventKind::DevLeave { dev: edc_dev as u8 });
                    let victim_addr = victim_line << LINE_SHIFT;
                    let vt = self.map.mem_target(victim_addr);
                    // The dirty victim must drain to DDR before the cache
                    // can accept the new line: evictions backpressure the
                    // write stream (this is why cache-mode write bandwidth
                    // collapses toward the DDR write rate in Table II).
                    if self.tracer.is_some() {
                        let depth = self.devices[vt.device_index()].backlog_lines(accept);
                        self.trace(
                            accept,
                            victim_line,
                            EventKind::DevEnter {
                                dev: vt.device_index() as u8,
                                write: true,
                                depth,
                            },
                        );
                        self.trace(accept, victim_line, EventKind::Writeback);
                    }
                    let drained = self.devices[vt.device_index()].write(accept);
                    if self.tracer.is_some() {
                        self.trace(
                            drained,
                            victim_line,
                            EventKind::DevLeave {
                                dev: vt.device_index() as u8,
                            },
                        );
                    }
                    self.counters.writebacks += 1;
                    if let Some(ck) = self.checker.as_mut() {
                        ck.note_external_writeback();
                    }
                    drained
                }
            }
        } else {
            let target = self.map.mem_target(addr);
            let pos = self.target_pos(target);
            let arrive = self.mesh.traverse(from_pos, pos, t0 + t.inject_ps);
            let dev = target.device_index();
            if self.tracer.is_some() {
                let depth = self.devices[dev].backlog_lines(arrive);
                self.trace(
                    arrive,
                    line,
                    EventKind::DevEnter {
                        dev: dev as u8,
                        write: true,
                        depth,
                    },
                );
            }
            match target {
                MemTarget::Ddr { .. } => self.counters.ddr_accesses += 1,
                MemTarget::Mcdram { .. } => self.counters.mcdram_accesses += 1,
            }
            let accept = self.devices[dev].write(arrive);
            self.trace(accept, line, EventKind::DevLeave { dev: dev as u8 });
            accept
        }
    }

    fn target_pos(&self, target: MemTarget) -> (i32, i32) {
        match target {
            MemTarget::Ddr { imc, .. } => self.topo.imc_position(imc),
            MemTarget::Mcdram { edc } => self.topo.edc_position(edc),
        }
    }

    fn ddr_pos(&self, target: MemTarget) -> (i32, i32) {
        match target {
            MemTarget::Ddr { imc, .. } => self.topo.imc_position(imc),
            MemTarget::Mcdram { .. } => unreachable!("mcache backing store must be DDR"),
        }
    }

    fn served_pos(&self, served: ServedBy) -> (i32, i32) {
        match served {
            ServedBy::Memory(t) => self.target_pos(t),
            ServedBy::McacheHit { edc } => self.topo.edc_position(edc),
            ServedBy::RemoteCache { holder, .. } => self.topo.tile_position(holder),
            // L1/L2/Posted never route a reply across the mesh.
            _ => (0, 0),
        }
    }

    // ------------------------------------------------------------------
    // Cached multi-line transfers (cache-to-cache benchmarks, Fig. 5)
    // ------------------------------------------------------------------

    /// Copy `bytes` from `src` to `dst` through the caches (both coherent),
    /// overlapping reads up to the copy MLP cap. Returns completion time.
    pub fn copy_buf(
        &mut self,
        core: CoreId,
        src: u64,
        dst: u64,
        bytes: u64,
        vectorized: bool,
        now: SimTime,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let ov = if vectorized {
            t.ov_c2c_copy_vec
        } else {
            t.ov_c2c_copy_scalar
        } as usize;
        let lines = knl_arch::lines_for(bytes);
        let mut ring: Vec<SimTime> = vec![now; ov.max(1)];
        let mut issue = now;
        let mut done = now;
        for i in 0..lines {
            let slot = (i as usize) % ring.len();
            let gated = issue.max(ring[slot]);
            let r = self.access(core, src + i * 64, AccessKind::Read, gated);
            // The local store is buffered; it costs a write access that is
            // overlapped with subsequent reads, so only its ownership fetch
            // (first touch) shows up via the cache state.
            let w = self.access(core, dst + i * 64, AccessKind::Write, r.complete);
            ring[slot] = r.complete;
            done = w.complete;
            issue += t.issue_gap_ps;
        }
        done
    }

    /// Read `bytes` from `src` into registers (no destination buffer),
    /// overlapping up to the read MLP cap.
    pub fn read_buf(
        &mut self,
        core: CoreId,
        src: u64,
        bytes: u64,
        vectorized: bool,
        now: SimTime,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let ov = if vectorized {
            t.ov_c2c_read_vec
        } else {
            t.ov_c2c_read_scalar
        } as usize;
        let lines = knl_arch::lines_for(bytes);
        let mut ring: Vec<SimTime> = vec![now; ov.max(1)];
        let mut issue = now;
        let mut done = now;
        for i in 0..lines {
            let slot = (i as usize) % ring.len();
            let gated = issue.max(ring[slot]);
            let r = self.access(core, src + i * 64, AccessKind::Read, gated);
            ring[slot] = r.complete;
            done = done.max(r.complete);
            issue += t.issue_gap_ps;
        }
        done
    }

    // ------------------------------------------------------------------
    // Bulk streaming (memory bandwidth benchmarks, Table II / Fig. 9)
    // ------------------------------------------------------------------

    /// Stream up to `max_lines` lines of a memory kernel starting at line
    /// offset `start_line` within the kernel's buffers, stopping early when
    /// the issue frontier passes `deadline` (the runner's time slice, which
    /// bounds how far out of order device arrivals can be). Coherence
    /// bookkeeping is bypassed (fresh lines, no reuse); device queueing and
    /// the memory-side cache are fully modelled.
    ///
    /// Returns `(time, lines_done)`: when the kernel finished (`lines_done
    /// == max_lines`), `time` is the drain time of all outstanding requests;
    /// otherwise it is the issue frontier where the slice stopped.
    #[allow(clippy::too_many_arguments)]
    pub fn stream_chunk(
        &mut self,
        core: CoreId,
        kind: crate::ops::StreamKind,
        a: u64,
        b: u64,
        c: u64,
        start_line: u64,
        max_lines: u64,
        vectorized: bool,
        state: &mut StreamState,
        now: SimTime,
        deadline: SimTime,
    ) -> (SimTime, u64) {
        self.stream_chunk_shared(
            core, kind, a, b, c, start_line, max_lines, vectorized, state, now, deadline, 1,
        )
    }

    /// [`Machine::stream_chunk`] with `core_threads` HyperThreads sharing
    /// the core: MLP caps and issue bandwidth are divided among co-resident
    /// threads (they share MSHRs and load ports).
    #[allow(clippy::too_many_arguments)]
    pub fn stream_chunk_shared(
        &mut self,
        core: CoreId,
        kind: crate::ops::StreamKind,
        a: u64,
        b: u64,
        c: u64,
        start_line: u64,
        max_lines: u64,
        vectorized: bool,
        state: &mut StreamState,
        now: SimTime,
        deadline: SimTime,
        core_threads: u32,
    ) -> (SimTime, u64) {
        use crate::ops::StreamKind::*;
        let t = self.cfg.timing.clone();
        let share = core_threads.max(1);
        let ov_load = ((if vectorized {
            t.ov_mem_vec
        } else {
            t.ov_mem_scalar
        }) / share)
            .max(1) as usize;
        let ov_nt = (t.max_nt_outstanding / share).max(1) as usize;
        let issue_gap = t.issue_gap_ps * share as u64;
        let tile = core.tile();
        let req_pos = self.topo.tile_position(tile);
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_tile(tile.0);
        }
        state.last_issue = state.last_issue.max(now);
        let mut lines_done = 0u64;
        for i in start_line..start_line + max_lines {
            state.last_issue += issue_gap;
            let issue = state.last_issue;
            match kind {
                Read => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                }
                Write => {
                    self.stream_nt(a + i * 64, req_pos, ov_nt, issue, state);
                }
                Copy => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                    self.stream_nt(a + i * 64, req_pos, ov_nt, issue, state);
                }
                Triad => {
                    self.stream_load(b + i * 64, req_pos, ov_load, issue, state);
                    state.last_issue += issue_gap;
                    self.stream_load(c + i * 64, req_pos, ov_load, state.last_issue, state);
                    self.stream_nt(a + i * 64, req_pos, ov_nt, state.last_issue, state);
                }
            }
            lines_done += 1;
            if state.last_issue > deadline {
                break;
            }
        }
        if lines_done == max_lines {
            (state.drain_time().max(state.last_issue), lines_done)
        } else {
            (state.last_issue, lines_done)
        }
    }

    fn stream_load(
        &mut self,
        addr: u64,
        req_pos: (i32, i32),
        ov: usize,
        issue: SimTime,
        state: &mut StreamState,
    ) -> SimTime {
        let t = self.cfg.timing.clone();
        let gated = state.gate_load(ov, issue);
        // The issue frontier tracks real issue times so MLP backpressure
        // throttles the stream (and slice deadlines stay meaningful).
        state.last_issue = state.last_issue.max(gated);
        let line = addr >> LINE_SHIFT;
        let home = self.map.home_directory(addr);
        let home_pos = self.topo.tile_position(home);
        let t_svc =
            self.mesh
                .traverse(req_pos, home_pos, gated + t.l2_miss_detect_ps + t.inject_ps)
                + t.cha_lookup_ps;
        let (ready, served) = self.memory_read(addr, line, home_pos, t_svc);
        let served_pos = self.served_pos(served);
        let complete = self.mesh.traverse(served_pos, req_pos, ready + t.inject_ps) + t.fill_ps;
        let complete = gated + self.jitter(complete - gated, line);
        if self.tracer.is_some() {
            self.trace(
                complete,
                line,
                EventKind::Serve {
                    op: 'R',
                    src: src_tag(served),
                    hops: hop_dist(req_pos, served_pos),
                    latency_ps: complete - gated,
                },
            );
        }
        state.record_load(complete);
        complete
    }

    fn stream_nt(
        &mut self,
        addr: u64,
        req_pos: (i32, i32),
        ov: usize,
        issue: SimTime,
        state: &mut StreamState,
    ) -> SimTime {
        let gated = state.gate_nt(ov, issue);
        state.last_issue = state.last_issue.max(gated);
        let line = addr >> LINE_SHIFT;
        self.counters.nt_stores += 1;
        let accept = self.memory_write(addr, line, req_pos, gated);
        state.record_nt(accept);
        // The core moves on immediately; the gate above models WC-buffer
        // backpressure.
        gated.max(issue)
    }

    // ------------------------------------------------------------------
    // Fills & evictions
    // ------------------------------------------------------------------

    fn l1_fill(&mut self, core: CoreId, line: u64, version: u32) {
        // L1 evictions are silent (the tile L2 retains the line).
        let _ = self.l1[core.0 as usize].insert(line, version);
    }

    fn l2_fill(&mut self, tile: TileId, line: u64, version: u32) {
        if let Insert::Evicted(victim) = self.l2[tile.0 as usize].insert(line, version) {
            let mut dirty = None;
            let when = self.l2_port_busy[tile.0 as usize];
            if let Some(entry) = self.dir.get_mut(&victim) {
                let from = gstate_tag(&entry.state);
                let d = entry.evict(tile);
                if let Some(ck) = self.checker.as_mut() {
                    ck.on_event(victim, ProtoEvent::Evict { tile, dirty: d }, entry, true);
                }
                trace_dir(&mut self.tracer, when, victim, from, entry);
                dirty = Some(d);
            }
            if dirty == Some(true) {
                // Dirty victim: write back in the background.
                self.counters.writebacks += 1;
                self.trace(when, victim, EventKind::Writeback);
                let victim_addr = victim << LINE_SHIFT;
                let pos = self.topo.tile_position(tile);
                self.memory_write(victim_addr, victim, pos, when);
            }
        }
    }

    /// Explicitly drop `addr`'s line from `core`'s tile (both L1s and the
    /// shared L2), updating the directory; a dirty copy is written back in
    /// the background. Returns the core-visible completion time. This is
    /// the [`crate::ops::Op::Evict`] primitive the coherence fuzzer uses to
    /// exercise eviction paths without overflowing the tag arrays.
    pub fn evict_line(&mut self, core: CoreId, addr: u64, now: SimTime) -> SimTime {
        let t = self.cfg.timing.clone();
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        if let Some(tr) = self.tracer.as_mut() {
            tr.set_tile(tile.0);
        }
        for c in tile.cores() {
            if (c.0 as usize) < self.l1.len() {
                self.l1[c.0 as usize].remove(line);
            }
        }
        self.l2[tile.0 as usize].remove(line);
        let mut dirty = None;
        if let Some(entry) = self.dir.get_mut(&line) {
            let from = gstate_tag(&entry.state);
            let d = entry.evict(tile);
            if let Some(ck) = self.checker.as_mut() {
                ck.on_event(line, ProtoEvent::Evict { tile, dirty: d }, entry, true);
            }
            trace_dir(&mut self.tracer, now, line, from, entry);
            dirty = Some(d);
        }
        if dirty == Some(true) {
            self.counters.writebacks += 1;
            self.trace(now, line, EventKind::Writeback);
            let pos = self.topo.tile_position(tile);
            self.memory_write(addr, line, pos, now + t.issue_gap_ps);
        }
        // The core pays only the flush issue; write-backs are posted.
        now + t.l1_hit_ps
    }

    /// Pre-load a line into a tile's caches in a given state without timing
    /// (benchmark state preparation). `core` receives an L1 copy too.
    pub fn prepare_line(&mut self, core: CoreId, addr: u64, state: MesifState) {
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        match state {
            MesifState::Invalid => {
                if let Some(entry) = self.dir.get_mut(&line) {
                    let holders = entry.num_holders();
                    let dirty = entry.invalidate_all();
                    if let Some(ck) = self.checker.as_mut() {
                        ck.on_event(
                            line,
                            ProtoEvent::InvalidateAll { holders, dirty },
                            entry,
                            false,
                        );
                    }
                }
            }
            MesifState::Modified => {
                let entry = self.dir.entry(line).or_default();
                let invalidated = entry.grant_write(tile);
                if let Some(ck) = self.checker.as_mut() {
                    ck.on_event(
                        line,
                        ProtoEvent::GrantWrite { tile, invalidated },
                        entry,
                        false,
                    );
                }
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
            MesifState::Exclusive => {
                let entry = self.dir.entry(line).or_default();
                let holders = entry.num_holders();
                let dirty = entry.invalidate_all();
                entry.grant_read(tile); // first reader ⇒ E
                if let Some(ck) = self.checker.as_mut() {
                    ck.on_event(
                        line,
                        ProtoEvent::InvalidateAll { holders, dirty },
                        entry,
                        false,
                    );
                    ck.on_event(line, ProtoEvent::GrantRead { tile }, entry, false);
                }
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
            MesifState::Shared | MesifState::Forward => {
                // Owner reads, then a helper tile reads, leaving the owner S
                // and the helper F; for an F request we re-read from `core`.
                let entry = self.dir.entry(line).or_default();
                let holders = entry.num_holders();
                let dirty = entry.invalidate_all();
                let helper = TileId((tile.0 + 1) % self.cfg.active_tiles as u16);
                let (first, second) = if state == MesifState::Shared {
                    (tile, helper)
                } else {
                    (helper, tile)
                };
                entry.grant_read(first);
                entry.grant_read(second);
                if let Some(ck) = self.checker.as_mut() {
                    ck.on_event(
                        line,
                        ProtoEvent::InvalidateAll { holders, dirty },
                        entry,
                        false,
                    );
                    ck.on_event(line, ProtoEvent::GrantRead { tile: second }, entry, false);
                }
                let ver = entry.version;
                self.l2_fill(tile, line, ver);
                self.l1_fill(core, line, ver);
            }
        }
    }

    /// The MESIF state `tile` currently holds `addr` in (directory's view).
    pub fn line_state(&self, addr: u64, tile: TileId) -> MesifState {
        let line = addr >> LINE_SHIFT;
        self.dir
            .get(&line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile))
    }

    fn jitter(&mut self, dur: SimTime, line: u64) -> SimTime {
        if self.jitter_pct == 0 {
            return dur;
        }
        self.jitter_seq = self.jitter_seq.wrapping_add(1);
        let h = splitmix64(self.jitter_seq ^ line.rotate_left(17));
        let span = 2 * self.jitter_pct as u64 + 1;
        let pct = (h % span) as i64 - self.jitter_pct as i64;
        ((dur as i64) + (dur as i64 * pct) / 100).max(0) as SimTime
    }
}

/// Directory global-state tag for trace events (`U`/`E`/`M`/`S`).
fn gstate_tag(s: &GlobalState) -> char {
    match s {
        GlobalState::Uncached => 'U',
        GlobalState::Exclusive { .. } => 'E',
        GlobalState::Modified { .. } => 'M',
        GlobalState::Shared { .. } => 'S',
    }
}

/// Trace source tag for a [`ServedBy`] provenance.
fn src_tag(served: ServedBy) -> char {
    match served {
        ServedBy::L1 => 'L',
        ServedBy::TileL2(_) => 'T',
        ServedBy::RemoteCache { state, .. } => state.letter(),
        ServedBy::Memory(MemTarget::Ddr { .. }) => 'D',
        ServedBy::Memory(MemTarget::Mcdram { .. }) => 'C',
        ServedBy::McacheHit { .. } => 'H',
        ServedBy::Posted => 'N',
    }
}

/// Record a directory-transition event. A free function so call sites can
/// hold a `&mut DirEntry` (borrowed from `self.dir`) while the tracer
/// (a disjoint field) records — the same split-borrow shape as the
/// checker's `on_event` calls.
fn trace_dir(
    tracer: &mut Option<Box<Tracer>>,
    time: SimTime,
    line: u64,
    from: char,
    entry: &DirEntry,
) {
    if let Some(tr) = tracer.as_mut() {
        let forwarder = match &entry.state {
            GlobalState::Uncached => NO_TILE,
            GlobalState::Exclusive { owner } | GlobalState::Modified { owner } => owner.0,
            GlobalState::Shared { forward } => forward.map_or(NO_TILE, |t| t.0),
        };
        tr.record(
            time,
            line,
            EventKind::Dir {
                from,
                to: gstate_tag(&entry.state),
                forwarder,
                sharers: entry.num_holders() as u16,
            },
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MemoryMode, NumaKind, Schedule};

    fn machine(cm: ClusterMode, mm: MemoryMode) -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(cm, mm));
        m.set_jitter(0);
        m
    }

    fn ddr_addr(m: &Machine) -> u64 {
        let mut a = m.arena();
        a.alloc(NumaKind::Ddr, 4096)
    }

    #[test]
    fn l1_hit_after_first_read() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let addr = ddr_addr(&m);
        let c = CoreId(0);
        let first = m.access(c, addr, AccessKind::Read, 0);
        assert!(matches!(first.served_by, ServedBy::Memory(_)));
        let second = m.access(c, addr, AccessKind::Read, first.complete);
        assert!(matches!(second.served_by, ServedBy::L1));
        assert_eq!(second.complete - first.complete, 3_800);
    }

    #[test]
    fn memory_read_latency_near_140ns() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let mut lat = Vec::new();
        for i in 0..200u64 {
            let addr = 4096 + i * 64;
            let out = m.access(c, addr, AccessKind::Read, i * 1_000_000);
            lat.push((out.complete - i * 1_000_000) as f64 / 1000.0);
        }
        let med = {
            let mut v = lat.clone();
            v.sort_by(f64::total_cmp);
            v[v.len() / 2]
        };
        assert!((120.0..170.0).contains(&med), "DDR latency {med} ns");
    }

    #[test]
    fn mcdram_latency_higher_than_ddr() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let mut arena = m.arena();
        let ddr = arena.alloc(NumaKind::Ddr, 1 << 16);
        let mc = arena.alloc(NumaKind::Mcdram, 1 << 16);
        let mut tddr = 0u64;
        let mut tmc = 0u64;
        for i in 0..100u64 {
            let o = m.access(c, ddr + i * 64, AccessKind::Read, i * 1_000_000);
            tddr += o.complete - i * 1_000_000;
        }
        for i in 0..100u64 {
            let o = m.access(c, mc + i * 64, AccessKind::Read, (1000 + i) * 1_000_000);
            tmc += o.complete - (1000 + i) * 1_000_000;
        }
        assert!(
            tmc > tddr,
            "MCDRAM latency must exceed DDR ({tmc} vs {tddr})"
        );
    }

    #[test]
    fn same_tile_transfer_states() {
        // Table I: tile M 34 ns, E 18 ns, S/F 14 ns (plus port effects).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(0);
        let reader = CoreId(1); // same tile
        for (state, expect_ns) in [
            (MesifState::Modified, 34.0),
            (MesifState::Exclusive, 18.0),
            (MesifState::Shared, 14.0),
        ] {
            let addr = 1 << 16;
            m.reset_caches();
            m.prepare_line(owner, addr, state);
            let out = m.access(reader, addr, AccessKind::Read, 1_000_000);
            let ns = (out.complete - 1_000_000) as f64 / 1000.0;
            assert!(
                (ns - expect_ns).abs() < expect_ns * 0.35 + 2.0,
                "state {state:?}: got {ns} ns, expected ~{expect_ns}"
            );
            assert!(
                matches!(out.served_by, ServedBy::TileL2(_)),
                "{:?}",
                out.served_by
            );
        }
    }

    #[test]
    fn remote_transfer_slower_than_tile() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(10); // tile 5
        let reader = CoreId(0); // tile 0
        let addr = 1 << 16;
        m.prepare_line(owner, addr, MesifState::Modified);
        let out = m.access(reader, addr, AccessKind::Read, 0);
        assert!(matches!(out.served_by, ServedBy::RemoteCache { .. }));
        let ns = out.complete as f64 / 1000.0;
        assert!((80.0..170.0).contains(&ns), "remote M latency {ns} ns");
    }

    #[test]
    fn remote_m_costs_more_than_sf() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(10);
        let reader = CoreId(0);
        let addr_m = 1 << 16;
        let addr_s = 2 << 16;
        m.prepare_line(owner, addr_m, MesifState::Modified);
        m.prepare_line(owner, addr_s, MesifState::Forward);
        let tm = m.access(reader, addr_m, AccessKind::Read, 0).complete;
        let ts = m
            .access(reader, addr_s, AccessKind::Read, 10_000_000)
            .complete
            - 10_000_000;
        assert!(tm > ts, "M {tm} must exceed S/F {ts}");
    }

    #[test]
    fn write_invalidates_readers() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let a = CoreId(0);
        let b = CoreId(10);
        let addr = 1 << 16;
        // b owns; a reads (both share); b writes (invalidates a); a reads again.
        m.prepare_line(b, addr, MesifState::Modified);
        let r1 = m.access(a, addr, AccessKind::Read, 0);
        assert!(matches!(r1.served_by, ServedBy::RemoteCache { .. }));
        let w = m.access(b, addr, AccessKind::Write, r1.complete);
        let c0 = m.counters();
        assert!(c0.invalidations >= 1);
        let r2 = m.access(a, addr, AccessKind::Read, w.complete + 1_000_000);
        assert!(
            matches!(r2.served_by, ServedBy::RemoteCache { .. }),
            "invalidated reader must refetch, got {:?}",
            r2.served_by
        );
    }

    #[test]
    fn contention_serializes_at_directory() {
        // N readers hitting the same M line nearly simultaneously: the last
        // completion grows roughly linearly with N (Table I: α + β·N).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(0);
        let addr = 1 << 16;
        let last_for = |m: &mut Machine, n: usize| -> u64 {
            m.reset_caches();
            m.prepare_line(owner, addr, MesifState::Modified);
            let mut worst = 0;
            for i in 0..n {
                let reader = Schedule::Scatter.core(i + 1, 64);
                let out = m.access(reader, addr, AccessKind::Read, 0);
                worst = worst.max(out.complete);
            }
            worst
        };
        let t8 = last_for(&mut m, 8);
        let t32 = last_for(&mut m, 32);
        let slope = (t32 - t8) as f64 / 24.0 / 1000.0;
        assert!(
            (20.0..50.0).contains(&slope),
            "contention slope {slope} ns/thread (expect ~34)"
        );
    }

    #[test]
    fn cache_mode_hits_and_misses() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Cache);
        let c = CoreId(0);
        let addr = 1 << 20;
        let miss = m.access(c, addr, AccessKind::Read, 0);
        assert!(matches!(
            miss.served_by,
            ServedBy::Memory(MemTarget::Ddr { .. })
        ));
        // Evict from L1+L2 is hard; instead touch a different line mapping
        // to the same mcache set? Simpler: re-read after clearing the tile
        // caches — the memory-side cache keeps its content.
        for l2 in &mut m.l1 {
            l2.clear();
        }
        for l2 in &mut m.l2 {
            l2.clear();
        }
        m.dir.clear();
        let hit = m.access(c, addr, AccessKind::Read, 10_000_000);
        assert!(
            matches!(hit.served_by, ServedBy::McacheHit { .. }),
            "{:?}",
            hit.served_by
        );
        // Cache-mode hit latency exceeds a flat DDR access (tag check +
        // MCDRAM's higher device latency), per Table II.
        let hit_ns = (hit.complete - 10_000_000) as f64 / 1000.0;
        assert!(
            (140.0..210.0).contains(&hit_ns),
            "cache-mode latency {hit_ns}"
        );
    }

    #[test]
    fn nt_store_is_posted_and_counted() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let c = CoreId(0);
        let out = m.access(c, 4096, AccessKind::NtStore, 0);
        assert!(matches!(out.served_by, ServedBy::Posted));
        assert_eq!(m.counters().nt_stores, 1);
    }

    #[test]
    fn nt_store_invalidates_every_holder() {
        // An NT store destroys all cached copies; the invalidation counter
        // must reflect each one, exactly like an RFO (audit fix pinned by
        // the checker's counter reconciliation).
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut t = 0;
        for c in [CoreId(0), CoreId(2), CoreId(4)] {
            t = m.access(c, 4096, AccessKind::Read, t).complete;
        }
        let before = m.counters().invalidations;
        m.access(CoreId(6), 4096, AccessKind::NtStore, t);
        assert_eq!(m.counters().invalidations - before, 3);
    }

    #[test]
    fn checked_machine_matches_unchecked_timing() {
        // CheckLevel must be a pure observer: identical access timings and
        // counters with the oracle on or off.
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
        let mut plain = Machine::new(cfg.clone());
        let mut checked = Machine::with_check(cfg, crate::invariants::CheckLevel::FullOracle);
        plain.set_jitter(0);
        checked.set_jitter(0);
        let mut tp = 0;
        let mut tc = 0;
        for (i, kind) in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Read,
            AccessKind::NtStore,
            AccessKind::Read,
        ]
        .iter()
        .enumerate()
        {
            let c = CoreId((i as u16 % 4) * 2);
            tp = plain.access(c, 4096, *kind, tp).complete;
            tc = checked.access(c, 4096, *kind, tc).complete;
            assert_eq!(tp, tc, "op {i}");
        }
        assert_eq!(plain.counters(), checked.counters());
        checked.finish_check();
    }

    #[test]
    fn traced_machine_matches_untraced_timing() {
        // TraceLevel must be a pure observer: identical access timings and
        // counters with tracing on or off.
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
        let mut plain = Machine::new(cfg.clone());
        let mut traced = Machine::with_observers(cfg, CheckLevel::Off, TraceLevel::Full);
        plain.set_jitter(0);
        traced.set_jitter(0);
        let mut tp = 0;
        let mut tc = 0;
        for (i, kind) in [
            AccessKind::Read,
            AccessKind::Write,
            AccessKind::Read,
            AccessKind::NtStore,
            AccessKind::Read,
            AccessKind::Write,
        ]
        .iter()
        .enumerate()
        {
            let c = CoreId((i as u16 % 4) * 2);
            tp = plain.access(c, 4096, *kind, tp).complete;
            tc = traced.access(c, 4096, *kind, tc).complete;
            assert_eq!(tp, tc, "op {i}");
        }
        tp = plain.evict_line(CoreId(0), 4096, tp);
        tc = traced.evict_line(CoreId(0), 4096, tc);
        assert_eq!(tp, tc);
        assert_eq!(plain.counters(), traced.counters());
        assert!(!traced
            .tracer()
            .expect("tracer attached")
            .events()
            .is_empty());
    }

    #[test]
    fn remote_serve_traced_with_state_and_hops() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        m.set_trace_level(TraceLevel::Full);
        let addr = ddr_addr(&m);
        let owner = CoreId(0);
        let reader = CoreId(10);
        let t = m.access(owner, addr, AccessKind::Write, 0).complete;
        let out = m.access(reader, addr, AccessKind::Read, t);
        let holder = match out.served_by {
            ServedBy::RemoteCache { holder, state } => {
                assert_eq!(state, MesifState::Modified);
                holder
            }
            other => panic!("expected remote-cache serve, got {other:?}"),
        };
        let want_hops = hop_dist(
            m.topology().tile_position(reader.tile()),
            m.topology().tile_position(holder),
        );
        let tr = m.tracer().expect("tracer attached");
        let srv = tr
            .events()
            .iter()
            .rev()
            .find_map(|e| match e.kind {
                EventKind::Serve {
                    op: 'R', src, hops, ..
                } => Some((src, hops, e.tile)),
                _ => None,
            })
            .expect("remote read recorded a Serve event");
        assert_eq!(srv.0, 'M', "supplier held the line Modified");
        assert_eq!(srv.1, want_hops);
        assert_eq!(srv.2, reader.tile().0, "stamped with requesting tile");
    }

    #[test]
    fn trace_metrics_reconcile_with_counters() {
        // Every Inv/Writeback/Mcache event the tracer aggregates must match
        // the machine's own hardware counters, at Summary as well as Full.
        for level in [TraceLevel::Summary, TraceLevel::Full] {
            let mut m = machine(ClusterMode::Snc4, MemoryMode::Cache);
            m.set_trace_level(level);
            let addr = {
                let mut a = m.arena();
                a.alloc(NumaKind::Ddr, 1 << 20)
            };
            let mut t = 0;
            for i in 0..512u64 {
                let c = CoreId((i % 8 * 2) as u16);
                let a = addr + (i % 64) * 64;
                let kind = match i % 3 {
                    0 => AccessKind::Read,
                    1 => AccessKind::Write,
                    _ => AccessKind::NtStore,
                };
                t = m.access(c, a, kind, t).complete;
            }
            let ctr = m.counters();
            let tr = m.take_tracer().expect("tracer attached");
            let mm = tr.metrics();
            assert_eq!(mm.invalidations, ctr.invalidations, "{level:?}");
            assert_eq!(mm.writebacks, ctr.writebacks, "{level:?}");
            assert_eq!(mm.mcache_hits, ctr.mcache_hits, "{level:?}");
            assert_eq!(mm.mcache_misses, ctr.mcache_misses, "{level:?}");
            // Every Serve lands in exactly one histogram and one tile row,
            // and remote serves reconcile with the remote-hit counter.
            let serves: u64 = mm.tiles.values().map(|s| s.serves).sum();
            let hist_total: u64 = mm.hist.values().map(|h| h.count).sum();
            assert_eq!(serves, hist_total, "{level:?}");
            let remote: u64 = mm.tiles.values().map(|s| s.remote).sum();
            assert_eq!(remote, ctr.remote_cache_hits, "{level:?}");
        }
    }

    #[test]
    fn stream_read_ddr_saturates_near_77gbps() {
        // 32 cores streaming reads concurrently (via the runner, which
        // interleaves chunks in time order): aggregate must approach the
        // 77 GB/s DDR peak.
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let lines_per_core = 4096u64;
        let progs: Vec<crate::program::Program> = (0..32usize)
            .map(|i| {
                let core = Schedule::FillTiles.core(i, 64);
                let mut p = crate::program::Program::on_core(core);
                p.push(crate::ops::Op::Stream {
                    kind: crate::ops::StreamKind::Read,
                    a: 0,
                    b: (i as u64) * (1 << 22),
                    c: 0,
                    lines: lines_per_core,
                    vectorized: true,
                });
                p
            })
            .collect();
        let r = crate::runner::run_programs(&mut m, progs);
        let bytes = 32 * lines_per_core * 64;
        let gbps = (bytes as f64 / 1e9) / (r.end_time as f64 / 1e12);
        assert!(
            (55.0..85.0).contains(&gbps),
            "aggregate DDR read {gbps} GB/s"
        );
    }

    #[test]
    fn single_thread_mem_read_near_8gbps() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut st = StreamState::default();
        let (done, n) = m.stream_chunk(
            CoreId(0),
            crate::ops::StreamKind::Read,
            0,
            0,
            0,
            0,
            8192,
            true,
            &mut st,
            0,
            u64::MAX,
        );
        assert_eq!(n, 8192);
        let gbps = (8192.0 * 64.0 / 1e9) / (done as f64 / 1e12);
        assert!(
            (5.0..11.0).contains(&gbps),
            "single-thread DDR read {gbps} GB/s"
        );
    }

    #[test]
    fn stream_chunk_respects_deadline() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut st = StreamState::default();
        let (t, n) = m.stream_chunk(
            CoreId(0),
            crate::ops::StreamKind::Read,
            0,
            0,
            0,
            0,
            1_000_000,
            true,
            &mut st,
            0,
            100_000, // 100 ns slice
        );
        assert!(n < 1_000_000, "slice must stop early, did {n} lines");
        assert!(
            (100_000..400_000).contains(&t),
            "frontier near deadline: {t}"
        );
    }

    #[test]
    fn mcdram_stream_faster_than_ddr_aggregate() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let mut arena = m.arena();
        let mc = arena.alloc(NumaKind::Mcdram, 64 << 20);
        let run = |m: &mut Machine, base: u64| -> f64 {
            m.reset_devices();
            m.reset_caches();
            let lines = 2048u64;
            let progs: Vec<crate::program::Program> = (0..64usize)
                .map(|i| {
                    let core = Schedule::FillTiles.core(i, 64);
                    let mut p = crate::program::Program::on_core(core);
                    p.push(crate::ops::Op::Stream {
                        kind: crate::ops::StreamKind::Read,
                        a: 0,
                        b: base + (i as u64) * lines * 64,
                        c: 0,
                        lines,
                        vectorized: true,
                    });
                    p
                })
                .collect();
            let r = crate::runner::run_programs(m, progs);
            (64.0 * 2048.0 * 64.0 / 1e9) / (r.end_time as f64 / 1e12)
        };
        let ddr = run(&mut m, 0);
        let mcd = run(&mut m, mc);
        assert!(mcd > 2.0 * ddr, "MCDRAM {mcd} must be well above DDR {ddr}");
    }

    #[test]
    fn copy_buf_remote_bandwidth_band() {
        // Table I: remote copy ≈ 7.5 GB/s single-thread.
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let owner = CoreId(20);
        let reader = CoreId(0);
        let bytes = 64 * 1024u64;
        let src = 1 << 20;
        let dst = 8 << 20;
        for l in 0..knl_arch::lines_for(bytes) {
            m.prepare_line(owner, src + l * 64, MesifState::Modified);
        }
        let done = m.copy_buf(reader, src, dst, bytes, true, 0);
        let gbps = (bytes as f64 / 1e9) / (done as f64 / 1e12);
        assert!((4.0..12.0).contains(&gbps), "remote copy {gbps} GB/s");
    }

    #[test]
    fn counters_accumulate() {
        let mut m = machine(ClusterMode::Quadrant, MemoryMode::Flat);
        let before = m.counters();
        m.access(CoreId(0), 4096, AccessKind::Read, 0);
        m.access(CoreId(0), 4096, AccessKind::Read, 1_000_000);
        let d = m.counters().since(&before);
        assert_eq!(d.l1_hits, 1);
        assert_eq!(d.memory_accesses(), 1);
    }
}
