//! The simulated machine: caches + MESIF directory + mesh + memory devices.
//!
//! [`Machine::access`] performs one coherent line access and returns its
//! completion time, mutating every shared resource it touches (directory
//! serialization slots, device queues, tag arrays). Bulk streaming kernels
//! use [`Machine::stream_chunk`], which bypasses the coherence bookkeeping
//! (streams touch fresh lines with no reuse) but keeps device queueing and —
//! in cache mode — the memory-side cache behaviour.
//!
//! This file is the facade: state, construction, and the public accessor
//! surface. The protocol paths live in [`crate::engine::serve`], bulk
//! transfers in [`crate::engine::transfer`], and all instrumentation flows
//! through the [`ObserverHub`] defined in [`crate::engine::observe`].

use crate::alloc::Arena;
use crate::analyze::AnalyzeLevel;
use crate::cache::TagCache;
use crate::counters::Counters;
use crate::engine::observe::{AnalyzeGate, MachineObserver, ObserverConfig, ObserverHub};
use crate::fxmap::LineMap;
use crate::invariants::{CheckLevel, CoherenceChecker};
use crate::mcache::MemorySideCache;
use crate::memdev::{DeviceParams, MemDevice};
use crate::mesh::{Mesh, MeshConfig};
use crate::mesif::{DirEntry, MesifState};
use crate::program::Program;
use crate::trace::{TraceLevel, Tracer};
use crate::SimTime;
use knl_arch::address::NUM_MEM_DEVICES;
use knl_arch::topology::splitmix64;
use knl_arch::{AddressMap, CoreId, MachineConfig, MemTarget, TileId, Topology, LINE_SHIFT};

pub use crate::engine::transfer::StreamState;

/// Kind of a single coherent access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// Coherent load.
    Read,
    /// Coherent store (read-for-ownership).
    Write,
    /// Non-temporal (streaming) store: bypasses the caches, invalidates any
    /// cached copies, writes straight to memory.
    NtStore,
}

/// Where an access was served from (for assertions and diagnostics).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServedBy {
    /// Requesting core's own L1.
    L1,
    /// Requester's tile L2, with the line's state there.
    TileL2(MesifState),
    /// Forwarded from another tile's cache.
    RemoteCache {
        /// Supplying tile.
        holder: TileId,
        /// State the supplier held the line in.
        state: MesifState,
    },
    /// Served by a memory device.
    Memory(MemTarget),
    /// Served by the MCDRAM memory-side cache (cache/hybrid modes).
    McacheHit {
        /// EDC that held the line.
        edc: u8,
    },
    /// NT stores are posted; nothing is "served".
    Posted,
}

/// Completion time plus provenance of one access.
#[derive(Debug, Clone, Copy)]
pub struct AccessOutcome {
    /// Completion time of the access.
    pub complete: SimTime,
    /// Where the data came from.
    pub served_by: ServedBy,
}

/// The simulated KNL.
pub struct Machine {
    pub(crate) cfg: MachineConfig,
    pub(crate) topo: Topology,
    pub(crate) map: AddressMap,
    pub(crate) l1: Vec<TagCache>,
    pub(crate) l2: Vec<TagCache>,
    /// Data-port occupancy of each tile's L2.
    pub(crate) l2_port_busy: Vec<SimTime>,
    /// Distributed tag directory, keyed by line address. A [`LineMap`]
    /// because the directory walk is on the serve path of every access
    /// (DESIGN.md §6); it is never iterated, so map order cannot escape.
    pub(crate) dir: LineMap<DirEntry>,
    pub(crate) mesh: Mesh,
    pub(crate) devices: Vec<MemDevice>,
    pub(crate) mcache: MemorySideCache,
    pub(crate) counters: Counters,
    jitter_pct: u32,
    jitter_seq: u64,
    /// The event spine: every observer (coherence checker, tracer,
    /// analyzer gate) hangs off this one hub. Empty by default, in which
    /// case each emission point is a single never-taken branch.
    pub(crate) hub: ObserverHub,
    /// Fault injection for checker tests: a write skips invalidating one
    /// stale holder (see [`Machine::debug_skip_invalidation`]).
    pub(crate) skip_invalidation: bool,
}

// Sweep workers (knl-benchsuite's executor) each own a fresh Machine on a
// scoped thread; keep the type `Send` so a future field (Rc, RefCell over
// shared state, raw pointer) can't silently break the parallel drivers.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Machine>();
};

impl Machine {
    /// Instantiate the simulated machine for one configuration.
    pub fn new(cfg: MachineConfig) -> Self {
        let topo = cfg.topology();
        let map = cfg.address_map(&topo);
        let t = &cfg.timing;
        let num_cores = cfg.num_cores();
        let num_tiles = cfg.active_tiles;
        let mut devices = Vec::with_capacity(NUM_MEM_DEVICES);
        for i in 0..NUM_MEM_DEVICES {
            let is_ddr = i < 6;
            devices.push(if is_ddr {
                MemDevice::new(DeviceParams {
                    latency_ps: t.ddr_lat_ps,
                    read_service_ps: t.ddr_read_ps_per_line,
                    write_service_ps: t.ddr_write_ps_per_line,
                    write_mixed_ps: t.ddr_write_mixed_ps_per_line,
                    turnaround_ps: t.rw_turnaround_ps,
                    duplex: false,
                })
            } else {
                MemDevice::new(DeviceParams {
                    latency_ps: t.mcdram_lat_ps,
                    read_service_ps: t.mcdram_read_ps_per_line,
                    write_service_ps: t.mcdram_write_ps_per_line,
                    write_mixed_ps: t.mcdram_write_ps_per_line,
                    turnaround_ps: t.rw_turnaround_ps,
                    duplex: true,
                })
            });
        }
        let mcache = MemorySideCache::new(map.mcdram_cache_bytes());
        let mesh = Mesh::new(MeshConfig {
            hop_ps: t.hop_ps,
            ring_service_ps: (t.mesh_ring_service_ps > 0).then_some(t.mesh_ring_service_ps),
        });
        let jitter_pct = t.jitter_for(cfg.cluster);
        Machine {
            cfg,
            topo,
            map,
            l1: (0..num_cores).map(|_| TagCache::knl_l1()).collect(),
            l2: (0..num_tiles).map(|_| TagCache::knl_l2()).collect(),
            l2_port_busy: vec![0; num_tiles],
            dir: LineMap::new(),
            mesh,
            devices,
            mcache,
            counters: Counters::default(),
            jitter_pct,
            jitter_seq: 0,
            hub: ObserverHub::default(),
            skip_invalidation: false,
        }
    }

    /// [`Machine::new`] with the observers an [`ObserverConfig`] describes
    /// attached — the one construction knob for checker, tracer, and
    /// analyzer gate.
    pub fn with_observer_config(cfg: MachineConfig, oc: ObserverConfig) -> Self {
        let mut m = Self::new(cfg);
        m.hub = ObserverHub::from_config(oc, m.counters);
        m
    }

    /// Attach a custom observer to the event spine. The built-in observers
    /// are registered via [`Machine::with_observer_config`]; this is the
    /// extension point for additional ones (profilers, energy models).
    pub fn register_observer(&mut self, observer: Box<dyn MachineObserver>) {
        self.hub.register(observer);
    }

    /// Is any observer registered (event consumer or not)?
    pub fn has_observers(&self) -> bool {
        !self.hub.is_empty()
    }

    /// Notify observers that a runner is about to execute `programs` with
    /// `initial_flags` (sorted by address). The analyzer gate runs its
    /// static pre-pass here.
    pub fn observe_run_start(&mut self, programs: &[Program], initial_flags: &[(u64, u64)]) {
        self.hub.on_run_start(programs, initial_flags);
    }

    /// The active checking level.
    pub fn check_level(&self) -> CheckLevel {
        self.hub
            .get::<CoherenceChecker>()
            .map_or(CheckLevel::Off, |c| c.level())
    }

    /// The attached checker, if any (tests and diagnostics).
    pub fn checker(&self) -> Option<&CoherenceChecker> {
        self.hub.get::<CoherenceChecker>()
    }

    /// End-of-run verification: reconcile the checker's message counters
    /// with [`Machine::counters`] and, at [`CheckLevel::FullOracle`], check
    /// the final memory image against the sequential reference. No-op when
    /// checking is off; panics with a `coherence violation` report on any
    /// divergence.
    pub fn finish_check(&self) {
        self.hub.finish(&self.counters);
    }

    /// Fault injection for checker tests: while enabled, a write that
    /// should invalidate other holders leaves one stale sharer behind —
    /// the "skipped invalidation" directory bug the checker must catch.
    #[doc(hidden)]
    pub fn debug_skip_invalidation(&mut self, on: bool) {
        self.skip_invalidation = on;
    }

    /// The active tracing level.
    pub fn trace_level(&self) -> TraceLevel {
        self.hub
            .get::<Tracer>()
            .map_or(TraceLevel::Off, |t| t.level())
    }

    /// The attached tracer, if any (tests and diagnostics).
    pub fn tracer(&self) -> Option<&Tracer> {
        self.hub.get::<Tracer>()
    }

    /// Detach and return the tracer; sweep drivers serialize it per job
    /// and merge the sections in canonical job order.
    pub fn take_tracer(&mut self) -> Option<Box<Tracer>> {
        self.hub.take::<Tracer>()
    }

    /// The active static-analysis level.
    pub fn analyze_level(&self) -> AnalyzeLevel {
        self.hub
            .get::<AnalyzeGate>()
            .map_or(AnalyzeLevel::Off, |g| g.level())
    }

    /// Stamp subsequent trace events with the executing `thread` (set by
    /// the runner; machine-internal activity keeps the last context).
    pub fn set_trace_thread(&mut self, thread: u32) {
        self.hub.set_thread(thread);
    }

    /// Record a measured-interval boundary in the trace (runner
    /// `MarkStart`/`MarkEnd`). No-op when no observer consumes events.
    pub fn trace_mark(&mut self, id: u32, start: bool, now: SimTime) {
        self.hub.mark(now, id, start);
    }

    /// The configuration the machine was built with.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// The die topology (tile/EDC/IMC coordinates).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// The machine's address map.
    pub fn address_map(&self) -> &AddressMap {
        &self.map
    }

    /// Snapshot of the hardware event counters.
    pub fn counters(&self) -> Counters {
        self.counters
    }

    /// A fresh arena over this machine's NUMA regions.
    pub fn arena(&self) -> Arena {
        Arena::new(&self.map)
    }

    /// Disable latency jitter (model fitting wants clean parameters;
    /// benchmark realism wants jitter on).
    pub fn set_jitter(&mut self, pct: u32) {
        self.jitter_pct = pct;
    }

    /// Clear caches, directory, and memory-side cache (fresh repetition).
    pub fn reset_caches(&mut self) {
        self.reset_tile_caches();
        if self.mcache.enabled() {
            self.mcache.clear();
        }
    }

    /// Clear only the on-die caches (L1/L2/directory), leaving the MCDRAM
    /// memory-side cache warm — used by cache-mode latency benchmarks.
    pub fn reset_tile_caches(&mut self) {
        for c in &mut self.l1 {
            c.clear();
        }
        for c in &mut self.l2 {
            c.clear();
        }
        self.l2_port_busy.fill(0);
        self.dir.clear();
        self.hub.on_reset();
    }

    /// Clear device queue backlog (memory devices and mesh rings).
    pub fn reset_devices(&mut self) {
        for d in &mut self.devices {
            d.reset();
        }
        self.mesh.reset();
    }

    /// Hit rate of the memory-side cache so far (cache/hybrid modes).
    pub fn mcache_hit_rate(&self) -> f64 {
        self.mcache.hit_rate()
    }

    /// Perform one coherent access; returns completion time and provenance.
    pub fn access(
        &mut self,
        core: CoreId,
        addr: u64,
        kind: AccessKind,
        now: SimTime,
    ) -> AccessOutcome {
        let line = addr >> LINE_SHIFT;
        let tile = core.tile();
        self.hub.set_tile(tile.0);
        match kind {
            AccessKind::Read => self.read(core, tile, line, addr, now),
            AccessKind::Write => self.write(core, tile, line, addr, now),
            AccessKind::NtStore => self.nt_store(tile, line, addr, now),
        }
    }

    /// The MESIF state `tile` currently holds `addr` in (directory's view).
    pub fn line_state(&self, addr: u64, tile: TileId) -> MesifState {
        let line = addr >> LINE_SHIFT;
        self.dir
            .get(line)
            .map_or(MesifState::Invalid, |e| e.state_of(tile))
    }

    pub(crate) fn jitter(&mut self, dur: SimTime, line: u64) -> SimTime {
        if self.jitter_pct == 0 {
            return dur;
        }
        self.jitter_seq = self.jitter_seq.wrapping_add(1);
        let h = splitmix64(self.jitter_seq ^ line.rotate_left(17));
        let span = 2 * self.jitter_pct as u64 + 1;
        let pct = (h % span) as i64 - self.jitter_pct as i64;
        ((dur as i64) + (dur as i64 * pct) / 100).max(0) as SimTime
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MemoryMode};

    #[test]
    fn counters_accumulate() {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        let before = m.counters();
        m.access(CoreId(0), 4096, AccessKind::Read, 0);
        m.access(CoreId(0), 4096, AccessKind::Read, 1_000_000);
        let d = m.counters().since(&before);
        assert_eq!(d.l1_hits, 1);
        assert_eq!(d.memory_accesses(), 1);
    }
}
