//! Deterministic coherence fuzzer: random multi-threaded read / write /
//! evict programs replayed under the invariant checker and differential
//! memory oracle (see `invariants`).
//!
//! Everything is driven by `SplitMixRng`, so a failing case is fully
//! identified by `(config, seed)` — re-run `fuzz_case` with the same pair
//! to reproduce a reported violation (see DESIGN.md "Correctness
//! checking").

use crate::engine::observe::ObserverConfig;
use crate::invariants::CheckLevel;
use crate::machine::Machine;
use crate::ops::Op;
use crate::program::Program;
use crate::Counters;
use knl_arch::{MachineConfig, NumaKind, Schedule, SplitMixRng};

/// Shared line pool size. Small on purpose: a handful of hot lines makes
/// threads collide on the same directory entries constantly, which is
/// where protocol bugs live.
const POOL_LINES: u64 = 12;

/// Generate and run one random program on `cfg` at `check`, returning the
/// machine's final hardware counters.
///
/// Deterministic in `(cfg, seed)`: thread `t` draws from
/// `SplitMixRng::for_job(seed, t)`, so the generated program — and with
/// jitter disabled, the entire simulation — is reproducible bit-for-bit.
/// At [`CheckLevel::FullOracle`] the checker's final reconciliation
/// (counter deltas + flat-vs-visible memory image) runs before returning.
pub fn fuzz_case(cfg: &MachineConfig, seed: u64, check: CheckLevel) -> Counters {
    let mut m = Machine::with_observer_config(cfg.clone(), ObserverConfig::default().check(check));
    m.set_jitter(0);

    // A small pool of hot lines, DDR plus (when addressable) flat MCDRAM
    // so cross-device coherence is exercised too.
    let mut arena = m.arena();
    let mut pool: Vec<u64> = Vec::new();
    let ddr_base = arena.alloc(NumaKind::Ddr, POOL_LINES * 64);
    pool.extend((0..POOL_LINES).map(|k| ddr_base + k * 64));
    if cfg.memory.has_flat_mcdram() {
        let mc_base = arena.alloc(NumaKind::Mcdram, POOL_LINES * 64);
        pool.extend((0..POOL_LINES).map(|k| mc_base + k * 64));
    }

    let mut setup = SplitMixRng::for_job(seed, u64::MAX);
    let num_threads = setup.range_usize(2, 7);
    let num_cores = cfg.active_tiles * 2;

    let programs: Vec<Program> = (0..num_threads)
        .map(|t| {
            let mut rng = SplitMixRng::for_job(seed, t as u64);
            let hw = Schedule::Scatter.place(t, num_cores);
            let mut p = Program::new(hw);
            let ops = rng.range_usize(16, 49);
            for _ in 0..ops {
                let line = pool[rng.range_usize(0, pool.len())];
                match rng.range_u32(0, 10) {
                    0..=3 => p.push(Op::Read(line)),
                    4..=6 => p.push(Op::Write(line)),
                    7 => p.push(Op::NtStore(line)),
                    8 => p.push(Op::Evict(line)),
                    _ => p.push(Op::Compute(rng.range_u64(100, 2_000))),
                };
            }
            p
        })
        .collect();

    // Pre-validate liveness and structural rules before executing. The
    // generated op mixes are intentionally racy (threads hammer a shared
    // hot pool with no synchronization — that's where coherence bugs
    // live), so race findings are expected; but a deadlock, mark-pairing
    // or duplicate-pin finding would mean the generator is broken and the
    // run below would panic anyway.
    let report = crate::analyze::analyze(&programs, &[]);
    if let Some(f) = report.findings.iter().find(|f| {
        matches!(
            f.rule,
            crate::analyze::Rule::Deadlock
                | crate::analyze::Rule::MarkPairing
                | crate::analyze::Rule::DuplicatePin
        ) && f.severity == crate::analyze::Severity::Error
    }) {
        panic!("fuzz generator produced a malformed case (seed {seed}): {f}");
    }

    crate::runner::run_programs(&mut m, programs);
    m.finish_check();
    m.counters()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MemoryMode};

    fn cfg() -> MachineConfig {
        MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat)
    }

    #[test]
    fn fuzz_case_is_deterministic() {
        let a = fuzz_case(&cfg(), 0xC0FFEE, CheckLevel::FullOracle);
        let b = fuzz_case(&cfg(), 0xC0FFEE, CheckLevel::FullOracle);
        assert_eq!(a, b);
    }

    #[test]
    fn check_levels_agree_on_counters() {
        // The checker is a pure observer: counters must not depend on it.
        let off = fuzz_case(&cfg(), 7, CheckLevel::Off);
        let inv = fuzz_case(&cfg(), 7, CheckLevel::Invariants);
        let full = fuzz_case(&cfg(), 7, CheckLevel::FullOracle);
        assert_eq!(off, inv);
        assert_eq!(off, full);
    }

    #[test]
    fn fuzz_clean_in_cache_mode() {
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Cache);
        for seed in 0..3 {
            fuzz_case(&cfg, seed, CheckLevel::FullOracle);
        }
    }
}
