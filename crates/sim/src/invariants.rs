//! Dynamic coherence checking: directory invariants and a differential
//! memory oracle.
//!
//! Every number the repo reproduces flows through the MESIF directory in
//! [`crate::mesif`]; a silent protocol bug would quietly skew every fitted
//! α/β. This module is a pure *observer* bolted onto [`crate::Machine`]:
//! at every [`DirEntry`] transition the machine notifies a
//! [`CoherenceChecker`], which
//!
//! * validates the directory invariants (at most one M/E holder; `sharers`
//!   nonempty and duplicate-free in S; the F forwarder, when present, is a
//!   listed sharer; `supplier()` is always a current holder; `busy_until`
//!   is monotone per line; the `version` epoch never regresses),
//! * keeps its own invalidation/write-back message counts and reconciles
//!   them against [`crate::counters::Counters`] at the end of a run, and
//! * at [`CheckLevel::FullOracle`], replays the value semantics of every
//!   coherent op in a [`ShadowMemory`] — a flat sequential reference the
//!   timing simulator itself never stores — asserting that each read
//!   observes, and the final memory image equals, the program-order value.
//!
//! Checking is zero-cost when off: the machine holds an
//! `Option<Box<CoherenceChecker>>` that is `None` at [`CheckLevel::Off`],
//! so the hot paths pay one never-taken branch.
//!
//! Violations panic with a report whose message starts with
//! `"coherence violation"` and dumps the last [`EVENT_WINDOW`] protocol
//! events for the offending line, so a fuzzer seed printed alongside is
//! enough to reproduce and debug a failure.

use crate::counters::Counters;
use crate::fxmap::LineMap;
use crate::mesif::{DirEntry, GlobalState};
use knl_arch::TileId;
use std::collections::VecDeque;

/// How many protocol events per line are kept for violation reports.
pub const EVENT_WINDOW: usize = 16;

/// How much dynamic checking the machine performs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum CheckLevel {
    /// No checking; no observable cost.
    #[default]
    Off,
    /// Validate directory/MESIF invariants at every transition and
    /// reconcile message counters at the end of the run.
    Invariants,
    /// `Invariants` plus the [`ShadowMemory`] differential oracle over
    /// every coherent read/write/NT-store.
    FullOracle,
}

impl CheckLevel {
    /// All levels, weakest first.
    pub const ALL: [CheckLevel; 3] = [
        CheckLevel::Off,
        CheckLevel::Invariants,
        CheckLevel::FullOracle,
    ];

    /// Name as accepted by `--check` / `KNL_CHECK`.
    pub fn name(self) -> &'static str {
        match self {
            CheckLevel::Off => "off",
            CheckLevel::Invariants => "invariants",
            CheckLevel::FullOracle => "full",
        }
    }

    /// Inverse of [`name`](Self::name); also accepts `full-oracle`.
    pub fn parse(s: &str) -> Option<CheckLevel> {
        match s {
            "off" | "none" => Some(CheckLevel::Off),
            "invariants" | "inv" => Some(CheckLevel::Invariants),
            "full" | "full-oracle" | "oracle" => Some(CheckLevel::FullOracle),
            _ => None,
        }
    }
}

/// One observed directory transition (what happened; the entry snapshot is
/// recorded separately).
#[derive(Debug, Clone, Copy)]
pub enum ProtoEvent {
    /// A read by `tile` was granted (E fill, F takeover, or S join).
    GrantRead {
        /// The requesting tile.
        tile: TileId,
    },
    /// A write by `tile` gained ownership, invalidating `invalidated`
    /// other copies.
    GrantWrite {
        /// The writing tile.
        tile: TileId,
        /// Copies invalidated at other tiles.
        invalidated: usize,
    },
    /// `tile` dropped its copy (capacity eviction or explicit flush).
    Evict {
        /// The evicting tile.
        tile: TileId,
        /// Whether the dropped copy was dirty (a write-back is due).
        dirty: bool,
    },
    /// Every copy was invalidated (NT store overwrote memory).
    InvalidateAll {
        /// Holders before the invalidation.
        holders: usize,
        /// Whether a dirty copy was destroyed (write-back first).
        dirty: bool,
    },
}

/// A recorded event plus the entry state *after* the transition.
#[derive(Debug, Clone)]
struct EventRecord {
    seq: u64,
    event: ProtoEvent,
    state: GlobalState,
    sharers: Vec<TileId>,
    version: u32,
    busy_until: u64,
}

/// Directory invariant checker; see the module docs.
#[derive(Debug)]
pub struct CoherenceChecker {
    level: CheckLevel,
    /// Counters snapshot when the checker was attached (reconciliation is
    /// over the delta).
    base: Counters,
    /// Per-line ring of recent protocol events. A [`LineMap`]: this is
    /// updated on every directory transition (hot at any check level) and
    /// only ever read back per line, never iterated.
    history: LineMap<VecDeque<EventRecord>>,
    seq: u64,
    /// Total transitions observed.
    pub events: u64,
    /// Invalidation messages implied by counted transitions.
    pub invalidations: u64,
    /// Coherence write-backs implied by counted transitions (dirty
    /// evictions, M→S downgrades, NT-store invalidations of dirty lines).
    pub writebacks: u64,
    /// Write-backs the machine performs outside the directory protocol
    /// (memory-side-cache victim evictions); counted so reconciliation
    /// against [`Counters::writebacks`] is exact.
    pub external_writebacks: u64,
    shadow: Option<ShadowMemory>,
}

impl CoherenceChecker {
    /// Build a checker for `level` (which must not be `Off`), attached to a
    /// machine whose counters currently read `base`.
    pub fn new(level: CheckLevel, base: Counters) -> Self {
        assert_ne!(level, CheckLevel::Off, "no checker at CheckLevel::Off");
        CoherenceChecker {
            level,
            base,
            history: LineMap::new(),
            seq: 0,
            events: 0,
            invalidations: 0,
            writebacks: 0,
            external_writebacks: 0,
            shadow: (level == CheckLevel::FullOracle).then(ShadowMemory::default),
        }
    }

    /// The level this checker runs at.
    pub fn level(&self) -> CheckLevel {
        self.level
    }

    /// The differential oracle, when running at [`CheckLevel::FullOracle`].
    pub fn shadow(&self) -> Option<&ShadowMemory> {
        self.shadow.as_ref()
    }

    /// Observe one directory transition on `line`; `entry` is the state
    /// *after* the transition. `counted` transitions accumulate message
    /// counters (state-preparation shortcuts pass `false`: they mutate the
    /// directory without the machine counting messages).
    pub fn on_transition(&mut self, line: u64, event: ProtoEvent, entry: &DirEntry, counted: bool) {
        self.events += 1;
        self.seq += 1;
        let prev = self.history.get(line).and_then(|h| h.back());
        let (prev_state, prev_version, prev_busy) = match prev {
            Some(r) => (r.state.clone(), r.version, r.busy_until),
            None => (GlobalState::Uncached, 0, 0),
        };

        // The dirty value leaves the caches on a downgrade (M owner answers
        // a read and writes back), a dirty eviction, or a dirty
        // invalidation; ownership transfer by write moves the value instead.
        let downgrade_writeback = matches!(event, ProtoEvent::GrantRead { .. })
            && matches!(prev_state, GlobalState::Modified { .. })
            && !matches!(entry.state, GlobalState::Modified { .. });
        let writeback = downgrade_writeback
            || matches!(
                event,
                ProtoEvent::Evict { dirty: true, .. }
                    | ProtoEvent::InvalidateAll { dirty: true, .. }
            );
        if counted {
            match event {
                ProtoEvent::GrantWrite { invalidated, .. } => {
                    self.invalidations += invalidated as u64;
                }
                ProtoEvent::InvalidateAll { holders, .. } => {
                    self.invalidations += holders as u64;
                }
                _ => {}
            }
            if writeback {
                self.writebacks += 1;
            }
        }
        if let Some(shadow) = self.shadow.as_mut() {
            if writeback {
                shadow.writeback(line);
            }
            if let ProtoEvent::GrantWrite { .. } = event {
                shadow.on_write(line);
            }
        }

        self.validate(line, entry, prev_version, prev_busy);
        let record = EventRecord {
            seq: self.seq,
            event,
            state: entry.state.clone(),
            sharers: entry.sharers.clone(),
            version: entry.version,
            busy_until: entry.busy_until,
        };
        let ring = self.history.get_or_insert_default(line);
        if ring.len() == EVENT_WINDOW {
            ring.pop_front();
        }
        ring.push_back(record);
    }

    /// Validate the after-state of a transition.
    fn validate(&self, line: u64, entry: &DirEntry, prev_version: u32, prev_busy: u64) {
        match &entry.state {
            GlobalState::Uncached
            | GlobalState::Exclusive { .. }
            | GlobalState::Modified { .. } => {
                if !entry.sharers.is_empty() {
                    self.fail(
                        line,
                        entry,
                        &format!(
                            "{:?} must have no sharers, found {:?}",
                            entry.state, entry.sharers
                        ),
                    );
                }
            }
            GlobalState::Shared { forward } => {
                if entry.sharers.is_empty() {
                    self.fail(line, entry, "Shared state with an empty sharer list");
                }
                for (i, s) in entry.sharers.iter().enumerate() {
                    if entry.sharers[..i].contains(s) {
                        self.fail(line, entry, &format!("duplicate sharer {s:?}"));
                    }
                }
                if let Some(f) = forward {
                    if !entry.sharers.contains(f) {
                        self.fail(
                            line,
                            entry,
                            &format!("F holder {f:?} is not in the sharer list"),
                        );
                    }
                }
            }
        }
        if let Some(sup) = entry.supplier() {
            if entry.state_of(sup) == crate::mesif::MesifState::Invalid {
                self.fail(
                    line,
                    entry,
                    &format!("supplier {sup:?} does not hold the line"),
                );
            }
        }
        if entry.version.wrapping_sub(prev_version) >= u32::MAX / 2 {
            self.fail(
                line,
                entry,
                &format!("version regressed: {} -> {}", prev_version, entry.version),
            );
        }
        if entry.busy_until < prev_busy {
            self.fail(
                line,
                entry,
                &format!(
                    "busy_until ran backwards: {} -> {}",
                    prev_busy, entry.busy_until
                ),
            );
        }
    }

    /// A coherent read of `line` returned to the core; `from_memory` is
    /// true when a memory device (or the memory-side cache) supplied the
    /// data rather than any coherent cache.
    pub fn observe_read(&mut self, line: u64, from_memory: bool) {
        let Some(shadow) = self.shadow.as_mut() else {
            return;
        };
        shadow.reads_checked += 1;
        if from_memory && shadow.cached.contains_key(line) {
            let detail = "read served from memory while a dirty cached copy exists".to_string();
            self.oracle_fail(line, &detail);
        }
        let visible = self.shadow.as_ref().expect("shadow").visible(line);
        let expected = self
            .shadow
            .as_ref()
            .expect("shadow")
            .flat
            .get(line)
            .copied()
            .unwrap_or(0);
        if visible != expected {
            let detail =
                format!("read observed value {visible}, sequential reference says {expected}");
            self.oracle_fail(line, &detail);
        }
    }

    /// A non-temporal store overwrote `line` in memory (any cached copies
    /// were invalidated via [`ProtoEvent::InvalidateAll`] first).
    pub fn on_nt_store(&mut self, line: u64) {
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.on_nt_store(line);
        }
    }

    /// The machine wrote back a line outside the directory protocol
    /// (memory-side cache victim).
    pub fn note_external_writeback(&mut self) {
        self.external_writebacks += 1;
    }

    /// The machine dropped all on-die cache state (fresh repetition): start
    /// a new checking epoch. Message counters keep accumulating (the
    /// machine's counters are not reset either).
    pub fn on_reset(&mut self) {
        self.history.clear();
        if let Some(shadow) = self.shadow.as_mut() {
            shadow.clear();
        }
    }

    /// End-of-run check: reconcile message counters with the machine's and
    /// verify the final memory image against the sequential reference.
    pub fn finish(&self, counters: &Counters) {
        let d = counters.since(&self.base);
        if self.invalidations != d.invalidations {
            panic!(
                "coherence violation: checker counted {} invalidation messages, \
                 machine counters say {}",
                self.invalidations, d.invalidations
            );
        }
        if self.writebacks + self.external_writebacks != d.writebacks {
            panic!(
                "coherence violation: checker counted {} coherence + {} external \
                 write-backs, machine counters say {}",
                self.writebacks, self.external_writebacks, d.writebacks
            );
        }
        if let Some(shadow) = self.shadow.as_ref() {
            // sorted_keys keeps the first-divergence report deterministic.
            for line in shadow.flat.sorted_keys() {
                let expected = *shadow.flat.get(line).expect("key just listed");
                let visible = shadow.visible(line);
                if visible != expected {
                    self.oracle_fail(
                        line,
                        &format!(
                            "final value {visible} diverges from sequential reference {expected}"
                        ),
                    );
                }
            }
        }
    }

    /// Render the last protocol events of `line` (oldest first).
    fn dump(&self, line: u64) -> String {
        let mut out = String::new();
        match self.history.get(line) {
            None => out.push_str("    (no recorded events)\n"),
            Some(ring) => {
                for r in ring {
                    out.push_str(&format!(
                        "    #{:06} {:?} -> {:?} sharers={:?} v={} busy={}\n",
                        r.seq, r.event, r.state, r.sharers, r.version, r.busy_until
                    ));
                }
            }
        }
        out
    }

    fn fail(&self, line: u64, entry: &DirEntry, msg: &str) -> ! {
        panic!(
            "coherence violation on line {:#x}: {msg}\n  \
             entry: state={:?} sharers={:?} version={} busy_until={}\n  \
             last protocol events (oldest first):\n{}",
            line,
            entry.state,
            entry.sharers,
            entry.version,
            entry.busy_until,
            self.dump(line)
        );
    }

    fn oracle_fail(&self, line: u64, msg: &str) -> ! {
        panic!(
            "coherence violation on line {:#x}: {msg}\n  \
             last protocol events (oldest first):\n{}",
            line,
            self.dump(line)
        );
    }
}

/// Differential value oracle for [`CheckLevel::FullOracle`].
///
/// The timing simulator stores no data — tags and permissions only — so the
/// oracle supplies value semantics itself: each coherent write is stamped
/// with a fresh monotone value, held in `cached` while the line is dirty in
/// some cache and moved to `mem` when the protocol writes it back. The
/// `flat` map applies the same ops to an idealized sequential memory at
/// commit order. Any protocol bug that loses or stales a value (a skipped
/// write-back, a read routed to memory past a dirty copy) makes the two
/// images diverge.
#[derive(Debug, Default)]
pub struct ShadowMemory {
    next_val: u64,
    /// line -> dirty value currently held by some cache. The shadow maps
    /// are [`LineMap`]s: the oracle runs on every coherent op at
    /// [`CheckLevel::FullOracle`], and the only walk (the end-of-run image
    /// comparison) goes through [`LineMap::sorted_keys`].
    cached: LineMap<u64>,
    /// line -> value materialized in memory by the protocol.
    mem: LineMap<u64>,
    /// line -> value of the flat sequential reference.
    flat: LineMap<u64>,
    /// Reads checked against the reference (observability for tests).
    pub reads_checked: u64,
}

impl ShadowMemory {
    /// The value the protocol-side image makes visible for `line`.
    pub fn visible(&self, line: u64) -> u64 {
        self.cached
            .get(line)
            .or_else(|| self.mem.get(line))
            .copied()
            .unwrap_or(0)
    }

    /// Lines the sequential reference has values for.
    pub fn tracked_lines(&self) -> usize {
        self.flat.len()
    }

    fn on_write(&mut self, line: u64) {
        self.next_val += 1;
        self.cached.insert(line, self.next_val);
        self.flat.insert(line, self.next_val);
    }

    fn on_nt_store(&mut self, line: u64) {
        self.next_val += 1;
        // NT stores bypass the caches; any cached copy was invalidated (and
        // written back, if dirty) before this point.
        self.cached.remove(line);
        self.mem.insert(line, self.next_val);
        self.flat.insert(line, self.next_val);
    }

    fn writeback(&mut self, line: u64) {
        if let Some(v) = self.cached.remove(line) {
            self.mem.insert(line, v);
        }
    }

    fn clear(&mut self) {
        self.cached.clear();
        self.mem.clear();
        self.flat.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mesif::MesifState;

    const T0: TileId = TileId(0);
    const T1: TileId = TileId(1);

    fn checker() -> CoherenceChecker {
        CoherenceChecker::new(CheckLevel::Invariants, Counters::default())
    }

    #[test]
    fn clean_transitions_pass() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_read(T0);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T0 }, &e, true);
        e.grant_read(T1);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T1 }, &e, true);
        let inv = e.grant_write(T0);
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: inv,
            },
            &e,
            true,
        );
        assert_eq!(ck.invalidations, 1);
        assert_eq!(ck.events, 3);
    }

    #[test]
    #[should_panic(expected = "coherence violation")]
    fn owner_with_sharers_is_caught() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_write(T0);
        e.sharers.push(T1); // corrupt: M state with a residual sharer
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: 0,
            },
            &e,
            true,
        );
    }

    #[test]
    #[should_panic(expected = "duplicate sharer")]
    fn duplicate_sharer_is_caught() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        e.sharers.push(T0);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T1 }, &e, true);
    }

    #[test]
    #[should_panic(expected = "version regressed")]
    fn version_regression_is_caught() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_write(T0);
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: 0,
            },
            &e,
            true,
        );
        e.version = 0; // regress the epoch
        e.grant_read(T1);
        e.version = 0;
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T1 }, &e, true);
    }

    #[test]
    #[should_panic(expected = "busy_until ran backwards")]
    fn busy_until_must_be_monotone() {
        let mut ck = checker();
        let mut e = DirEntry {
            busy_until: 10_000,
            ..Default::default()
        };
        e.grant_read(T0);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T0 }, &e, true);
        e.busy_until = 5_000;
        e.grant_read(T1);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T1 }, &e, true);
    }

    #[test]
    #[should_panic(expected = "F holder")]
    fn forward_outside_sharers_is_caught() {
        let ck = checker();
        let e = DirEntry {
            state: GlobalState::Shared { forward: Some(T1) },
            sharers: vec![T0],
            ..Default::default()
        };
        ck.validate(0, &e, 0, 0);
    }

    #[test]
    fn downgrade_counts_one_writeback() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_write(T0);
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: 0,
            },
            &e,
            true,
        );
        e.grant_read(T1);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T1 }, &e, true);
        assert_eq!(ck.writebacks, 1, "M->S downgrade implies one write-back");
    }

    #[test]
    fn uncounted_events_validate_but_do_not_count() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_read(T0);
        e.grant_read(T1);
        let holders = e.num_holders();
        let dirty = e.invalidate_all();
        ck.on_transition(0, ProtoEvent::InvalidateAll { holders, dirty }, &e, false);
        assert_eq!(ck.invalidations, 0);
        assert_eq!(ck.events, 1);
    }

    #[test]
    fn reconcile_passes_on_matching_counters() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        e.grant_read(T0);
        ck.on_transition(0, ProtoEvent::GrantRead { tile: T0 }, &e, true);
        let inv = e.grant_write(T1);
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T1,
                invalidated: inv,
            },
            &e,
            true,
        );
        let counters = Counters {
            invalidations: 1,
            ..Default::default()
        };
        ck.finish(&counters);
    }

    #[test]
    #[should_panic(expected = "invalidation messages")]
    fn reconcile_catches_counter_drift() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        let inv = e.grant_write(T0);
        ck.on_transition(
            0,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: inv,
            },
            &e,
            true,
        );
        let counters = Counters {
            invalidations: 7,
            ..Default::default()
        };
        ck.finish(&counters);
    }

    #[test]
    fn shadow_tracks_write_then_nt_store() {
        let mut ck = CoherenceChecker::new(CheckLevel::FullOracle, Counters::default());
        let mut e = DirEntry::default();
        let inv = e.grant_write(T0);
        ck.on_transition(
            7,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: inv,
            },
            &e,
            true,
        );
        ck.observe_read(7, false);
        let holders = e.num_holders();
        let dirty = e.invalidate_all();
        ck.on_transition(7, ProtoEvent::InvalidateAll { holders, dirty }, &e, true);
        ck.on_nt_store(7);
        ck.observe_read(7, true);
        let shadow = ck.shadow().unwrap();
        assert_eq!(shadow.tracked_lines(), 1);
        assert_eq!(shadow.reads_checked, 2);
        assert_eq!(shadow.visible(7), 2);
        ck.finish(&Counters {
            invalidations: 1,
            writebacks: 1,
            ..Default::default()
        });
    }

    #[test]
    #[should_panic(expected = "dirty cached copy")]
    fn oracle_catches_read_past_dirty_copy() {
        let mut ck = CoherenceChecker::new(CheckLevel::FullOracle, Counters::default());
        let mut e = DirEntry::default();
        let inv = e.grant_write(T0);
        ck.on_transition(
            3,
            ProtoEvent::GrantWrite {
                tile: T0,
                invalidated: inv,
            },
            &e,
            true,
        );
        // A read served straight from memory while T0 still holds the line
        // dirty: the stale-supply case the oracle exists to catch.
        ck.observe_read(3, true);
    }

    #[test]
    fn levels_parse_and_roundtrip() {
        for l in CheckLevel::ALL {
            assert_eq!(CheckLevel::parse(l.name()), Some(l));
        }
        assert_eq!(
            CheckLevel::parse("full-oracle"),
            Some(CheckLevel::FullOracle)
        );
        assert_eq!(CheckLevel::parse("bogus"), None);
        assert_eq!(CheckLevel::default(), CheckLevel::Off);
    }

    #[test]
    fn event_window_is_bounded() {
        let mut ck = checker();
        let mut e = DirEntry::default();
        for i in 0..(EVENT_WINDOW + 9) {
            let t = TileId((i % 2) as u16);
            e.grant_read(t);
            ck.on_transition(0, ProtoEvent::GrantRead { tile: t }, &e, true);
        }
        assert_eq!(ck.history.get(0).unwrap().len(), EVENT_WINDOW);
    }

    #[test]
    fn supplier_check_uses_state_of() {
        // A Shared entry whose forward pointer names a non-sharer is caught
        // through both the F-membership and supplier checks; state_of is the
        // authority.
        let e = DirEntry {
            state: GlobalState::Shared { forward: None },
            sharers: vec![T0],
            version: 0,
            busy_until: 0,
        };
        assert_eq!(e.supplier(), None);
        assert_eq!(e.state_of(T0), MesifState::Shared);
        checker().validate(0, &e, 0, 0);
    }
}
