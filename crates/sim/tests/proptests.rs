//! Property tests on the simulator's core invariants.
//!
//! Randomized but deterministic: cases are drawn from [`SplitMixRng`] with
//! fixed seeds (the workspace builds offline with no external crates, so
//! these are hand-rolled property loops rather than `proptest` macros).

use knl_arch::{ClusterMode, CoreId, MachineConfig, MemoryMode, SplitMixRng, TileId};
use knl_sim::{AccessKind, Machine, MesifState, Op, Program, Runner};

const CASES: u64 = 48;

fn machine() -> Machine {
    let mut m = Machine::new(MachineConfig::knl7210(
        ClusterMode::Quadrant,
        MemoryMode::Flat,
    ));
    m.set_jitter(0);
    m
}

/// Single-writer/multiple-reader: after any interleaving of reads and
/// writes from random cores to a small set of lines, no line is ever
/// owned (M/E) by one tile while another tile holds any copy.
#[test]
fn mesif_swmr_invariant() {
    let mut rng = SplitMixRng::seed_from_u64(0xB001);
    for case in 0..CASES {
        let mut m = machine();
        let mut now = 0u64;
        let n_ops = rng.range_usize(1, 120);
        for _ in 0..n_ops {
            let core = rng.range_u32(0, 64) as u16;
            let line_idx = rng.range_u64(0, 4);
            let is_write = rng.next_u64() & 1 == 1;
            let addr = (1u64 << 22) + line_idx * 64;
            let kind = if is_write {
                AccessKind::Write
            } else {
                AccessKind::Read
            };
            now = m.access(CoreId(core), addr, kind, now).complete + 1_000;

            for li in 0..4u64 {
                let a = (1u64 << 22) + li * 64;
                let mut owners = 0;
                let mut sharers = 0;
                for t in 0..32u16 {
                    match m.line_state(a, TileId(t)) {
                        MesifState::Modified | MesifState::Exclusive => owners += 1,
                        MesifState::Shared | MesifState::Forward => sharers += 1,
                        MesifState::Invalid => {}
                    }
                }
                assert!(owners <= 1, "case {case}, line {li}: {owners} owners");
                assert!(
                    owners == 0 || sharers == 0,
                    "case {case}, line {li}: owner coexists with {sharers} sharers"
                );
            }
        }
    }
}

/// Time never runs backwards: every access completes at or after its
/// issue time, and repeated accesses from one core are monotone.
#[test]
fn completion_monotone() {
    let mut rng = SplitMixRng::seed_from_u64(0xB002);
    for _ in 0..CASES {
        let mut m = machine();
        let mut now = 0u64;
        let n_ops = rng.range_usize(1, 100);
        for _ in 0..n_ops {
            let core = rng.range_u32(0, 64) as u16;
            let line_idx = rng.range_u64(0, 64);
            let addr = (1u64 << 23) + line_idx * 64;
            let kind = match rng.range_u32(0, 3) {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::NtStore,
            };
            let out = m.access(CoreId(core), addr, kind, now);
            assert!(out.complete >= now, "{kind:?} completed before issue");
            now = out.complete;
        }
    }
}

/// The runner executes any well-formed flag dag: a random chain of
/// producers/consumers over distinct flags always terminates with
/// increasing end time, never deadlocks.
#[test]
fn runner_flag_chains_terminate() {
    let mut rng = SplitMixRng::seed_from_u64(0xB003);
    for _ in 0..CASES {
        let n = rng.range_usize(2, 10);
        let seed = rng.range_u64(0, 1000);
        let mut m = machine();
        let base = 1u64 << 24;
        // Thread i waits for flag i-1 (except 0) then sets flag i: a chain.
        let order: Vec<usize> = {
            let mut v: Vec<usize> = (0..n).collect();
            // Deterministic shuffle from seed so programs vary.
            for i in (1..n).rev() {
                let j = (seed as usize).wrapping_mul(i + 7) % (i + 1);
                v.swap(i, j);
            }
            v
        };
        let programs: Vec<Program> = order
            .iter()
            .map(|&rank| {
                let mut p = Program::on_core(CoreId((rank * 2) as u16));
                if rank > 0 {
                    p.push(Op::WaitFlag {
                        addr: base + (rank as u64 - 1) * 4096,
                        val: 1,
                    });
                }
                p.push(Op::Compute(1_000));
                p.push(Op::SetFlag {
                    addr: base + rank as u64 * 4096,
                    val: 1,
                });
                p
            })
            .collect();
        let result = Runner::new(&mut m, programs).run();
        assert!(result.end_time > 0);
    }
}

/// Failure injection: pathological timing parameters (zero or huge
/// primitive costs, extreme jitter) must never break the simulator's
/// structural invariants — time stays monotone, accesses complete, the
/// SWMR invariant holds.
#[test]
fn pathological_timing_keeps_invariants() {
    let mut rng = SplitMixRng::seed_from_u64(0xB004);
    for case in 0..CASES {
        let mut cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        cfg.timing.hop_ps = rng.range_u64(0, 50_000);
        cfg.timing.inject_ps = rng.range_u64(0, 100_000);
        cfg.timing.cha_lookup_ps = rng.range_u64(0, 200_000);
        cfg.timing.cha_line_serialize_ps = rng.range_u64(0, 200_000);
        cfg.timing.ddr_lat_ps = rng.range_u64(1_000, 500_000);
        cfg.timing.jitter_pct = rng.range_u32(0, 60);
        let mut m = Machine::new(cfg);
        let mut now = 0u64;
        for i in 0..40u64 {
            let core = CoreId((i % 64) as u16);
            let addr = (1u64 << 22) + (i % 6) * 64;
            let kind = match i % 3 {
                0 => AccessKind::Read,
                1 => AccessKind::Write,
                _ => AccessKind::NtStore,
            };
            let out = m.access(core, addr, kind, now);
            assert!(out.complete >= now, "case {case}: completion ran backwards");
            now = out.complete;
        }
        // SWMR still holds on the touched lines.
        for li in 0..6u64 {
            let a = (1u64 << 22) + li * 64;
            let owners = (0..32u16)
                .filter(|&t| {
                    matches!(
                        m.line_state(a, TileId(t)),
                        MesifState::Modified | MesifState::Exclusive
                    )
                })
                .count();
            assert!(owners <= 1, "case {case}, line {li}: {owners} owners");
        }
    }
}

/// Device queueing conserves work: streaming N lines through one core
/// takes at least N * service_time at the device aggregate rate.
#[test]
fn stream_time_lower_bounded() {
    let mut rng = SplitMixRng::seed_from_u64(0xB005);
    for _ in 0..CASES {
        let lines = rng.range_u64(64, 4096);
        let mut m = machine();
        let mut p = Program::on_core(CoreId(0));
        p.push(Op::MarkStart(0))
            .push(Op::Stream {
                kind: knl_sim::StreamKind::Read,
                a: 0,
                b: 1 << 22,
                c: 0,
                lines,
                vectorized: true,
            })
            .push(Op::MarkEnd(0));
        let r = Runner::new(&mut m, vec![p]).run();
        let d = r.duration_ps(0, 0).unwrap();
        // Issue bound: `lines * issue_gap`; and the path latency floor.
        assert!(
            d >= lines * 400,
            "{lines} lines in {d} ps breaks the issue bound"
        );
        // Single-thread bandwidth cannot exceed MLP*64B/latency ≈ 12 GB/s.
        let gbps = (lines as f64 * 64.0 / 1e9) / (d as f64 / 1e12);
        assert!(gbps < 14.0, "single-thread {gbps} GB/s is impossibly high");
    }
}

/// Mesh hop cost is a metric over tile positions in every cluster mode:
/// zero on the diagonal, symmetric, and triangle-inequality-consistent
/// (Manhattan Y-then-X routing on the analytic contention-free fabric).
#[test]
fn mesh_hop_cost_is_a_metric() {
    use knl_sim::mesh::{Mesh, MeshConfig};
    let mut rng = SplitMixRng::seed_from_u64(0xB006);
    for cm in ClusterMode::ALL {
        let cfg = MachineConfig::knl7210(cm, MemoryMode::Flat);
        let topo = cfg.topology();
        let mut mesh = Mesh::new(MeshConfig {
            hop_ps: 1_000,
            ring_service_ps: None,
        });
        let mut d =
            |a: TileId, b: TileId| mesh.traverse(topo.tile_position(a), topo.tile_position(b), 0);
        for _ in 0..CASES {
            let a = TileId(rng.range_u32(0, cfg.active_tiles as u32) as u16);
            let b = TileId(rng.range_u32(0, cfg.active_tiles as u32) as u16);
            let c = TileId(rng.range_u32(0, cfg.active_tiles as u32) as u16);
            assert_eq!(d(a, a), 0, "{cm:?}: d({a:?},{a:?}) != 0");
            assert_eq!(d(a, b), d(b, a), "{cm:?}: asymmetric hop cost");
            assert!(
                d(a, c) <= d(a, b) + d(b, c),
                "{cm:?}: triangle inequality fails via {b:?}"
            );
        }
    }
}

/// Hop cost scales linearly with the per-hop latency and never exceeds
/// the grid diameter.
#[test]
fn mesh_hop_cost_bounded_by_diameter() {
    use knl_sim::mesh::{Mesh, MeshConfig};
    let mut rng = SplitMixRng::seed_from_u64(0xB007);
    let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Flat);
    let topo = cfg.topology();
    for _ in 0..CASES {
        let hop = rng.range_u64(100, 5_000);
        let mut mesh = Mesh::new(MeshConfig {
            hop_ps: hop,
            ring_service_ps: None,
        });
        let a = TileId(rng.range_u32(0, cfg.active_tiles as u32) as u16);
        let b = TileId(rng.range_u32(0, cfg.active_tiles as u32) as u16);
        let (ax, ay) = topo.tile_position(a);
        let (bx, by) = topo.tile_position(b);
        let hops = ((ax - bx).unsigned_abs() + (ay - by).unsigned_abs()) as u64;
        let t = mesh.traverse((ax, ay), (bx, by), 0);
        assert_eq!(t, hops * hop, "analytic fabric is exactly Manhattan");
        // KNL's die is a 6x7 grid (+ EDC/IMC rows): diameter bound.
        assert!(hops <= 13, "{a:?}->{b:?}: {hops} hops exceeds the die");
    }
}
