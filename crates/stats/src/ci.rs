//! Distribution-free confidence interval for the median via order statistics.
//!
//! The paper states "we report medians that are within the 10% of the 95%
//! confidence intervals". The standard nonparametric CI for the median of a
//! sample of size `n` is `(x_(l), x_(u))` where `l`/`u` come from the binomial
//! distribution `B(n, 1/2)`; for `n ≳ 30` the normal approximation
//! `l = n/2 − z·√n/2`, `u = 1 + n/2 + z·√n/2` (z = 1.96) is customary.

use crate::summary::quantile_sorted;

/// Median together with its 95% confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MedianCi {
    /// Sample median.
    pub median: f64,
    /// Lower bound of the 95% CI.
    pub lo: f64,
    /// Upper bound of the 95% CI.
    pub hi: f64,
}

impl MedianCi {
    /// Half-width of the CI relative to the median (the paper's "within 10%"
    /// acceptance criterion compares this to 0.10).
    pub fn relative_halfwidth(&self) -> f64 {
        if self.median == 0.0 {
            return f64::INFINITY;
        }
        ((self.hi - self.lo) / 2.0) / self.median.abs()
    }

    /// Whether the CI satisfies the paper's acceptance rule: median within
    /// `frac` (e.g. 0.10) of the 95% CI bounds.
    pub fn within(&self, frac: f64) -> bool {
        self.relative_halfwidth() <= frac
    }
}

/// Nonparametric 95% CI of the median using binomial order statistics
/// (exact for small `n`, normal approximation for large `n`).
///
/// Returns the median with `lo == hi == median` for samples of size < 3
/// (no meaningful interval exists).
pub fn median_ci95(xs: &[f64]) -> MedianCi {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in median_ci95 input"));
    let n = v.len();
    let med = quantile_sorted(&v, 0.5);
    if n < 3 {
        return MedianCi {
            median: med,
            lo: med,
            hi: med,
        };
    }
    let (l, u) = if n <= 70 {
        exact_binomial_bounds(n)
    } else {
        normal_approx_bounds(n)
    };
    MedianCi {
        median: med,
        lo: v[l],
        hi: v[u.min(n - 1)],
    }
}

/// Exact binomial bounds for X ~ B(n, 1/2): the 0-based lower index is the
/// largest `k` with P(X ≤ k) ≤ 0.025; the upper index is symmetric.
fn exact_binomial_bounds(n: usize) -> (usize, usize) {
    let mut cum = 0.0f64;
    let mut l = 0usize;
    for k in 0..n {
        cum += binom_pmf_half(n, k);
        if cum > 0.025 {
            break;
        }
        l = k;
    }
    let u = n - 1 - l;
    (l, u.max(l))
}

fn binom_pmf_half(n: usize, k: usize) -> f64 {
    // C(n, k) * 0.5^n via log-gamma-free accumulation (n small).
    let mut log = -(n as f64) * std::f64::consts::LN_2;
    for i in 0..k {
        log += ((n - i) as f64).ln() - ((i + 1) as f64).ln();
    }
    log.exp()
}

fn normal_approx_bounds(n: usize) -> (usize, usize) {
    let nf = n as f64;
    let half = 1.96 * nf.sqrt() / 2.0;
    let l = (nf / 2.0 - half).floor().max(0.0) as usize;
    let u = ((nf / 2.0 + half).ceil() as usize).min(n - 1);
    (l, u)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_samples_degenerate() {
        let ci = median_ci95(&[1.0, 2.0]);
        assert_eq!(ci.lo, ci.hi);
        assert_eq!(ci.median, 1.5);
    }

    #[test]
    fn ci_brackets_median() {
        let xs: Vec<f64> = (0..101).map(|i| i as f64).collect();
        let ci = median_ci95(&xs);
        assert!(ci.lo <= ci.median && ci.median <= ci.hi);
        assert_eq!(ci.median, 50.0);
        // For n=101 the CI should be roughly median ± 10 ranks.
        assert!(ci.lo >= 35.0 && ci.hi <= 65.0, "{ci:?}");
    }

    #[test]
    fn tight_data_tight_ci() {
        let xs: Vec<f64> = (0..1000).map(|i| 100.0 + (i % 7) as f64 * 0.01).collect();
        let ci = median_ci95(&xs);
        assert!(ci.within(0.10), "{ci:?}");
        assert!(ci.relative_halfwidth() < 0.001);
    }

    #[test]
    fn binom_pmf_sums_to_one() {
        for n in [5usize, 20, 60] {
            let s: f64 = (0..=n).map(|k| binom_pmf_half(n, k)).sum();
            assert!((s - 1.0).abs() < 1e-9, "n={n} sum={s}");
        }
    }

    #[test]
    fn exact_matches_known_n20() {
        // Known result: for n = 20, the 95% CI of the median is (x_(6), x_(14))
        // in 1-based indexing → 0-based (5, 14).
        let (l, u) = exact_binomial_bounds(20);
        assert_eq!(l, 5);
        assert_eq!(u, 14);
    }

    #[test]
    fn relative_halfwidth_zero_median() {
        let ci = MedianCi {
            median: 0.0,
            lo: -1.0,
            hi: 1.0,
        };
        assert!(ci.relative_halfwidth().is_infinite());
        assert!(!ci.within(0.1));
    }
}
