//! Statistics utilities for capability benchmarking.
//!
//! The paper (Ramos & Hoefler, IPDPS 2017) reports *medians* of per-iteration
//! maxima, with 95% confidence intervals of the median, and fits linear models
//! (`α + β·N`) to contention and multi-line measurements with ordinary least
//! squares. This crate provides exactly those primitives, plus quantile and
//! boxplot summaries used by the figure regenerators.

pub mod ci;
pub mod json;
pub mod regression;
pub mod sample;
pub mod summary;
pub mod units;

pub use ci::{median_ci95, MedianCi};
pub use regression::{fit_linear, LinearFit};
pub use sample::Sample;
pub use summary::{boxplot, mean, median, quantile, stddev, BoxplotSummary};
