//! Order statistics: median, quantiles, boxplot summaries.

/// Arithmetic mean. Returns `NaN` for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return f64::NAN;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Sample standard deviation (n-1 denominator). `NaN` for fewer than 2 points.
pub fn stddev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return f64::NAN;
    }
    let m = mean(xs);
    let ss: f64 = xs.iter().map(|&x| (x - m) * (x - m)).sum();
    (ss / (xs.len() - 1) as f64).sqrt()
}

/// Quantile with linear interpolation between closest ranks (type-7, the R and
/// NumPy default). `q` must be in `[0, 1]`. Returns `NaN` for an empty slice.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!(
        (0.0..=1.0).contains(&q),
        "quantile must be in [0,1], got {q}"
    );
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    quantile_sorted(&v, q)
}

/// Quantile of an already-sorted slice (ascending). See [`quantile`].
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return f64::NAN;
    }
    if sorted.len() == 1 {
        return sorted[0];
    }
    let h = q * (sorted.len() - 1) as f64;
    let lo = h.floor() as usize;
    let hi = h.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = h - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Median (0.5 quantile).
pub fn median(xs: &[f64]) -> f64 {
    quantile(xs, 0.5)
}

/// The five-number summary used to draw the paper's boxplots
/// (Figs. 6–8: whiskers at 1.5 IQR, plus median/quartiles).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BoxplotSummary {
    /// Smallest observation.
    pub min: f64,
    /// Lowest point within 1.5 IQR below Q1.
    pub whisker_lo: f64,
    /// First quartile.
    pub q1: f64,
    /// Median.
    pub median: f64,
    /// Third quartile.
    pub q3: f64,
    /// Highest point within 1.5 IQR above Q3.
    pub whisker_hi: f64,
    /// Largest observation.
    pub max: f64,
}

/// Compute a boxplot summary (Tukey whiskers clipped to data range).
pub fn boxplot(xs: &[f64]) -> BoxplotSummary {
    let mut v: Vec<f64> = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in boxplot input"));
    let q1 = quantile_sorted(&v, 0.25);
    let q2 = quantile_sorted(&v, 0.5);
    let q3 = quantile_sorted(&v, 0.75);
    let iqr = q3 - q1;
    let lo_fence = q1 - 1.5 * iqr;
    let hi_fence = q3 + 1.5 * iqr;
    let whisker_lo = v.iter().copied().find(|&x| x >= lo_fence).unwrap_or(q1);
    let whisker_hi = v
        .iter()
        .rev()
        .copied()
        .find(|&x| x <= hi_fence)
        .unwrap_or(q3);
    BoxplotSummary {
        min: *v.first().unwrap_or(&f64::NAN),
        whisker_lo,
        q1,
        median: q2,
        q3,
        whisker_hi,
        max: *v.last().unwrap_or(&f64::NAN),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_basic() {
        assert_eq!(mean(&[1.0, 2.0, 3.0]), 2.0);
        assert!(mean(&[]).is_nan());
    }

    #[test]
    fn stddev_basic() {
        let s = stddev(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
        assert!((s - 2.138089935).abs() < 1e-6);
        assert!(stddev(&[1.0]).is_nan());
    }

    #[test]
    fn median_odd_even() {
        assert_eq!(median(&[3.0, 1.0, 2.0]), 2.0);
        assert_eq!(median(&[4.0, 1.0, 2.0, 3.0]), 2.5);
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert!((quantile(&xs, 0.25) - 1.75).abs() < 1e-12);
    }

    #[test]
    fn quantile_singleton() {
        assert_eq!(quantile(&[7.0], 0.3), 7.0);
    }

    #[test]
    #[should_panic(expected = "quantile must be in [0,1]")]
    fn quantile_out_of_range_panics() {
        quantile(&[1.0], 1.5);
    }

    #[test]
    fn boxplot_summary_ordering() {
        let xs: Vec<f64> = (1..=100).map(|i| i as f64).collect();
        let b = boxplot(&xs);
        assert!(b.min <= b.whisker_lo);
        assert!(b.whisker_lo <= b.q1);
        assert!(b.q1 <= b.median);
        assert!(b.median <= b.q3);
        assert!(b.q3 <= b.whisker_hi);
        assert!(b.whisker_hi <= b.max);
        assert_eq!(b.median, 50.5);
    }

    #[test]
    fn boxplot_whiskers_exclude_outlier() {
        let mut xs: Vec<f64> = (1..=20).map(|i| i as f64).collect();
        xs.push(1000.0);
        let b = boxplot(&xs);
        assert_eq!(b.max, 1000.0);
        assert!(b.whisker_hi < 1000.0);
    }
}
