//! A container for repeated measurements of one quantity.

use crate::ci::{median_ci95, MedianCi};
use crate::summary::{boxplot, mean, median, quantile, stddev, BoxplotSummary};

/// A set of repeated observations (e.g. per-iteration latencies of one
/// benchmark configuration). The paper's reporting discipline — median of the
/// per-iteration maxima across threads — is built by pushing each iteration's
/// max and then reading [`Sample::median`].
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Sample {
    values: Vec<f64>,
}

impl Sample {
    /// Empty sample.
    pub fn new() -> Self {
        Self::default()
    }

    /// Sample over pre-collected values.
    pub fn from_values(values: Vec<f64>) -> Self {
        Sample { values }
    }

    /// Record one observation.
    pub fn push(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Number of observations.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no observations were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Raw observations, in insertion order.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Median (the paper's reported statistic).
    pub fn median(&self) -> f64 {
        median(&self.values)
    }

    /// Arithmetic mean.
    pub fn mean(&self) -> f64 {
        mean(&self.values)
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        stddev(&self.values)
    }

    /// Interpolated quantile, `q` in [0, 1].
    pub fn quantile(&self, q: f64) -> f64 {
        quantile(&self.values, q)
    }

    /// Smallest observation (+inf when empty).
    pub fn min(&self) -> f64 {
        self.values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// Largest observation (-inf when empty).
    pub fn max(&self) -> f64 {
        self.values
            .iter()
            .copied()
            .fold(f64::NEG_INFINITY, f64::max)
    }

    /// Median with its nonparametric 95% CI.
    pub fn median_ci95(&self) -> MedianCi {
        median_ci95(&self.values)
    }

    /// Five-number boxplot summary.
    pub fn boxplot(&self) -> BoxplotSummary {
        boxplot(&self.values)
    }

    /// Merge another sample into this one.
    pub fn extend(&mut self, other: &Sample) {
        self.values.extend_from_slice(&other.values);
    }
}

impl FromIterator<f64> for Sample {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        Sample {
            values: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_summaries() {
        let mut s = Sample::new();
        for v in [3.0, 1.0, 2.0] {
            s.push(v);
        }
        assert_eq!(s.len(), 3);
        assert_eq!(s.median(), 2.0);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 3.0);
    }

    #[test]
    fn from_iterator() {
        let s: Sample = (1..=5).map(|i| i as f64).collect();
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn extend_merges() {
        let mut a = Sample::from_values(vec![1.0]);
        let b = Sample::from_values(vec![2.0, 3.0]);
        a.extend(&b);
        assert_eq!(a.len(), 3);
        assert_eq!(a.median(), 2.0);
    }

    #[test]
    fn empty_sample_edge_cases() {
        let s = Sample::new();
        assert!(s.is_empty());
        assert!(s.median().is_nan());
        assert_eq!(s.min(), f64::INFINITY);
        assert_eq!(s.max(), f64::NEG_INFINITY);
    }

    #[test]
    fn quantiles_consistent() {
        let s: Sample = (0..=100).map(|i| i as f64).collect();
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(1.0), 100.0);
        assert_eq!(s.quantile(0.5), s.median());
        let ci = s.median_ci95();
        assert!(ci.lo <= ci.median && ci.median <= ci.hi);
    }
}
