//! Unit conversions between the simulator's picosecond clock and the units
//! the paper reports (nanoseconds, GB/s).

/// Picoseconds per nanosecond.
pub const PS_PER_NS: f64 = 1_000.0;
/// Picoseconds per second.
pub const PS_PER_S: f64 = 1e12;
/// Bytes per cache line on KNL.
pub const LINE_BYTES: u64 = 64;

/// Convert picoseconds to nanoseconds.
pub fn ps_to_ns(ps: u64) -> f64 {
    ps as f64 / PS_PER_NS
}

/// Convert nanoseconds to picoseconds (rounded).
pub fn ns_to_ps(ns: f64) -> u64 {
    (ns * PS_PER_NS).round() as u64
}

/// Bandwidth in GB/s (decimal GB, as in the paper) achieved when `bytes`
/// are transferred in `ps` picoseconds.
pub fn gbps(bytes: u64, ps: u64) -> f64 {
    if ps == 0 {
        return f64::INFINITY;
    }
    (bytes as f64 / 1e9) / (ps as f64 / PS_PER_S)
}

/// Picoseconds needed to move one 64 B cache line at `gbps` GB/s (the
/// service-rate form used by the simulator's memory devices).
pub fn ps_per_line(gbps: f64) -> u64 {
    assert!(gbps > 0.0, "bandwidth must be positive");
    (LINE_BYTES as f64 / (gbps * 1e9) * PS_PER_S).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ns_roundtrip() {
        assert_eq!(ps_to_ns(1500), 1.5);
        assert_eq!(ns_to_ps(1.5), 1500);
        assert_eq!(ns_to_ps(ps_to_ns(123_456)), 123_456);
    }

    #[test]
    fn gbps_basic() {
        // 64 bytes in 1 ns = 64 GB/s.
        assert!((gbps(64, 1000) - 64.0).abs() < 1e-9);
        assert!(gbps(64, 0).is_infinite());
    }

    #[test]
    fn ps_per_line_inverts_gbps() {
        for bw in [2.5, 7.5, 90.0, 450.0] {
            let ps = ps_per_line(bw);
            let back = gbps(LINE_BYTES, ps);
            assert!((back - bw).abs() / bw < 0.01, "bw={bw} back={back}");
        }
    }

    #[test]
    #[should_panic(expected = "bandwidth must be positive")]
    fn ps_per_line_rejects_zero() {
        ps_per_line(0.0);
    }
}
