//! A minimal JSON value type with a parser and a round-trip-exact writer.
//!
//! The workspace builds with no external crates, so the suite-result cache
//! (`results/suite-cache/*.json`) is encoded through this module instead of
//! `serde_json`. Numbers are written with Rust's shortest round-trip float
//! formatting, so `parse(render(v)) == v` holds bit-exactly for every finite
//! `f64` — the property the sweep determinism contract relies on when cached
//! and freshly measured results are compared.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    /// Object with insertion order dropped (sorted keys): rendering is
    /// canonical, which keeps cache files diff-stable.
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Build an object from key/value pairs.
    pub fn obj(pairs: Vec<(&str, Json)>) -> Json {
        Json::Obj(pairs.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
    }

    /// Build an array by mapping `f` over `items`.
    pub fn arr<T>(items: &[T], f: impl Fn(&T) -> Json) -> Json {
        Json::Arr(items.iter().map(f).collect())
    }

    /// Object field lookup.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(m) => m.get(key),
            _ => None,
        }
    }

    /// Numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// Integer value (numbers are exact up to 2^53).
    pub fn as_u64(&self) -> Option<u64> {
        self.as_f64()
            .filter(|x| x.fract() == 0.0 && *x >= 0.0)
            .map(|x| x as u64)
    }

    /// Integer value as usize.
    pub fn as_usize(&self) -> Option<usize> {
        self.as_u64().map(|x| x as usize)
    }

    /// String value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Array elements, if this is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(v) => Some(v),
            _ => None,
        }
    }

    /// Single-character string (how `char` fields are encoded).
    pub fn as_char(&self) -> Option<char> {
        let s = self.as_str()?;
        let mut chars = s.chars();
        let c = chars.next()?;
        chars.next().is_none().then_some(c)
    }

    /// Render compactly. Numbers use shortest round-trip formatting.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.write(&mut out);
        out
    }

    fn write(&self, out: &mut String) {
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Num(x) => {
                if x.is_finite() {
                    // `{:?}` is Rust's shortest representation that parses
                    // back to the same bits.
                    let _ = write!(out, "{x:?}");
                } else {
                    // JSON has no Inf/NaN; encode as null (parse returns NaN).
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(s, out),
            Json::Arr(v) => {
                out.push('[');
                for (i, e) in v.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    e.write(out);
                }
                out.push(']');
            }
            Json::Obj(m) => {
                out.push('{');
                for (i, (k, v)) in m.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(k, out);
                    out.push(':');
                    v.write(out);
                }
                out.push('}');
            }
        }
    }

    /// Parse a JSON document. Returns `None` on any syntax error or
    /// trailing garbage (callers fall back to re-measuring).
    pub fn parse(s: &str) -> Option<Json> {
        let mut p = Parser {
            bytes: s.as_bytes(),
            pos: 0,
        };
        let v = p.value()?;
        p.skip_ws();
        (p.pos == p.bytes.len()).then_some(v)
    }
}

fn write_escaped(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn eat(&mut self, b: u8) -> Option<()> {
        self.skip_ws();
        if self.peek() == Some(b) {
            self.pos += 1;
            Some(())
        } else {
            None
        }
    }

    fn lit(&mut self, s: &str, v: Json) -> Option<Json> {
        if self.bytes[self.pos..].starts_with(s.as_bytes()) {
            self.pos += s.len();
            Some(v)
        } else {
            None
        }
    }

    fn value(&mut self) -> Option<Json> {
        self.skip_ws();
        match self.peek()? {
            b'n' => self.lit("null", Json::Null),
            b't' => self.lit("true", Json::Bool(true)),
            b'f' => self.lit("false", Json::Bool(false)),
            b'"' => self.string().map(Json::Str),
            b'[' => self.array(),
            b'{' => self.object(),
            b'-' | b'0'..=b'9' => self.number(),
            _ => None,
        }
    }

    fn number(&mut self) -> Option<Json> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(
            self.peek(),
            Some(b'0'..=b'9' | b'.' | b'e' | b'E' | b'+' | b'-')
        ) {
            self.pos += 1;
        }
        std::str::from_utf8(&self.bytes[start..self.pos])
            .ok()?
            .parse::<f64>()
            .ok()
            .map(Json::Num)
    }

    fn string(&mut self) -> Option<String> {
        if self.peek() != Some(b'"') {
            return None;
        }
        self.pos += 1;
        let mut out = String::new();
        loop {
            let rest = std::str::from_utf8(&self.bytes[self.pos..]).ok()?;
            let mut chars = rest.char_indices();
            let (i, c) = chars.next()?;
            debug_assert_eq!(i, 0);
            self.pos += c.len_utf8();
            match c {
                '"' => return Some(out),
                '\\' => {
                    let (_, esc) = chars.next()?;
                    self.pos += esc.len_utf8();
                    match esc {
                        '"' => out.push('"'),
                        '\\' => out.push('\\'),
                        '/' => out.push('/'),
                        'n' => out.push('\n'),
                        'r' => out.push('\r'),
                        't' => out.push('\t'),
                        'b' => out.push('\u{8}'),
                        'f' => out.push('\u{c}'),
                        'u' => {
                            let hex = self.bytes.get(self.pos..self.pos + 4)?;
                            let code =
                                u32::from_str_radix(std::str::from_utf8(hex).ok()?, 16).ok()?;
                            self.pos += 4;
                            out.push(char::from_u32(code)?);
                        }
                        _ => return None,
                    }
                }
                c => out.push(c),
            }
        }
    }

    fn array(&mut self) -> Option<Json> {
        self.eat(b'[')?;
        let mut v = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Some(Json::Arr(v));
        }
        loop {
            v.push(self.value()?);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b']' => {
                    self.pos += 1;
                    return Some(Json::Arr(v));
                }
                _ => return None,
            }
        }
    }

    fn object(&mut self) -> Option<Json> {
        self.eat(b'{')?;
        let mut m = BTreeMap::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Some(Json::Obj(m));
        }
        loop {
            self.skip_ws();
            let k = self.string()?;
            self.eat(b':')?;
            let v = self.value()?;
            m.insert(k, v);
            self.skip_ws();
            match self.peek()? {
                b',' => self.pos += 1,
                b'}' => {
                    self.pos += 1;
                    return Some(Json::Obj(m));
                }
                _ => return None,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_scalars() {
        for s in [
            "null", "true", "false", "1.5", "-3.25", "\"hi\"", "[]", "{}",
        ] {
            let v = Json::parse(s).unwrap();
            assert_eq!(Json::parse(&v.render()).unwrap(), v, "{s}");
        }
    }

    #[test]
    fn floats_roundtrip_bit_exact() {
        for x in [0.1, 1.0 / 3.0, 1e300, 5e-324, 123_456_789.123_456_79, -0.0] {
            let v = Json::Num(x);
            let back = Json::parse(&v.render()).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x}");
        }
    }

    #[test]
    fn nested_structures() {
        let src = r#"{"a": [1, 2, {"b": "x\ny", "c": null}], "d": -2.5e3}"#;
        let v = Json::parse(src).unwrap();
        assert_eq!(v.get("d").unwrap().as_f64(), Some(-2500.0));
        let arr = v.get("a").unwrap().as_arr().unwrap();
        assert_eq!(arr[2].get("b").unwrap().as_str(), Some("x\ny"));
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn escapes_roundtrip() {
        let v = Json::Str("tab\there \"quoted\" back\\slash \u{1}".into());
        assert_eq!(Json::parse(&v.render()).unwrap(), v);
    }

    #[test]
    fn unicode_escape_parses() {
        assert_eq!(Json::parse(r#""A""#).unwrap().as_str(), Some("A"));
    }

    #[test]
    fn garbage_rejected() {
        for s in ["", "{", "[1,", "tru", "1.2.3", "{\"a\" 1}", "[1] junk"] {
            assert!(Json::parse(s).is_none(), "{s:?} should not parse");
        }
    }

    #[test]
    fn integers_exact() {
        let v = Json::parse("9007199254740992").unwrap(); // 2^53
        assert_eq!(v.as_u64(), Some(1 << 53));
        assert_eq!(Json::parse("3.5").unwrap().as_u64(), None);
        assert_eq!(Json::parse("-1").unwrap().as_u64(), None);
    }

    #[test]
    fn helpers() {
        let v = Json::obj(vec![("k", Json::arr(&[1.0f64, 2.0], |x| Json::Num(*x)))]);
        assert_eq!(v.get("k").unwrap().as_arr().unwrap().len(), 2);
        assert_eq!(Json::Str("M".into()).as_char(), Some('M'));
        assert_eq!(Json::Str("MM".into()).as_char(), None);
    }
}
