//! Ordinary least squares for the paper's linear capability laws.
//!
//! The paper fits `T_C(N) = α + β·N` to contention measurements (Table I),
//! `α + β·N` to multi-line transfer latencies (§IV-A.4), and a linear
//! overhead model to small-message sort costs (§V-B.2). All are simple OLS.

/// Result of a simple linear regression `y ≈ alpha + beta * x`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Intercept α.
    pub alpha: f64,
    /// Slope β.
    pub beta: f64,
    /// Coefficient of determination R².
    pub r2: f64,
    /// Number of points the fit used.
    pub n: usize,
}

impl LinearFit {
    /// Evaluate the fitted line at `x`.
    pub fn eval(&self, x: f64) -> f64 {
        self.alpha + self.beta * x
    }

    /// A degenerate fit representing a constant value (used when a capability
    /// is measured at a single operating point).
    pub fn constant(c: f64) -> Self {
        LinearFit {
            alpha: c,
            beta: 0.0,
            r2: 1.0,
            n: 1,
        }
    }
}

/// Fit `y ≈ α + β·x` by ordinary least squares.
///
/// # Panics
/// Panics if the slices differ in length or fewer than 2 points are given.
pub fn fit_linear(xs: &[f64], ys: &[f64]) -> LinearFit {
    assert_eq!(xs.len(), ys.len(), "x/y length mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit a line");
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let sxx: f64 = xs.iter().map(|&x| (x - mx) * (x - mx)).sum();
    let sxy: f64 = xs.iter().zip(ys).map(|(&x, &y)| (x - mx) * (y - my)).sum();
    let beta = if sxx == 0.0 { 0.0 } else { sxy / sxx };
    let alpha = my - beta * mx;
    let ss_tot: f64 = ys.iter().map(|&y| (y - my) * (y - my)).sum();
    let ss_res: f64 = xs
        .iter()
        .zip(ys)
        .map(|(&x, &y)| {
            let e = y - (alpha + beta * x);
            e * e
        })
        .sum();
    let r2 = if ss_tot == 0.0 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LinearFit {
        alpha,
        beta,
        r2,
        n: xs.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let xs: Vec<f64> = (1..=10).map(|i| i as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|&x| 200.0 + 34.0 * x).collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.alpha - 200.0).abs() < 1e-9);
        assert!((f.beta - 34.0).abs() < 1e-9);
        assert!((f.r2 - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_close() {
        let xs: Vec<f64> = (0..100).map(|i| i as f64).collect();
        // Deterministic "noise".
        let ys: Vec<f64> = xs
            .iter()
            .map(|&x| 5.0 + 2.0 * x + ((x * 7.0).sin()))
            .collect();
        let f = fit_linear(&xs, &ys);
        assert!((f.alpha - 5.0).abs() < 0.5, "{f:?}");
        assert!((f.beta - 2.0).abs() < 0.05, "{f:?}");
        assert!(f.r2 > 0.99);
    }

    #[test]
    fn constant_y_zero_slope() {
        let f = fit_linear(&[1.0, 2.0, 3.0], &[4.0, 4.0, 4.0]);
        assert_eq!(f.beta, 0.0);
        assert_eq!(f.alpha, 4.0);
        assert_eq!(f.r2, 1.0);
    }

    #[test]
    fn constant_x_degenerate() {
        let f = fit_linear(&[2.0, 2.0, 2.0], &[1.0, 2.0, 3.0]);
        assert_eq!(f.beta, 0.0);
        assert_eq!(f.alpha, 2.0);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mismatched_lengths_panic() {
        fit_linear(&[1.0], &[1.0, 2.0]);
    }

    #[test]
    fn eval_roundtrip() {
        let f = LinearFit {
            alpha: 1.0,
            beta: 2.0,
            r2: 1.0,
            n: 2,
        };
        assert_eq!(f.eval(3.0), 7.0);
        assert_eq!(LinearFit::constant(9.0).eval(123.0), 9.0);
    }
}
