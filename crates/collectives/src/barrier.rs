//! Host-thread barriers: the model-tuned dissemination barrier and the
//! centralized (OpenMP-like) baseline.
//!
//! All hot-path state is cache-line padded; synchronization uses acquire/
//! release atomics with generation counters so the structures are reusable
//! without reinitialization (sense reversal generalized to a u64 epoch).

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicU64, Ordering};

/// Generalized dissemination barrier with radix `m + 1`: in each of `r`
/// rounds, thread `i` signals `m` partners `(i + j·(m+1)^round)` and waits
/// for the `m` partners that signal it (Eq. 2's communication pattern).
pub struct DisseminationBarrier {
    n: usize,
    m: usize,
    rounds: usize,
    /// flags[round * n + thread]: epoch counter.
    flags: Vec<CachePadded<AtomicU64>>,
    /// Per-thread epoch (not shared; indexed copy kept by callers).
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl DisseminationBarrier {
    /// `m` partners per round (radix m+1). Use
    /// `knl_core::optimize_barrier(..).m` for the model-tuned radix.
    pub fn new(n: usize, m: usize) -> Self {
        assert!(n >= 1 && m >= 1);
        let rounds = knl_core::barrier_opt::rounds(n, m);
        let mut flags = Vec::new();
        flags.resize_with(rounds.max(1) * n, || CachePadded::new(AtomicU64::new(0)));
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        DisseminationBarrier {
            n,
            m,
            rounds,
            flags,
            epochs,
        }
    }

    /// Number of dissemination rounds.
    pub fn rounds(&self) -> usize {
        self.rounds
    }

    /// Partners contacted per round.
    pub fn radix_m(&self) -> usize {
        self.m
    }

    /// Enter the barrier as thread `tid`. Returns after all `n` threads of
    /// the current epoch have entered.
    pub fn wait(&self, tid: usize) {
        debug_assert!(tid < self.n);
        let epoch = self.epochs[tid].fetch_add(1, Ordering::Relaxed) + 1;
        let radix = self.m + 1;
        let mut stride = 1usize;
        for round in 0..self.rounds {
            // Signal my flag for this round with the epoch.
            self.flags[round * self.n + tid].store(epoch, Ordering::Release);
            // Wait for the m partners signalling me: (tid − j·stride) mod n.
            for j in 1..=self.m {
                let partner = (tid + self.n - (j * stride) % self.n) % self.n;
                if partner == tid {
                    continue;
                }
                let f = &self.flags[round * self.n + partner];
                crate::spin::wait_until(|| f.load(Ordering::Acquire) >= epoch);
            }
            stride *= radix;
        }
    }
}

/// Centralized sense-reversing barrier (the OpenMP-like baseline): one
/// shared counter all threads hammer, plus a broadcast release flag.
pub struct CentralizedBarrier {
    n: usize,
    count: CachePadded<AtomicU64>,
    release: CachePadded<AtomicU64>,
}

impl CentralizedBarrier {
    /// Barrier over `n` threads.
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        CentralizedBarrier {
            n,
            count: CachePadded::new(AtomicU64::new(0)),
            release: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Enter the barrier; returns when all `n` threads have entered.
    pub fn wait(&self, _tid: usize) {
        let epoch = self.release.load(Ordering::Acquire);
        let arrived = self.count.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n as u64 {
            self.count.store(0, Ordering::Relaxed);
            self.release.store(epoch + 1, Ordering::Release);
        } else {
            crate::spin::wait_until(|| self.release.load(Ordering::Acquire) != epoch);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;
    use std::sync::Arc;

    fn hammer_barrier(n: usize, iters: usize, wait: impl Fn(usize) + Sync) {
        // Correctness harness: a shared phase counter must never be observed
        // more than one phase apart across threads.
        let phase = AtomicUsize::new(0);
        let counts: Vec<AtomicUsize> = (0..iters).map(|_| AtomicUsize::new(0)).collect();
        std::thread::scope(|s| {
            for tid in 0..n {
                let wait = &wait;
                let counts = &counts;
                let phase = &phase;
                s.spawn(move || {
                    for (it, count) in counts.iter().enumerate() {
                        count.fetch_add(1, Ordering::SeqCst);
                        wait(tid);
                        // After the barrier, everyone must have arrived.
                        assert_eq!(
                            count.load(Ordering::SeqCst),
                            n,
                            "iteration {it}: barrier released early"
                        );
                        wait(tid);
                        let _ = phase.fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
    }

    #[test]
    fn dissemination_radix2_correct() {
        let b = DisseminationBarrier::new(7, 1);
        hammer_barrier(7, 50, |tid| b.wait(tid));
    }

    #[test]
    fn dissemination_radix4_correct() {
        let b = DisseminationBarrier::new(8, 3);
        assert_eq!(b.rounds(), 2); // 4^2 ≥ 8
        hammer_barrier(8, 50, |tid| b.wait(tid));
    }

    #[test]
    fn dissemination_large_radix() {
        let b = DisseminationBarrier::new(6, 5);
        assert_eq!(b.rounds(), 1);
        hammer_barrier(6, 50, |tid| b.wait(tid));
    }

    #[test]
    fn centralized_correct() {
        let b = CentralizedBarrier::new(6);
        hammer_barrier(6, 50, |tid| b.wait(tid));
    }

    #[test]
    fn single_thread_barriers_trivial() {
        let d = DisseminationBarrier::new(1, 1);
        d.wait(0);
        let c = CentralizedBarrier::new(1);
        c.wait(0);
    }

    #[test]
    fn reusable_across_many_epochs() {
        let b = Arc::new(DisseminationBarrier::new(4, 2));
        hammer_barrier(4, 200, |tid| b.wait(tid));
    }
}
