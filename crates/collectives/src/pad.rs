//! Cache-line padding for per-rank synchronization slots.
//!
//! A local stand-in for `crossbeam_utils::CachePadded` (the workspace builds
//! with no external crates). 128-byte alignment covers the adjacent-line
//! prefetcher on x86 and the 128-byte cache lines of some ARM parts — the
//! same choice crossbeam makes.

/// Pads and aligns `T` to 128 bytes so neighbouring values never share a
/// cache line (no false sharing between spinning ranks).
#[derive(Debug, Default, Clone, Copy)]
#[repr(align(128))]
pub struct CachePadded<T> {
    value: T,
}

impl<T> CachePadded<T> {
    /// Wrap `value` in its own cache line.
    pub const fn new(value: T) -> Self {
        CachePadded { value }
    }

    /// Unwrap the padded value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> std::ops::Deref for CachePadded<T> {
    type Target = T;

    fn deref(&self) -> &T {
        &self.value
    }
}

impl<T> std::ops::DerefMut for CachePadded<T> {
    fn deref_mut(&mut self) -> &mut T {
        &mut self.value
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn layout_is_padded() {
        assert_eq!(std::mem::align_of::<CachePadded<u8>>(), 128);
        assert_eq!(std::mem::size_of::<CachePadded<u8>>(), 128);
        // Adjacent vector elements land on distinct cache lines.
        let v: Vec<CachePadded<u64>> = vec![CachePadded::new(1), CachePadded::new(2)];
        let a = &*v[0] as *const u64 as usize;
        let b = &*v[1] as *const u64 as usize;
        assert!(b - a >= 128);
    }

    #[test]
    fn deref_and_into_inner() {
        let mut p = CachePadded::new(AtomicU64::new(7));
        assert_eq!(p.load(Ordering::Relaxed), 7);
        *p.get_mut() += 3;
        assert_eq!(p.into_inner().into_inner(), 10);
    }
}
