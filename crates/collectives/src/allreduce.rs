//! Allreduce as the composition of the paper's two model-tuned primitives:
//! a tuned reduce tree up, then a tuned broadcast tree down. An extension
//! beyond the paper's evaluation, but built entirely from its parts — the
//! shapes can differ (reduce pays the operator per child, so its optimal
//! tree is slightly bushier near the leaves).

use crate::broadcast::TreeBroadcast;
use crate::pad::CachePadded;
use crate::plan::RankPlan;
use crate::reduce::TreeReduce;
use std::sync::atomic::{AtomicU64, Ordering};

/// Model-tuned allreduce (sum of one u64 per rank; every rank receives the
/// total).
pub struct TreeAllreduce {
    reduce: TreeReduce,
    bcast: TreeBroadcast,
    /// The root's total for the current epoch (handed from the reduce to
    /// the broadcast phase).
    total: CachePadded<AtomicU64>,
}

impl TreeAllreduce {
    /// Compose from (possibly different) reduce and broadcast plans. Both
    /// must span the same rank count and share the root.
    pub fn new(reduce_plan: RankPlan, bcast_plan: RankPlan) -> Self {
        assert_eq!(
            reduce_plan.num_ranks(),
            bcast_plan.num_ranks(),
            "plans must span the same ranks"
        );
        assert_eq!(
            reduce_plan.root, bcast_plan.root,
            "plans must share the root"
        );
        TreeAllreduce {
            reduce: TreeReduce::new(reduce_plan),
            bcast: TreeBroadcast::new(bcast_plan),
            total: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of participating ranks.
    pub fn num_ranks(&self) -> usize {
        self.reduce.plan().num_ranks()
    }

    /// Participate as `rank`; returns the global sum on every rank.
    pub fn run(&self, rank: usize, contribution: u64) -> u64 {
        let root = self.reduce.plan().root;
        if let Some(total) = self.reduce.run(rank, contribution) {
            self.total.store(total, Ordering::Relaxed);
        }
        let payload = if rank == root {
            Some([self.total.load(Ordering::Relaxed), 0, 0, 0, 0, 0, 0])
        } else {
            None
        };
        self.bcast.run(rank, payload)[0]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_core::{optimize_tree, CapabilityModel, TreeKind};

    fn allreduce(n: usize) -> TreeAllreduce {
        let model = CapabilityModel::paper_reference();
        TreeAllreduce::new(
            RankPlan::direct(&optimize_tree(&model, n, TreeKind::Reduce).tree),
            RankPlan::direct(&optimize_tree(&model, n, TreeKind::Broadcast).tree),
        )
    }

    #[test]
    fn every_rank_gets_the_sum() {
        let n = 8;
        let a = allreduce(n);
        std::thread::scope(|s| {
            for rank in 0..n {
                let a = &a;
                s.spawn(move || {
                    for it in 0..100u64 {
                        let expect: u64 = (0..n as u64).map(|r| r * 3 + it).sum();
                        let got = a.run(rank, rank as u64 * 3 + it);
                        assert_eq!(got, expect, "rank {rank} iter {it}");
                    }
                });
            }
        });
    }

    #[test]
    fn single_rank_identity() {
        let a = allreduce(1);
        assert_eq!(a.run(0, 42), 42);
        assert_eq!(a.num_ranks(), 1);
    }

    #[test]
    #[should_panic(expected = "same ranks")]
    fn mismatched_plans_rejected() {
        let model = CapabilityModel::paper_reference();
        TreeAllreduce::new(
            RankPlan::direct(&optimize_tree(&model, 4, TreeKind::Reduce).tree),
            RankPlan::direct(&optimize_tree(&model, 8, TreeKind::Broadcast).tree),
        );
    }
}
