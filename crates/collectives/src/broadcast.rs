//! Host-thread broadcasts: model-tuned tree, flat (OpenMP-like), and
//! MPI-like binomial with staging copies.
//!
//! The payload is one cache line (8×u64); the protocol matches the paper's
//! Eq. 1 structure: a parent writes the data and a flag in the same cache
//! line's neighbourhood, children poll the flag, copy the data, notify
//! their own children, and acknowledge so the structure is reusable.

use crate::pad::CachePadded;
use crate::plan::RankPlan;
use std::sync::atomic::{AtomicU64, Ordering};

/// One payload slot: 7 data words + an epoch flag, all in one padded line.
#[derive(Debug)]
struct Slot {
    data: [AtomicU64; 7],
    flag: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            data: std::array::from_fn(|_| AtomicU64::new(0)),
            flag: AtomicU64::new(0),
        }
    }

    fn publish(&self, value: &[u64; 7], epoch: u64) {
        for (d, v) in self.data.iter().zip(value) {
            d.store(*v, Ordering::Relaxed);
        }
        self.flag.store(epoch, Ordering::Release);
    }

    fn consume(&self, epoch: u64) -> [u64; 7] {
        crate::spin::wait_until(|| self.flag.load(Ordering::Acquire) >= epoch);
        std::array::from_fn(|i| self.data[i].load(Ordering::Relaxed))
    }
}

/// Tree broadcast over an arbitrary [`RankPlan`] (use the model-tuned tree).
pub struct TreeBroadcast {
    plan: RankPlan,
    slots: Vec<CachePadded<Slot>>,
    acks: Vec<CachePadded<AtomicU64>>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl TreeBroadcast {
    /// Broadcast structure over a validated plan.
    pub fn new(plan: RankPlan) -> Self {
        plan.assert_valid();
        let n = plan.num_ranks();
        let mut slots = Vec::new();
        slots.resize_with(n, || CachePadded::new(Slot::new()));
        let mut acks = Vec::new();
        acks.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        TreeBroadcast {
            plan,
            slots,
            acks,
            epochs,
        }
    }

    /// The plan the structure was built over.
    pub fn plan(&self) -> &RankPlan {
        &self.plan
    }

    /// Participate as `rank`. The root passes `Some(value)`; everyone
    /// returns the broadcast value once the whole tree has it.
    pub fn run(&self, rank: usize, value: Option<[u64; 7]>) -> [u64; 7] {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        let v = if rank == self.plan.root {
            let v = value.expect("root provides the value");
            self.slots[rank].publish(&v, epoch);
            v
        } else {
            let parent = self.plan.parent[rank].expect("non-root has parent");
            let v = self.slots[parent].consume(epoch);
            self.slots[rank].publish(&v, epoch);
            v
        };
        // Wait for subtree acknowledgements, then ack upward.
        for &c in &self.plan.children[rank] {
            let ack = &self.acks[c];
            crate::spin::wait_until(|| ack.load(Ordering::Acquire) >= epoch);
        }
        self.acks[rank].store(epoch, Ordering::Release);
        v
    }
}

/// Flat broadcast (OpenMP-like): the root publishes once; all ranks poll
/// the root's slot; a central arrival counter closes the epoch.
pub struct FlatBroadcast {
    n: usize,
    slot: CachePadded<Slot>,
    arrived: CachePadded<AtomicU64>,
    done: CachePadded<AtomicU64>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl FlatBroadcast {
    /// Flat broadcast over `n` ranks (rank 0 is the root).
    pub fn new(n: usize) -> Self {
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        FlatBroadcast {
            n,
            slot: CachePadded::new(Slot::new()),
            arrived: CachePadded::new(AtomicU64::new(0)),
            done: CachePadded::new(AtomicU64::new(0)),
            epochs,
        }
    }

    /// Participate as `rank`; the root passes `Some(value)`.
    pub fn run(&self, rank: usize, value: Option<[u64; 7]>) -> [u64; 7] {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        let v = if rank == 0 {
            let v = value.expect("root provides the value");
            self.slot.publish(&v, epoch);
            v
        } else {
            self.slot.consume(epoch)
        };
        let arrived = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == (self.n as u64) * epoch {
            self.done.store(epoch, Ordering::Release);
        }
        crate::spin::wait_until(|| self.done.load(Ordering::Acquire) >= epoch);
        v
    }
}

/// MPI-like binomial broadcast: pairwise sends through *staging* buffers —
/// every hop costs two copies (in and out of the staging area), modelling
/// the separate address spaces the paper attributes MPI's disadvantage to,
/// plus a per-message envelope word (matching overhead).
pub struct MpiBroadcast {
    plan: RankPlan,
    /// Staging slot per rank (the "receive queue").
    staging: Vec<CachePadded<Slot>>,
    /// Private destination per rank (the user buffer).
    dest: Vec<CachePadded<Slot>>,
    envelope: Vec<CachePadded<AtomicU64>>,
    acks: Vec<CachePadded<AtomicU64>>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl MpiBroadcast {
    /// `plan` is typically the binomial tree
    /// (`knl_core::tree_opt::binomial_tree`).
    pub fn new(plan: RankPlan) -> Self {
        plan.assert_valid();
        let n = plan.num_ranks();
        let mut staging = Vec::new();
        staging.resize_with(n, || CachePadded::new(Slot::new()));
        let mut dest = Vec::new();
        dest.resize_with(n, || CachePadded::new(Slot::new()));
        let mut envelope = Vec::new();
        envelope.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        let mut acks = Vec::new();
        acks.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        MpiBroadcast {
            plan,
            staging,
            dest,
            envelope,
            acks,
            epochs,
        }
    }

    /// Participate as `rank`; the root passes `Some(value)`.
    pub fn run(&self, rank: usize, value: Option<[u64; 7]>) -> [u64; 7] {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        let v = if rank == self.plan.root {
            let v = value.expect("root provides the value");
            self.dest[rank].publish(&v, epoch);
            v
        } else {
            // Receive: match envelope, then copy staging → user buffer
            // (second copy of the double-copy protocol).
            let env = &self.envelope[rank];
            crate::spin::wait_until(|| env.load(Ordering::Acquire) >= epoch);
            let v = self.staging[rank].consume(epoch);
            self.dest[rank].publish(&v, epoch);
            v
        };
        // Send to children: copy user buffer → child's staging (first copy),
        // then post the envelope.
        for &c in &self.plan.children[rank] {
            self.staging[c].publish(&v, epoch);
            self.envelope[c].store(epoch, Ordering::Release);
        }
        for &c in &self.plan.children[rank] {
            let ack = &self.acks[c];
            crate::spin::wait_until(|| ack.load(Ordering::Acquire) >= epoch);
        }
        self.acks[rank].store(epoch, Ordering::Release);
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_core::tree_opt::binomial_tree;
    use knl_core::{optimize_tree, CapabilityModel, TreeKind};

    fn run_bcast<F: Fn(usize, Option<[u64; 7]>) -> [u64; 7] + Sync>(n: usize, iters: usize, f: F) {
        std::thread::scope(|s| {
            for rank in 0..n {
                let f = &f;
                s.spawn(move || {
                    for it in 0..iters as u64 {
                        let expect = [it + 1, it + 2, it + 3, it + 4, it + 5, it + 6, it + 7];
                        let v = if rank == 0 {
                            f(rank, Some(expect))
                        } else {
                            f(rank, None)
                        };
                        assert_eq!(v, expect, "rank {rank} iteration {it}");
                    }
                });
            }
        });
    }

    #[test]
    fn tree_broadcast_delivers() {
        let model = CapabilityModel::paper_reference();
        let plan = RankPlan::direct(&optimize_tree(&model, 8, TreeKind::Broadcast).tree);
        let b = TreeBroadcast::new(plan);
        run_bcast(8, 100, |r, v| b.run(r, v));
    }

    #[test]
    fn flat_broadcast_delivers() {
        let b = FlatBroadcast::new(6);
        run_bcast(6, 100, |r, v| b.run(r, v));
    }

    #[test]
    fn mpi_broadcast_delivers() {
        let plan = RankPlan::direct(&binomial_tree(8));
        let b = MpiBroadcast::new(plan);
        run_bcast(8, 100, |r, v| b.run(r, v));
    }

    #[test]
    fn single_rank_trivial() {
        let model = CapabilityModel::paper_reference();
        let plan = RankPlan::direct(&optimize_tree(&model, 1, TreeKind::Broadcast).tree);
        let b = TreeBroadcast::new(plan);
        assert_eq!(b.run(0, Some([9; 7])), [9; 7]);
    }
}
