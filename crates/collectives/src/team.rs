//! A persistent thread team for timing collectives on the host.
//!
//! Workers spin on a generation counter; `Team::time` publishes a closure
//! that every worker executes `iters` times, and returns the wall-clock
//! duration from release to the last worker's completion. Measuring many
//! iterations per generation keeps the harness handshake out of the
//! measured cost.

use crate::pad::CachePadded;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::{Duration, Instant};

type Job = Arc<dyn Fn(usize, usize) + Send + Sync>;

struct Shared {
    generation: CachePadded<AtomicU64>,
    done: Vec<CachePadded<AtomicU64>>,
    stop: AtomicBool,
}

/// A fixed-size team of spinning worker threads (ranks `1..n`; rank 0 is
/// the caller's thread).
pub struct Team {
    n: usize,
    shared: Arc<Shared>,
    job: Arc<RwLock<Option<(Job, usize)>>>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl Team {
    /// Spawn a team of `n` ranks (n−1 worker threads + the caller).
    pub fn new(n: usize) -> Self {
        assert!(n >= 1);
        let shared = Arc::new(Shared {
            generation: CachePadded::new(AtomicU64::new(0)),
            done: (0..n)
                .map(|_| CachePadded::new(AtomicU64::new(0)))
                .collect(),
            stop: AtomicBool::new(false),
        });
        let job: Arc<RwLock<Option<(Job, usize)>>> = Arc::new(RwLock::new(None));
        let mut workers = Vec::new();
        for rank in 1..n {
            let shared = Arc::clone(&shared);
            let job = Arc::clone(&job);
            workers.push(std::thread::spawn(move || {
                let mut seen = 0u64;
                loop {
                    let gen = shared.generation.load(Ordering::Acquire);
                    if gen == seen {
                        if shared.stop.load(Ordering::Relaxed) {
                            return;
                        }
                        std::thread::yield_now();
                        continue;
                    }
                    seen = gen;
                    let guard = job.read().expect("team job lock poisoned");
                    if let Some((f, iters)) = guard.as_ref() {
                        for it in 0..*iters {
                            f(rank, it);
                        }
                    }
                    drop(guard);
                    shared.done[rank].store(gen, Ordering::Release);
                }
            }));
        }
        Team {
            n,
            shared,
            job,
            workers,
        }
    }

    /// Team size (including the caller's rank 0).
    pub fn num_ranks(&self) -> usize {
        self.n
    }

    /// Run `f(rank, iteration)` `iters` times on every rank (including the
    /// caller as rank 0) and return the elapsed wall time.
    pub fn time<F: Fn(usize, usize) + Send + Sync + 'static>(
        &self,
        iters: usize,
        f: F,
    ) -> Duration {
        *self.job.write().expect("team job lock poisoned") = Some((Arc::new(f), iters));
        let gen = self.shared.generation.load(Ordering::Relaxed) + 1;
        let start = Instant::now();
        self.shared.generation.store(gen, Ordering::Release);
        {
            let guard = self.job.read().expect("team job lock poisoned");
            if let Some((f, iters)) = guard.as_ref() {
                for it in 0..*iters {
                    f(0, it);
                }
            }
        }
        self.shared.done[0].store(gen, Ordering::Release);
        for rank in 1..self.n {
            let done = &self.shared.done[rank];
            crate::spin::wait_until(|| done.load(Ordering::Acquire) >= gen);
        }
        start.elapsed()
    }
}

impl Drop for Team {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Relaxed);
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn all_ranks_run_all_iterations() {
        let team = Team::new(4);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        let d = team.time(10, move |_rank, _it| {
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 40);
        assert!(d.as_nanos() > 0);
    }

    #[test]
    fn reusable_for_multiple_jobs() {
        let team = Team::new(3);
        for _ in 0..3 {
            let counter = Arc::new(AtomicUsize::new(0));
            let c = Arc::clone(&counter);
            team.time(5, move |_r, _i| {
                c.fetch_add(1, Ordering::Relaxed);
            });
            assert_eq!(counter.load(Ordering::Relaxed), 15);
        }
    }

    #[test]
    fn single_rank_team() {
        let team = Team::new(1);
        let counter = Arc::new(AtomicUsize::new(0));
        let c = Arc::clone(&counter);
        team.time(7, move |rank, _| {
            assert_eq!(rank, 0);
            c.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(counter.load(Ordering::Relaxed), 7);
    }

    #[test]
    fn barrier_through_team() {
        use crate::barrier::DisseminationBarrier;
        let n = 4;
        let team = Team::new(n);
        let b = Arc::new(DisseminationBarrier::new(n, 2));
        let b2 = Arc::clone(&b);
        let d = team.time(100, move |rank, _| {
            b2.wait(rank);
        });
        assert!(d.as_micros() > 0);
    }
}
