//! Bounded spin-then-yield waiting.
//!
//! On the paper's KNL every rank owns a core, so pure spinning is right; on
//! oversubscribed hosts (CI boxes, laptops) pure spinning livelocks the
//! scheduler. All host collectives wait through this helper: a short pure
//! spin (the common uncontended case), then cooperative yields.

/// Spin until `ready()` is true.
#[inline]
pub fn wait_until<F: Fn() -> bool>(ready: F) {
    for _ in 0..128 {
        if ready() {
            return;
        }
        std::hint::spin_loop();
    }
    while !ready() {
        std::thread::yield_now();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, Ordering};
    use std::sync::Arc;

    #[test]
    fn returns_immediately_when_ready() {
        wait_until(|| true);
    }

    #[test]
    fn waits_for_other_thread() {
        let flag = Arc::new(AtomicBool::new(false));
        let f2 = Arc::clone(&flag);
        let h = std::thread::spawn(move || {
            std::thread::sleep(std::time::Duration::from_millis(10));
            f2.store(true, Ordering::Release);
        });
        wait_until(|| flag.load(Ordering::Acquire));
        h.join().unwrap();
        assert!(flag.load(Ordering::Acquire));
    }
}
