//! Model-tuned shared-memory collectives and their baselines.
//!
//! Two execution substrates:
//!
//! * **Host threads** ([`barrier`], [`broadcast`], [`reduce`], driven by
//!   [`team::Team`]): real implementations on cache-line-padded atomic
//!   flags, usable on any shared-memory machine. The model-tuned shapes
//!   (trees from `knl_core::tree_opt`, radices from
//!   `knl_core::barrier_opt`) compete against an OpenMP-like centralized
//!   baseline and an MPI-like binomial baseline that pays the double copy
//!   of separate address spaces.
//! * **Simulated KNL** ([`simspec`]): the same algorithms expressed as
//!   `knl_sim` programs over coherent flag lines, which is how the paper's
//!   Figs. 6–8 are regenerated with KNL timing.

pub mod allreduce;
pub mod barrier;
pub mod broadcast;
pub mod pad;
pub mod plan;
pub mod reduce;
pub mod simspec;
pub mod spin;
pub mod team;

pub use allreduce::TreeAllreduce;
pub use barrier::{CentralizedBarrier, DisseminationBarrier};
pub use broadcast::{FlatBroadcast, MpiBroadcast, TreeBroadcast};
pub use plan::{PlanError, RankPlan};
pub use reduce::{CentralReduce, MpiReduce, TreeReduce};
pub use team::Team;
