//! Mapping an optimized tree onto thread ranks.
//!
//! The paper distinguishes inter-tile from intra-tile communication: the
//! optimized tree spans one *leader* rank per tile, and the remaining ranks
//! of a tile hang off their leader as a flat subtree ("when there is more
//! than one thread per tile, we make a flat tree within the tile"). On the
//! host (no tile information) every rank is its own leader.

use knl_arch::Schedule;
use knl_core::Tree;

/// Per-rank parent/children derived from a tree + tile grouping.
#[derive(Debug, Clone)]
pub struct RankPlan {
    /// Parent rank of each rank (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children ranks of each rank, in notification order.
    pub children: Vec<Vec<usize>>,
    /// Rank acting as tree root.
    pub root: usize,
}

impl RankPlan {
    /// Flat mapping: tree node BFS id == rank (host collectives; also used
    /// in the simulator when there is exactly one thread per tile).
    pub fn direct(tree: &Tree) -> Self {
        let parent = tree.bfs_parents();
        let children = tree.bfs_children();
        RankPlan {
            parent,
            children,
            root: 0,
        }
    }

    /// Hierarchical mapping for `n` ranks pinned by `schedule` on a machine
    /// with `num_cores` cores: ranks sharing a tile form a group; the tree
    /// (over `groups.len()` nodes) connects the group leaders; members
    /// attach flat under their leader.
    pub fn hierarchical(tree: &Tree, n: usize, schedule: Schedule, num_cores: usize) -> Self {
        let groups = tile_groups(n, schedule, num_cores);
        assert_eq!(
            tree.size(),
            groups.len(),
            "tree must span one node per tile group"
        );
        let leader_parent = tree.bfs_parents();
        let leader_children = tree.bfs_children();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for (g, group) in groups.iter().enumerate() {
            let leader = group[0];
            parent[leader] = leader_parent[g].map(|pg| groups[pg][0]);
            children[leader] = leader_children[g].iter().map(|&cg| groups[cg][0]).collect();
            for &member in &group[1..] {
                parent[member] = Some(leader);
                children[leader].push(member);
            }
        }
        RankPlan {
            parent,
            children,
            root: groups[0][0],
        }
    }

    /// Number of ranks the plan spans.
    pub fn num_ranks(&self) -> usize {
        self.parent.len()
    }

    /// Sanity: every non-root rank has a parent, and parent/children agree.
    pub fn validate(&self) {
        let n = self.num_ranks();
        let mut seen = vec![false; n];
        seen[self.root] = true;
        assert!(self.parent[self.root].is_none(), "root must have no parent");
        for r in 0..n {
            for &c in &self.children[r] {
                assert_eq!(self.parent[c], Some(r), "child {c} of {r} disagrees");
                assert!(!seen[c], "rank {c} reachable twice");
                seen[c] = true;
            }
        }
        assert!(seen.iter().all(|&s| s), "unreachable ranks: {seen:?}");
    }
}

/// Group ranks by the tile their schedule pin lands on; groups ordered by
/// first appearance, each group led by its first rank.
pub fn tile_groups(n: usize, schedule: Schedule, num_cores: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<(u16, Vec<usize>)> = Vec::new();
    for rank in 0..n {
        let tile = schedule.core(rank, num_cores).tile().0;
        match groups.iter_mut().find(|(t, _)| *t == tile) {
            Some((_, g)) => g.push(rank),
            None => groups.push((tile, vec![rank])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_core::tree_opt::{binomial_tree, flat_tree};

    #[test]
    fn direct_plan_valid() {
        for n in [1usize, 2, 7, 16] {
            let p = RankPlan::direct(&binomial_tree(n));
            assert_eq!(p.num_ranks(), n);
            p.validate();
        }
    }

    #[test]
    fn tile_groups_fill_tiles() {
        // FillTiles on 64 cores: ranks 0,1 share tile 0; 2,3 tile 1; ...
        let g = tile_groups(8, Schedule::FillTiles, 64);
        assert_eq!(g, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
    }

    #[test]
    fn tile_groups_scatter() {
        // Scatter: first 32 ranks on distinct tiles.
        let g = tile_groups(8, Schedule::Scatter, 64);
        assert_eq!(g.len(), 8);
        assert!(g.iter().all(|grp| grp.len() == 1));
        // 40 ranks: 32 tiles, 8 of them with 2 ranks.
        let g = tile_groups(40, Schedule::Scatter, 64);
        assert_eq!(g.len(), 32);
        assert_eq!(g.iter().filter(|grp| grp.len() == 2).count(), 8);
    }

    #[test]
    fn hierarchical_plan_valid() {
        let n = 16;
        let groups = tile_groups(n, Schedule::FillTiles, 64);
        let tree = binomial_tree(groups.len());
        let p = RankPlan::hierarchical(&tree, n, Schedule::FillTiles, 64);
        p.validate();
        // Leader of group 0 is rank 0 = root.
        assert_eq!(p.root, 0);
        // Rank 1 (tile mate of 0) hangs under 0.
        assert_eq!(p.parent[1], Some(0));
    }

    #[test]
    #[should_panic(expected = "one node per tile group")]
    fn mismatched_tree_rejected() {
        let tree = flat_tree(3);
        RankPlan::hierarchical(&tree, 16, Schedule::FillTiles, 64);
    }
}
