//! Mapping an optimized tree onto thread ranks.
//!
//! The paper distinguishes inter-tile from intra-tile communication: the
//! optimized tree spans one *leader* rank per tile, and the remaining ranks
//! of a tile hang off their leader as a flat subtree ("when there is more
//! than one thread per tile, we make a flat tree within the tile"). On the
//! host (no tile information) every rank is its own leader.

use knl_arch::Schedule;
use knl_core::Tree;
use std::fmt;

/// Why a [`RankPlan`] is malformed, with the ranks involved.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The plan spans zero ranks.
    Empty,
    /// The root rank index is outside the plan.
    RootOutOfRange { root: usize, num_ranks: usize },
    /// The root has a parent.
    RootHasParent { root: usize, parent: usize },
    /// A parent or child index is outside the plan.
    RankOutOfRange { rank: usize, num_ranks: usize },
    /// `children[parent]` lists `child` but `parent[child]` disagrees.
    ParentMismatch {
        child: usize,
        listed_under: usize,
        actual_parent: Option<usize>,
    },
    /// A rank appears as a child more than once (a cycle or diamond).
    DuplicateRank { rank: usize },
    /// Ranks not reachable from the root.
    Unreachable { ranks: Vec<usize> },
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Empty => write!(f, "plan spans zero ranks"),
            PlanError::RootOutOfRange { root, num_ranks } => {
                write!(f, "root rank {root} out of range (plan spans {num_ranks})")
            }
            PlanError::RootHasParent { root, parent } => {
                write!(f, "root rank {root} must have no parent, has {parent}")
            }
            PlanError::RankOutOfRange { rank, num_ranks } => {
                write!(f, "rank {rank} out of range (plan spans {num_ranks})")
            }
            PlanError::ParentMismatch {
                child,
                listed_under,
                actual_parent,
            } => write!(
                f,
                "rank {child} is listed as a child of {listed_under} but its parent \
                 is {actual_parent:?}"
            ),
            PlanError::DuplicateRank { rank } => {
                write!(f, "rank {rank} reachable twice (cycle or diamond)")
            }
            PlanError::Unreachable { ranks } => {
                write!(f, "ranks {ranks:?} unreachable from the root")
            }
        }
    }
}

/// Per-rank parent/children derived from a tree + tile grouping.
#[derive(Debug, Clone)]
pub struct RankPlan {
    /// Parent rank of each rank (`None` for the root).
    pub parent: Vec<Option<usize>>,
    /// Children ranks of each rank, in notification order.
    pub children: Vec<Vec<usize>>,
    /// Rank acting as tree root.
    pub root: usize,
}

impl RankPlan {
    /// Flat mapping: tree node BFS id == rank (host collectives; also used
    /// in the simulator when there is exactly one thread per tile).
    pub fn direct(tree: &Tree) -> Self {
        let parent = tree.bfs_parents();
        let children = tree.bfs_children();
        RankPlan {
            parent,
            children,
            root: 0,
        }
    }

    /// Hierarchical mapping for `n` ranks pinned by `schedule` on a machine
    /// with `num_cores` cores: ranks sharing a tile form a group; the tree
    /// (over `groups.len()` nodes) connects the group leaders; members
    /// attach flat under their leader.
    pub fn hierarchical(tree: &Tree, n: usize, schedule: Schedule, num_cores: usize) -> Self {
        let groups = tile_groups(n, schedule, num_cores);
        assert_eq!(
            tree.size(),
            groups.len(),
            "tree must span one node per tile group"
        );
        let leader_parent = tree.bfs_parents();
        let leader_children = tree.bfs_children();
        let mut parent = vec![None; n];
        let mut children = vec![Vec::new(); n];
        for (g, group) in groups.iter().enumerate() {
            let leader = group[0];
            parent[leader] = leader_parent[g].map(|pg| groups[pg][0]);
            children[leader] = leader_children[g].iter().map(|&cg| groups[cg][0]).collect();
            for &member in &group[1..] {
                parent[member] = Some(leader);
                children[leader].push(member);
            }
        }
        RankPlan {
            parent,
            children,
            root: groups[0][0],
        }
    }

    /// Number of ranks the plan spans.
    pub fn num_ranks(&self) -> usize {
        self.parent.len()
    }

    /// Sanity: every non-root rank has a parent, parent/children agree,
    /// and every rank is reachable from the root exactly once. Returns the
    /// first defect found (root checks, then rank order).
    pub fn validate(&self) -> Result<(), PlanError> {
        let n = self.num_ranks();
        if n == 0 {
            return Err(PlanError::Empty);
        }
        if self.root >= n {
            return Err(PlanError::RootOutOfRange {
                root: self.root,
                num_ranks: n,
            });
        }
        if let Some(p) = self.parent[self.root] {
            return Err(PlanError::RootHasParent {
                root: self.root,
                parent: p,
            });
        }
        let mut seen = vec![false; n];
        seen[self.root] = true;
        for r in 0..n {
            if let Some(p) = self.parent[r] {
                if p >= n {
                    return Err(PlanError::RankOutOfRange {
                        rank: p,
                        num_ranks: n,
                    });
                }
            }
            for &c in &self.children[r] {
                if c >= n {
                    return Err(PlanError::RankOutOfRange {
                        rank: c,
                        num_ranks: n,
                    });
                }
                if self.parent[c] != Some(r) {
                    return Err(PlanError::ParentMismatch {
                        child: c,
                        listed_under: r,
                        actual_parent: self.parent[c],
                    });
                }
                if seen[c] {
                    return Err(PlanError::DuplicateRank { rank: c });
                }
                seen[c] = true;
            }
        }
        let unreachable: Vec<usize> = (0..n).filter(|&r| !seen[r]).collect();
        if !unreachable.is_empty() {
            return Err(PlanError::Unreachable { ranks: unreachable });
        }
        Ok(())
    }

    /// [`validate`](Self::validate), panicking with the defect on failure
    /// (the shape existing call sites expect).
    pub fn assert_valid(&self) {
        if let Err(e) = self.validate() {
            panic!("invalid rank plan: {e}");
        }
    }
}

/// Group ranks by the tile their schedule pin lands on; groups ordered by
/// first appearance, each group led by its first rank.
pub fn tile_groups(n: usize, schedule: Schedule, num_cores: usize) -> Vec<Vec<usize>> {
    let mut groups: Vec<(u16, Vec<usize>)> = Vec::new();
    for rank in 0..n {
        let tile = schedule.core(rank, num_cores).tile().0;
        match groups.iter_mut().find(|(t, _)| *t == tile) {
            Some((_, g)) => g.push(rank),
            None => groups.push((tile, vec![rank])),
        }
    }
    groups.into_iter().map(|(_, g)| g).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_core::tree_opt::{binomial_tree, flat_tree};

    #[test]
    fn direct_plan_valid() {
        for n in [1usize, 2, 7, 16] {
            let p = RankPlan::direct(&binomial_tree(n));
            assert_eq!(p.num_ranks(), n);
            p.validate().unwrap();
        }
    }

    #[test]
    fn tile_groups_fill_tiles() {
        // FillTiles on 64 cores: ranks 0,1 share tile 0; 2,3 tile 1; ...
        let g = tile_groups(8, Schedule::FillTiles, 64);
        assert_eq!(g, vec![vec![0, 1], vec![2, 3], vec![4, 5], vec![6, 7]]);
    }

    #[test]
    fn tile_groups_scatter() {
        // Scatter: first 32 ranks on distinct tiles.
        let g = tile_groups(8, Schedule::Scatter, 64);
        assert_eq!(g.len(), 8);
        assert!(g.iter().all(|grp| grp.len() == 1));
        // 40 ranks: 32 tiles, 8 of them with 2 ranks.
        let g = tile_groups(40, Schedule::Scatter, 64);
        assert_eq!(g.len(), 32);
        assert_eq!(g.iter().filter(|grp| grp.len() == 2).count(), 8);
    }

    #[test]
    fn hierarchical_plan_valid() {
        let n = 16;
        let groups = tile_groups(n, Schedule::FillTiles, 64);
        let tree = binomial_tree(groups.len());
        let p = RankPlan::hierarchical(&tree, n, Schedule::FillTiles, 64);
        p.validate().unwrap();
        // Leader of group 0 is rank 0 = root.
        assert_eq!(p.root, 0);
        // Rank 1 (tile mate of 0) hangs under 0.
        assert_eq!(p.parent[1], Some(0));
    }

    #[test]
    #[should_panic(expected = "one node per tile group")]
    fn mismatched_tree_rejected() {
        let tree = flat_tree(3);
        RankPlan::hierarchical(&tree, 16, Schedule::FillTiles, 64);
    }

    #[test]
    fn empty_plan_rejected() {
        let p = RankPlan {
            parent: vec![],
            children: vec![],
            root: 0,
        };
        assert_eq!(p.validate(), Err(PlanError::Empty));
    }

    #[test]
    fn duplicate_rank_rejected() {
        // Rank 1 listed as a child of both 0 and 2.
        let p = RankPlan {
            parent: vec![None, Some(0), Some(0)],
            children: vec![vec![1, 2], vec![], vec![1]],
            root: 0,
        };
        let err = p.validate().unwrap_err();
        assert!(
            matches!(
                err,
                PlanError::ParentMismatch { child: 1, .. } | PlanError::DuplicateRank { rank: 1 }
            ),
            "{err}"
        );
    }

    #[test]
    fn true_duplicate_rejected() {
        // Rank 1 is a child of rank 0 twice.
        let p = RankPlan {
            parent: vec![None, Some(0)],
            children: vec![vec![1, 1], vec![]],
            root: 0,
        };
        assert_eq!(p.validate(), Err(PlanError::DuplicateRank { rank: 1 }));
    }

    #[test]
    fn out_of_range_parent_rejected() {
        let p = RankPlan {
            parent: vec![None, Some(9)],
            children: vec![vec![], vec![]],
            root: 0,
        };
        let err = p.validate().unwrap_err();
        assert_eq!(
            err,
            PlanError::RankOutOfRange {
                rank: 9,
                num_ranks: 2
            }
        );
    }

    #[test]
    fn root_with_parent_rejected() {
        let p = RankPlan {
            parent: vec![Some(1), None],
            children: vec![vec![], vec![0]],
            root: 0,
        };
        assert_eq!(
            p.validate(),
            Err(PlanError::RootHasParent { root: 0, parent: 1 })
        );
    }

    #[test]
    fn unreachable_rank_rejected() {
        let p = RankPlan {
            parent: vec![None, None],
            children: vec![vec![], vec![]],
            root: 0,
        };
        assert_eq!(p.validate(), Err(PlanError::Unreachable { ranks: vec![1] }));
    }

    #[test]
    #[should_panic(expected = "invalid rank plan")]
    fn assert_valid_panics_with_detail() {
        let p = RankPlan {
            parent: vec![None, None],
            children: vec![vec![], vec![]],
            root: 0,
        };
        p.assert_valid();
    }
}
