//! Host-thread reductions (sum of one u64 per rank): model-tuned tree,
//! centralized atomic (OpenMP-like), and MPI-like binomial with staging.

use crate::pad::CachePadded;
use crate::plan::RankPlan;
use std::sync::atomic::{AtomicU64, Ordering};

/// One contribution slot: value + epoch flag in a padded line.
#[derive(Debug)]
struct Slot {
    value: AtomicU64,
    flag: AtomicU64,
}

impl Slot {
    fn new() -> Self {
        Slot {
            value: AtomicU64::new(0),
            flag: AtomicU64::new(0),
        }
    }

    fn publish(&self, v: u64, epoch: u64) {
        self.value.store(v, Ordering::Relaxed);
        self.flag.store(epoch, Ordering::Release);
    }

    fn consume(&self, epoch: u64) -> u64 {
        crate::spin::wait_until(|| self.flag.load(Ordering::Acquire) >= epoch);
        self.value.load(Ordering::Relaxed)
    }
}

/// Tree reduce over a [`RankPlan`]: children publish their partial sums
/// into per-child buffers ("extra buffering to hold the data collected from
/// the descendants"); parents accumulate and forward. The root returns the
/// total; other ranks return after the root's release flag (so the
/// operation is externally synchronized, like `MPI_Reduce` + a flag).
pub struct TreeReduce {
    plan: RankPlan,
    slots: Vec<CachePadded<Slot>>,
    release: CachePadded<AtomicU64>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl TreeReduce {
    /// Reduce structure over a validated plan.
    pub fn new(plan: RankPlan) -> Self {
        plan.assert_valid();
        let n = plan.num_ranks();
        let mut slots = Vec::new();
        slots.resize_with(n, || CachePadded::new(Slot::new()));
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        TreeReduce {
            plan,
            slots,
            release: CachePadded::new(AtomicU64::new(0)),
            epochs,
        }
    }

    /// The plan the structure was built over.
    pub fn plan(&self) -> &RankPlan {
        &self.plan
    }

    /// Participate as `rank` with `contribution`; returns the global sum at
    /// the root and `None` elsewhere.
    pub fn run(&self, rank: usize, contribution: u64) -> Option<u64> {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        let mut acc = contribution;
        for &c in &self.plan.children[rank] {
            acc = acc.wrapping_add(self.slots[c].consume(epoch));
        }
        if rank == self.plan.root {
            self.release.store(epoch, Ordering::Release);
            Some(acc)
        } else {
            self.slots[rank].publish(acc, epoch);
            crate::spin::wait_until(|| self.release.load(Ordering::Acquire) >= epoch);
            None
        }
    }
}

/// Centralized reduce (OpenMP-like): every rank `fetch_add`s into one
/// shared accumulator; the last arrival publishes the epoch's result.
pub struct CentralReduce {
    n: usize,
    acc: CachePadded<AtomicU64>,
    arrived: CachePadded<AtomicU64>,
    result: CachePadded<Slot>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl CentralReduce {
    /// Centralized reduce over `n` ranks.
    pub fn new(n: usize) -> Self {
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        CentralReduce {
            n,
            acc: CachePadded::new(AtomicU64::new(0)),
            arrived: CachePadded::new(AtomicU64::new(0)),
            result: CachePadded::new(Slot::new()),
            epochs,
        }
    }

    /// Contribute and synchronize; the root (rank 0) gets the sum.
    pub fn run(&self, rank: usize, contribution: u64) -> Option<u64> {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        self.acc.fetch_add(contribution, Ordering::AcqRel);
        let arrived = self.arrived.fetch_add(1, Ordering::AcqRel) + 1;
        if arrived == self.n as u64 * epoch {
            let total = self.acc.swap(0, Ordering::AcqRel);
            self.result.publish(total, epoch);
        }
        let total = self.result.consume(epoch);
        if rank == 0 {
            Some(total)
        } else {
            None
        }
    }
}

/// MPI-like binomial reduce: partial sums travel through staging buffers
/// with an envelope per hop (double copy + matching, as in `MpiBroadcast`).
pub struct MpiReduce {
    plan: RankPlan,
    staging: Vec<CachePadded<Slot>>,
    /// Per-rank private receive buffer (the second copy's destination).
    recv: Vec<CachePadded<Slot>>,
    release: CachePadded<AtomicU64>,
    epochs: Vec<CachePadded<AtomicU64>>,
}

impl MpiReduce {
    /// MPI-like reduce over a validated plan (typically binomial).
    pub fn new(plan: RankPlan) -> Self {
        plan.assert_valid();
        let n = plan.num_ranks();
        let mut staging = Vec::new();
        staging.resize_with(n, || CachePadded::new(Slot::new()));
        let mut recv = Vec::new();
        recv.resize_with(n, || CachePadded::new(Slot::new()));
        let mut epochs = Vec::new();
        epochs.resize_with(n, || CachePadded::new(AtomicU64::new(0)));
        MpiReduce {
            plan,
            staging,
            recv,
            release: CachePadded::new(AtomicU64::new(0)),
            epochs,
        }
    }

    /// Contribute and synchronize; the root gets the sum.
    pub fn run(&self, rank: usize, contribution: u64) -> Option<u64> {
        let epoch = self.epochs[rank].fetch_add(1, Ordering::Relaxed) + 1;
        let mut acc = contribution;
        for (i, &c) in self.plan.children[rank].iter().enumerate() {
            // Receive from child: staging → private recv buffer, then read.
            let v = self.staging[c].consume(epoch);
            self.recv[rank].publish(v, epoch * 64 + i as u64); // distinct sub-epoch per message
            acc = acc.wrapping_add(self.recv[rank].value.load(Ordering::Relaxed));
        }
        if rank == self.plan.root {
            self.release.store(epoch, Ordering::Release);
            Some(acc)
        } else {
            self.staging[rank].publish(acc, epoch);
            crate::spin::wait_until(|| self.release.load(Ordering::Acquire) >= epoch);
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_core::tree_opt::binomial_tree;
    use knl_core::{optimize_tree, CapabilityModel, TreeKind};

    fn run_reduce<F: Fn(usize, u64) -> Option<u64> + Sync>(n: usize, iters: usize, f: F) {
        std::thread::scope(|s| {
            for rank in 0..n {
                let f = &f;
                s.spawn(move || {
                    for it in 0..iters as u64 {
                        let contribution = (rank as u64 + 1) * (it + 1);
                        let expect: u64 = (1..=n as u64).map(|r| r * (it + 1)).sum();
                        match f(rank, contribution) {
                            Some(total) => assert_eq!(total, expect, "iter {it}"),
                            None => assert_ne!(rank, 0),
                        }
                    }
                });
            }
        });
    }

    #[test]
    fn tree_reduce_sums() {
        let model = CapabilityModel::paper_reference();
        let plan = RankPlan::direct(&optimize_tree(&model, 8, TreeKind::Reduce).tree);
        let r = TreeReduce::new(plan);
        run_reduce(8, 100, |rank, c| r.run(rank, c));
    }

    #[test]
    fn central_reduce_sums() {
        let r = CentralReduce::new(6);
        run_reduce(6, 100, |rank, c| r.run(rank, c));
    }

    #[test]
    fn mpi_reduce_sums() {
        let plan = RankPlan::direct(&binomial_tree(8));
        let r = MpiReduce::new(plan);
        run_reduce(8, 100, |rank, c| r.run(rank, c));
    }

    #[test]
    fn singleton_reduce() {
        let model = CapabilityModel::paper_reference();
        let plan = RankPlan::direct(&optimize_tree(&model, 1, TreeKind::Reduce).tree);
        let r = TreeReduce::new(plan);
        assert_eq!(r.run(0, 42), Some(42));
    }
}
