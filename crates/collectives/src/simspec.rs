//! Simulator program builders for the collectives (regenerates the
//! measured series of Figs. 6–8 on the simulated KNL).
//!
//! Every algorithm is expressed with coherent flag lines exactly as the
//! host implementations do it; the simulator charges real MESIF costs for
//! the polling, invalidation, and contention each design implies.
//!
//! Baseline fidelity knobs: the MPI-like baselines pay a per-message
//! software overhead (matching, queueing — [`MPI_MSG_OVERHEAD_NS`]) and a
//! double copy through staging lines; the OpenMP-like baselines use
//! centralized structures plus a small runtime dispatch overhead
//! ([`OMP_DISPATCH_OVERHEAD_NS`]).

use crate::plan::RankPlan;
use knl_arch::{NumaKind, Schedule};
use knl_sim::analyze::{AnalysisReport, Finding, Rule, Severity};
use knl_sim::{Arena, Machine, Op, Program, RunResult, Runner, SimTime};

/// Static analysis entry point for collective schedules: structurally
/// validate the rank plan, then run the happens-before analyzer over the
/// generated programs. A plan defect becomes an `Error` finding under the
/// `plan` rule, ahead of whatever the program-level passes report.
pub fn analyze_schedule(plan: &RankPlan, programs: &[Program]) -> AnalysisReport {
    let mut report = knl_sim::analyze(programs, &[]);
    if let Err(e) = plan.validate() {
        report.findings.insert(
            0,
            Finding {
                severity: Severity::Error,
                rule: Rule::Plan,
                threads: Vec::new(),
                ops: Vec::new(),
                line: None,
                message: format!("malformed rank plan: {e}"),
            },
        );
    }
    report
}

/// Per-message software overhead of the MPI-like baselines, ns (envelope
/// matching + request bookkeeping of a shared-memory MPI).
pub const MPI_MSG_OVERHEAD_NS: u64 = 900;
/// Per-invocation dispatch overhead of the OpenMP-like baselines, ns.
pub const OMP_DISPATCH_OVERHEAD_NS: u64 = 250;
/// Reduction-operator cost per contribution (one line, vectorized), ns.
pub const REDOP_NS: u64 = 2;

/// Window between iterations (generous; wait time costs nothing to
/// simulate).
const ITER_PERIOD_PS: SimTime = 300_000_000; // 300 µs

/// Per-rank cache lines used by the collectives.
pub struct SimLayout {
    /// Data+flag line per rank (the paper co-locates them in one line).
    pub flag: Vec<u64>,
    /// Ack line per rank.
    pub ack: Vec<u64>,
    /// Staging line per rank (MPI-like baselines).
    pub staging: Vec<u64>,
    /// Envelope line per rank (MPI-like baselines).
    pub envelope: Vec<u64>,
    /// A central release/counter line (centralized baselines).
    pub central: u64,
}

impl SimLayout {
    /// Allocate lines in `kind` memory (Figs. 6–8 use MCDRAM), spaced a
    /// page apart to avoid false conflicts.
    pub fn alloc(arena: &mut Arena, kind: NumaKind, n: usize) -> Self {
        let mut grab =
            |count: usize| -> Vec<u64> { (0..count).map(|_| arena.alloc(kind, 4096)).collect() };
        SimLayout {
            flag: grab(n),
            ack: grab(n),
            staging: grab(n),
            envelope: grab(n),
            central: arena.alloc(kind, 4096),
        }
    }
}

fn base_program(rank: usize, schedule: Schedule, num_cores: usize) -> Program {
    Program::new(schedule.place(rank, num_cores))
}

/// Model-tuned (or any) tree broadcast over `plan`.
pub fn tree_broadcast_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                if rank == plan.root {
                    // Publish data + flag (same line): R_I + R_L.
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val: gen,
                    });
                } else {
                    let parent = plan.parent[rank].expect("non-root");
                    // Poll the parent's line (contention among siblings).
                    p.push(Op::WaitFlag {
                        addr: layout.flag[parent],
                        val: gen,
                    });
                    // Copy into own structure & notify own children.
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val: gen,
                    });
                }
                // Collect subtree acknowledgements, then ack upward.
                for &c in &plan.children[rank] {
                    p.push(Op::WaitFlag {
                        addr: layout.ack[c],
                        val: gen,
                    });
                }
                if rank != plan.root {
                    p.push(Op::SetFlag {
                        addr: layout.ack[rank],
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Model-tuned tree reduce over `plan` (sum of one line per rank).
pub fn tree_reduce_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                for &c in &plan.children[rank] {
                    // Wait for the child's partial sum and fold it in.
                    p.push(Op::WaitFlag {
                        addr: layout.flag[c],
                        val: gen,
                    });
                    p.push(Op::Compute(REDOP_NS * 1000));
                }
                if rank == plan.root {
                    p.push(Op::SetFlag {
                        addr: layout.central,
                        val: gen,
                    }); // release
                } else {
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val: gen,
                    });
                    p.push(Op::WaitFlag {
                        addr: layout.central,
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Model-tuned dissemination barrier (radix m+1 over n ranks).
pub fn dissemination_barrier_programs(
    n: usize,
    m: usize,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    let rounds = knl_core::barrier_opt::rounds(n, m);
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                let mut stride = 1usize;
                for round in 0..rounds {
                    let val = (it * rounds + round) as u64 + 1;
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val,
                    });
                    for j in 1..=m {
                        let partner = (rank + n - (j * stride) % n) % n;
                        if partner != rank {
                            p.push(Op::WaitFlag {
                                addr: layout.flag[partner],
                                val,
                            });
                        }
                    }
                    stride *= m + 1;
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Centralized gather–release barrier (OpenMP-like baseline).
pub fn central_barrier_programs(
    n: usize,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                p.push(Op::Compute(OMP_DISPATCH_OVERHEAD_NS * 1000));
                if rank == 0 {
                    for r in 1..n {
                        p.push(Op::WaitFlag {
                            addr: layout.flag[r],
                            val: gen,
                        });
                    }
                    p.push(Op::SetFlag {
                        addr: layout.central,
                        val: gen,
                    });
                } else {
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val: gen,
                    });
                    p.push(Op::WaitFlag {
                        addr: layout.central,
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Flat broadcast + completion gather (OpenMP-like baseline).
pub fn flat_broadcast_programs(
    n: usize,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                p.push(Op::Compute(OMP_DISPATCH_OVERHEAD_NS * 1000));
                if rank == 0 {
                    p.push(Op::SetFlag {
                        addr: layout.central,
                        val: gen,
                    });
                    for r in 1..n {
                        p.push(Op::WaitFlag {
                            addr: layout.ack[r],
                            val: gen,
                        });
                    }
                } else {
                    // All n−1 ranks poll one line: maximal contention.
                    p.push(Op::WaitFlag {
                        addr: layout.central,
                        val: gen,
                    });
                    p.push(Op::SetFlag {
                        addr: layout.ack[rank],
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Linear reduce at the root (OpenMP-like baseline): rank 0 folds every
/// contribution sequentially.
pub fn central_reduce_programs(
    n: usize,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                p.push(Op::Compute(OMP_DISPATCH_OVERHEAD_NS * 1000));
                if rank == 0 {
                    for r in 1..n {
                        p.push(Op::WaitFlag {
                            addr: layout.flag[r],
                            val: gen,
                        });
                        p.push(Op::Compute(REDOP_NS * 1000));
                    }
                    p.push(Op::SetFlag {
                        addr: layout.central,
                        val: gen,
                    });
                } else {
                    p.push(Op::SetFlag {
                        addr: layout.flag[rank],
                        val: gen,
                    });
                    p.push(Op::WaitFlag {
                        addr: layout.central,
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// MPI-like binomial broadcast: double copy through staging + envelope,
/// with per-message software overhead.
pub fn mpi_broadcast_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                if rank != plan.root {
                    // Match + receive: staging → private buffer (2nd copy).
                    p.push(Op::WaitFlag {
                        addr: layout.envelope[rank],
                        val: gen,
                    });
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::Read(layout.staging[rank]));
                    p.push(Op::Write(layout.flag[rank])); // private recv buffer
                }
                for &c in &plan.children[rank] {
                    // Send: user buffer → child staging (1st copy) + envelope.
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::Read(layout.flag[rank]));
                    p.push(Op::Write(layout.staging[c]));
                    p.push(Op::SetFlag {
                        addr: layout.envelope[c],
                        val: gen,
                    });
                }
                for &c in &plan.children[rank] {
                    p.push(Op::WaitFlag {
                        addr: layout.ack[c],
                        val: gen,
                    });
                }
                if rank != plan.root {
                    p.push(Op::SetFlag {
                        addr: layout.ack[rank],
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Single-copy variant of the MPI-like broadcast: the paper argues MPI's
/// separate-address-space double copy "is not fundamental because, on
/// manycore, one could simply map all process address spaces into the
/// virtual memory of each process" (§IV-B.3, citing XPMEM-style mapping).
/// This builder models that fix: the receiver reads the sender's buffer
/// directly (one copy), keeping only the per-message matching overhead.
pub fn mpi_broadcast_single_copy_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                if rank != plan.root {
                    let parent = plan.parent[rank].expect("non-root");
                    p.push(Op::WaitFlag {
                        addr: layout.envelope[rank],
                        val: gen,
                    });
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    // Single copy: read straight from the sender's mapped
                    // buffer into the user buffer.
                    p.push(Op::Read(layout.flag[parent]));
                    p.push(Op::Write(layout.flag[rank]));
                }
                for &c in &plan.children[rank] {
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::SetFlag {
                        addr: layout.envelope[c],
                        val: gen,
                    });
                }
                for &c in &plan.children[rank] {
                    p.push(Op::WaitFlag {
                        addr: layout.ack[c],
                        val: gen,
                    });
                }
                if rank != plan.root {
                    p.push(Op::SetFlag {
                        addr: layout.ack[rank],
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// MPI-like binomial reduce (gather up the tree with staging + envelopes).
pub fn mpi_reduce_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                for &c in &plan.children[rank] {
                    p.push(Op::WaitFlag {
                        addr: layout.envelope[c],
                        val: gen,
                    });
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::Read(layout.staging[c]));
                    p.push(Op::Write(layout.flag[rank]));
                    p.push(Op::Compute(REDOP_NS * 1000));
                }
                if rank == plan.root {
                    p.push(Op::SetFlag {
                        addr: layout.central,
                        val: gen,
                    });
                } else {
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::Write(layout.staging[rank]));
                    p.push(Op::SetFlag {
                        addr: layout.envelope[rank],
                        val: gen,
                    });
                    p.push(Op::WaitFlag {
                        addr: layout.central,
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// MPI-like barrier: binomial gather followed by binomial release, each hop
/// paying the messaging overhead.
pub fn mpi_barrier_programs(
    plan: &RankPlan,
    layout: &SimLayout,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    plan.assert_valid();
    let n = plan.num_ranks();
    (0..n)
        .map(|rank| {
            let mut p = base_program(rank, schedule, num_cores);
            for it in 0..iters {
                let gen = it as u64 + 1;
                p.push(Op::WaitUntil((it as SimTime + 1) * ITER_PERIOD_PS));
                p.push(Op::MarkStart(it));
                // Gather phase.
                for &c in &plan.children[rank] {
                    p.push(Op::WaitFlag {
                        addr: layout.envelope[c],
                        val: gen,
                    });
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                }
                if rank != plan.root {
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::SetFlag {
                        addr: layout.envelope[rank],
                        val: gen,
                    });
                }
                // Release phase.
                if rank != plan.root {
                    p.push(Op::WaitFlag {
                        addr: layout.staging[rank],
                        val: gen,
                    });
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                }
                for &c in &plan.children[rank] {
                    p.push(Op::Compute(MPI_MSG_OVERHEAD_NS * 1000));
                    p.push(Op::SetFlag {
                        addr: layout.staging[c],
                        val: gen,
                    });
                }
                p.push(Op::MarkEnd(it));
            }
            p
        })
        .collect()
}

/// Run programs and return the per-iteration maxima (ns), the paper's
/// reported quantity.
pub fn run_collective(m: &mut Machine, programs: Vec<Program>, iters: usize) -> Vec<f64> {
    let result: RunResult = Runner::new(m, programs).run();
    (0..iters)
        .filter_map(|it| result.iteration_max_ns(it))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
    use knl_core::tree_opt::binomial_tree;
    use knl_core::{optimize_barrier, optimize_tree, CapabilityModel, TreeKind};
    use knl_stats::median;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat));
        m.set_jitter(0);
        m
    }

    fn layout(m: &Machine, n: usize) -> SimLayout {
        let mut arena = m.arena();
        SimLayout::alloc(&mut arena, NumaKind::Mcdram, n)
    }

    #[test]
    fn tuned_barrier_runs_and_scales() {
        let mut m = machine();
        let model = CapabilityModel::paper_reference();
        let mut costs = Vec::new();
        for n in [4usize, 16, 32] {
            let plan = optimize_barrier(&model, n);
            let lay = layout(&m, n);
            let progs = dissemination_barrier_programs(n, plan.m, &lay, Schedule::Scatter, 64, 5);
            let t = run_collective(&mut m, progs, 5);
            assert_eq!(t.len(), 5);
            costs.push(median(&t));
            m.reset_caches();
        }
        assert!(costs[2] > costs[0], "barrier cost grows with n: {costs:?}");
        assert!(
            costs[2] < 20_000.0,
            "32-thread barrier stays µs-scale: {costs:?}"
        );
    }

    #[test]
    fn tuned_broadcast_beats_baselines() {
        let mut m = machine();
        let model = CapabilityModel::paper_reference();
        let n = 32;
        let tree = optimize_tree(&model, n, TreeKind::Broadcast).tree;
        let plan = RankPlan::direct(&tree);
        let lay = layout(&m, n);
        let iters = 5;

        let tuned = {
            let progs = tree_broadcast_programs(&plan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        m.reset_caches();
        let flat = {
            let progs = flat_broadcast_programs(n, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        m.reset_caches();
        let mpi = {
            let bplan = RankPlan::direct(&binomial_tree(n));
            let progs = mpi_broadcast_programs(&bplan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        assert!(tuned < flat, "tuned {tuned} vs OpenMP-like {flat}");
        assert!(tuned < mpi, "tuned {tuned} vs MPI-like {mpi}");
        assert!(
            mpi / tuned > 2.0,
            "MPI-like should lag well behind: {}",
            mpi / tuned
        );
    }

    #[test]
    fn tuned_reduce_correct_and_faster_than_central() {
        let mut m = machine();
        let model = CapabilityModel::paper_reference();
        let n = 32;
        let plan = RankPlan::direct(&optimize_tree(&model, n, TreeKind::Reduce).tree);
        let lay = layout(&m, n);
        let iters = 5;
        let tuned = {
            let progs = tree_reduce_programs(&plan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        m.reset_caches();
        let central = {
            let progs = central_reduce_programs(n, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        assert!(tuned < central, "tuned {tuned} vs central {central}");
    }

    #[test]
    fn single_copy_mpi_recovers_much_of_the_gap() {
        // The paper's §IV-B.3 argument: the double copy is not fundamental.
        let mut m = machine();
        let n = 32;
        let lay = layout(&m, n);
        let iters = 5;
        let bplan = RankPlan::direct(&binomial_tree(n));
        let double = {
            let progs = mpi_broadcast_programs(&bplan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        m.reset_caches();
        let single = {
            let progs =
                mpi_broadcast_single_copy_programs(&bplan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        assert!(
            single < double,
            "single-copy {single} must beat double-copy {double}"
        );
        // And the model-tuned tree still wins (shape + no matching overhead).
        m.reset_caches();
        let model = CapabilityModel::paper_reference();
        let tuned = {
            let plan = RankPlan::direct(&optimize_tree(&model, n, TreeKind::Broadcast).tree);
            let progs = tree_broadcast_programs(&plan, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        assert!(
            tuned < single,
            "tuned {tuned} still beats single-copy MPI {single}"
        );
    }

    #[test]
    fn central_barrier_slower_than_dissemination() {
        let mut m = machine();
        let model = CapabilityModel::paper_reference();
        let n = 32;
        let lay = layout(&m, n);
        let iters = 5;
        let bp = optimize_barrier(&model, n);
        let diss = {
            let progs = dissemination_barrier_programs(n, bp.m, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        m.reset_caches();
        let central = {
            let progs = central_barrier_programs(n, &lay, Schedule::Scatter, 64, iters);
            median(&run_collective(&mut m, progs, iters))
        };
        assert!(
            diss < central,
            "dissemination {diss} vs centralized {central}"
        );
    }
}
