//! Suite orchestration: run all capability benchmarks for one machine
//! configuration and collect [`SuiteResults`].

use crate::cachebw;
use crate::congestion::congestion;
use crate::contention::contention;
use crate::measurement::{BwPoint, CacheResults, LatencyStat, MemResults, SuiteResults};
use crate::membw::{self, Target};
use crate::memlat;
use crate::params::SuiteParams;
use crate::pointer_chase;
use knl_arch::{CoreId, MachineConfig, MemoryMode, NumaKind, Schedule};
use knl_sim::{CheckLevel, Machine, MesifState, ObserverConfig, StreamKind, TraceLevel, Tracer};

/// Owner/reader/helper placement used by the single-line benchmarks: reader
/// on core 0, same-tile owner on core 1, remote owner, and a helper tile.
fn actors(m: &Machine) -> (CoreId, CoreId, CoreId, CoreId) {
    let n = m.config().num_cores() as u16;
    let reader = CoreId(0);
    let tile_owner = CoreId(1);
    let remote_owner = CoreId(n / 2 + 2);
    let helper = CoreId(n / 4 * 2 + 4);
    (reader, tile_owner, remote_owner, helper)
}

/// Run the cache-to-cache part of the suite (§IV, Table I inputs).
pub fn run_cache_suite(m: &mut Machine, params: &SuiteParams) -> CacheResults {
    let (reader, tile_owner, remote_owner, helper) = actors(m);
    let mut r = CacheResults {
        local_ns: Some(LatencyStat::from_sample(pointer_chase::local_latency(
            m,
            reader,
            params.iters,
        ))),
        ..CacheResults::default()
    };

    for st in [
        MesifState::Modified,
        MesifState::Exclusive,
        MesifState::Shared,
        MesifState::Forward,
    ] {
        let tile = pointer_chase::transfer_latency(m, tile_owner, reader, helper, st, params.iters);
        r.tile_ns
            .push((st.letter(), LatencyStat::from_sample(tile)));
        let remote =
            pointer_chase::transfer_latency(m, remote_owner, reader, helper, st, params.iters);
        r.remote_ns
            .push((st.letter(), LatencyStat::from_sample(remote)));
    }

    // Single-thread read/copy bandwidth (max median over the size sweep).
    let mut best_read: f64 = 0.0;
    for &bytes in &params.c2c_sizes {
        let s = cachebw::read_bandwidth(
            m,
            remote_owner,
            reader,
            helper,
            MesifState::Exclusive,
            bytes,
            params.iters.min(7),
        );
        best_read = best_read.max(s.median());
    }
    r.read_bw_gbps = best_read;

    for (loc, owner) in [("tile", tile_owner), ("remote", remote_owner)] {
        for st in [MesifState::Modified, MesifState::Exclusive] {
            let mut best: f64 = 0.0;
            for &bytes in &params.c2c_sizes {
                let s = cachebw::copy_bandwidth(
                    m,
                    owner,
                    reader,
                    helper,
                    st,
                    bytes,
                    params.iters.min(7),
                );
                best = best.max(s.median());
            }
            r.copy_bw_gbps.push((loc.to_string(), st.letter(), best));
        }
    }

    // Fig. 5 sweep over the three locations.
    for (loc, owner) in cachebw::fig5_partners(m, reader) {
        for st in [MesifState::Modified, MesifState::Exclusive] {
            for &bytes in &params.c2c_sizes {
                let s = cachebw::copy_bandwidth(
                    m,
                    owner,
                    reader,
                    helper_for(m, owner, reader),
                    st,
                    bytes,
                    params.iters.min(5),
                );
                r.copy_sweep
                    .push((loc.to_string(), st.letter(), bytes, s.median()));
            }
        }
    }

    // Multi-line latency fit input.
    let line_counts: Vec<u64> = params
        .c2c_sizes
        .iter()
        .map(|b| b / 64)
        .filter(|&l| l >= 1)
        .collect();
    r.multiline_read_ns = cachebw::multiline_latency(
        m,
        remote_owner,
        reader,
        helper,
        &line_counts,
        params.iters.min(5),
    );

    // Contention. Scatter places each new reader on its own tile so every
    // request serializes at the home directory (the benchmark intent; with
    // sequential issuance a tile sibling would otherwise ride on its
    // sibling's freshly fetched copy).
    r.contention = contention(
        m,
        &params.contention_n,
        Schedule::Scatter,
        params.iters.min(7),
    );

    // Congestion.
    r.congestion = congestion(m, &params.congestion_pairs, params.iters.min(5));

    r
}

/// Pick a helper core on a tile different from both `a` and `b`.
fn helper_for(m: &Machine, a: CoreId, b: CoreId) -> CoreId {
    let n = m.config().num_cores() as u16;
    (0..n)
        .map(CoreId)
        .find(|c| c.tile() != a.tile() && c.tile() != b.tile())
        .expect("≥3 tiles")
}

/// Run the memory part of the suite (§V, Table II / Fig. 9 inputs).
pub fn run_memory_suite(m: &mut Machine, params: &SuiteParams) -> MemResults {
    let mut r = MemResults::default();
    let flat = m.config().memory.has_flat_mcdram();

    // Latency rows.
    if m.config().memory != MemoryMode::Cache {
        let ddr = memlat::memory_latency(
            m,
            CoreId(0),
            NumaKind::Ddr,
            params.memlat_lines,
            params.iters * 6,
        );
        r.latency_ns
            .push(("DRAM".into(), LatencyStat::from_sample(ddr)));
        m.reset_caches();
        if flat {
            let mc = memlat::memory_latency(
                m,
                CoreId(0),
                NumaKind::Mcdram,
                params.memlat_lines,
                params.iters * 6,
            );
            r.latency_ns
                .push(("MCDRAM".into(), LatencyStat::from_sample(mc)));
            m.reset_caches();
        }
    } else {
        // Cache mode: warm the memory-side cache, then chase.
        let base = m.arena().alloc(NumaKind::Ddr, params.memlat_lines * 64);
        let _ = memlat::chase_latency(m, CoreId(0), base, params.memlat_lines, params.iters * 6);
        m.reset_tile_caches();
        let s = memlat::chase_latency(m, CoreId(0), base, params.memlat_lines, params.iters * 6);
        r.latency_ns
            .push(("cache".into(), LatencyStat::from_sample(s)));
        m.reset_caches();
    }

    // Bandwidth sweeps: both schedules, merged into one point list per
    // (kernel, target) — Table II takes the max median, Fig. 9 reads the
    // per-schedule series.
    let targets: Vec<Target> = match m.config().memory {
        MemoryMode::Cache => vec![Target::CacheMode],
        MemoryMode::Flat => vec![Target::Ddr, Target::Mcdram],
        MemoryMode::Hybrid(_) => vec![Target::Ddr, Target::Mcdram, Target::CacheMode],
    };
    for kind in StreamKind::ALL {
        for &target in &targets {
            let mut pts: Vec<BwPoint> = Vec::new();
            for sched in [Schedule::FillTiles, Schedule::FillCores] {
                pts.extend(membw::bandwidth_sweep(m, kind, target, sched, params));
                m.reset_devices();
                m.reset_caches();
            }
            r.bw_sweeps.push((kind, target.label().to_string(), pts));
        }
    }
    r
}

/// Run everything for one configuration.
pub fn run_full_suite(cfg: &MachineConfig, params: &SuiteParams) -> SuiteResults {
    run_full_suite_counted(cfg, params).0
}

/// Like [`run_full_suite`], also returning the machine's hardware event
/// counters accumulated over the whole suite (the per-configuration
/// summary printed by the sweep drivers).
pub fn run_full_suite_counted(
    cfg: &MachineConfig,
    params: &SuiteParams,
) -> (SuiteResults, knl_sim::Counters) {
    run_full_suite_counted_checked(cfg, params, CheckLevel::Off)
}

/// Like [`run_full_suite_counted`], with the machine running under a
/// coherence [`CheckLevel`]. The checker is a pure observer, so results
/// are bit-identical to the unchecked run; at any level other than
/// [`CheckLevel::Off`] the final reconciliation (`Machine::finish_check`)
/// runs before returning and panics on any violation.
pub fn run_full_suite_counted_checked(
    cfg: &MachineConfig,
    params: &SuiteParams,
    check: CheckLevel,
) -> (SuiteResults, knl_sim::Counters) {
    let (r, c, _) = run_full_suite_observed(cfg, params, check, TraceLevel::Off);
    (r, c)
}

/// Like [`run_full_suite_counted_checked`], with both observers attached:
/// the machine additionally runs under a [`TraceLevel`], and the detached
/// [`Tracer`] is returned (`None` at `TraceLevel::Off`) so the caller can
/// serialize it into a per-job trace section.
pub fn run_full_suite_observed(
    cfg: &MachineConfig,
    params: &SuiteParams,
    check: CheckLevel,
    trace: TraceLevel,
) -> (SuiteResults, knl_sim::Counters, Option<Box<Tracer>>) {
    run_full_suite_with(
        cfg,
        params,
        ObserverConfig::default().check(check).trace(trace),
    )
}

/// The root suite entry point: run everything for one configuration with
/// the full observer set an [`ObserverConfig`] describes (checker, tracer,
/// analyzer gate). Every other `run_full_suite*` wrapper delegates here.
pub fn run_full_suite_with(
    cfg: &MachineConfig,
    params: &SuiteParams,
    observers: ObserverConfig,
) -> (SuiteResults, knl_sim::Counters, Option<Box<Tracer>>) {
    let mut m = Machine::with_observer_config(cfg.clone(), observers);
    let cache = run_cache_suite(&mut m, params);
    m.reset_caches();
    m.reset_devices();
    let mem = run_memory_suite(&mut m, params);
    m.finish_check();
    let counters = m.counters();
    let tracer = m.take_tracer();
    (
        SuiteResults {
            cluster: cfg.cluster,
            memory: cfg.memory,
            cache,
            mem,
        },
        counters,
        tracer,
    )
}

/// Run the full suite for many configurations on a worker pool, each job
/// owning a freshly constructed [`Machine`]. Results come back in the
/// order of `configs` and are bit-identical for every worker count (see
/// the determinism contract on [`crate::parallel::SweepExecutor`]).
pub fn run_configs(
    configs: &[MachineConfig],
    params: &SuiteParams,
    jobs: usize,
) -> Vec<(SuiteResults, knl_sim::Counters)> {
    run_configs_checked(configs, params, jobs, CheckLevel::Off)
}

/// Like [`run_configs`], threading a coherence [`CheckLevel`] through the
/// worker pool: every job's machine runs under the same level, preserving
/// the executor's bit-for-bit determinism contract for any `jobs`.
pub fn run_configs_checked(
    configs: &[MachineConfig],
    params: &SuiteParams,
    jobs: usize,
    check: CheckLevel,
) -> Vec<(SuiteResults, knl_sim::Counters)> {
    crate::parallel::SweepExecutor::new(jobs)
        .progress(true)
        .run("suite", configs, |_i, cfg| {
            run_full_suite_counted_checked(cfg, params, check)
        })
}

/// Like [`run_configs_checked`] with tracing too: each job's detached
/// [`Tracer`] rides along with its results, still in canonical config
/// order, so the caller can merge per-job trace sections deterministically
/// for any `jobs`.
#[allow(clippy::type_complexity)]
pub fn run_configs_observed(
    configs: &[MachineConfig],
    params: &SuiteParams,
    jobs: usize,
    check: CheckLevel,
    trace: TraceLevel,
) -> Vec<(SuiteResults, knl_sim::Counters, Option<Box<Tracer>>)> {
    run_configs_with(
        configs,
        params,
        jobs,
        ObserverConfig::default().check(check).trace(trace),
    )
}

/// The root parallel-sweep entry point: [`run_full_suite_with`] for many
/// configurations on a worker pool, every job's machine under the same
/// [`ObserverConfig`]. Results come back in canonical config order and are
/// bit-identical for every worker count.
#[allow(clippy::type_complexity)]
pub fn run_configs_with(
    configs: &[MachineConfig],
    params: &SuiteParams,
    jobs: usize,
    observers: ObserverConfig,
) -> Vec<(SuiteResults, knl_sim::Counters, Option<Box<Tracer>>)> {
    crate::parallel::SweepExecutor::new(jobs)
        .progress(true)
        .run("suite", configs, |_i, cfg| {
            run_full_suite_with(cfg, params, observers)
        })
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::ClusterMode;

    #[test]
    fn quick_full_suite_snc4_flat() {
        let cfg = MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat);
        let mut params = SuiteParams::quick();
        params.iters = 5;
        params.mem_lines_per_thread = 512;
        params.memlat_lines = 16 << 10;
        let r = run_full_suite(&cfg, &params);
        assert_eq!(r.label(), "SNC4-flat");
        // Table I shape checks.
        assert!(r.cache.local_ns.as_ref().unwrap().median_ns() < 6.0);
        assert!(r.tile_ns('M').unwrap() > r.tile_ns('S').unwrap());
        assert!(r.remote_ns('M').unwrap() > r.tile_ns('M').unwrap());
        assert!(r.cache.read_bw_gbps > 1.0);
        assert!(!r.cache.contention.is_empty());
        // Table II shape checks.
        assert!(r.mem.latency("MCDRAM").unwrap() > r.mem.latency("DRAM").unwrap());
        let ddr_read = r.mem.table_cell(StreamKind::Read, "DRAM").unwrap();
        let mc_read = r.mem.table_cell(StreamKind::Read, "MCDRAM").unwrap();
        assert!(mc_read > ddr_read, "MCDRAM {mc_read} > DDR {ddr_read}");
    }

    #[test]
    fn quick_cache_mode_suite() {
        let cfg = MachineConfig::knl7210(ClusterMode::Quadrant, MemoryMode::Cache);
        let mut params = SuiteParams::quick();
        params.iters = 3;
        params.mem_threads = vec![8];
        params.mem_lines_per_thread = 256;
        params.memlat_lines = 8 << 10;
        let mut m = Machine::new(cfg);
        let r = run_memory_suite(&mut m, &params);
        assert!(r.latency("cache").is_some());
        assert!(r.table_cell(StreamKind::Copy, "cache").is_some());
        assert!(r.table_cell(StreamKind::Copy, "MCDRAM").is_none());
    }
}
