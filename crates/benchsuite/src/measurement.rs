//! Result containers for the suite (serializable so bench binaries can dump
//! them and the model builder can reload without re-simulating).

use knl_arch::{ClusterMode, MemoryMode, Schedule};
use knl_sim::StreamKind;
use knl_stats::{MedianCi, Sample};

/// Median + CI of one latency quantity, in nanoseconds.
#[derive(Debug, Clone, PartialEq)]
pub struct LatencyStat {
    /// Raw observations (ns).
    pub sample: Sample,
    /// Median + 95% CI.
    pub ci: MedianCi,
}

impl LatencyStat {
    /// Summarize a sample of nanosecond latencies.
    pub fn from_sample(sample: Sample) -> Self {
        let ci = sample.median_ci95();
        LatencyStat { sample, ci }
    }

    /// Median latency in nanoseconds.
    pub fn median_ns(&self) -> f64 {
        self.ci.median
    }
}

/// One point of a bandwidth sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct BwPoint {
    /// Message bytes (cache-to-cache) or per-thread bytes (memory).
    pub bytes: u64,
    /// Thread count of the sweep point.
    pub threads: usize,
    /// Pinning schedule used.
    pub schedule: Schedule,
    /// Median bandwidth in GB/s over iterations.
    pub gbps_median: f64,
    /// Best iteration (the "peak" column of Table II).
    pub gbps_max: f64,
}

/// Cache-to-cache capability measurements (Table I + Figs. 4–5 inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CacheResults {
    /// Local (L1) load latency.
    pub local_ns: Option<LatencyStat>,
    /// Same-tile latency per state letter ('M', 'E', 'S', 'F').
    pub tile_ns: Vec<(char, LatencyStat)>,
    /// Remote-tile latency per state letter (aggregated over partners).
    pub remote_ns: Vec<(char, LatencyStat)>,
    /// Fig. 4: per-partner-core latency, core 0 → core c, per state letter.
    pub remote_map: Vec<(u16, char, f64)>,
    /// Single-thread remote read bandwidth (registers), GB/s, max median.
    pub read_bw_gbps: f64,
    /// Copy bandwidth by (location label, state letter) — max median GB/s.
    pub copy_bw_gbps: Vec<(String, char, f64)>,
    /// Fig. 5: copy bandwidth sweep: (location, state, bytes, GB/s median).
    pub copy_sweep: Vec<(String, char, u64, f64)>,
    /// Multi-line read latency sweep for the α+β·N fit: (lines, ns median).
    pub multiline_read_ns: Vec<(u64, f64)>,
    /// Contention benchmark: (N readers, max-latency sample ns).
    pub contention: Vec<(usize, Sample)>,
    /// Congestion benchmark: (pairs, per-pair latency median ns).
    pub congestion: Vec<(usize, f64)>,
}

/// Memory capability measurements (Table II + Fig. 9 inputs).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct MemResults {
    /// Memory latency per target: keys "DRAM", "MCDRAM" (flat) or "cache".
    pub latency_ns: Vec<(String, LatencyStat)>,
    /// Bandwidth sweeps per (kind, target label): full sweep points.
    pub bw_sweeps: Vec<(StreamKind, String, Vec<BwPoint>)>,
}

impl MemResults {
    /// Max median GB/s for a kernel/target (the Table II cell).
    pub fn table_cell(&self, kind: StreamKind, target: &str) -> Option<f64> {
        self.bw_sweeps
            .iter()
            .find(|(k, t, _)| *k == kind && t == target)
            .map(|(_, _, pts)| pts.iter().map(|p| p.gbps_median).fold(0.0, f64::max))
    }

    /// Best iteration anywhere in the sweep (the "STREAM peak" column).
    pub fn peak_cell(&self, kind: StreamKind, target: &str) -> Option<f64> {
        self.bw_sweeps
            .iter()
            .find(|(k, t, _)| *k == kind && t == target)
            .map(|(_, _, pts)| pts.iter().map(|p| p.gbps_max).fold(0.0, f64::max))
    }

    /// Median latency (ns) for a target label, if measured.
    pub fn latency(&self, target: &str) -> Option<f64> {
        self.latency_ns
            .iter()
            .find(|(t, _)| t == target)
            .map(|(_, s)| s.median_ns())
    }
}

/// Everything the suite measured for one machine configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteResults {
    /// Cluster mode measured.
    pub cluster: ClusterMode,
    /// Memory mode measured.
    pub memory: MemoryMode,
    /// Cache-to-cache capabilities (§IV).
    pub cache: CacheResults,
    /// Memory capabilities (§V).
    pub mem: MemResults,
}

impl SuiteResults {
    /// Configuration label, e.g. `SNC4-flat`.
    pub fn label(&self) -> String {
        format!("{}-{}", self.cluster.name(), self.memory.name())
    }

    /// Median same-tile latency for a state letter.
    pub fn tile_ns(&self, state: char) -> Option<f64> {
        self.cache
            .tile_ns
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, l)| l.median_ns())
    }

    /// Median remote-tile latency for a state letter.
    pub fn remote_ns(&self, state: char) -> Option<f64> {
        self.cache
            .remote_ns
            .iter()
            .find(|(s, _)| *s == state)
            .map(|(_, l)| l.median_ns())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn latency_stat_median() {
        let s = Sample::from_values(vec![10.0, 12.0, 11.0]);
        let l = LatencyStat::from_sample(s);
        assert_eq!(l.median_ns(), 11.0);
    }

    #[test]
    fn mem_results_lookup() {
        let mut m = MemResults::default();
        m.bw_sweeps.push((
            StreamKind::Triad,
            "DRAM".into(),
            vec![
                BwPoint {
                    bytes: 0,
                    threads: 1,
                    schedule: Schedule::Scatter,
                    gbps_median: 10.0,
                    gbps_max: 12.0,
                },
                BwPoint {
                    bytes: 0,
                    threads: 8,
                    schedule: Schedule::Scatter,
                    gbps_median: 70.0,
                    gbps_max: 80.0,
                },
            ],
        ));
        assert_eq!(m.table_cell(StreamKind::Triad, "DRAM"), Some(70.0));
        assert_eq!(m.peak_cell(StreamKind::Triad, "DRAM"), Some(80.0));
        assert_eq!(m.table_cell(StreamKind::Copy, "DRAM"), None);
    }

    #[test]
    fn suite_results_label() {
        let r = SuiteResults {
            cluster: ClusterMode::Snc4,
            memory: MemoryMode::Flat,
            cache: CacheResults::default(),
            mem: MemResults::default(),
        };
        assert_eq!(r.label(), "SNC4-flat");
    }
}
