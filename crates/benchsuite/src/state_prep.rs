//! Putting lines into a desired MESIF state using *real* coherent operations
//! (the same way the BenchIT harness arranges states on hardware).

use knl_arch::CoreId;
use knl_sim::{AccessKind, Machine, MesifState, SimTime};

/// Gap inserted between preparation and measurement so preparation traffic
/// has fully drained (directory serialization slots, device queues).
pub const SETTLE_PS: SimTime = 2_000_000;

/// Prepare `lines` lines starting at `base` so that `owner`'s tile holds
/// them in `state`. `helper` must live on a *different* tile; it is used to
/// create S/F states. Returns the time after which measurement may start.
pub fn prep_lines(
    m: &mut Machine,
    owner: CoreId,
    helper: CoreId,
    base: u64,
    lines: u64,
    state: MesifState,
    mut now: SimTime,
) -> SimTime {
    assert_ne!(
        owner.tile(),
        helper.tile(),
        "helper must be on another tile"
    );
    for i in 0..lines {
        let addr = base + i * 64;
        match state {
            MesifState::Modified => {
                now = m.access(owner, addr, AccessKind::Write, now).complete;
            }
            MesifState::Exclusive => {
                // NT store invalidates every cached copy; the next read gets E.
                now = m.access(owner, addr, AccessKind::NtStore, now).complete;
                now = m.access(owner, addr, AccessKind::Read, now).complete;
            }
            MesifState::Shared => {
                // Owner dirties, helper reads: owner downgrades to S (helper F).
                now = m.access(owner, addr, AccessKind::Write, now).complete;
                now = m.access(helper, addr, AccessKind::Read, now).complete;
            }
            MesifState::Forward => {
                // Helper first (E), then owner reads: owner becomes F.
                now = m.access(helper, addr, AccessKind::NtStore, now).complete;
                now = m.access(helper, addr, AccessKind::Read, now).complete;
                now = m.access(owner, addr, AccessKind::Read, now).complete;
            }
            MesifState::Invalid => {
                now = m.access(owner, addr, AccessKind::NtStore, now).complete;
            }
        }
    }
    now + SETTLE_PS
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        m
    }

    #[test]
    fn all_states_reachable() {
        let mut m = machine();
        let owner = CoreId(0);
        let helper = CoreId(10);
        for (state, expect) in [
            (MesifState::Modified, MesifState::Modified),
            (MesifState::Exclusive, MesifState::Exclusive),
            (MesifState::Shared, MesifState::Shared),
            (MesifState::Forward, MesifState::Forward),
            (MesifState::Invalid, MesifState::Invalid),
        ] {
            let base = 1 << 20;
            let t = prep_lines(&mut m, owner, helper, base, 4, state, 0);
            assert!(t > 0);
            for i in 0..4u64 {
                assert_eq!(
                    m.line_state(base + i * 64, owner.tile()),
                    expect,
                    "state {state:?} line {i}"
                );
            }
            m.reset_caches();
        }
    }

    #[test]
    #[should_panic(expected = "another tile")]
    fn same_tile_helper_rejected() {
        let mut m = machine();
        prep_lines(&mut m, CoreId(0), CoreId(1), 0, 1, MesifState::Shared, 0);
    }
}
