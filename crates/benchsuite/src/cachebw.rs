//! Multi-line cache-to-cache transfers (§IV-A.4, Table I bandwidth rows,
//! Fig. 5): one thread copies (or reads) a message lying in a remote cache
//! into a local buffer, sizes 64 B – 256 KB, vectorized.

use crate::state_prep::prep_lines;
use knl_arch::{CoreId, QuadrantId};
use knl_sim::{Machine, MesifState, Op, Program, SimTime};
use knl_stats::Sample;

/// The cache-to-cache copy workload as flag-synchronized Op-IR programs:
/// the owner materializes a fresh `bytes`-sized message in its cache each
/// iteration (a bulk copy from a private scratch region, leaving the
/// message lines dirty) and publishes it; the reader waits, then copies
/// the message into a disjoint local buffer and acknowledges. Every
/// cross-thread access is flag-ordered, so the workload analyzes
/// race-free.
pub fn copy_programs(owner: CoreId, reader: CoreId, bytes: u64, iters: usize) -> Vec<Program> {
    let flag = 1u64 << 30;
    let ack = flag + 2048;
    let stride = bytes + 4096;
    let mut po = Program::on_core(owner);
    let mut pr = Program::on_core(reader);
    for it in 0..iters {
        let gen = it as u64 + 1;
        let scratch = (1u64 << 26) + (it as u64) * stride;
        let src = (1u64 << 27) + (it as u64) * stride;
        let dst = (1u64 << 28) + (it as u64) * stride;
        po.push(Op::CopyBuf {
            src: scratch,
            dst: src,
            bytes,
            vectorized: true,
        })
        .push(Op::SetFlag {
            addr: flag,
            val: gen,
        });
        pr.push(Op::WaitFlag {
            addr: flag,
            val: gen,
        })
        .push(Op::MarkStart(it))
        .push(Op::CopyBuf {
            src,
            dst,
            bytes,
            vectorized: true,
        })
        .push(Op::MarkEnd(it))
        .push(Op::SetFlag {
            addr: ack,
            val: gen,
        });
        po.push(Op::WaitFlag {
            addr: ack,
            val: gen,
        });
    }
    vec![po, pr]
}

/// Median copy bandwidth (GB/s) for a message of `bytes` held by `owner`'s
/// tile in `state`, copied by `reader` into a local buffer.
pub fn copy_bandwidth(
    m: &mut Machine,
    owner: CoreId,
    reader: CoreId,
    helper: CoreId,
    state: MesifState,
    bytes: u64,
    iters: usize,
) -> Sample {
    let lines = knl_arch::lines_for(bytes);
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    for it in 0..iters {
        let src = (1u64 << 27) + (it as u64) * (bytes + 4096);
        let dst = (1u64 << 28) + (it as u64) * (bytes + 4096);
        now = prep_lines(m, owner, helper, src, lines, state, now);
        let done = m.copy_buf(reader, src, dst, bytes, true, now);
        s.push(gbps(bytes, done - now));
        now = done + 5_000_000;
        m.reset_caches();
    }
    s
}

/// Median read (into registers) bandwidth, GB/s.
pub fn read_bandwidth(
    m: &mut Machine,
    owner: CoreId,
    reader: CoreId,
    helper: CoreId,
    state: MesifState,
    bytes: u64,
    iters: usize,
) -> Sample {
    let lines = knl_arch::lines_for(bytes);
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    for it in 0..iters {
        let src = (1u64 << 27) + (it as u64) * (bytes + 4096);
        now = prep_lines(m, owner, helper, src, lines, state, now);
        let done = m.read_buf(reader, src, bytes, true, now);
        s.push(gbps(bytes, done - now));
        now = done + 5_000_000;
        m.reset_caches();
    }
    s
}

/// Multi-line *latency* sweep used for the α+β·N fit (§IV-A.4): total read
/// time (ns, median) per line count.
pub fn multiline_latency(
    m: &mut Machine,
    owner: CoreId,
    reader: CoreId,
    helper: CoreId,
    line_counts: &[u64],
    iters: usize,
) -> Vec<(u64, f64)> {
    let mut out = Vec::new();
    for &lines in line_counts {
        let s = read_latency_sample(m, owner, reader, helper, lines, iters);
        out.push((lines, s.median()));
    }
    out
}

fn read_latency_sample(
    m: &mut Machine,
    owner: CoreId,
    reader: CoreId,
    helper: CoreId,
    lines: u64,
    iters: usize,
) -> Sample {
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    for it in 0..iters {
        let src = (1u64 << 27) + (it as u64) * (lines + 4) * 64;
        now = prep_lines(m, owner, helper, src, lines, MesifState::Exclusive, now);
        let done = m.read_buf(reader, src, lines * 64, true, now);
        s.push((done - now) as f64 / 1000.0);
        now = done + 5_000_000;
        m.reset_caches();
    }
    s
}

/// Partner cores for the three locations of Fig. 5, relative to `reader`:
/// same tile, same quadrant (different tile), remote quadrant.
pub fn fig5_partners(m: &Machine, reader: CoreId) -> Vec<(&'static str, CoreId)> {
    let topo = m.topology();
    let num_cores = m.config().num_cores() as u16;
    let reader_q = topo.tile_quadrant(reader.tile());
    let same_tile = CoreId(reader.0 ^ 1);
    let same_quad = (0..num_cores)
        .map(CoreId)
        .find(|c| c.tile() != reader.tile() && topo.tile_quadrant(c.tile()) == reader_q)
        .expect("quadrant has >1 tile");
    let remote_quad = (0..num_cores)
        .map(CoreId)
        .find(|c| {
            topo.tile_quadrant(c.tile()) != reader_q
                && topo.tile_quadrant(c.tile()) == QuadrantId(reader_q.0 ^ 3)
        })
        .unwrap_or_else(|| {
            (0..num_cores)
                .map(CoreId)
                .find(|c| topo.tile_quadrant(c.tile()) != reader_q)
                .expect("multiple quadrants")
        });
    vec![
        ("tile", same_tile),
        ("same-quadrant", same_quad),
        ("remote-quadrant", remote_quad),
    ]
}

fn gbps(bytes: u64, ps: u64) -> f64 {
    (bytes as f64 / 1e9) / (ps as f64 / 1e12)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
    use knl_stats::fit_linear;

    fn machine() -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::Snc4, MemoryMode::Flat));
        m.set_jitter(0);
        m
    }

    #[test]
    fn remote_copy_near_7_5gbps() {
        let mut m = machine();
        let s = copy_bandwidth(
            &mut m,
            CoreId(40),
            CoreId(0),
            CoreId(20),
            MesifState::Modified,
            64 << 10,
            5,
        );
        let g = s.median();
        assert!(
            (4.5..11.0).contains(&g),
            "remote copy {g} GB/s (paper ~7.5)"
        );
    }

    #[test]
    fn tile_copy_e_faster_than_m() {
        let mut m = machine();
        let e = copy_bandwidth(
            &mut m,
            CoreId(1),
            CoreId(0),
            CoreId(20),
            MesifState::Exclusive,
            64 << 10,
            5,
        )
        .median();
        let mm = copy_bandwidth(
            &mut m,
            CoreId(1),
            CoreId(0),
            CoreId(20),
            MesifState::Modified,
            64 << 10,
            5,
        )
        .median();
        assert!(e > mm, "tile E copy {e} must beat M copy {mm}");
        assert!((6.0..12.0).contains(&e), "tile E copy {e} (paper 9.2)");
    }

    #[test]
    fn remote_read_near_2_5gbps() {
        let mut m = machine();
        let s = read_bandwidth(
            &mut m,
            CoreId(40),
            CoreId(0),
            CoreId(20),
            MesifState::Exclusive,
            64 << 10,
            5,
        );
        let g = s.median();
        assert!((1.5..4.0).contains(&g), "remote read {g} GB/s (paper 2.5)");
    }

    #[test]
    fn multiline_latency_is_linear() {
        let mut m = machine();
        let pts = multiline_latency(
            &mut m,
            CoreId(40),
            CoreId(0),
            CoreId(20),
            &[8, 32, 128, 512],
            3,
        );
        let xs: Vec<f64> = pts.iter().map(|(n, _)| *n as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, l)| *l).collect();
        let f = fit_linear(&xs, &ys);
        assert!(
            f.r2 > 0.98,
            "multi-line latency must be linear, r²={}",
            f.r2
        );
        assert!(f.beta > 0.0);
    }

    #[test]
    fn fig5_partner_locations() {
        let m = machine();
        let p = fig5_partners(&m, CoreId(0));
        assert_eq!(p.len(), 3);
        assert_eq!(p[0].1, CoreId(1));
        let topo = m.topology();
        let q0 = topo.tile_quadrant(CoreId(0).tile());
        assert_eq!(topo.tile_quadrant(p[1].1.tile()), q0);
        assert_ne!(p[1].1.tile(), CoreId(0).tile());
        assert_ne!(topo.tile_quadrant(p[2].1.tile()), q0);
    }
}
