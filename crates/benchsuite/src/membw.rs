//! Memory bandwidth benchmarks (§V-A, Table II, Fig. 9): STREAM-style
//! copy/read/write/triad kernels with non-temporal hints, random buffers
//! selected from a larger pool each iteration, window-synchronized starts,
//! swept over thread counts and schedules.

use crate::params::SuiteParams;
use crate::sync_window::WindowSync;
use knl_arch::topology::splitmix64;
use knl_arch::{NumaKind, Schedule};
use knl_sim::{Machine, Op, Program, Runner, StreamKind};
use knl_stats::Sample;

/// Where the benchmark's buffers live.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Target {
    /// Flat-mode DDR allocation ("DRAM" rows of Table II).
    Ddr,
    /// Flat-mode MCDRAM allocation ("MCDRAM" rows).
    Mcdram,
    /// Cache mode: plain allocations, MCDRAM cache in front of DDR.
    CacheMode,
}

impl Target {
    /// Row label used in Table II ("DRAM", "MCDRAM", "cache").
    pub fn label(self) -> &'static str {
        match self {
            Target::Ddr => "DRAM",
            Target::Mcdram => "MCDRAM",
            Target::CacheMode => "cache",
        }
    }

    fn numa_kind(self) -> NumaKind {
        match self {
            Target::Mcdram => NumaKind::Mcdram,
            _ => NumaKind::Ddr,
        }
    }
}

/// The programs [`bandwidth_sample`] executes (exposed so the static
/// analyzer can pre-validate the generated workload). The machine is only
/// consulted for its configuration and address map; allocation uses a
/// fresh [`knl_sim::Arena`], so building programs twice yields the same
/// addresses and running them is identical to calling `bandwidth_sample`.
pub fn bandwidth_programs(
    m: &Machine,
    kind: StreamKind,
    target: Target,
    threads: usize,
    schedule: Schedule,
    params: &SuiteParams,
) -> Vec<Program> {
    let lines = params.mem_lines_per_thread;
    let buf_bytes = lines * 64 * 3; // room for a, b, c sub-buffers
    let num_cores = m.config().num_cores();
    let mut arena = m.arena();

    // One large shared pool of buffer slots, as the paper's "random buffers
    // selected from a larger one": every thread picks a pseudo-random slot
    // each iteration. In cache mode the pool is sized to ~2.5x the (scaled)
    // memory-side cache so hits are genuinely uncertain; in flat modes it is
    // `threads × mem_pool_buffers` slots, clamped to the region.
    let num_slots = {
        let region_cap = (arena.remaining(target.numa_kind()) as f64 * 0.8) as u64;
        let max_total = (region_cap / buf_bytes).max(1);
        let want_total = if target == Target::CacheMode && m.config().memory.has_mcdram_cache() {
            let cache_bytes = m.address_map().mcdram_cache_bytes();
            ((cache_bytes as f64 * 2.5 / buf_bytes as f64).ceil() as u64).max(threads as u64)
        } else {
            (threads * params.mem_pool_buffers) as u64
        };
        want_total.min(max_total).max(threads as u64) as usize
    };
    let pool: Vec<u64> = (0..num_slots)
        .map(|_| arena.alloc(target.numa_kind(), buf_bytes))
        .collect();

    // Window period generous enough for the slowest kernel at the highest
    // oversubscription (DDR writes at 256 threads).
    let total_bytes_iter = threads as u64 * lines * 64 * 3;
    let period = (total_bytes_iter as f64 / 15e9 * 1e12) as u64 + 2_000_000;
    let sync = WindowSync::new(num_cores, period, 10, params.seed);

    let programs: Vec<Program> = (0..threads)
        .map(|ti| {
            let hw = schedule.place(ti, num_cores);
            let mut p = Program::new(hw);
            if target == Target::CacheMode {
                // Untimed warm-up: the threads jointly stream the whole pool
                // once (disjoint shares) so the memory-side cache reaches its
                // steady state — holding an arbitrary subset of a footprint
                // larger than itself — before the first window.
                let share = num_slots.div_ceil(threads);
                for &base in pool.iter().skip(ti * share).take(share) {
                    p.push(Op::Stream {
                        kind: StreamKind::Read,
                        a: base,
                        b: base,
                        c: base,
                        lines: lines * 3,
                        vectorized: true,
                    });
                }
            }
            for it in 0..params.iters {
                let pick =
                    splitmix64(params.seed ^ (ti as u64) << 32 ^ it as u64) as usize % pool.len();
                let base = pool[pick];
                let (a, b, c) = (base, base + lines * 64, base + 2 * lines * 64);
                p.push(Op::WaitUntil(sync.window_start(hw.core().0 as usize, it)))
                    .push(Op::MarkStart(it))
                    .push(Op::Stream {
                        kind,
                        a,
                        b,
                        c,
                        lines,
                        vectorized: true,
                    })
                    .push(Op::MarkEnd(it));
            }
            p
        })
        .collect();
    programs
}

/// Aggregate bandwidth sample (GB/s per iteration) for one configuration.
///
/// Each of `threads` threads streams `params.mem_lines_per_thread` lines of
/// `kind` per iteration over a buffer picked pseudo-randomly from its pool
/// of `params.mem_pool_buffers` buffers, starting at a synchronized window.
/// Bandwidth counts reads+writes as the paper does.
pub fn bandwidth_sample(
    m: &mut Machine,
    kind: StreamKind,
    target: Target,
    threads: usize,
    schedule: Schedule,
    params: &SuiteParams,
) -> Sample {
    let lines = params.mem_lines_per_thread;
    let programs = bandwidth_programs(m, kind, target, threads, schedule, params);
    let result = Runner::new(m, programs).run();
    let mut s = Sample::new();
    let counted = threads as u64 * lines * kind.bytes_per_line();
    for it in 0..params.iters {
        if let Some(max_ns) = result.iteration_max_ns(it) {
            s.push((counted as f64 / 1e9) / (max_ns / 1e9));
        }
    }
    s
}

/// Sweep thread counts for one (kind, target, schedule); returns
/// [`crate::measurement::BwPoint`]s.
pub fn bandwidth_sweep(
    m: &mut Machine,
    kind: StreamKind,
    target: Target,
    schedule: Schedule,
    params: &SuiteParams,
) -> Vec<crate::measurement::BwPoint> {
    let cap = m.config().num_hw_threads();
    params
        .mem_threads
        .iter()
        .copied()
        .filter(|&t| t <= cap)
        .map(|threads| {
            m.reset_devices();
            m.reset_caches();
            let s = bandwidth_sample(m, kind, target, threads, schedule, params);
            crate::measurement::BwPoint {
                bytes: params.mem_lines_per_thread * 64,
                threads,
                schedule,
                gbps_median: s.median(),
                gbps_max: s.max(),
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    fn machine(mm: MemoryMode) -> Machine {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::Quadrant, mm));
        m.set_jitter(0);
        m
    }

    fn quick() -> SuiteParams {
        let mut p = SuiteParams::quick();
        p.iters = 5;
        p.mem_lines_per_thread = 512;
        p
    }

    #[test]
    fn ddr_read_saturates() {
        let mut m = machine(MemoryMode::Flat);
        let p = quick();
        let s32 = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Ddr,
            32,
            Schedule::FillTiles,
            &p,
        );
        assert!(
            (55.0..90.0).contains(&s32.median()),
            "32-thread DDR read {}",
            s32.median()
        );
    }

    #[test]
    fn mcdram_read_beats_ddr() {
        let mut m = machine(MemoryMode::Flat);
        let p = quick();
        let d = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Ddr,
            32,
            Schedule::FillTiles,
            &p,
        );
        m.reset_devices();
        let mc = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Mcdram,
            32,
            Schedule::FillTiles,
            &p,
        );
        assert!(
            mc.median() > 1.8 * d.median(),
            "MCDRAM {} vs DDR {}",
            mc.median(),
            d.median()
        );
    }

    #[test]
    fn write_slower_than_read() {
        let mut m = machine(MemoryMode::Flat);
        let p = quick();
        let r = bandwidth_sample(
            &mut m,
            StreamKind::Read,
            Target::Ddr,
            16,
            Schedule::FillTiles,
            &p,
        );
        m.reset_devices();
        let w = bandwidth_sample(
            &mut m,
            StreamKind::Write,
            Target::Ddr,
            16,
            Schedule::FillTiles,
            &p,
        );
        assert!(
            w.median() < r.median(),
            "write {} < read {}",
            w.median(),
            r.median()
        );
        assert!(
            (25.0..48.0).contains(&w.median()),
            "DDR write {}",
            w.median()
        );
    }

    #[test]
    fn sweep_produces_points() {
        let mut m = machine(MemoryMode::Flat);
        let p = quick();
        let pts = bandwidth_sweep(
            &mut m,
            StreamKind::Triad,
            Target::Ddr,
            Schedule::FillTiles,
            &p,
        );
        assert_eq!(pts.len(), p.mem_threads.len());
        assert!(pts.iter().all(|pt| pt.gbps_median > 0.0));
        // More threads must not reduce bandwidth below the single-thread one.
        assert!(pts.last().unwrap().gbps_median > pts[0].gbps_median);
    }

    #[test]
    fn cache_mode_read_below_flat_mcdram() {
        // Table II: cache-mode read (87–128) ≪ flat MCDRAM read (243–314),
        // because random buffers may miss the memory-side cache.
        let p = quick();
        let mut flat = machine(MemoryMode::Flat);
        let mc = bandwidth_sample(
            &mut flat,
            StreamKind::Read,
            Target::Mcdram,
            32,
            Schedule::FillTiles,
            &p,
        )
        .median();
        let mut cm = machine(MemoryMode::Cache);
        let c = bandwidth_sample(
            &mut cm,
            StreamKind::Read,
            Target::CacheMode,
            32,
            Schedule::FillTiles,
            &p,
        )
        .median();
        assert!(c < mc, "cache-mode {c} must trail flat MCDRAM {mc}");
    }
}
