//! Memory latency (Table II latency rows): BenchIT-style pointer chasing
//! over a buffer far larger than the caches, allocated in DDR or MCDRAM
//! (flat modes) or wherever the cache mode puts it.

use knl_arch::topology::splitmix64;
use knl_arch::{CoreId, NumaKind};
use knl_sim::{AccessKind, Machine, Op, Program, SimTime};
use knl_stats::Sample;

/// The latency workload as an Op-IR program (one thread chasing `lines`
/// lines from `base`), the shape [`chase_latency`] measures directly.
/// Exposed so the static analyzer can validate the workload; the capacity
/// pass will (correctly) note that the buffer exceeds L1/L2 — that is the
/// point of the benchmark.
pub fn chase_program(core: CoreId, base: u64, lines: u64, passes: usize) -> Program {
    let mut p = Program::on_core(core);
    for it in 0..passes {
        p.push(Op::MarkStart(it))
            .push(Op::Chase { base, lines })
            .push(Op::MarkEnd(it));
    }
    p
}

/// Median-ready sample of dependent-load latencies (ns) over a `lines`-line
/// buffer at `base`. Accesses visit lines in a hash-scrambled order so
/// neither the L2 nor the prefetchers help; the buffer must exceed L2.
pub fn chase_latency(
    m: &mut Machine,
    core: CoreId,
    base: u64,
    lines: u64,
    samples: usize,
) -> Sample {
    let mut s = Sample::new();
    let mut now: SimTime = 0;
    // Warm the TLB/paths but not the caches (each access hits a new line).
    for i in 0..samples as u64 {
        let idx = splitmix64(i ^ base) % lines;
        let addr = base + idx * 64;
        let out = m.access(core, addr, AccessKind::Read, now);
        s.push((out.complete - now) as f64 / 1000.0);
        now = out.complete + 1_000;
    }
    s
}

/// Convenience: allocate a chase buffer of `lines` in `kind` and measure.
pub fn memory_latency(
    m: &mut Machine,
    core: CoreId,
    kind: NumaKind,
    lines: u64,
    samples: usize,
) -> Sample {
    let base = m.arena().alloc(kind, lines * 64);
    chase_latency(m, core, base, lines, samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};

    #[test]
    fn flat_mode_latencies_match_table2() {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        let ddr = memory_latency(&mut m, CoreId(0), NumaKind::Ddr, 32 << 10, 50).median();
        m.reset_caches();
        let mc = memory_latency(&mut m, CoreId(0), NumaKind::Mcdram, 32 << 10, 50).median();
        // Table II (QUAD): DRAM 140 ns, MCDRAM 167 ns.
        assert!((120.0..165.0).contains(&ddr), "DRAM latency {ddr}");
        assert!((150.0..195.0).contains(&mc), "MCDRAM latency {mc}");
        assert!(mc > ddr);
    }

    #[test]
    fn cache_mode_latency_higher_than_flat_dram() {
        let mut flat = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        flat.set_jitter(0);
        let ddr = memory_latency(&mut flat, CoreId(0), NumaKind::Ddr, 32 << 10, 50).median();
        let mut cm = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Cache,
        ));
        cm.set_jitter(0);
        // Warm the memory-side cache with one pass, then drop only the tile
        // caches and measure: hits now come from the MCDRAM cache (the
        // paper's chase buffer likewise fits the 16 GB MCDRAM cache).
        let base = cm.arena().alloc(NumaKind::Ddr, (32u64 << 10) * 64);
        let _ = chase_latency(&mut cm, CoreId(0), base, 32 << 10, 200);
        cm.reset_tile_caches();
        let warm = chase_latency(&mut cm, CoreId(0), base, 32 << 10, 200);
        // Table II cache mode: 166-172 ns vs DRAM flat 140.
        assert!(
            warm.median() > ddr,
            "cache-mode {} vs flat DRAM {ddr}",
            warm.median()
        );
        assert!(
            (150.0..220.0).contains(&warm.median()),
            "cache-mode {}",
            warm.median()
        );
    }
}
