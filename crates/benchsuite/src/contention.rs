//! The contention benchmark (§IV-A.2): one thread on core 0 owns a one-line
//! buffer; N other threads access it simultaneously and copy it into a local
//! buffer. The paper fits `T_C(N) = α + β·N` (Table I: α ≈ 200, β ≈ 34).

use crate::state_prep::prep_lines;
use knl_arch::{CoreId, Schedule};
use knl_sim::{AccessKind, Machine, MesifState, Op, Program, SimTime};
use knl_stats::Sample;

/// The 1:N contention workload as flag-synchronized Op-IR programs: the
/// owner (core 0) dirties a fresh line each iteration and publishes it;
/// the `n` readers wait for the publication, read the contended line, and
/// copy it into disjoint local buffers. Every cross-thread access is
/// ordered through the flag, so the workload analyzes race-free — the
/// contention being measured is directory serialization, not data racing.
pub fn contention_programs(
    n: usize,
    schedule: Schedule,
    num_cores: usize,
    iters: usize,
) -> Vec<Program> {
    assert!(n < num_cores, "need a free core per reader");
    let flag = 1u64 << 30;
    let addr = |it: usize| (1u64 << 24) + (it as u64) * 64;
    let mut owner = Program::on_core(CoreId(0));
    for it in 0..iters {
        owner.push(Op::Write(addr(it))).push(Op::SetFlag {
            addr: flag,
            val: it as u64 + 1,
        });
    }
    let mut programs = vec![owner];
    for r in 0..n {
        // Skip placement slot 0 (the owner's core).
        let mut p = Program::on_core(schedule.core(r + 1, num_cores));
        for it in 0..iters {
            let local_buf = (1u64 << 29) + (r as u64) * 4096 + (it as u64) * 64;
            p.push(Op::WaitFlag {
                addr: flag,
                val: it as u64 + 1,
            })
            .push(Op::MarkStart(it))
            .push(Op::Read(addr(it)))
            .push(Op::Write(local_buf))
            .push(Op::MarkEnd(it));
        }
        programs.push(p);
    }
    programs
}

/// Run the 1:N contention benchmark for each N in `ns` with the given
/// reader schedule ("each new thread runs in a different tile" = Scatter,
/// "a different core that can be in the same tile" = FillTiles).
///
/// Returns, per N, the sample of *maximum* reader latencies (ns) across
/// iterations.
pub fn contention(
    m: &mut Machine,
    ns: &[usize],
    schedule: Schedule,
    iters: usize,
) -> Vec<(usize, Sample)> {
    let owner = CoreId(0);
    let num_cores = m.config().num_cores();
    let mut out = Vec::new();
    let mut now: SimTime = 0;
    for &n in ns {
        assert!(n < num_cores, "need a free core per reader");
        let mut s = Sample::new();
        for i in 0..iters {
            let addr = (1u64 << 24) + (i as u64) * 64;
            // The owner writes the line each iteration (M state), exactly as
            // the benchmark's owner thread updates its buffer.
            now = prep_lines(
                m,
                owner,
                CoreId((num_cores - 2) as u16),
                addr,
                1,
                MesifState::Modified,
                now,
            );
            // All N readers fire at the same instant; the home directory
            // serializes them. Each reader then copies the line into a
            // local buffer (as the paper's benchmark does), whose
            // first-touch ownership fetch is part of the measured cost.
            let mut worst = 0;
            for r in 0..n {
                // Skip placement slot 0 (the owner's core).
                let reader = schedule.core(r + 1, num_cores);
                let local_buf = (1u64 << 29) + (r as u64) * 4096 + (i as u64) * 64;
                let read = m.access(reader, addr, AccessKind::Read, now);
                let copy = m.access(reader, local_buf, AccessKind::Write, read.complete);
                worst = worst.max(copy.complete - now);
            }
            s.push(worst as f64 / 1000.0);
            now += 10_000_000;
            m.reset_caches();
        }
        out.push((n, s));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use knl_arch::{ClusterMode, MachineConfig, MemoryMode};
    use knl_stats::fit_linear;

    #[test]
    fn contention_is_linear_with_beta_near_34() {
        let mut m = Machine::new(MachineConfig::knl7210(
            ClusterMode::Quadrant,
            MemoryMode::Flat,
        ));
        m.set_jitter(0);
        // Scatter: each new reader lands on its own tile, so every request
        // goes through the home directory (the paper's per-tile schedule).
        let pts = contention(&mut m, &[1, 4, 8, 16, 24, 31], Schedule::Scatter, 5);
        let xs: Vec<f64> = pts.iter().map(|(n, _)| *n as f64).collect();
        let ys: Vec<f64> = pts.iter().map(|(_, s)| s.median()).collect();
        let fit = fit_linear(&xs, &ys);
        assert!(
            (25.0..45.0).contains(&fit.beta),
            "β = {} (paper: 34)",
            fit.beta
        );
        assert!(
            (60.0..300.0).contains(&fit.alpha),
            "α = {} (paper: 200)",
            fit.alpha
        );
        assert!(fit.r2 > 0.95, "linearity r² = {}", fit.r2);
    }

    #[test]
    fn monotone_in_n() {
        let mut m = Machine::new(MachineConfig::knl7210(ClusterMode::A2A, MemoryMode::Flat));
        m.set_jitter(0);
        let pts = contention(&mut m, &[2, 16], Schedule::Scatter, 3);
        assert!(pts[1].1.median() > pts[0].1.median());
    }
}
