//! The capability benchmark suite of the paper (§III–V), running on the
//! simulated KNL.
//!
//! Mirrors the paper's tooling:
//!
//! * **BenchIT-style pointer chasing** for cache-line transfer latency by
//!   MESIF state and thread placement ([`pointer_chase`]),
//! * the **Xeon Phi benchmarks**' one-directional copies for cache-to-cache
//!   bandwidth over message sizes ([`cachebw`]),
//! * ad-hoc **contention** (1:N copies of one line) and **congestion**
//!   (simultaneous P2P ping-pong pairs) benchmarks ([`contention`],
//!   [`congestion`]),
//! * **STREAM-based memory benchmarks** (copy/read/write/triad with
//!   non-temporal hints, random buffers from a larger pool, window-
//!   synchronized starts) ([`membw`]), and
//! * **memory latency** pointer chasing over DDR/MCDRAM ([`memlat`]).
//!
//! Reporting follows the paper: per-iteration cost is the *maximum* across
//! threads; quoted numbers are *medians* over iterations (with 95% CIs
//! available); Table II bandwidths are the maximum median across the sweep.

pub mod cachebw;
pub mod congestion;
pub mod contention;
pub mod measurement;
pub mod membw;
pub mod memlat;
pub mod parallel;
pub mod params;
pub mod pointer_chase;
pub mod serial;
pub mod state_prep;
pub mod suite;
pub mod sync_window;

pub use measurement::{BwPoint, CacheResults, LatencyStat, MemResults, SuiteResults};
pub use parallel::{default_jobs, SweepExecutor};
pub use params::SuiteParams;
pub use serial::{decode_suite, encode_suite};
pub use suite::{
    run_cache_suite, run_configs, run_configs_checked, run_configs_observed, run_configs_with,
    run_full_suite, run_full_suite_counted, run_full_suite_counted_checked,
    run_full_suite_observed, run_full_suite_with, run_memory_suite,
};
